/**
 * Fig. 9 — Static workload, shifting *environment*: a TPC-C workload
 * whose machine suffers external interference phases (emulated with
 * the `stress`-like regimes of the paper: a CPU hog that steals
 * cores, memory pressure that cuts effective locality/bandwidth,
 * then back to normal). The Monitor cannot distinguish environment
 * changes from workload changes (paper §5.3) — it just detects the
 * KPI regime shift and re-optimizes; crucially the interference also
 * *moves* the optimal configuration (fewer usable cores favour lower
 * thread counts).
 */

#include "bench_util.hpp"
#include "rectm/engine.hpp"

namespace proteus::bench {
namespace {

using rectm::RecTmEngine;
using rectm::RuntimeOptions;

constexpr int kPeriodsPerPhase = 40;
constexpr int kPhases = 4;

int
run()
{
    const auto space = ConfigSpace::machineA();
    const PerfModel perf_normal(MachineModel::machineA());

    // CPU hog: half the cores are effectively gone and the clock is
    // throttled by contention.
    MachineModel cpu_hog = MachineModel::machineA();
    cpu_hog.coresPerSocket = 2;
    cpu_hog.clockGhz *= 0.8;
    const PerfModel perf_cpu(cpu_hog);

    // Memory pressure: slower effective clock, SMT worthless.
    MachineModel mem_hog = MachineModel::machineA();
    mem_hog.clockGhz *= 0.6;
    mem_hog.smtYield = 0.1;
    const PerfModel perf_mem(mem_hog);

    const PerfModel *phase_perf[kPhases] = {&perf_normal, &perf_cpu,
                                            &perf_mem, &perf_normal};
    const KpiKind kpi = KpiKind::kThroughput;

    const auto corpus = WorkloadCorpus::generate(21, 0x909);
    std::vector<Workload> train;
    for (const auto &w : corpus) {
        if (w.name.rfind("tpcc#", 0) != 0)
            train.push_back(w);
    }
    RecTmEngine::Options eopts;
    eopts.tuner.trials = 12;
    const RecTmEngine engine(
        goodnessMatrix(perf_normal, train, space, kpi), eopts);

    const Workload tpcc = simarch::presets::tpcc();
    SimSystem system(perf_normal, space, {tpcc}, kpi);

    RuntimeOptions ropts;
    ropts.kpi = kpi;
    ropts.smbo.epsilon = 0.01;
    rectm::ProteusRuntime runtime(engine, system, ropts);

    const int total = kPhases * kPeriodsPerPhase;
    const auto records = runtime.run(total, [&](int period) {
        system.setPerfOverride(phase_perf[period / kPeriodsPerPhase]);
    });

    printTitle("Fig 9: static TPC-C under external resource "
               "interference (Machine A)");
    std::printf("%-8s %-10s %-18s %12s %10s\n", "period", "phase",
                "config", "kpi(tx/s)", "mode");
    for (const auto &rec : records) {
        if (rec.period % 10 != 0 && !rec.exploring &&
            !rec.changeDetected)
            continue; // readable subsample + every event
        std::printf("%-8d %-10d %-18s %12.0f %10s\n", rec.period,
                    rec.period / kPeriodsPerPhase,
                    space.at(rec.config).label().c_str(), rec.kpi,
                    rec.exploring
                        ? "explore"
                        : (rec.changeDetected ? "CHANGE" : "steady"));
    }

    // Per-phase summary vs the phase optimum under that environment.
    std::printf("\n%-8s %-18s %12s %12s %8s\n", "phase", "opt-config",
                "opt-kpi", "ProteusTM", "dfo%");
    for (int p = 0; p < kPhases; ++p) {
        system.setPerfOverride(phase_perf[p]);
        std::size_t opt = 0;
        double best = -1;
        for (std::size_t c = 0; c < space.size(); ++c) {
            const double v = system.trueKpi(0, c);
            if (v > best) {
                best = v;
                opt = c;
            }
        }
        double acc = 0;
        int n = 0;
        for (const auto &rec : records) {
            if (rec.period / kPeriodsPerPhase == p && !rec.exploring) {
                acc += rec.kpi;
                ++n;
            }
        }
        const double mine = n ? acc / n : 0.0;
        std::printf("%-8d %-18s %12.0f %12.0f %8.1f\n", p,
                    space.at(opt).label().c_str(), best, mine,
                    best > 0 ? (1.0 - mine / best) * 100.0 : 0.0);
    }
    std::printf("\nepisodes: %d (expected: one per interference "
                "regime change)\n",
                runtime.episodes());
    std::printf("Shape target: the CPU-hog phase moves the optimum to "
                "fewer threads; ProteusTM re-adapts after each shift "
                "and tracks the per-phase optimum closely.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
