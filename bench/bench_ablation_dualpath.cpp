/**
 * Ablation — the dual compilation path (paper §4: HTM executes the
 * non-instrumented path; "the dual path optimization is crucial to
 * minimize overhead").
 *
 * Two views:
 *  1. Real execution: emulated-HTM throughput with and without a
 *     per-access instrumentation shim (what GCC's default
 *     instrumented path costs the hardware path).
 *  2. Model view: Machine-A throughput of every preset under the HTM
 *     cost profile vs an "instrumented HTM" profile whose per-access
 *     costs match an STM's.
 */

#include <thread>

#include "bench_util.hpp"
#include "common/timing.hpp"
#include "tm/sim_htm.hpp"

namespace proteus::bench {
namespace {

constexpr std::uint64_t kSlots = 1 << 18;
constexpr std::uint64_t kOps = 150000;

double
runHtm(bool instrumented)
{
    tm::SimHtm htm({}, 18);
    std::vector<std::uint64_t> slots(kSlots, 1);
    tm::TxDesc desc(0, 0xd0a1);
    htm.registerThread(desc);
    Rng rng(0xfeed);
    Stopwatch sw;
    for (std::uint64_t op = 0; op < kOps; ++op) {
        desc.consecutiveAborts = 0;
        desc.htmBudgetLeft = 5;
        for (;;) {
            htm.txBegin(desc);
            try {
                std::uint64_t acc = 0;
                for (int i = 0; i < 20; ++i) {
                    const std::uint64_t *addr =
                        &slots[rng.nextBounded(kSlots)];
                    if (instrumented) {
                        volatile std::uint64_t sink =
                            reinterpret_cast<std::uintptr_t>(addr) *
                            0x9e3779b97f4a7c15ull;
                        (void)sink;
                    }
                    acc += htm.txRead(desc, addr);
                }
                for (int i = 0; i < 4; ++i) {
                    std::uint64_t *addr =
                        &slots[rng.nextBounded(kSlots)];
                    if (instrumented) {
                        volatile std::uint64_t sink =
                            reinterpret_cast<std::uintptr_t>(addr) ^ acc;
                        (void)sink;
                    }
                    htm.txWrite(desc, addr, acc + i);
                }
                htm.txCommit(desc);
                break;
            } catch (const tm::TxAbort &) {
                ++desc.consecutiveAborts;
                tm::backoffOnAbort(desc);
            }
        }
    }
    return static_cast<double>(kOps) / sw.elapsedSeconds();
}

int
run()
{
    printTitle("Ablation: dual compilation path for HTM");

    std::vector<double> opt, naive;
    for (int rep = 0; rep < 3; ++rep) {
        opt.push_back(runHtm(false));
        naive.push_back(runHtm(true));
    }
    const double overhead =
        (median(opt) / median(naive) - 1.0) * 100.0;
    std::printf("real emulated-HTM, 1 thread: non-instrumented %.0f "
                "tx/s, instrumented %.0f tx/s -> overhead %.1f%%\n\n",
                median(opt), median(naive), overhead);

    // Model view: swap the HTM per-access costs for TL2-like ones.
    const auto space = ConfigSpace::machineA();
    const PerfModel perf(MachineModel::machineA());
    std::printf("%-12s %16s %16s %9s\n", "workload", "HTM-dual(tx/s)",
                "HTM-instr(tx/s)", "loss%");
    for (const auto &w : simarch::presets::all()) {
        polytm::TmConfig htm{tm::BackendKind::kSimHtm, 8, {}};
        htm.cm.htmBudget = 8;
        const double dual =
            perf.kpi(w, htm, KpiKind::kThroughput, false);
        // Instrumented hardware path: GCC's _ITM_ read/write barriers
        // on the hw path degenerate to the plain access plus dispatch
        // (~6 cycles per access); add that on top of the hw attempt.
        constexpr double kBarrierDispatchCycles = 6.0;
        Workload instr = w;
        instr.features.txLocalWorkCycles +=
            (w.features.readsPerTx + w.features.writesPerTx) *
            kBarrierDispatchCycles;
        const double slow =
            perf.kpi(instr, htm, KpiKind::kThroughput, false);
        std::printf("%-12s %16.0f %16.0f %9.1f\n", w.name.c_str(),
                    dual, slow, (dual / slow - 1.0) * 100.0);
    }
    std::printf("\nShape target: instrumented-path HTM loses ~10-25%% "
                "on access-dense workloads (paper Table 4: 14-24%%), "
                "justifying the dual-path design.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
