/**
 * Fig. 7 — ProteusTM vs pure ML workload-characterization approaches
 * (Wang et al.-style): CART decision tree, linear SVM (SMO stand-in)
 * and MLP, trained on 17 workload features with the best
 * configuration as the target class; ProteusTM uses its CF + SMBO
 * pipeline. Evaluated at 30% and 70% training fractions over 300+
 * Machine-A workloads (throughput KPI), 3 repetitions.
 *
 * Shape targets: ProteusTM's DFO distribution dominates (90p ~3-3.5%
 * vs 21-41% for ML); ML improves markedly with more training data
 * while ProteusTM barely moves (it explores online instead); median
 * explorations ~4, 90p ~6-7.
 */

#include "bench_util.hpp"
#include "ml/classifier.hpp"
#include "rectm/engine.hpp"

namespace proteus::bench {
namespace {

using ml::ClassifierFamily;
using rectm::RecTmEngine;
using rectm::SmboOptions;

struct Cdf
{
    std::vector<double> dfos;

    void
    print(const char *name) const
    {
        std::vector<double> sorted = dfos;
        std::sort(sorted.begin(), sorted.end());
        std::printf("%-12s mean %7.4f  median %7.4f  p90 %7.4f  "
                    "p99 %7.4f\n",
                    name, mean(sorted), percentileSorted(sorted, 50),
                    percentileSorted(sorted, 90),
                    percentileSorted(sorted, 99));
    }
};

void
runFraction(double train_fraction)
{
    const auto space = ConfigSpace::machineA();
    const PerfModel perf(MachineModel::machineA());

    Cdf proteus_cdf, cart_cdf, svm_cdf, mlp_cdf;
    std::vector<double> explorations;

    for (int rep = 0; rep < 3; ++rep) {
        const Split split =
            corpusSplit(21, 0x700 + static_cast<std::uint64_t>(rep),
                        train_fraction);
        const auto train = goodnessMatrix(perf, split.train, space,
                                          KpiKind::kThroughput);

        // --- ProteusTM ------------------------------------------------
        RecTmEngine::Options eopts;
        eopts.tuner.trials = 12;
        eopts.seed = 0xabc0 + static_cast<std::uint64_t>(rep);
        const RecTmEngine engine(train, eopts);

        // --- ML baselines ----------------------------------------------
        ml::Dataset dataset;
        dataset.numClasses = static_cast<int>(space.size());
        for (const auto &w : split.train) {
            const auto f = w.features.toVector();
            dataset.features.emplace_back(f.begin(), f.end());
            const auto truth = trueGoodnessRow(perf, w, space,
                                               KpiKind::kThroughput);
            dataset.labels.push_back(
                static_cast<int>(argBest(truth)));
        }
        ml::Standardizer standardizer;
        standardizer.fit(dataset);
        const ml::Dataset scaled = standardizer.apply(dataset);

        auto trainFamily = [&](ClassifierFamily family) {
            auto tuned = ml::tuneClassifier(
                family, scaled, 10,
                0xd00d + static_cast<std::uint64_t>(rep));
            auto model = tuned.model->clone();
            model->fit(scaled);
            return model;
        };
        const auto cart = trainFamily(ClassifierFamily::kCart);
        const auto svm = trainFamily(ClassifierFamily::kSvm);
        const auto mlp = trainFamily(ClassifierFamily::kMlp);

        const std::size_t n_test =
            std::min<std::size_t>(100, split.test.size());
        for (std::size_t i = 0; i < n_test; ++i) {
            const Workload &w = split.test[i];
            const auto truth = trueGoodnessRow(perf, w, space,
                                               KpiKind::kThroughput);

            // ProteusTM episode.
            auto sampler = [&](std::size_t c) {
                return toGoodness(perf.kpi(w, space.at(c),
                                           KpiKind::kThroughput, true),
                                  KpiKind::kThroughput);
            };
            SmboOptions opts;
            opts.epsilon = 0.01;
            opts.seed = 0xe0 + i;
            const auto result = engine.optimize(sampler, opts);
            proteus_cdf.dfos.push_back(
                dfoOf(truth, result.bestConfig));
            explorations.push_back(result.explorations);

            // ML: one-shot classification from features.
            const auto fv = w.features.toVector();
            const std::vector<double> x = standardizer.apply(
                std::vector<double>(fv.begin(), fv.end()));
            cart_cdf.dfos.push_back(dfoOf(
                truth, static_cast<std::size_t>(cart->predict(x))));
            svm_cdf.dfos.push_back(dfoOf(
                truth, static_cast<std::size_t>(svm->predict(x))));
            mlp_cdf.dfos.push_back(dfoOf(
                truth, static_cast<std::size_t>(mlp->predict(x))));
        }
    }

    std::printf("Training fraction: %.0f%%\n", train_fraction * 100);
    proteus_cdf.print("ProteusTM");
    cart_cdf.print("CART");
    svm_cdf.print("SVM");
    mlp_cdf.print("MLP");
    std::printf("ProteusTM explorations: median %.0f  p90 %.0f\n\n",
                median(explorations), percentile(explorations, 90));
}

int
run()
{
    printTitle("Fig 7: ProteusTM vs ML classifiers - DFO distribution "
               "(throughput, Machine A)");
    runFraction(0.30);
    runFraction(0.70);
    std::printf("Shape target: ProteusTM ~10x lower p90 DFO than the "
                "ML baselines; ML gains from 70%% training data, "
                "ProteusTM barely changes.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
