/**
 * @file
 * Shared scaffolding for the per-figure/table experiment harnesses:
 * corpus generation + train/test splits, utility-matrix construction
 * from the performance model, DFO/MAPE metrics, and small table
 * printers. Every bench prints the same rows/series as the paper's
 * artifact it regenerates (see DESIGN.md §4 and EXPERIMENTS.md).
 */

#ifndef PROTEUS_BENCH_BENCH_UTIL_HPP
#define PROTEUS_BENCH_BENCH_UTIL_HPP

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "rectm/proteus_runtime.hpp"
#include "rectm/utility_matrix.hpp"
#include "simarch/perf_model.hpp"

namespace proteus::bench {

using polytm::ConfigSpace;
using polytm::KpiKind;
using rectm::toGoodness;
using rectm::UtilityMatrix;
using simarch::MachineModel;
using simarch::PerfModel;
using simarch::Workload;
using simarch::WorkloadCorpus;

struct Split
{
    std::vector<Workload> train;
    std::vector<Workload> test;
};

/** Corpus of 15 presets x `variants`, split train/test by fraction. */
inline Split
corpusSplit(int variants, std::uint64_t seed, double train_fraction)
{
    const auto corpus = WorkloadCorpus::generate(variants, seed);
    Rng rng(seed ^ 0x51317);
    const auto perm = rng.permutation(corpus.size());
    const auto train_n = static_cast<std::size_t>(
        train_fraction * static_cast<double>(corpus.size()));
    Split split;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        if (i < train_n)
            split.train.push_back(corpus[perm[i]]);
        else
            split.test.push_back(corpus[perm[i]]);
    }
    return split;
}

/** Dense goodness matrix for a workload set (noisy measurements). */
inline UtilityMatrix
goodnessMatrix(const PerfModel &perf, const std::vector<Workload> &ws,
               const ConfigSpace &space, KpiKind kpi)
{
    UtilityMatrix m(ws.size(), space.size());
    for (std::size_t r = 0; r < ws.size(); ++r) {
        const auto row = perf.kpiRow(ws[r], space, kpi, true);
        for (std::size_t c = 0; c < space.size(); ++c)
            m.set(r, c, toGoodness(row[c], kpi));
    }
    return m;
}

/** Noise-free goodness row (ground truth for DFO/MAPE). */
inline std::vector<double>
trueGoodnessRow(const PerfModel &perf, const Workload &w,
                const ConfigSpace &space, KpiKind kpi)
{
    const auto row = perf.kpiRow(w, space, kpi, false);
    std::vector<double> out(row.size());
    for (std::size_t c = 0; c < row.size(); ++c)
        out[c] = toGoodness(row[c], kpi);
    return out;
}

/** Distance-from-optimum of config `chosen` in a goodness row. */
inline double
dfoOf(const std::vector<double> &true_goodness, std::size_t chosen)
{
    const double best = *std::max_element(true_goodness.begin(),
                                          true_goodness.end());
    return (best - true_goodness[chosen]) / best;
}

/** Index of the best entry of a goodness row. */
inline std::size_t
argBest(const std::vector<double> &goodness)
{
    return static_cast<std::size_t>(
        std::max_element(goodness.begin(), goodness.end()) -
        goodness.begin());
}

/** MAPE of predictions vs truth over all configurations. */
inline double
mapeOf(const std::vector<double> &pred, const std::vector<double> &truth)
{
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t c = 0; c < truth.size(); ++c) {
        if (truth[c] <= 0)
            continue;
        sum += std::abs(truth[c] - pred[c]) / truth[c];
        ++n;
    }
    return n ? sum / n : 0.0;
}

/**
 * Simulated tunable system for the closed-loop experiments (Fig. 8/9):
 * the live KPI comes from the performance model for the current phase
 * workload, optionally scaled by an environment factor (external
 * resource contention), plus small measurement jitter.
 */
class SimSystem : public rectm::TunableSystem
{
  public:
    SimSystem(const PerfModel &perf, const ConfigSpace &space,
              std::vector<Workload> phases, KpiKind kpi,
              std::uint64_t seed = 0x5e55)
        : perf_(perf), space_(space), phases_(std::move(phases)),
          kpi_(kpi), rng_(seed)
    {}

    void setPhase(std::size_t p) { phase_ = p % phases_.size(); }
    std::size_t phase() const { return phase_; }
    void setEnvFactor(double f) { envFactor_ = f; }

    /**
     * Swap the machine model (Fig. 9: external interference steals
     * cores/bandwidth, which *moves* the optimal configuration).
     * nullptr restores the constructor-supplied model.
     */
    void setPerfOverride(const PerfModel *perf) { override_ = perf; }

    std::size_t numConfigs() const override { return space_.size(); }
    void applyConfig(std::size_t c) override { config_ = c; }

    double
    measureKpi() override
    {
        const double jitter = 1.0 + 0.01 * rng_.nextGaussian();
        return trueKpi(phase_, config_) * jitter;
    }

    /** Noise-free KPI of an arbitrary (phase, config) pair under the
     *  current environment. */
    double
    trueKpi(std::size_t phase, std::size_t config) const
    {
        const PerfModel &perf = override_ ? *override_ : perf_;
        const double v =
            perf.kpi(phases_[phase], space_.at(config), kpi_, false);
        // Residual environment contention scales throughput down
        // (and time / EDP up).
        return polytm::kpiIsMaximize(kpi_) ? v * envFactor_
                                           : v / envFactor_;
    }

  private:
    const PerfModel &perf_;
    const PerfModel *override_ = nullptr;
    const ConfigSpace &space_;
    std::vector<Workload> phases_;
    KpiKind kpi_;
    Rng rng_;
    std::size_t phase_ = 0;
    std::size_t config_ = 0;
    double envFactor_ = 1.0;
};

inline void
printRule(int width = 72)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

inline void
printTitle(const std::string &title)
{
    printRule();
    std::printf("%s\n", title.c_str());
    printRule();
}

} // namespace proteus::bench

#endif // PROTEUS_BENCH_BENCH_UTIL_HPP
