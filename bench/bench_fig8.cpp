/**
 * Fig. 8 + Table 6 — Online optimization of dynamic workloads.
 *
 * Four applications (red-black tree, STMBench7, TPC-C on Machine A;
 * memcached on Machine B), each cycling through 3 workload phases
 * chosen to have contrasting optima. The closed loop (Monitor ->
 * Controller -> PolyTM reconfiguration) runs totally oblivious of the
 * target application: its training matrix excludes all of the
 * application's workloads.
 *
 * For each application we print the Fig. 8-style per-period KPI
 * summary (ProteusTM vs the three static per-phase-optimal configs,
 * the Best Fixed on Average and Sequential) and the Table 6 rows:
 * MDFO of each static optimum in the other phases and ProteusTM's
 * MDFO + exploration count per phase.
 */

#include <set>

#include "bench_util.hpp"
#include "rectm/engine.hpp"

namespace proteus::bench {
namespace {

using rectm::fromGoodness;
using rectm::RecTmEngine;
using rectm::RuntimeOptions;

constexpr int kPeriodsPerPhase = 40;

/** Jitter a preset into a named phase variant. */
Workload
variant(const Workload &base, int which)
{
    Workload w = base;
    w.name = base.name + "-w" + std::to_string(which + 1);
    auto &f = w.features;
    switch (which) {
      case 0:
        break; // pristine
      case 1: // write-heavy, highly contended phase (small hot set)
        f.updateTxFraction = std::min(1.0, f.updateTxFraction * 3.0 + 0.3);
        f.conflictDensity *= 8.0;
        f.hotspotSkew = std::min(0.85, f.hotspotSkew + 0.45);
        f.workingSetLines /= 8.0;
        break;
      default: // much bigger transactions, larger working set
        f.readsPerTx *= 12.0;
        f.writesPerTx *= 6.0;
        f.txLocalWorkCycles *= 4.0;
        f.workingSetLines *= 4.0;
        f.txSizeCv += 0.8;
        break;
    }
    return w;
}

void
runApp(const char *title, const Workload &base,
       const MachineModel &machine, const ConfigSpace &space)
{
    const PerfModel perf(machine);
    const KpiKind kpi = KpiKind::kThroughput;

    // Training set: the corpus minus every variant of this app
    // ("ProteusTM is totally oblivious of the target application").
    const auto corpus = WorkloadCorpus::generate(21, 0x808);
    std::vector<Workload> train;
    for (const auto &w : corpus) {
        if (w.name.rfind(base.name + "#", 0) != 0)
            train.push_back(w);
    }
    const auto train_matrix = goodnessMatrix(perf, train, space, kpi);
    RecTmEngine::Options eopts;
    eopts.tuner.trials = 12;
    const RecTmEngine engine(train_matrix, eopts);

    const std::vector<Workload> phases = {
        variant(base, 0), variant(base, 1), variant(base, 2)};
    SimSystem system(perf, space, phases, kpi);

    RuntimeOptions ropts;
    ropts.kpi = kpi;
    ropts.smbo.epsilon = 0.01;
    rectm::ProteusRuntime runtime(engine, system, ropts);

    std::vector<int> phase_first_period;
    const auto records = runtime.run(
        3 * kPeriodsPerPhase, [&](int period) {
            system.setPhase(
                static_cast<std::size_t>(period / kPeriodsPerPhase));
        });

    // Ground truth per phase.
    std::vector<std::vector<double>> truth(3);
    std::vector<std::size_t> opt(3);
    for (std::size_t p = 0; p < 3; ++p) {
        truth[p] = trueGoodnessRow(perf, phases[p], space, kpi);
        opt[p] = argBest(truth[p]);
    }
    // Best Fixed on Average across the three phases.
    std::size_t bfa = 0;
    double bfa_score = -1;
    for (std::size_t c = 0; c < space.size(); ++c) {
        double score = 0;
        for (std::size_t p = 0; p < 3; ++p)
            score += truth[p][c] / truth[p][opt[p]];
        if (score > bfa_score) {
            bfa_score = score;
            bfa = c;
        }
    }

    printTitle(std::string("Fig 8: ") + title);
    std::printf("phase optima: w1=%s  w2=%s  w3=%s  BFA=%s\n",
                space.at(opt[0]).label().c_str(),
                space.at(opt[1]).label().c_str(),
                space.at(opt[2]).label().c_str(),
                space.at(bfa).label().c_str());

    // Fig. 8 series: average ProteusTM KPI per phase (steady periods)
    // vs each static config, normalized to the phase optimum.
    std::printf("%-26s %10s %10s %10s\n", "series", "phase-w1",
                "phase-w2", "phase-w3");
    auto phase_avg = [&](auto value_for_period) {
        std::array<double, 3> acc{};
        std::array<int, 3> n{};
        for (const auto &rec : records) {
            const int p = rec.period / kPeriodsPerPhase;
            const double v = value_for_period(rec);
            if (v >= 0) {
                acc[static_cast<std::size_t>(p)] += v;
                ++n[static_cast<std::size_t>(p)];
            }
        }
        std::array<double, 3> out{};
        for (std::size_t p = 0; p < 3; ++p)
            out[p] = n[p] ? acc[p] / n[p] : 0.0;
        return out;
    };

    const auto proteus_series = phase_avg([&](const auto &rec) {
        const int p = rec.period / kPeriodsPerPhase;
        return rec.kpi / fromGoodness(
                             truth[static_cast<std::size_t>(p)]
                                  [opt[static_cast<std::size_t>(p)]],
                             kpi);
    });
    std::printf("%-26s %10.3f %10.3f %10.3f\n",
                "ProteusTM (vs optimum)", proteus_series[0],
                proteus_series[1], proteus_series[2]);

    for (std::size_t s = 0; s < 3; ++s) {
        std::printf("fixed %-20s", space.at(opt[s]).label().c_str());
        for (std::size_t p = 0; p < 3; ++p)
            std::printf(" %10.3f", truth[p][opt[s]] / truth[p][opt[p]]);
        std::printf("\n");
    }
    std::printf("fixed %-20s", (space.at(bfa).label() + " (BFA)").c_str());
    for (std::size_t p = 0; p < 3; ++p)
        std::printf(" %10.3f", truth[p][bfa] / truth[p][opt[p]]);
    std::printf("\n");
    {
        // Sequential: uninstrumented single-thread (global lock, 1t).
        polytm::TmConfig seq{tm::BackendKind::kGlobalLock, 1, {}};
        const int idx = space.indexOf(seq);
        std::printf("%-26s", "Sequential");
        for (std::size_t p = 0; p < 3; ++p) {
            const double g = idx >= 0
                ? truth[p][static_cast<std::size_t>(idx)]
                : toGoodness(perf.kpi(phases[p], seq, kpi, false), kpi);
            std::printf(" %10.3f", g / truth[p][opt[p]]);
        }
        std::printf("\n");
    }

    // Table 6 rows: MDFO (%) of each static optimum in each phase +
    // ProteusTM's per-phase MDFO and exploration counts.
    std::printf("\nTable 6 rows (MDFO %%):\n");
    std::printf("%-24s %8s %8s %8s\n", "config", "w1", "w2", "w3");
    for (std::size_t s = 0; s < 3; ++s) {
        std::printf("Opt%zu %-19s", s + 1,
                    space.at(opt[s]).label().c_str());
        for (std::size_t p = 0; p < 3; ++p)
            std::printf(" %8.0f", dfoOf(truth[p], opt[s]) * 100.0);
        std::printf("\n");
    }
    // ProteusTM per phase: DFO of the config it settled on.
    std::printf("%-24s", "ProteusTM (expl)");
    for (std::size_t p = 0; p < 3; ++p) {
        std::size_t settled = 0;
        int explorations = 0;
        bool have = false;
        for (const auto &rec : records) {
            const auto rp = static_cast<std::size_t>(
                rec.period / kPeriodsPerPhase);
            if (rp != p)
                continue;
            if (rec.exploring)
                ++explorations;
            else {
                settled = rec.config;
                have = true;
            }
        }
        if (!have && !records.empty())
            settled = records.back().config;
        std::printf("  %4.1f(%d)", dfoOf(truth[p], settled) * 100.0,
                    explorations);
    }
    std::printf("\nepisodes: %d\n\n", runtime.episodes());
    (void)phase_first_period;
}

int
run()
{
    runApp("Red-Black Tree (Machine A)",
           simarch::presets::redBlackTree(), MachineModel::machineA(),
           ConfigSpace::machineA());
    runApp("STMBench7 (Machine A)", simarch::presets::stmbench7(),
           MachineModel::machineA(), ConfigSpace::machineA());
    runApp("TPC-C (Machine A)", simarch::presets::tpcc(),
           MachineModel::machineA(), ConfigSpace::machineA());
    runApp("Memcached (Machine B)", simarch::presets::memcached(),
           MachineModel::machineB(), ConfigSpace::machineB());
    std::printf("Shape target: ProteusTM within a few %% of each "
                "phase optimum; static optima lose heavily out of "
                "their phase; explorations <= 7 per episode.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
