/**
 * Fig. 1 — Performance heterogeneity in TM applications.
 *
 * (a) Throughput/Joule of NOrec:4t, Tiny:8t, HTM:8t on Machine A for
 *     genome, red-black tree, labyrinth — normalized to the best
 *     configuration of the full 130-config space per workload.
 * (b) Throughput of NOrec:48t, Tiny:8t, Swiss:32t on Machine B for
 *     vacation, red-black tree, intruder — normalized likewise over
 *     the 32-config space.
 *
 * Shape targets: per workload the winner differs; wrong static picks
 * lose big (labyrinth kills HTM; the paper reports order-of-magnitude
 * cliffs across its full space).
 */

#include "bench_util.hpp"

namespace proteus::bench {
namespace {

using tm::BackendKind;

polytm::TmConfig
cfg(BackendKind backend, int threads, int budget = 5)
{
    polytm::TmConfig c{backend, threads, {}};
    c.cm.htmBudget = budget;
    return c;
}

void
panel(const char *title, const PerfModel &perf, const ConfigSpace &space,
      const std::vector<Workload> &workloads,
      const std::vector<std::pair<std::string, polytm::TmConfig>> &bars,
      bool per_joule)
{
    printTitle(title);
    std::printf("%-12s", "workload");
    for (const auto &[label, c] : bars)
        std::printf(" %14s", label.c_str());
    std::printf(" %14s\n", "best-config");

    for (const auto &w : workloads) {
        // KPI: throughput or throughput/joule over the whole space.
        std::vector<double> values(space.size());
        for (std::size_t i = 0; i < space.size(); ++i) {
            const double thr = perf.kpi(w, space.at(i),
                                        KpiKind::kThroughput, false);
            values[i] = per_joule
                ? thr / perf.machine().power.watts(space.at(i).threads)
                : thr;
        }
        const std::size_t best = argBest(values);
        std::printf("%-12s", w.name.c_str());
        for (const auto &[label, c] : bars) {
            const int idx = space.indexOf(c);
            const double norm =
                idx >= 0 ? values[static_cast<std::size_t>(idx)] /
                               values[best]
                         : 0.0;
            std::printf(" %14.3f", norm);
        }
        std::printf(" %14s\n", space.at(best).label().c_str());
    }
    std::printf("\n");
}

int
run()
{
    const auto spaceA = ConfigSpace::machineA();
    const auto spaceB = ConfigSpace::machineB();
    const PerfModel pmA(MachineModel::machineA());
    const PerfModel pmB(MachineModel::machineB());

    panel("Fig 1a: Throughput/Joule on Machine A (normalized wrt best)",
          pmA, spaceA,
          {simarch::presets::genome(), simarch::presets::redBlackTree(),
           simarch::presets::labyrinth()},
          {{"NOrec:4t", cfg(BackendKind::kNorec, 4)},
           {"Tiny:8t", cfg(BackendKind::kTinyStm, 8)},
           {"HTM:8t", cfg(BackendKind::kSimHtm, 8, 4)}},
          /*per_joule=*/true);

    panel("Fig 1b: Throughput on Machine B (normalized wrt best)", pmB,
          spaceB,
          {simarch::presets::vacation(),
           simarch::presets::redBlackTree(),
           simarch::presets::intruder()},
          {{"NOrec:48t", cfg(BackendKind::kNorec, 48)},
           {"Tiny:8t", cfg(BackendKind::kTinyStm, 8)},
           {"Swiss:32t", cfg(BackendKind::kSwissTm, 32)}},
          /*per_joule=*/false);

    // Headline heterogeneity check: max spread across each space.
    printTitle("Spread best/worst across the full space (per workload)");
    for (const auto &w : simarch::presets::all()) {
        const auto rowA =
            pmA.kpiRow(w, spaceA, KpiKind::kThroughput, false);
        const auto rowB =
            pmB.kpiRow(w, spaceB, KpiKind::kThroughput, false);
        const double spreadA =
            *std::max_element(rowA.begin(), rowA.end()) /
            *std::min_element(rowA.begin(), rowA.end());
        const double spreadB =
            *std::max_element(rowB.begin(), rowB.end()) /
            *std::min_element(rowB.begin(), rowB.end());
        std::printf("%-12s machineA %6.1fx   machineB %6.1fx\n",
                    w.name.c_str(), spreadA, spreadB);
    }
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
