/**
 * Micro-benchmarks (google-benchmark) for the hot primitives whose
 * costs the paper argues about: the ThreadGate fetch-and-add fast
 * path (§4.2: ~17 cycles vs ~32 for CAS), write-set insert/lookup,
 * orec acquisition, and single-threaded begin/commit cost per
 * backend.
 */

#include <benchmark/benchmark.h>

#include "polytm/polytm.hpp"
#include "polytm/thread_gate.hpp"
#include "tm/norec.hpp"
#include "tm/sim_htm.hpp"
#include "tm/tinystm.hpp"
#include "tm/tl2.hpp"

namespace proteus {
namespace {

void
BM_ThreadGateEnterExit(benchmark::State &state)
{
    polytm::ThreadGate gate;
    for (auto _ : state) {
        gate.enter(0);
        gate.exit(0);
    }
}
BENCHMARK(BM_ThreadGateEnterExit);

void
BM_FetchAddOwnLine(benchmark::State &state)
{
    Padded<std::atomic<std::uint64_t>> word{};
    for (auto _ : state)
        benchmark::DoNotOptimize(word->fetch_add(1));
}
BENCHMARK(BM_FetchAddOwnLine);

void
BM_CompareExchangeOwnLine(benchmark::State &state)
{
    Padded<std::atomic<std::uint64_t>> word{};
    std::uint64_t expected = 0;
    for (auto _ : state) {
        word->compare_exchange_strong(expected, expected + 1);
        expected = word->load();
    }
}
BENCHMARK(BM_CompareExchangeOwnLine);

void
BM_WriteSetPutFindClear(benchmark::State &state)
{
    tm::WriteSet ws;
    std::vector<std::uint64_t> slots(64);
    for (auto _ : state) {
        for (auto &s : slots)
            ws.put(&s, 1);
        for (auto &s : slots)
            benchmark::DoNotOptimize(ws.find(&s));
        ws.clear();
    }
}
BENCHMARK(BM_WriteSetPutFindClear);

void
BM_OrecTryLockRelease(benchmark::State &state)
{
    tm::OrecTable orecs(10);
    std::uint64_t word = 0;
    tm::Orec &orec = orecs.forAddr(&word);
    for (auto _ : state) {
        const tm::OrecWord seen = orec.load();
        benchmark::DoNotOptimize(orec.tryLock(seen, 1));
        orec.releaseRestore(seen);
    }
}
BENCHMARK(BM_OrecTryLockRelease);

template <typename Backend>
void
BM_BackendReadWriteCommit(benchmark::State &state)
{
    Backend backend;
    tm::TxDesc desc(0, 77);
    backend.registerThread(desc);
    std::vector<std::uint64_t> slots(1 << 12, 1);
    std::uint64_t i = 0;
    for (auto _ : state) {
        desc.htmBudgetLeft = 5;
        backend.txBegin(desc);
        std::uint64_t acc = 0;
        for (int r = 0; r < 10; ++r)
            acc += backend.txRead(desc, &slots[(i + r * 37) & 0xfff]);
        backend.txWrite(desc, &slots[i & 0xfff], acc);
        backend.txCommit(desc);
        ++i;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK_TEMPLATE(BM_BackendReadWriteCommit, tm::Tl2Tm);
BENCHMARK_TEMPLATE(BM_BackendReadWriteCommit, tm::TinyStmTm);
BENCHMARK_TEMPLATE(BM_BackendReadWriteCommit, tm::NorecTm);
BENCHMARK_TEMPLATE(BM_BackendReadWriteCommit, tm::SimHtm);

void
BM_PolyTmRunOverhead(benchmark::State &state)
{
    polytm::PolyTm poly;
    auto token = poly.registerThread();
    std::vector<std::uint64_t> slots(1 << 12, 1);
    std::uint64_t i = 0;
    for (auto _ : state) {
        poly.run(token, [&](polytm::Tx &tx) {
            std::uint64_t acc = 0;
            for (int r = 0; r < 10; ++r)
                acc += tx.readWord(&slots[(i + r * 37) & 0xfff]);
            tx.writeWord(&slots[i & 0xfff], acc);
        });
        ++i;
    }
    poly.deregisterThread(token);
}
BENCHMARK(BM_PolyTmRunOverhead);

} // namespace
} // namespace proteus

BENCHMARK_MAIN();
