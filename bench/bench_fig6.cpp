/**
 * Fig. 6 — Early-stop predicates: ProteusTM's Cautious rule vs the
 * Naive rule (blindly trusting the model), swept over the threshold
 * epsilon in {0.01, 0.05, 0.10, 0.15}.
 *
 * (a) MDFO for EDP on Machine A; (b) MDFO for exec time on Machine B.
 * For each cell we report mean / median / 90th-percentile DFO and the
 * average number of explorations spent.
 *
 * Shape targets: Cautious <= Naive at every epsilon; MDFO grows with
 * epsilon; at eps = 0.01 the 90th percentile stays low (paper: ~5%
 * for exec time, ~12% for EDP).
 */

#include "bench_util.hpp"
#include "rectm/engine.hpp"

namespace proteus::bench {
namespace {

using rectm::RecTmEngine;
using rectm::SmboOptions;
using rectm::StopRule;

void
panel(const char *title, const MachineModel &machine,
      const ConfigSpace &space, KpiKind kpi)
{
    const PerfModel perf(machine);
    const Split split = corpusSplit(21, 0x516, 0.30);
    const auto train = goodnessMatrix(perf, split.train, space, kpi);
    RecTmEngine::Options eopts;
    eopts.tuner.trials = 12;
    const RecTmEngine engine(train, eopts);

    printTitle(title);
    std::printf("%-10s %-10s %8s %8s %8s %8s\n", "epsilon", "rule",
                "mean", "median", "p90", "expl");

    const std::size_t n_test = std::min<std::size_t>(
        120, split.test.size());
    for (const double eps : {0.01, 0.05, 0.10, 0.15}) {
        for (const auto rule : {StopRule::kNaive, StopRule::kCautious}) {
            std::vector<double> dfos, expl;
            for (std::size_t i = 0; i < n_test; ++i) {
                const Workload &w = split.test[i];
                auto sampler = [&](std::size_t c) {
                    return toGoodness(
                        perf.kpi(w, space.at(c), kpi, true), kpi);
                };
                SmboOptions opts;
                opts.stop = rule;
                opts.epsilon = eps;
                opts.seed = 0x600 + i;
                const auto result = engine.optimize(sampler, opts);
                const auto truth =
                    trueGoodnessRow(perf, w, space, kpi);
                dfos.push_back(dfoOf(truth, result.bestConfig));
                expl.push_back(result.explorations);
            }
            std::printf("%-10.2f %-10s %8.4f %8.4f %8.4f %8.1f\n", eps,
                        std::string(stopRuleName(rule)).c_str(),
                        mean(dfos), median(dfos),
                        percentile(dfos, 90.0), mean(expl));
            std::fflush(stdout);
        }
    }
    std::printf("\n");
}

int
run()
{
    panel("Fig 6a: MDFO for EDP, Machine A", MachineModel::machineA(),
          ConfigSpace::machineA(), KpiKind::kEdp);
    panel("Fig 6b: MDFO for exec time, Machine B",
          MachineModel::machineB(), ConfigSpace::machineB(),
          KpiKind::kExecTime);
    std::printf("Shape target: Cautious beats Naive at every epsilon "
                "(the eager rule starves the model of samples); MDFO "
                "rises with epsilon.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
