/**
 * bench_kvstore — ProteusKV throughput characterization.
 *
 * Series 1 (scaling): closed-loop read-heavy (YCSB-B) throughput as
 * the shard count grows 1 -> 2 -> 4 at a fixed worker count. Shards
 * are independent PolyTM universes, so routing spreads both data and
 * TM metadata contention; on a multicore host the expected shape is
 * linear-ish scaling (on a single hardware thread the series degrades
 * to constant — the harness prints the host's core count for
 * context).
 *
 * Series 2 (mixes): per-mix throughput at 4 shards across the YCSB-
 * style presets, plus the batched-put path vs single puts.
 *
 * Series 3 (commit-mode A/B): the mixed scenario — 90% single-key ops
 * / 10% cross-shard writing multiOps — run once with the legacy
 * exclusive-latch commit and once with the 2PC-over-TM commit. The
 * headline number is single-key throughput: under latches every
 * cross-shard writer freezes its shards; under 2PC single-key traffic
 * flows through the commit. Results (throughput + latency
 * percentiles) are also written to BENCH_kvstore.json so CI can track
 * the trajectory.
 *
 * Series 4 (cache preset, --cache): the kCache mix — Zipf-skewed gets,
 * ~128 B blob values, 50 ms TTL churn — on a small store that starts
 * at 2^10 slots per shard and must grow online under the load. The
 * headline numbers are throughput, the get hit rate (TTL eviction
 * makes it settle well below 1) and how many online resizes the run
 * triggered; all of it lands in BENCH_kvstore.json too.
 *
 * Series 5 (read path, --read-heavy): (a) a 95/5 Zipf mix over ~128 B
 * byte values — the snapshot-epoch read path's home turf (pinned blob
 * copies, magazine-backed putBytes) — reporting throughput and
 * latency percentiles plus the arena contention counters; (b) a
 * write-free phase of read-only multiOps and scans on the same store,
 * asserting the validation-free guarantee: the snapshot counters must
 * show ZERO retries and ZERO escalations, or the bench exits nonzero
 * (the CI gate for the read path). Both land in BENCH_kvstore.json
 * next to the pre-snapshot-epoch reference baseline so the
 * trajectory is tracked in-repo. The series also (c) A/Bs the same
 * mix with KvStoreOptions::telemetry on vs off (three interleaved
 * pairs) and records the flight-recorder overhead as
 * obs_overhead_pct — above 3% the bench exits nonzero — and (d)
 * dumps the instrumented store's full telemetry() in Prometheus text
 * format to BENCH_kvstore.prom for the CI artifact.
 *
 * Series 6 (durability A/B, --durability): the mixed 90/10 scenario
 * under 2PC run three times — durability off, buffered WAL (ack after
 * the page-cache write), and group-commit fsync — on a scratch WAL
 * directory. Reports the single-key throughput cost of each mode
 * (wal_overhead_*_pct), the WAL volume the measured window produced,
 * and the fsync latency percentiles straight from the store's
 * wal_fsync_nanos histogram; all of it lands in BENCH_kvstore.json.
 *
 * Series 7 (thread scaling, --threads): the read-heavy and mixed
 * presets swept across 1/2/4/8 worker threads at 4 shards, reporting
 * throughput + p99 per point. This is the series that makes multicore
 * claims honest: every other number here is taken at a fixed worker
 * count, and on a 1-hardware-thread host the sweep degrades to flat —
 * the JSON always records hardware_threads next to the series so CI
 * (on a multicore runner) and a laptop reading the artifact can tell
 * the difference. The 4-vs-1-thread read-heavy comparison is the CI
 * scaling gate (checked by the workflow from the JSON, not by the
 * bench itself, so single-core dev runs don't fail spuriously).
 *
 * Series 8 (probe A/B, --probe-ab): a dense-table (~60% load) get/
 * put/del churn run as three interleaved SIMD-vs-scalar-probe pairs
 * (the runtime switch in common/simd.hpp flips Shard::probe to its
 * legacy slot-at-a-time walk). The median pair's ratio lands in
 * BENCH_kvstore.json as simd_probe_speedup (>= 1.0 expected; the win
 * comes from miss/tombstone-heavy chains, which probe whole groups
 * per compare — near-empty tables resolve on the home-slot fast path
 * and the two legs tie by construction).
 *
 * Usage: bench_kvstore [seconds-per-point] [--mixed-only] [--cache]
 *                      [--read-heavy] [--durability] [--threads]
 *                      [--probe-ab]
 *   seconds-per-point   default 0.4
 *   --mixed-only        skip series 1/2 (CI smoke mode)
 *   --cache             add the cache-preset series
 *   --read-heavy        add the read-path series (+ CI gate)
 *   --durability        add the WAL durability A/B series
 *   --threads           add the 1/2/4/8-thread scaling series
 *   --probe-ab          add the SIMD-vs-scalar probe A/B
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/timing.hpp"
#include "kvstore/traffic.hpp"

using namespace proteus;
using kvstore::CommitMode;
using kvstore::Durability;
using kvstore::KvOp;
using kvstore::KvStore;
using kvstore::KvStoreOptions;
using kvstore::ValueArena;
using kvstore::MixKind;
using kvstore::PhaseLatency;
using kvstore::TrafficDriver;
using kvstore::TrafficMix;
using kvstore::TrafficOptions;

namespace {

constexpr int kThreads = 4;

double
runPoint(int shards, const TrafficMix &mix, int threads, double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = shards;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = threads;
    traffic_options.phases = {mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    // Short warmup so table population / first faults don't count.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    const std::uint64_t before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t after = driver.opsCompleted();
    driver.stop();

    return static_cast<double>(after - before) / seconds;
}

struct MixedResult
{
    double singleOpsPerSec = 0;
    double multiOpsPerSec = 0;
    PhaseLatency latency;
};

MixedResult
runMixed(CommitMode mode, double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    store_options.commitMode = mode;
    KvStore store(store_options);

    // Phase 0 is warmup, phase 1 (same mix) is the measurement window:
    // the per-phase latency histogram then covers (nearly) the same
    // interval as the throughput deltas — the run switches back to
    // phase 0 before stop() so teardown-skewed ops don't pollute the
    // phase-1 percentiles BENCH_kvstore.json pairs with the windowed
    // ops/s (only ops in flight at the phase edges leak across).
    const TrafficMix mix = TrafficMix::preset(MixKind::kMixedCross);
    TrafficOptions traffic_options;
    traffic_options.threads = kThreads;
    traffic_options.phases = {mix, mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    driver.setPhase(1);
    const std::uint64_t single_before = driver.singleKeyOpsCompleted();
    const std::uint64_t multi_before = driver.multiOpsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t single_after = driver.singleKeyOpsCompleted();
    const std::uint64_t multi_after = driver.multiOpsCompleted();
    driver.setPhase(0);
    driver.stop();

    MixedResult result;
    result.singleOpsPerSec =
        static_cast<double>(single_after - single_before) / seconds;
    result.multiOpsPerSec =
        static_cast<double>(multi_after - multi_before) / seconds;
    result.latency = driver.latency(1);
    return result;
}

struct DurabilityResult
{
    MixedResult off;
    MixedResult buffered;
    MixedResult fsync;
    /** Single-key throughput lost vs durability-off (positive = WAL
     *  costs throughput). */
    double bufferedOverheadPct = 0;
    double fsyncOverheadPct = 0;
    /** WAL volume + fsync latency of the group-commit leg. */
    std::uint64_t walAppends = 0;
    std::uint64_t walBytes = 0;
    std::uint64_t walFsyncs = 0;
    std::uint64_t fsyncP50 = 0;
    std::uint64_t fsyncP95 = 0;
    std::uint64_t fsyncP99 = 0;
    std::uint64_t fsyncMax = 0;
};

/** One leg of the durability A/B: the mixed 90/10 scenario under 2PC
 *  on a scratch WAL directory. When `result` is non-null the leg's
 *  WAL counters and fsync percentiles are captured into it. */
MixedResult
runDurabilityLeg(Durability mode, double seconds,
                 DurabilityResult *result)
{
    namespace fs = std::filesystem;
    const char *wal_dir = "bench_wal_scratch";
    if (mode != Durability::kOff)
        fs::remove_all(wal_dir);

    KvStoreOptions store_options;
    store_options.numShards = 4;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    store_options.commitMode = CommitMode::kTwoPhase;
    store_options.durability = mode;
    if (mode != Durability::kOff)
        store_options.walDir = wal_dir;

    MixedResult leg;
    {
        KvStore store(store_options);
        const TrafficMix mix = TrafficMix::preset(MixKind::kMixedCross);
        TrafficOptions traffic_options;
        traffic_options.threads = kThreads;
        traffic_options.phases = {mix, mix};
        TrafficDriver driver(store, traffic_options);
        driver.preload(mix.keySpace / 2);

        driver.start();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds * 0.25));
        driver.setPhase(1);
        const std::uint64_t single_before =
            driver.singleKeyOpsCompleted();
        const std::uint64_t multi_before = driver.multiOpsCompleted();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        const std::uint64_t single_after =
            driver.singleKeyOpsCompleted();
        const std::uint64_t multi_after = driver.multiOpsCompleted();
        driver.setPhase(0);
        driver.stop();

        leg.singleOpsPerSec =
            static_cast<double>(single_after - single_before) / seconds;
        leg.multiOpsPerSec =
            static_cast<double>(multi_after - multi_before) / seconds;
        leg.latency = driver.latency(1);

        if (result) {
            const obs::TelemetrySnapshot snap = store.telemetry();
            result->walAppends = snap.value("wal_appends");
            result->walBytes = snap.value("wal_bytes");
            result->walFsyncs = snap.value("wal_fsyncs");
            if (const obs::MetricSample *fsync_hist =
                    snap.find("wal_fsync_nanos")) {
                result->fsyncP50 =
                    fsync_hist->hist.percentileNanos(0.50);
                result->fsyncP95 =
                    fsync_hist->hist.percentileNanos(0.95);
                result->fsyncP99 =
                    fsync_hist->hist.percentileNanos(0.99);
                result->fsyncMax = fsync_hist->hist.maxNanos();
            }
        }
    }
    if (mode != Durability::kOff)
        fs::remove_all(wal_dir);
    return leg;
}

DurabilityResult
runDurability(double seconds)
{
    DurabilityResult result;
    result.off = runDurabilityLeg(Durability::kOff, seconds, nullptr);
    result.buffered =
        runDurabilityLeg(Durability::kBuffered, seconds, nullptr);
    result.fsync =
        runDurabilityLeg(Durability::kFsyncGroup, seconds, &result);
    if (result.off.singleOpsPerSec > 0) {
        result.bufferedOverheadPct =
            (result.off.singleOpsPerSec -
             result.buffered.singleOpsPerSec) /
            result.off.singleOpsPerSec * 100.0;
        result.fsyncOverheadPct =
            (result.off.singleOpsPerSec -
             result.fsync.singleOpsPerSec) /
            result.off.singleOpsPerSec * 100.0;
    }
    return result;
}

struct CacheResult
{
    double opsPerSec = 0;
    double hitRate = 0;
    std::uint64_t grows = 0;
    PhaseLatency latency;
};

CacheResult
runCache(double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    // Deliberately small initial tables: the preset's working set
    // forces several online grows during the measured window.
    store_options.log2SlotsPerShard = 10;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    const TrafficMix mix = TrafficMix::preset(MixKind::kCache);
    TrafficOptions traffic_options;
    traffic_options.threads = kThreads;
    traffic_options.phases = {mix, mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 4);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    driver.setPhase(1);
    const std::uint64_t ops_before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t ops_after = driver.opsCompleted();
    driver.setPhase(0);
    driver.stop();

    CacheResult result;
    result.opsPerSec =
        static_cast<double>(ops_after - ops_before) / seconds;
    result.hitRate = driver.hitRate();
    for (int s = 0; s < store.numShards(); ++s)
        result.grows +=
            store.shard(static_cast<std::size_t>(s)).growCount();
    result.latency = driver.latency(1);
    return result;
}

struct ReadHeavyResult
{
    double opsPerSec = 0;
    PhaseLatency latency;
    /** Write-free snapshot phase (read-only multiOps + scans). */
    double snapOpsPerSec = 0;
    KvStore::SnapshotReadStats snap;
    /** Arena contention counters, summed over shards. */
    std::uint64_t arenaCarveContended = 0;
    std::uint64_t arenaCasRetries = 0;
    std::uint64_t arenaMagazineHits = 0;
    std::uint64_t arenaAllocs = 0;
    /** The CI gate: zero retries/escalations on the write-free phase. */
    bool readOnlyClean = false;
    /** Telemetry-on vs -off throughput delta: the median pair is
     *  recorded, the best (smallest) pair is the > 3% gate. */
    double obsOverheadPct = 0;
    double obsOverheadMinPct = 0;
    /** Full Prometheus-text dump of the instrumented run's store. */
    std::string prometheus;
};

/** One point of the thread-scaling series. */
struct ScalePoint
{
    int threads = 0;
    double opsPerSec = 0;
    std::uint64_t p99 = 0;
};

struct ScalingResult
{
    std::vector<ScalePoint> readHeavy;
    std::vector<ScalePoint> mixed;
};

/** One scaling point: `mix` at 4 shards under `threads` workers,
 *  warmup phase 0 / measured phase 1 (same windowing as runMixed). */
ScalePoint
runScalePoint(const TrafficMix &mix, int threads, double seconds,
              unsigned log2_slots = 16)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    store_options.log2SlotsPerShard = log2_slots;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = threads;
    traffic_options.phases = {mix, mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    driver.setPhase(1);
    const std::uint64_t before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t after = driver.opsCompleted();
    driver.setPhase(0);
    driver.stop();

    ScalePoint point;
    point.threads = threads;
    point.opsPerSec = static_cast<double>(after - before) / seconds;
    point.p99 = driver.latency(1).p99;
    return point;
}

ScalingResult
runScaling(double seconds)
{
    ScalingResult result;
    for (const int threads : {1, 2, 4, 8}) {
        result.readHeavy.push_back(runScalePoint(
            TrafficMix::preset(MixKind::kReadHeavy), threads, seconds));
        result.mixed.push_back(runScalePoint(
            TrafficMix::preset(MixKind::kMixedCross), threads,
            seconds));
    }
    return result;
}

struct ProbeAbResult
{
    double simdOpsPerSec = 0;   //!< median pair's SIMD leg
    double scalarOpsPerSec = 0; //!< median pair's scalar leg
    double speedup = 0;         //!< median of simd/scalar per pair
};

/**
 * SIMD-vs-scalar probe A/B: three interleaved pairs with the
 * group-filtered probe on vs the legacy slot walk (the runtime switch
 * in common/simd.hpp — same binary, same stores, background drift
 * hits both legs). Median pair reported, same reasoning as
 * measureObsOverheadPct. Windows floored at 0.3 s.
 *
 * The workload is a probe-stressing variant of read-heavy: a dense
 * table (~60% of slots, just under the grow trigger) with delete
 * churn, so lookups actually walk tombstoned probe chains — the case
 * the group filter exists for. The scale series' near-empty tables
 * resolve almost every probe on the home slot, where the two legs
 * are identical by construction.
 */
ProbeAbResult
runProbeAb(double seconds)
{
    const double ab_seconds = seconds < 0.3 ? 0.3 : seconds;
    constexpr unsigned kLog2Slots = 12;
    TrafficMix mix = TrafficMix::preset(MixKind::kReadHeavy);
    mix.getRatio = 0.80;
    mix.putRatio = 0.10;
    mix.delRatio = 0.10;
    mix.zipfTheta = 0;
    mix.keySpace = (std::uint64_t{4} << kLog2Slots) * 3 / 5;
    struct Pair
    {
        double simd;
        double scalar;
        double ratio;
    };
    Pair pairs[3];
    for (auto &pair : pairs) {
        simd::setForceScalarProbe(false);
        pair.simd =
            runScalePoint(mix, kThreads, ab_seconds, kLog2Slots)
                .opsPerSec;
        simd::setForceScalarProbe(true);
        pair.scalar =
            runScalePoint(mix, kThreads, ab_seconds, kLog2Slots)
                .opsPerSec;
        pair.ratio = pair.scalar > 0 ? pair.simd / pair.scalar : 0.0;
    }
    simd::setForceScalarProbe(false);
    std::sort(pairs, pairs + 3, [](const Pair &a, const Pair &b) {
        return a.ratio < b.ratio;
    });
    return {pairs[1].simd, pairs[1].scalar, pairs[1].ratio};
}

/** The series-5 mix: 95/5 Zipf over ~128 B byte values. */
TrafficMix
readHeavyMix()
{
    TrafficMix mix;
    mix.getRatio = 0.95;
    mix.putRatio = 0.05;
    mix.zipfTheta = 0.8;
    mix.keySpace = std::uint64_t{1} << 14;
    mix.valueBytes = 128;
    return mix;
}

/** One telemetry A/B point: the read-heavy mix on a fresh store with
 *  the flight recorder forced on or off. */
double
runObsPoint(bool telemetry, double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    store_options.telemetry = telemetry;
    KvStore store(store_options);

    const TrafficMix mix = readHeavyMix();
    TrafficOptions traffic_options;
    traffic_options.threads = kThreads;
    traffic_options.phases = {mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    const std::uint64_t before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t after = driver.opsCompleted();
    driver.stop();
    return static_cast<double>(after - before) / seconds;
}

struct ObsOverhead
{
    double medianPct = 0; //!< recorded in the JSON
    double minPct = 0;    //!< the CI gate
};

/**
 * Instrumentation overhead: three interleaved on/off pairs (so drift
 * in the host's background load hits both sides). The median pair is
 * the recorded estimate; the gate uses the smallest pair, because a
 * real hot-path cost is present in every pair while a scheduler
 * hiccup hitting one or two pairs must not fail CI. Short CLI windows
 * are floored at 0.3 s — below that, single-core run-to-run variance
 * swamps the signal. Positive = telemetry costs throughput.
 */
ObsOverhead
measureObsOverheadPct(double seconds)
{
    const double ab_seconds = seconds < 0.3 ? 0.3 : seconds;
    double pct[3];
    for (int i = 0; i < 3; ++i) {
        const double on = runObsPoint(true, ab_seconds);
        const double off = runObsPoint(false, ab_seconds);
        pct[i] = off > 0 ? (off - on) / off * 100.0 : 0.0;
    }
    std::sort(pct, pct + 3);
    return {pct[1], pct[0]};
}

/**
 * Pre-change reference for the read-path trajectory: medians of an
 * interleaved old-vs-new A/B recorded on this repo's 1-core dev
 * container immediately before the snapshot-epoch read path landed
 * (4 workers; 95/5 Zipf over ~128 B values, and the write-free
 * 8-key-multiOp + scan phase). Kept in the JSON so the current
 * numbers always ship next to the baseline they must beat — in the
 * same session the snapshot phase measured ~8% above this baseline,
 * and snapshot reads racing a cross-shard write storm ~25% above.
 */
constexpr double kReadHeavyBaselineOpsPerSec = 2.22e6;
constexpr double kReadHeavyBaselineSnapOpsPerSec = 3.20e5;

ReadHeavyResult
runReadHeavy(double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    // 95/5 Zipf over ~128 B byte values: gets take the pinned blob
    // copy-out, puts exercise the magazine-backed arena.
    const TrafficMix mix = readHeavyMix();

    TrafficOptions traffic_options;
    traffic_options.threads = kThreads;
    traffic_options.phases = {mix, mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    driver.setPhase(1);
    const std::uint64_t before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t after = driver.opsCompleted();
    driver.setPhase(0);
    driver.stop();

    ReadHeavyResult result;
    result.opsPerSec =
        static_cast<double>(after - before) / seconds;
    result.latency = driver.latency(1);

    // Write-free phase: read-only multiOps + scans only. With no
    // writer anywhere, every snapshot round must settle first try —
    // the delta of the snapshot counters across this phase is the
    // validation-free gate.
    const KvStore::SnapshotReadStats pre = store.snapshotReadStats();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> snap_ops{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < kThreads; ++t) {
        readers.emplace_back([&, t] {
            auto session = store.openSession();
            Rng rng(0x5eed + static_cast<unsigned>(t));
            std::vector<KvOp> snap;
            std::uint64_t local = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                if ((local++ & 7) == 7) {
                    store.scan(session, rng.nextBounded(mix.keySpace),
                               16);
                } else {
                    snap.clear();
                    for (int i = 0; i < 8; ++i) {
                        snap.push_back({KvOp::Kind::kGet,
                                        rng.nextBounded(mix.keySpace),
                                        0, false});
                    }
                    store.multiOp(session, snap);
                }
                snap_ops.fetch_add(1, std::memory_order_relaxed);
            }
            store.closeSession(session);
        });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true);
    for (auto &reader : readers)
        reader.join();
    result.snapOpsPerSec =
        static_cast<double>(snap_ops.load()) / seconds;

    const KvStore::SnapshotReadStats post = store.snapshotReadStats();
    result.snap.rounds = post.rounds - pre.rounds;
    result.snap.retries = post.retries - pre.retries;
    result.snap.pendingWaits = post.pendingWaits - pre.pendingWaits;
    result.snap.escalations = post.escalations - pre.escalations;
    result.readOnlyClean = result.snap.rounds > 0 &&
                           result.snap.retries == 0 &&
                           result.snap.pendingWaits == 0 &&
                           result.snap.escalations == 0;

    for (int s = 0; s < store.numShards(); ++s) {
        const ValueArena::Stats arena =
            store.shard(static_cast<std::size_t>(s)).arena().stats();
        result.arenaCarveContended += arena.carveContended;
        result.arenaCasRetries += arena.casRetries;
        result.arenaMagazineHits += arena.magazineHits;
        result.arenaAllocs += arena.allocs;
    }
    // One consistent telemetry walk over everything the run recorded —
    // the Prometheus artifact CI uploads next to the JSON.
    result.prometheus = store.telemetry().toPrometheus();
    return result;
}

void
printMixed(const char *name, const MixedResult &r)
{
    std::printf("  %-10s %14.0f %12.0f %8llu %8llu %8llu %9llu\n",
                name, r.singleOpsPerSec, r.multiOpsPerSec,
                static_cast<unsigned long long>(r.latency.p50),
                static_cast<unsigned long long>(r.latency.p95),
                static_cast<unsigned long long>(r.latency.p99),
                static_cast<unsigned long long>(r.latency.max));
}

void
writeJsonObject(std::FILE *f, const char *name, const MixedResult &r)
{
    std::fprintf(
        f,
        "  \"%s\": {\n"
        "    \"single_key_ops_per_sec\": %.0f,\n"
        "    \"multi_ops_per_sec\": %.0f,\n"
        "    \"ops_measured\": %llu,\n"
        "    \"p50_ns\": %llu,\n"
        "    \"p95_ns\": %llu,\n"
        "    \"p99_ns\": %llu,\n"
        "    \"max_ns\": %llu\n"
        "  }",
        name, r.singleOpsPerSec, r.multiOpsPerSec,
        static_cast<unsigned long long>(r.latency.count),
        static_cast<unsigned long long>(r.latency.p50),
        static_cast<unsigned long long>(r.latency.p95),
        static_cast<unsigned long long>(r.latency.p99),
        static_cast<unsigned long long>(r.latency.max));
}

/** Machine-readable trajectory point for CI artifacts. Returns false
 *  (and the bench exits nonzero) when the file cannot be written —
 *  a silently missing artifact defeats the trajectory tracking. */
void
writeScaleSeries(std::FILE *f, const char *name,
                 const std::vector<ScalePoint> &series)
{
    std::fprintf(f, "    \"%s\": [", name);
    for (std::size_t i = 0; i < series.size(); ++i) {
        std::fprintf(
            f,
            "%s\n      {\"threads\": %d, \"ops_per_sec\": %.0f, "
            "\"p99_ns\": %llu}",
            i == 0 ? "" : ",", series[i].threads, series[i].opsPerSec,
            static_cast<unsigned long long>(series[i].p99));
    }
    std::fprintf(f, "\n    ]");
}

bool
writeJson(const char *path, double seconds, const MixedResult &latch,
          const MixedResult &two_phase, const CacheResult *cache,
          const ReadHeavyResult *read_heavy,
          const DurabilityResult *durability,
          const ScalingResult *scaling, const ProbeAbResult *probe_ab)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_kvstore: cannot write %s\n", path);
        return false;
    }
    const double speedup =
        latch.singleOpsPerSec > 0
            ? two_phase.singleOpsPerSec / latch.singleOpsPerSec
            : 0.0;
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"kvstore_mixed_90_10\",\n"
                 "  \"threads\": %d,\n"
                 "  \"shards\": 4,\n"
                 "  \"seconds_per_point\": %.3f,\n"
                 "  \"hardware_threads\": %u,\n",
                 kThreads, seconds,
                 std::thread::hardware_concurrency());
    writeJsonObject(f, "latch", latch);
    std::fprintf(f, ",\n");
    writeJsonObject(f, "two_phase", two_phase);
    std::fprintf(f, ",\n  \"single_key_speedup_2pc_over_latch\": %.3f",
                 speedup);
    if (cache) {
        std::fprintf(
            f,
            ",\n"
            "  \"cache\": {\n"
            "    \"ops_per_sec\": %.0f,\n"
            "    \"hit_rate\": %.4f,\n"
            "    \"online_grows\": %llu,\n"
            "    \"p50_ns\": %llu,\n"
            "    \"p95_ns\": %llu,\n"
            "    \"p99_ns\": %llu,\n"
            "    \"max_ns\": %llu\n"
            "  }",
            cache->opsPerSec, cache->hitRate,
            static_cast<unsigned long long>(cache->grows),
            static_cast<unsigned long long>(cache->latency.p50),
            static_cast<unsigned long long>(cache->latency.p95),
            static_cast<unsigned long long>(cache->latency.p99),
            static_cast<unsigned long long>(cache->latency.max));
    }
    if (read_heavy) {
        std::fprintf(
            f,
            ",\n"
            "  \"read_heavy\": {\n"
            "    \"ops_per_sec\": %.0f,\n"
            "    \"p50_ns\": %llu,\n"
            "    \"p95_ns\": %llu,\n"
            "    \"p99_ns\": %llu,\n"
            "    \"max_ns\": %llu,\n"
            "    \"read_only_snapshot_ops_per_sec\": %.0f,\n"
            "    \"snapshot_rounds\": %llu,\n"
            "    \"snapshot_retries\": %llu,\n"
            "    \"snapshot_pending_waits\": %llu,\n"
            "    \"snapshot_escalations\": %llu,\n"
            "    \"arena_carve_contended\": %llu,\n"
            "    \"arena_cas_retries\": %llu,\n"
            "    \"arena_magazine_hit_rate\": %.4f,\n"
            "    \"obs_overhead_pct\": %.2f,\n"
            "    \"baseline_pre_epoch_ops_per_sec\": %.0f,\n"
            "    \"baseline_pre_epoch_snapshot_ops_per_sec\": %.0f\n"
            "  }",
            read_heavy->opsPerSec,
            static_cast<unsigned long long>(read_heavy->latency.p50),
            static_cast<unsigned long long>(read_heavy->latency.p95),
            static_cast<unsigned long long>(read_heavy->latency.p99),
            static_cast<unsigned long long>(read_heavy->latency.max),
            read_heavy->snapOpsPerSec,
            static_cast<unsigned long long>(read_heavy->snap.rounds),
            static_cast<unsigned long long>(read_heavy->snap.retries),
            static_cast<unsigned long long>(
                read_heavy->snap.pendingWaits),
            static_cast<unsigned long long>(
                read_heavy->snap.escalations),
            static_cast<unsigned long long>(
                read_heavy->arenaCarveContended),
            static_cast<unsigned long long>(
                read_heavy->arenaCasRetries),
            read_heavy->arenaAllocs > 0
                ? static_cast<double>(read_heavy->arenaMagazineHits) /
                      static_cast<double>(read_heavy->arenaAllocs)
                : 0.0,
            read_heavy->obsOverheadPct,
            kReadHeavyBaselineOpsPerSec,
            kReadHeavyBaselineSnapOpsPerSec);
    }
    if (durability) {
        std::fprintf(
            f,
            ",\n"
            "  \"durability\": {\n"
            "    \"off_single_ops_per_sec\": %.0f,\n"
            "    \"buffered_single_ops_per_sec\": %.0f,\n"
            "    \"fsync_single_ops_per_sec\": %.0f,\n"
            "    \"off_multi_ops_per_sec\": %.0f,\n"
            "    \"buffered_multi_ops_per_sec\": %.0f,\n"
            "    \"fsync_multi_ops_per_sec\": %.0f,\n"
            "    \"wal_overhead_buffered_pct\": %.2f,\n"
            "    \"wal_overhead_fsync_pct\": %.2f,\n"
            "    \"wal_appends\": %llu,\n"
            "    \"wal_bytes\": %llu,\n"
            "    \"wal_fsyncs\": %llu,\n"
            "    \"fsync_p50_ns\": %llu,\n"
            "    \"fsync_p95_ns\": %llu,\n"
            "    \"fsync_p99_ns\": %llu,\n"
            "    \"fsync_max_ns\": %llu\n"
            "  }",
            durability->off.singleOpsPerSec,
            durability->buffered.singleOpsPerSec,
            durability->fsync.singleOpsPerSec,
            durability->off.multiOpsPerSec,
            durability->buffered.multiOpsPerSec,
            durability->fsync.multiOpsPerSec,
            durability->bufferedOverheadPct,
            durability->fsyncOverheadPct,
            static_cast<unsigned long long>(durability->walAppends),
            static_cast<unsigned long long>(durability->walBytes),
            static_cast<unsigned long long>(durability->walFsyncs),
            static_cast<unsigned long long>(durability->fsyncP50),
            static_cast<unsigned long long>(durability->fsyncP95),
            static_cast<unsigned long long>(durability->fsyncP99),
            static_cast<unsigned long long>(durability->fsyncMax));
    }
    if (scaling) {
        std::fprintf(f, ",\n  \"scaling\": {\n");
        writeScaleSeries(f, "read_heavy", scaling->readHeavy);
        std::fprintf(f, ",\n");
        writeScaleSeries(f, "mixed", scaling->mixed);
        std::fprintf(f, "\n  }");
    }
    if (probe_ab) {
        std::fprintf(
            f,
            ",\n"
            "  \"probe_ab\": {\n"
            "    \"simd_ops_per_sec\": %.0f,\n"
            "    \"scalar_ops_per_sec\": %.0f\n"
            "  },\n"
            "  \"simd_probe_speedup\": %.3f",
            probe_ab->simdOpsPerSec, probe_ab->scalarOpsPerSec,
            probe_ab->speedup);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = 0.4;
    bool mixed_only = false;
    bool with_cache = false;
    bool with_read_heavy = false;
    bool with_durability = false;
    bool with_threads = false;
    bool with_probe_ab = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--mixed-only") == 0) {
            mixed_only = true;
        } else if (std::strcmp(argv[i], "--cache") == 0) {
            with_cache = true;
        } else if (std::strcmp(argv[i], "--read-heavy") == 0) {
            with_read_heavy = true;
        } else if (std::strcmp(argv[i], "--durability") == 0) {
            with_durability = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            with_threads = true;
        } else if (std::strcmp(argv[i], "--probe-ab") == 0) {
            with_probe_ab = true;
        } else {
            const double parsed = std::atof(argv[i]);
            if (parsed > 0) {
                seconds = parsed;
            } else {
                std::fprintf(stderr,
                             "bench_kvstore: invalid argument '%s' "
                             "(usage: bench_kvstore [seconds-per-point]"
                             " [--mixed-only] [--cache]"
                             " [--read-heavy] [--durability]"
                             " [--threads] [--probe-ab])\n",
                             argv[i]);
                return 2;
            }
        }
    }
    const int threads = kThreads;

    std::printf("ProteusKV bench — %d workers, %.2fs/point, host has "
                "%u hardware threads\n\n",
                threads, seconds,
                std::thread::hardware_concurrency());

    if (!mixed_only) {
        std::printf("shard scaling, read-heavy (YCSB-B):\n");
        std::printf("  %-8s %14s %10s\n", "shards", "ops/s", "speedup");
        double base = 0;
        for (const int shards : {1, 2, 4}) {
            const double ops = runPoint(
                shards, TrafficMix::preset(MixKind::kReadHeavy),
                threads, seconds);
            if (shards == 1)
                base = ops;
            std::printf("  %-8d %14.0f %9.2fx\n", shards, ops,
                        base > 0 ? ops / base : 0.0);
        }

        std::printf("\nworkload mixes at 4 shards:\n");
        std::printf("  %-12s %14s\n", "mix", "ops/s");
        const struct
        {
            const char *name;
            MixKind kind;
        } mixes[] = {
            {"read-heavy", MixKind::kReadHeavy},
            {"balanced", MixKind::kBalanced},
            {"scan-heavy", MixKind::kScanHeavy},
            {"write-heavy", MixKind::kWriteHeavy},
            {"hotspot", MixKind::kHotspot},
        };
        for (const auto &mix : mixes) {
            const double ops = runPoint(
                4, TrafficMix::preset(mix.kind), threads, seconds);
            std::printf("  %-12s %14.0f\n", mix.name, ops);
        }

        // Batched vs single-op puts: one session, one thread, same keys.
        std::printf("\nbatching (single thread, 1 shard, %d puts):\n",
                    1 << 16);
        KvStoreOptions store_options;
        store_options.numShards = 1;
        store_options.log2SlotsPerShard = 18;
        store_options.initial = {tm::BackendKind::kTl2, 1, {}};
        {
            KvStore store(store_options);
            auto session = store.openSession();
            Stopwatch sw;
            for (std::uint64_t key = 0; key < (1u << 16); ++key)
                store.put(session, key, key);
            const double single = (1 << 16) / sw.elapsedSeconds();
            store.closeSession(session);
            std::printf("  %-12s %14.0f ops/s\n", "single", single);
        }
        {
            KvStore store(store_options);
            auto session = store.openSession();
            KvStore::Batch batch;
            Stopwatch sw;
            for (std::uint64_t key = 0; key < (1u << 16); ++key) {
                batch.put(key, key);
                if (batch.size() == 64) {
                    store.applyBatch(session, batch);
                    batch.clear();
                }
            }
            const double batched = (1 << 16) / sw.elapsedSeconds();
            store.closeSession(session);
            std::printf("  %-12s %14.0f ops/s\n", "batch(64)", batched);
        }
    }

    std::printf("\ncommit-mode A/B, mixed 90%% single-key / 10%% "
                "cross-shard multiOp (4 shards):\n");
    std::printf("  %-10s %14s %12s %8s %8s %8s %9s\n", "mode",
                "single ops/s", "multi ops/s", "p50ns", "p95ns",
                "p99ns", "maxns");
    const MixedResult latch = runMixed(CommitMode::kLatch, seconds);
    printMixed("latch", latch);
    const MixedResult two_phase =
        runMixed(CommitMode::kTwoPhase, seconds);
    printMixed("2pc", two_phase);
    if (latch.singleOpsPerSec > 0) {
        std::printf("  single-key speedup 2pc/latch: %.2fx\n",
                    two_phase.singleOpsPerSec / latch.singleOpsPerSec);
    }

    ReadHeavyResult read_heavy;
    if (with_read_heavy) {
        std::printf("\nread path (95/5 Zipf over ~128 B values, then a "
                    "write-free snapshot phase):\n");
        read_heavy = runReadHeavy(seconds);
        std::printf("  %14s %8s %8s %8s %16s\n", "ops/s", "p50ns",
                    "p95ns", "p99ns", "snap ops/s");
        std::printf(
            "  %14.0f %8llu %8llu %8llu %16.0f\n", read_heavy.opsPerSec,
            static_cast<unsigned long long>(read_heavy.latency.p50),
            static_cast<unsigned long long>(read_heavy.latency.p95),
            static_cast<unsigned long long>(read_heavy.latency.p99),
            read_heavy.snapOpsPerSec);
        std::printf("  snapshot rounds %llu retries %llu waits %llu "
                    "escalations %llu | arena carve-contended %llu "
                    "cas-retries %llu\n",
                    static_cast<unsigned long long>(
                        read_heavy.snap.rounds),
                    static_cast<unsigned long long>(
                        read_heavy.snap.retries),
                    static_cast<unsigned long long>(
                        read_heavy.snap.pendingWaits),
                    static_cast<unsigned long long>(
                        read_heavy.snap.escalations),
                    static_cast<unsigned long long>(
                        read_heavy.arenaCarveContended),
                    static_cast<unsigned long long>(
                        read_heavy.arenaCasRetries));
        if (!read_heavy.readOnlyClean) {
            std::fprintf(stderr,
                         "bench_kvstore: the write-free snapshot phase "
                         "reported validation retries or escalations — "
                         "the read path is NOT validation-free\n");
        }

        const ObsOverhead overhead = measureObsOverheadPct(seconds);
        read_heavy.obsOverheadPct = overhead.medianPct;
        read_heavy.obsOverheadMinPct = overhead.minPct;
        std::printf("  telemetry overhead (on vs off, 3 pairs): "
                    "median %.2f%%, best %.2f%%\n",
                    overhead.medianPct, overhead.minPct);

        std::FILE *prom = std::fopen("BENCH_kvstore.prom", "w");
        if (prom) {
            std::fputs(read_heavy.prometheus.c_str(), prom);
            std::fclose(prom);
            std::printf("wrote BENCH_kvstore.prom\n");
        } else {
            std::fprintf(
                stderr,
                "bench_kvstore: cannot write BENCH_kvstore.prom\n");
        }
    }

    DurabilityResult durability;
    if (with_durability) {
        std::printf("\ndurability A/B, mixed 90/10 under 2PC "
                    "(4 shards, scratch WAL dir):\n");
        durability = runDurability(seconds);
        std::printf("  %-10s %14s %12s %8s %8s %8s %9s\n", "mode",
                    "single ops/s", "multi ops/s", "p50ns", "p95ns",
                    "p99ns", "maxns");
        printMixed("off", durability.off);
        printMixed("buffered", durability.buffered);
        printMixed("fsync", durability.fsync);
        std::printf("  wal overhead: buffered %.2f%%, fsync %.2f%% "
                    "(single-key ops/s vs off)\n",
                    durability.bufferedOverheadPct,
                    durability.fsyncOverheadPct);
        std::printf("  fsync leg: %llu appends, %llu bytes, %llu "
                    "fsyncs; fsync p50 %llu ns p95 %llu ns p99 %llu "
                    "ns max %llu ns\n",
                    static_cast<unsigned long long>(
                        durability.walAppends),
                    static_cast<unsigned long long>(
                        durability.walBytes),
                    static_cast<unsigned long long>(
                        durability.walFsyncs),
                    static_cast<unsigned long long>(
                        durability.fsyncP50),
                    static_cast<unsigned long long>(
                        durability.fsyncP95),
                    static_cast<unsigned long long>(
                        durability.fsyncP99),
                    static_cast<unsigned long long>(
                        durability.fsyncMax));
    }

    CacheResult cache;
    if (with_cache) {
        std::printf("\ncache preset (wide values + 50ms TTL, shards "
                    "start small and grow online):\n");
        cache = runCache(seconds);
        std::printf("  %14s %9s %7s %8s %8s\n", "ops/s", "hit-rate",
                    "grows", "p50ns", "p99ns");
        std::printf("  %14.0f %9.3f %7llu %8llu %8llu\n",
                    cache.opsPerSec, cache.hitRate,
                    static_cast<unsigned long long>(cache.grows),
                    static_cast<unsigned long long>(cache.latency.p50),
                    static_cast<unsigned long long>(cache.latency.p99));
    }

    ScalingResult scaling;
    if (with_threads) {
        std::printf("\nthread scaling at 4 shards (read-heavy and "
                    "mixed 90/10):\n");
        scaling = runScaling(seconds);
        std::printf("  %-10s %8s %14s %8s\n", "preset", "threads",
                    "ops/s", "p99ns");
        const auto print_series =
            [](const char *name, const std::vector<ScalePoint> &series) {
                for (const ScalePoint &point : series) {
                    std::printf(
                        "  %-10s %8d %14.0f %8llu\n", name,
                        point.threads, point.opsPerSec,
                        static_cast<unsigned long long>(point.p99));
                }
            };
        print_series("read-heavy", scaling.readHeavy);
        print_series("mixed", scaling.mixed);
    }

    ProbeAbResult probe_ab;
    if (with_probe_ab) {
        std::printf("\nprobe A/B, dense-table churn (SIMD group "
                    "filter vs legacy slot walk, 3 pairs):\n");
        probe_ab = runProbeAb(seconds);
        std::printf("  simd %14.0f ops/s | scalar %14.0f ops/s | "
                    "speedup %.3fx (median pair)\n",
                    probe_ab.simdOpsPerSec, probe_ab.scalarOpsPerSec,
                    probe_ab.speedup);
    }

    if (!writeJson("BENCH_kvstore.json", seconds, latch, two_phase,
                   with_cache ? &cache : nullptr,
                   with_read_heavy ? &read_heavy : nullptr,
                   with_durability ? &durability : nullptr,
                   with_threads ? &scaling : nullptr,
                   with_probe_ab ? &probe_ab : nullptr))
        return 1;
    // The read-path gate: a write-free workload that still pays
    // validation retries or latch escalations is a regression CI must
    // catch, not a number to eyeball.
    if (with_read_heavy && !read_heavy.readOnlyClean)
        return 2;
    // The observability gate: the flight recorder must stay out of
    // the read path's way. Gating on the best of the interleaved
    // pairs absorbs host noise; a real >3% cost means a trace hook
    // grew hot and shows up in every pair.
    if (with_read_heavy && read_heavy.obsOverheadMinPct > 3.0) {
        std::fprintf(stderr,
                     "bench_kvstore: telemetry overhead %.2f%% exceeds "
                     "the 3%% budget in every A/B pair\n",
                     read_heavy.obsOverheadMinPct);
        return 3;
    }
    return 0;
}
