/**
 * bench_kvstore — ProteusKV throughput characterization.
 *
 * Series 1 (scaling): closed-loop read-heavy (YCSB-B) throughput as
 * the shard count grows 1 -> 2 -> 4 at a fixed worker count. Shards
 * are independent PolyTM universes, so routing spreads both data and
 * TM metadata contention; on a multicore host the expected shape is
 * linear-ish scaling (on a single hardware thread the series degrades
 * to constant — the harness prints the host's core count for
 * context).
 *
 * Series 2 (mixes): per-mix throughput at 4 shards across the YCSB-
 * style presets, plus the batched-put path vs single puts.
 *
 * Usage: bench_kvstore [seconds-per-point]   (default 0.4)
 */

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/timing.hpp"
#include "kvstore/traffic.hpp"

using namespace proteus;
using kvstore::KvStore;
using kvstore::KvStoreOptions;
using kvstore::MixKind;
using kvstore::TrafficDriver;
using kvstore::TrafficMix;
using kvstore::TrafficOptions;

namespace {

double
runPoint(int shards, const TrafficMix &mix, int threads, double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = shards;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = threads;
    traffic_options.phases = {mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    // Short warmup so table population / first faults don't count.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    const std::uint64_t before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t after = driver.opsCompleted();
    driver.stop();

    return static_cast<double>(after - before) / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = argc > 1 ? std::atof(argv[1]) : 0.4;
    if (seconds <= 0) {
        std::fprintf(stderr,
                     "bench_kvstore: invalid seconds-per-point '%s', "
                     "using 0.4\n",
                     argv[1]);
        seconds = 0.4;
    }
    const int threads = 4;

    std::printf("ProteusKV bench — %d workers, %.2fs/point, host has "
                "%u hardware threads\n\n",
                threads, seconds,
                std::thread::hardware_concurrency());

    std::printf("shard scaling, read-heavy (YCSB-B):\n");
    std::printf("  %-8s %14s %10s\n", "shards", "ops/s", "speedup");
    double base = 0;
    for (const int shards : {1, 2, 4}) {
        const double ops = runPoint(
            shards, TrafficMix::preset(MixKind::kReadHeavy), threads,
            seconds);
        if (shards == 1)
            base = ops;
        std::printf("  %-8d %14.0f %9.2fx\n", shards, ops,
                    base > 0 ? ops / base : 0.0);
    }

    std::printf("\nworkload mixes at 4 shards:\n");
    std::printf("  %-12s %14s\n", "mix", "ops/s");
    const struct
    {
        const char *name;
        MixKind kind;
    } mixes[] = {
        {"read-heavy", MixKind::kReadHeavy},
        {"balanced", MixKind::kBalanced},
        {"scan-heavy", MixKind::kScanHeavy},
        {"write-heavy", MixKind::kWriteHeavy},
        {"hotspot", MixKind::kHotspot},
    };
    for (const auto &mix : mixes) {
        const double ops = runPoint(4, TrafficMix::preset(mix.kind),
                                    threads, seconds);
        std::printf("  %-12s %14.0f\n", mix.name, ops);
    }

    // Batched vs single-op puts: one session, one thread, same keys.
    std::printf("\nbatching (single thread, 1 shard, %d puts):\n",
                1 << 16);
    KvStoreOptions store_options;
    store_options.numShards = 1;
    store_options.log2SlotsPerShard = 18;
    store_options.initial = {tm::BackendKind::kTl2, 1, {}};
    {
        KvStore store(store_options);
        auto session = store.openSession();
        Stopwatch sw;
        for (std::uint64_t key = 0; key < (1u << 16); ++key)
            store.put(session, key, key);
        const double single = (1 << 16) / sw.elapsedSeconds();
        store.closeSession(session);
        std::printf("  %-12s %14.0f ops/s\n", "single", single);
    }
    {
        KvStore store(store_options);
        auto session = store.openSession();
        KvStore::Batch batch;
        Stopwatch sw;
        for (std::uint64_t key = 0; key < (1u << 16); ++key) {
            batch.put(key, key);
            if (batch.size() == 64) {
                store.applyBatch(session, batch);
                batch.clear();
            }
        }
        const double batched = (1 << 16) / sw.elapsedSeconds();
        store.closeSession(session);
        std::printf("  %-12s %14.0f ops/s\n", "batch(64)", batched);
    }
    return 0;
}
