/**
 * bench_kvstore — ProteusKV throughput characterization.
 *
 * Series 1 (scaling): closed-loop read-heavy (YCSB-B) throughput as
 * the shard count grows 1 -> 2 -> 4 at a fixed worker count. Shards
 * are independent PolyTM universes, so routing spreads both data and
 * TM metadata contention; on a multicore host the expected shape is
 * linear-ish scaling (on a single hardware thread the series degrades
 * to constant — the harness prints the host's core count for
 * context).
 *
 * Series 2 (mixes): per-mix throughput at 4 shards across the YCSB-
 * style presets, plus the batched-put path vs single puts.
 *
 * Series 3 (commit-mode A/B): the mixed scenario — 90% single-key ops
 * / 10% cross-shard writing multiOps — run once with the legacy
 * exclusive-latch commit and once with the 2PC-over-TM commit. The
 * headline number is single-key throughput: under latches every
 * cross-shard writer freezes its shards; under 2PC single-key traffic
 * flows through the commit. Results (throughput + latency
 * percentiles) are also written to BENCH_kvstore.json so CI can track
 * the trajectory.
 *
 * Series 4 (cache preset, --cache): the kCache mix — Zipf-skewed gets,
 * ~128 B blob values, 50 ms TTL churn — on a small store that starts
 * at 2^10 slots per shard and must grow online under the load. The
 * headline numbers are throughput, the get hit rate (TTL eviction
 * makes it settle well below 1) and how many online resizes the run
 * triggered; all of it lands in BENCH_kvstore.json too.
 *
 * Usage: bench_kvstore [seconds-per-point] [--mixed-only] [--cache]
 *   seconds-per-point   default 0.4
 *   --mixed-only        skip series 1/2 (CI smoke mode)
 *   --cache             add the cache-preset series
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/timing.hpp"
#include "kvstore/traffic.hpp"

using namespace proteus;
using kvstore::CommitMode;
using kvstore::KvStore;
using kvstore::KvStoreOptions;
using kvstore::MixKind;
using kvstore::PhaseLatency;
using kvstore::TrafficDriver;
using kvstore::TrafficMix;
using kvstore::TrafficOptions;

namespace {

constexpr int kThreads = 4;

double
runPoint(int shards, const TrafficMix &mix, int threads, double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = shards;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = threads;
    traffic_options.phases = {mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    // Short warmup so table population / first faults don't count.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    const std::uint64_t before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t after = driver.opsCompleted();
    driver.stop();

    return static_cast<double>(after - before) / seconds;
}

struct MixedResult
{
    double singleOpsPerSec = 0;
    double multiOpsPerSec = 0;
    PhaseLatency latency;
};

MixedResult
runMixed(CommitMode mode, double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    store_options.log2SlotsPerShard = 16;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    store_options.commitMode = mode;
    KvStore store(store_options);

    // Phase 0 is warmup, phase 1 (same mix) is the measurement window:
    // the per-phase latency histogram then covers (nearly) the same
    // interval as the throughput deltas — the run switches back to
    // phase 0 before stop() so teardown-skewed ops don't pollute the
    // phase-1 percentiles BENCH_kvstore.json pairs with the windowed
    // ops/s (only ops in flight at the phase edges leak across).
    const TrafficMix mix = TrafficMix::preset(MixKind::kMixedCross);
    TrafficOptions traffic_options;
    traffic_options.threads = kThreads;
    traffic_options.phases = {mix, mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 2);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    driver.setPhase(1);
    const std::uint64_t single_before = driver.singleKeyOpsCompleted();
    const std::uint64_t multi_before = driver.multiOpsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t single_after = driver.singleKeyOpsCompleted();
    const std::uint64_t multi_after = driver.multiOpsCompleted();
    driver.setPhase(0);
    driver.stop();

    MixedResult result;
    result.singleOpsPerSec =
        static_cast<double>(single_after - single_before) / seconds;
    result.multiOpsPerSec =
        static_cast<double>(multi_after - multi_before) / seconds;
    result.latency = driver.latency(1);
    return result;
}

struct CacheResult
{
    double opsPerSec = 0;
    double hitRate = 0;
    std::uint64_t grows = 0;
    PhaseLatency latency;
};

CacheResult
runCache(double seconds)
{
    KvStoreOptions store_options;
    store_options.numShards = 4;
    // Deliberately small initial tables: the preset's working set
    // forces several online grows during the measured window.
    store_options.log2SlotsPerShard = 10;
    store_options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(store_options);

    const TrafficMix mix = TrafficMix::preset(MixKind::kCache);
    TrafficOptions traffic_options;
    traffic_options.threads = kThreads;
    traffic_options.phases = {mix, mix};
    TrafficDriver driver(store, traffic_options);
    driver.preload(mix.keySpace / 4);

    driver.start();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds * 0.25));
    driver.setPhase(1);
    const std::uint64_t ops_before = driver.opsCompleted();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t ops_after = driver.opsCompleted();
    driver.setPhase(0);
    driver.stop();

    CacheResult result;
    result.opsPerSec =
        static_cast<double>(ops_after - ops_before) / seconds;
    result.hitRate = driver.hitRate();
    for (int s = 0; s < store.numShards(); ++s)
        result.grows +=
            store.shard(static_cast<std::size_t>(s)).growCount();
    result.latency = driver.latency(1);
    return result;
}

void
printMixed(const char *name, const MixedResult &r)
{
    std::printf("  %-10s %14.0f %12.0f %8llu %8llu %8llu %9llu\n",
                name, r.singleOpsPerSec, r.multiOpsPerSec,
                static_cast<unsigned long long>(r.latency.p50),
                static_cast<unsigned long long>(r.latency.p95),
                static_cast<unsigned long long>(r.latency.p99),
                static_cast<unsigned long long>(r.latency.max));
}

void
writeJsonObject(std::FILE *f, const char *name, const MixedResult &r)
{
    std::fprintf(
        f,
        "  \"%s\": {\n"
        "    \"single_key_ops_per_sec\": %.0f,\n"
        "    \"multi_ops_per_sec\": %.0f,\n"
        "    \"ops_measured\": %llu,\n"
        "    \"p50_ns\": %llu,\n"
        "    \"p95_ns\": %llu,\n"
        "    \"p99_ns\": %llu,\n"
        "    \"max_ns\": %llu\n"
        "  }",
        name, r.singleOpsPerSec, r.multiOpsPerSec,
        static_cast<unsigned long long>(r.latency.count),
        static_cast<unsigned long long>(r.latency.p50),
        static_cast<unsigned long long>(r.latency.p95),
        static_cast<unsigned long long>(r.latency.p99),
        static_cast<unsigned long long>(r.latency.max));
}

/** Machine-readable trajectory point for CI artifacts. Returns false
 *  (and the bench exits nonzero) when the file cannot be written —
 *  a silently missing artifact defeats the trajectory tracking. */
bool
writeJson(const char *path, double seconds, const MixedResult &latch,
          const MixedResult &two_phase, const CacheResult *cache)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "bench_kvstore: cannot write %s\n", path);
        return false;
    }
    const double speedup =
        latch.singleOpsPerSec > 0
            ? two_phase.singleOpsPerSec / latch.singleOpsPerSec
            : 0.0;
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"kvstore_mixed_90_10\",\n"
                 "  \"threads\": %d,\n"
                 "  \"shards\": 4,\n"
                 "  \"seconds_per_point\": %.3f,\n"
                 "  \"hardware_threads\": %u,\n",
                 kThreads, seconds,
                 std::thread::hardware_concurrency());
    writeJsonObject(f, "latch", latch);
    std::fprintf(f, ",\n");
    writeJsonObject(f, "two_phase", two_phase);
    std::fprintf(f, ",\n  \"single_key_speedup_2pc_over_latch\": %.3f",
                 speedup);
    if (cache) {
        std::fprintf(
            f,
            ",\n"
            "  \"cache\": {\n"
            "    \"ops_per_sec\": %.0f,\n"
            "    \"hit_rate\": %.4f,\n"
            "    \"online_grows\": %llu,\n"
            "    \"p50_ns\": %llu,\n"
            "    \"p95_ns\": %llu,\n"
            "    \"p99_ns\": %llu,\n"
            "    \"max_ns\": %llu\n"
            "  }",
            cache->opsPerSec, cache->hitRate,
            static_cast<unsigned long long>(cache->grows),
            static_cast<unsigned long long>(cache->latency.p50),
            static_cast<unsigned long long>(cache->latency.p95),
            static_cast<unsigned long long>(cache->latency.p99),
            static_cast<unsigned long long>(cache->latency.max));
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    double seconds = 0.4;
    bool mixed_only = false;
    bool with_cache = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--mixed-only") == 0) {
            mixed_only = true;
        } else if (std::strcmp(argv[i], "--cache") == 0) {
            with_cache = true;
        } else {
            const double parsed = std::atof(argv[i]);
            if (parsed > 0) {
                seconds = parsed;
            } else {
                std::fprintf(stderr,
                             "bench_kvstore: invalid argument '%s' "
                             "(usage: bench_kvstore [seconds-per-point]"
                             " [--mixed-only] [--cache])\n",
                             argv[i]);
                return 2;
            }
        }
    }
    const int threads = kThreads;

    std::printf("ProteusKV bench — %d workers, %.2fs/point, host has "
                "%u hardware threads\n\n",
                threads, seconds,
                std::thread::hardware_concurrency());

    if (!mixed_only) {
        std::printf("shard scaling, read-heavy (YCSB-B):\n");
        std::printf("  %-8s %14s %10s\n", "shards", "ops/s", "speedup");
        double base = 0;
        for (const int shards : {1, 2, 4}) {
            const double ops = runPoint(
                shards, TrafficMix::preset(MixKind::kReadHeavy),
                threads, seconds);
            if (shards == 1)
                base = ops;
            std::printf("  %-8d %14.0f %9.2fx\n", shards, ops,
                        base > 0 ? ops / base : 0.0);
        }

        std::printf("\nworkload mixes at 4 shards:\n");
        std::printf("  %-12s %14s\n", "mix", "ops/s");
        const struct
        {
            const char *name;
            MixKind kind;
        } mixes[] = {
            {"read-heavy", MixKind::kReadHeavy},
            {"balanced", MixKind::kBalanced},
            {"scan-heavy", MixKind::kScanHeavy},
            {"write-heavy", MixKind::kWriteHeavy},
            {"hotspot", MixKind::kHotspot},
        };
        for (const auto &mix : mixes) {
            const double ops = runPoint(
                4, TrafficMix::preset(mix.kind), threads, seconds);
            std::printf("  %-12s %14.0f\n", mix.name, ops);
        }

        // Batched vs single-op puts: one session, one thread, same keys.
        std::printf("\nbatching (single thread, 1 shard, %d puts):\n",
                    1 << 16);
        KvStoreOptions store_options;
        store_options.numShards = 1;
        store_options.log2SlotsPerShard = 18;
        store_options.initial = {tm::BackendKind::kTl2, 1, {}};
        {
            KvStore store(store_options);
            auto session = store.openSession();
            Stopwatch sw;
            for (std::uint64_t key = 0; key < (1u << 16); ++key)
                store.put(session, key, key);
            const double single = (1 << 16) / sw.elapsedSeconds();
            store.closeSession(session);
            std::printf("  %-12s %14.0f ops/s\n", "single", single);
        }
        {
            KvStore store(store_options);
            auto session = store.openSession();
            KvStore::Batch batch;
            Stopwatch sw;
            for (std::uint64_t key = 0; key < (1u << 16); ++key) {
                batch.put(key, key);
                if (batch.size() == 64) {
                    store.applyBatch(session, batch);
                    batch.clear();
                }
            }
            const double batched = (1 << 16) / sw.elapsedSeconds();
            store.closeSession(session);
            std::printf("  %-12s %14.0f ops/s\n", "batch(64)", batched);
        }
    }

    std::printf("\ncommit-mode A/B, mixed 90%% single-key / 10%% "
                "cross-shard multiOp (4 shards):\n");
    std::printf("  %-10s %14s %12s %8s %8s %8s %9s\n", "mode",
                "single ops/s", "multi ops/s", "p50ns", "p95ns",
                "p99ns", "maxns");
    const MixedResult latch = runMixed(CommitMode::kLatch, seconds);
    printMixed("latch", latch);
    const MixedResult two_phase =
        runMixed(CommitMode::kTwoPhase, seconds);
    printMixed("2pc", two_phase);
    if (latch.singleOpsPerSec > 0) {
        std::printf("  single-key speedup 2pc/latch: %.2fx\n",
                    two_phase.singleOpsPerSec / latch.singleOpsPerSec);
    }

    CacheResult cache;
    if (with_cache) {
        std::printf("\ncache preset (wide values + 50ms TTL, shards "
                    "start small and grow online):\n");
        cache = runCache(seconds);
        std::printf("  %14s %9s %7s %8s %8s\n", "ops/s", "hit-rate",
                    "grows", "p50ns", "p99ns");
        std::printf("  %14.0f %9.3f %7llu %8llu %8llu\n",
                    cache.opsPerSec, cache.hitRate,
                    static_cast<unsigned long long>(cache.grows),
                    static_cast<unsigned long long>(cache.latency.p50),
                    static_cast<unsigned long long>(cache.latency.p99));
    }

    return writeJson("BENCH_kvstore.json", seconds, latch, two_phase,
                     with_cache ? &cache : nullptr)
               ? 0
               : 1;
}
