/**
 * Table 5 — Reconfiguration latency (µs): time for PolyTM to switch
 * the TM algorithm *and* the thread count while a workload runs,
 * i.e. the quiesce -> switch -> resume protocol of §4.1.
 *
 * Two workloads with ~100x different transaction lengths, as in the
 * paper: TPC-C-lite (long update transactions) and the memcached-like
 * KV cache (very short transactions). Latency grows with the thread
 * count and the longest-running transaction.
 *
 * This host has one core: >1-thread rows are oversubscribed, which
 * *adds* scheduling latency on top of the paper's numbers; the shape
 * (TPC-C >> memcached, growth with threads) is the target.
 */

#include <atomic>
#include <thread>

#include "bench_util.hpp"
#include "common/timing.hpp"
#include "polytm/polytm.hpp"
#include "workloads/app_workloads.hpp"
#include "workloads/runner.hpp"

namespace proteus::bench {
namespace {

using polytm::PolyTm;
using polytm::TmConfig;
using tm::BackendKind;

double
medianSwitchMicros(workloads::TxWorkload &workload, int threads)
{
    PolyTm poly(TmConfig{BackendKind::kTl2, threads, {}});
    workloads::setupWorkload(poly, workload);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(0x7ab1e5 + t);
            while (!stop.load(std::memory_order_relaxed))
                workload.op(poly, token, rng);
            poly.deregisterThread(token);
        });
    }

    // Let the workload reach steady state, then ping-pong between two
    // backends, collecting the quiesced-switch latency each time.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<double> micros;
    const BackendKind kinds[] = {BackendKind::kNorec,
                                 BackendKind::kTl2};
    for (int round = 0; round < 14; ++round) {
        poly.reconfigure({kinds[round % 2], threads, {}});
        micros.push_back(
            static_cast<double>(poly.lastReconfigureNanos()) / 1000.0);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    stop.store(true);
    poly.resumeAllForShutdown();
    for (auto &w : workers)
        w.join();
    return median(micros);
}

/** Mean transaction duration (usec) of a workload at 1 thread. */
double
avgTxMicros(workloads::TxWorkload &workload)
{
    PolyTm poly(TmConfig{BackendKind::kTl2, 1, {}});
    workloads::setupWorkload(poly, workload);
    const auto result = workloads::runTimed(poly, workload, 1, 0.3);
    return 1e6 / result.opsPerSec;
}

int
run()
{
    printTitle("Table 5: reconfiguration (TM + #threads) latency (usec)");
    const int thread_counts[] = {1, 2, 4, 8, 16, 32};
    std::printf("%-22s", "benchmark");
    for (const int t : thread_counts)
        std::printf(" %9dt", t);
    std::printf("\n");

    {
        std::printf("%-22s", "TPC-C (long txs)");
        for (const int t : thread_counts) {
            workloads::TpccLiteWorkload::Options opts;
            opts.warehouses = 2;
            opts.items = 8192;
            opts.linesPerOrder = 60; // long transactions (paper:
                                     // ~100x memcached's)
            workloads::TpccLiteWorkload tpcc(opts);
            std::printf(" %10.0f", medianSwitchMicros(tpcc, t));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    {
        std::printf("%-22s", "memcached (short txs)");
        for (const int t : thread_counts) {
            workloads::KvCacheWorkload::Options opts;
            opts.keys = 1 << 14;
            workloads::KvCacheWorkload cache(opts);
            std::printf(" %10.0f", medianSwitchMicros(cache, t));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    // The measured rows above are dominated by this 1-core host's
    // scheduler quantum (the adapter must context-switch to every
    // draining worker). On a real multicore the latency is bound by
    // the longest in-flight transaction per drained thread; estimate
    // that from the measured 1-thread transaction durations.
    std::printf("\nModel estimate on a non-oversubscribed machine "
                "(threads x avg-tx-duration):\n");
    {
        workloads::TpccLiteWorkload::Options topts;
        topts.warehouses = 2;
        topts.items = 8192;
        topts.linesPerOrder = 60;
        workloads::TpccLiteWorkload tpcc(topts);
        workloads::KvCacheWorkload::Options kopts;
        kopts.keys = 1 << 14;
        workloads::KvCacheWorkload cache(kopts);
        const double tpcc_us = avgTxMicros(tpcc);
        const double cache_us = avgTxMicros(cache);
        std::printf("%-22s", "TPC-C est. (usec)");
        for (const int t : thread_counts)
            std::printf(" %10.0f", tpcc_us * t);
        std::printf("\n%-22s", "memcached est. (usec)");
        for (const int t : thread_counts)
            std::printf(" %10.1f", cache_us * t);
        std::printf("\n(avg tx: TPC-C %.1f usec, memcached %.2f usec "
                    "-> ~%.0fx contrast, matching the paper's "
                    "long-vs-short gap)\n",
                    tpcc_us, cache_us, tpcc_us / cache_us);
    }
    std::printf("\nShape target: latency rises with #threads; the "
                "long-transaction workload pays far more than the "
                "short-transaction one at equal thread count "
                "(visible in the model estimate; the measured rows "
                "add a ~ms scheduler quantum per drained thread on "
                "this 1-core host).\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
