/**
 * Ablation — bagging-ensemble size (the paper fixes 10 learners and
 * reports the cost as "negligible"; DESIGN.md calls the choice out).
 *
 * Sweeps the number of bags and reports MDFO / exploration counts of
 * EI-driven optimization on Machine A (throughput), plus the wall
 * time spent in the optimization episodes. With one bag the variance
 * estimate collapses and EI degenerates toward Greedy.
 */

#include "bench_util.hpp"
#include "common/timing.hpp"
#include "rectm/cf_tuner.hpp"
#include "rectm/smbo.hpp"

namespace proteus::bench {
namespace {

using rectm::BaggingEnsemble;
using rectm::Normalizer;
using rectm::NormalizerKind;
using rectm::SmboOptions;

int
run()
{
    const auto space = ConfigSpace::machineA();
    const PerfModel perf(MachineModel::machineA());
    const Split split = corpusSplit(21, 0xab1a, 0.30);
    const auto train = goodnessMatrix(perf, split.train, space,
                                      KpiKind::kThroughput);

    auto normalizer = Normalizer::make(NormalizerKind::kDistillation);
    const auto ratings = normalizer->fitTransform(train);
    rectm::TunerOptions topts;
    topts.trials = 12;
    const auto tuned = rectm::tuneCf(ratings, topts);

    printTitle("Ablation: bagging ensemble size (EI, throughput, "
               "Machine A)");
    std::printf("model: %s (cv MAPE %.3f)\n\n",
                tuned.description.c_str(), tuned.cvMape);
    std::printf("%-8s %10s %10s %10s %12s\n", "bags", "MDFO", "p90-DFO",
                "expl", "episode-ms");

    const std::size_t n_test =
        std::min<std::size_t>(80, split.test.size());
    for (const int bags : {1, 2, 5, 10, 20}) {
        BaggingEnsemble ensemble(*tuned.prototype, bags);
        ensemble.fit(ratings);

        std::vector<double> dfos, expl;
        Stopwatch sw;
        for (std::size_t i = 0; i < n_test; ++i) {
            const Workload &w = split.test[i];
            auto sampler = [&](std::size_t c) {
                return toGoodness(perf.kpi(w, space.at(c),
                                           KpiKind::kThroughput, true),
                                  KpiKind::kThroughput);
            };
            SmboOptions opts;
            opts.epsilon = 0.01;
            opts.seed = 0xaa + i;
            const auto result = rectm::optimizeWorkload(
                ensemble, *normalizer, space.size(), sampler, opts);
            const auto truth = trueGoodnessRow(
                perf, w, space, KpiKind::kThroughput);
            dfos.push_back(dfoOf(truth, result.bestConfig));
            expl.push_back(result.explorations);
        }
        std::printf("%-8d %10.4f %10.4f %10.1f %12.1f\n", bags,
                    mean(dfos), percentile(dfos, 90.0), mean(expl),
                    sw.elapsedSeconds() * 1000.0 /
                        static_cast<double>(n_test));
        std::fflush(stdout);
    }
    std::printf("\nShape target: quality saturates by ~10 bags; a "
                "single bag (no variance signal) explores worse.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
