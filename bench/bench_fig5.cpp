/**
 * Fig. 5 — Controller exploration policies: EI (ProteusTM) vs Greedy,
 * Variance and Random.
 *
 * Trace-driven simulation; one SMBO episode per (policy, workload)
 * with a 20-exploration budget, from which we report:
 *  (a) MDFO vs #explorations for EDP on Machine A,
 *  (b) CDF of the DFO after 5 explorations (EDP, Machine A),
 *  (c) MAPE vs #explorations for exec time on Machine B,
 *  (d) MDFO vs #explorations for exec time on Machine B.
 *
 * Shape targets: EI reaches a given MDFO with up to ~4x fewer
 * explorations than Random; Variance attains the best MAPE yet poor
 * MDFO; Greedy in between.
 */

#include "bench_util.hpp"
#include "rectm/engine.hpp"

namespace proteus::bench {
namespace {

using rectm::ExplorePolicy;
using rectm::kUnknown;
using rectm::RecTmEngine;
using rectm::SmboOptions;
using rectm::StopRule;

constexpr int kBudget = 20;
constexpr std::size_t kTestWorkloads = 120;

struct EpisodeTrace
{
    /** DFO of the best *sampled* config after k explorations. */
    std::vector<double> dfoAtK;
    /** MAPE of model predictions after k explorations. */
    std::vector<double> mapeAtK;
};

EpisodeTrace
episode(const RecTmEngine &engine, const PerfModel &perf,
        const Workload &w, const ConfigSpace &space, KpiKind kpi,
        ExplorePolicy policy, std::uint64_t seed)
{
    auto sampler = [&](std::size_t c) {
        return toGoodness(perf.kpi(w, space.at(c), kpi, true), kpi);
    };
    SmboOptions opts;
    opts.policy = policy;
    opts.stop = StopRule::kFixed;
    opts.fixedExplorations = kBudget;
    opts.maxExplorations = kBudget;
    opts.seed = seed;
    const auto result = engine.optimize(sampler, opts);

    const auto truth = trueGoodnessRow(perf, w, space, kpi);
    EpisodeTrace trace;
    trace.dfoAtK.assign(kBudget + 1, 0.0);
    trace.mapeAtK.assign(kBudget + 1, 0.0);

    std::vector<double> query(space.size(), kUnknown);
    double best_goodness = -1;
    std::size_t best_cfg = result.sampled.front();
    for (std::size_t step = 0; step < result.sampled.size(); ++step) {
        const std::size_t c = result.sampled[step];
        query[c] = result.queryGoodness[c];
        if (query[c] > best_goodness) {
            best_goodness = query[c];
            best_cfg = c;
        }
        const auto k = static_cast<int>(step); // step 0 = reference
        if (k >= 1 && k <= kBudget) {
            trace.dfoAtK[static_cast<std::size_t>(k)] =
                dfoOf(truth, best_cfg);
            trace.mapeAtK[static_cast<std::size_t>(k)] =
                mapeOf(engine.predictAllGoodness(query), truth);
        }
    }
    // Pad the tail (episodes whose sample list is shorter than the
    // budget keep their final quality).
    for (int k = 1; k <= kBudget; ++k) {
        if (trace.dfoAtK[static_cast<std::size_t>(k)] == 0.0 &&
            static_cast<std::size_t>(k) >= result.sampled.size()) {
            trace.dfoAtK[static_cast<std::size_t>(k)] =
                dfoOf(truth, best_cfg);
            trace.mapeAtK[static_cast<std::size_t>(k)] =
                trace.mapeAtK[static_cast<std::size_t>(k - 1)];
        }
    }
    return trace;
}

void
panel(const char *title, const MachineModel &machine,
      const ConfigSpace &space, KpiKind kpi, bool print_cdf)
{
    const PerfModel perf(machine);
    const Split split = corpusSplit(21, 0x515, 0.30);
    const auto train = goodnessMatrix(perf, split.train, space, kpi);
    RecTmEngine::Options eopts;
    eopts.tuner.trials = 12;
    const RecTmEngine engine(train, eopts);

    const ExplorePolicy policies[] = {
        ExplorePolicy::kEi, ExplorePolicy::kGreedy,
        ExplorePolicy::kVariance, ExplorePolicy::kRandom};

    std::vector<std::vector<EpisodeTrace>> traces(4);
    for (std::size_t p = 0; p < 4; ++p) {
        for (std::size_t i = 0;
             i < std::min(kTestWorkloads, split.test.size()); ++i) {
            traces[p].push_back(episode(engine, perf, split.test[i],
                                        space, kpi, policies[p],
                                        0x9000 + i));
        }
    }

    printTitle(std::string(title) + " - MDFO vs #explorations");
    std::printf("%-8s", "k");
    for (const auto p : policies)
        std::printf(" %10s",
                    std::string(explorePolicyName(p)).c_str());
    std::printf("\n");
    for (const int k : {2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
        std::printf("%-8d", k);
        for (std::size_t p = 0; p < 4; ++p) {
            std::vector<double> dfos;
            for (const auto &t : traces[p])
                dfos.push_back(t.dfoAtK[static_cast<std::size_t>(k)]);
            std::printf(" %10.4f", mean(dfos));
        }
        std::printf("\n");
    }

    printTitle(std::string(title) + " - MAPE vs #explorations");
    for (const int k : {2, 4, 6, 8, 10, 14, 20}) {
        std::printf("%-8d", k);
        for (std::size_t p = 0; p < 4; ++p) {
            std::vector<double> mapes;
            for (const auto &t : traces[p])
                mapes.push_back(t.mapeAtK[static_cast<std::size_t>(k)]);
            std::printf(" %10.4f", mean(mapes));
        }
        std::printf("\n");
    }

    if (print_cdf) {
        printTitle(std::string(title) +
                   " - CDF of DFO after 5 explorations");
        std::printf("%-8s", "pctl");
        for (const auto p : policies)
            std::printf(" %10s",
                        std::string(explorePolicyName(p)).c_str());
        std::printf("\n");
        for (const double pct : {20.0, 40.0, 60.0, 80.0, 95.0}) {
            std::printf("p%-7.0f", pct);
            for (std::size_t p = 0; p < 4; ++p) {
                std::vector<double> dfos;
                for (const auto &t : traces[p])
                    dfos.push_back(t.dfoAtK[5]);
                std::printf(" %10.4f", percentile(dfos, pct));
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
}

int
run()
{
    panel("Fig 5a/5b: EDP on Machine A", MachineModel::machineA(),
          ConfigSpace::machineA(), KpiKind::kEdp, /*print_cdf=*/true);
    panel("Fig 5c/5d: Exec time on Machine B", MachineModel::machineB(),
          ConfigSpace::machineB(), KpiKind::kExecTime,
          /*print_cdf=*/false);
    std::printf("Shape target: EI dominates MDFO; Variance wins MAPE "
                "but trails on MDFO; Random needs ~4x more "
                "explorations at 5%% MDFO.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
