/**
 * Fig. 4 — Rating distillation vs alternative UM preprocessing.
 *
 * Trace-driven simulation on Machine A, KPI = execution time, KNN
 * with cosine similarity (the configuration the paper shows): for a
 * growing number of randomly selected known configurations per test
 * workload, report MAPE (prediction accuracy) and MDFO (quality of
 * the recommended configuration) for
 *   no normalization (Quasar-style), normalization w.r.t. a global
 *   max (Paragon-style), row-column subtraction, ideal (oracle) and
 *   ProteusTM's rating distillation.
 *
 * Shape targets: distillation ~ ideal << {none, max-const}; rc-diff
 * in between.
 */

#include "bench_util.hpp"
#include "rectm/cf.hpp"
#include "rectm/normalizer.hpp"

namespace proteus::bench {
namespace {

using rectm::kUnknown;
using rectm::known;
using rectm::Normalizer;
using rectm::NormalizerKind;

struct CellResult
{
    double mape = 0;
    double mdfo = 0;
};

CellResult
evaluate(NormalizerKind kind, const UtilityMatrix &train_goodness,
         const std::vector<Workload> &test, const PerfModel &perf,
         const ConfigSpace &space, int num_known, std::uint64_t seed)
{
    auto normalizer = Normalizer::make(kind);
    const auto ratings = normalizer->fitTransform(train_goodness);
    rectm::KnnModel knn(10, rectm::Similarity::kCosine);
    knn.fit(ratings);

    Rng rng(seed);
    std::vector<double> mapes, dfos;
    for (const auto &w : test) {
        const auto truth =
            trueGoodnessRow(perf, w, space, KpiKind::kExecTime);
        // Measured (noisy) goodness available for sampling.
        std::vector<double> measured(space.size());
        for (std::size_t c = 0; c < space.size(); ++c) {
            measured[c] = toGoodness(
                perf.kpi(w, space.at(c), KpiKind::kExecTime, true),
                KpiKind::kExecTime);
        }
        // The ideal scheme is an oracle: hand it the true row max.
        normalizer->setOracleRowMax(
            *std::max_element(measured.begin(), measured.end()));

        // Random known configurations (the reference column is NOT
        // forced in, matching the paper's fairness note).
        std::vector<double> query(space.size(), kUnknown);
        const auto perm = rng.permutation(space.size());
        for (int i = 0; i < num_known; ++i)
            query[perm[static_cast<std::size_t>(i)]] =
                measured[perm[static_cast<std::size_t>(i)]];

        // Rating-space query, predictions, back to goodness.
        std::vector<double> query_ratings(space.size(), kUnknown);
        for (std::size_t c = 0; c < space.size(); ++c) {
            if (known(query[c]))
                query_ratings[c] =
                    normalizer->toRating(query, c, query[c]);
        }
        const auto pred_ratings =
            knn.predictAll(query_ratings, space.size());
        std::vector<double> pred(space.size());
        for (std::size_t c = 0; c < space.size(); ++c)
            pred[c] = normalizer->fromRating(query, c, pred_ratings[c]);

        mapes.push_back(mapeOf(pred, truth));
        dfos.push_back(dfoOf(truth, argBest(pred)));
    }
    return {mean(mapes), mean(dfos)};
}

int
run()
{
    const auto space = ConfigSpace::machineA();
    const PerfModel perf(MachineModel::machineA());
    const Split split = corpusSplit(21, 0xf194e, 0.30);

    const auto train =
        goodnessMatrix(perf, split.train, space, KpiKind::kExecTime);

    const NormalizerKind kinds[] = {
        NormalizerKind::kNone, NormalizerKind::kMaxConstant,
        NormalizerKind::kRcDiff, NormalizerKind::kIdeal,
        NormalizerKind::kDistillation};
    const int sample_counts[] = {2, 3, 5, 10, 20};

    printTitle("Fig 4a: MAPE (KNN cosine, exec time, Machine A)");
    std::printf("%-14s", "#known");
    for (const auto kind : kinds)
        std::printf(" %13s", std::string(normalizerName(kind)).c_str());
    std::printf("\n");
    std::vector<std::vector<CellResult>> grid;
    for (const int n : sample_counts) {
        std::printf("%-14d", n);
        grid.emplace_back();
        for (const auto kind : kinds) {
            const auto cell = evaluate(kind, train, split.test, perf,
                                       space, n, 1000 + n);
            grid.back().push_back(cell);
            std::printf(" %13.3f", cell.mape);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    printTitle("Fig 4b: MDFO (KNN cosine, exec time, Machine A)");
    std::printf("%-14s", "#known");
    for (const auto kind : kinds)
        std::printf(" %13s", std::string(normalizerName(kind)).c_str());
    std::printf("\n");
    for (std::size_t row = 0; row < grid.size(); ++row) {
        std::printf("%-14d", sample_counts[row]);
        for (const auto &cell : grid[row])
            std::printf(" %13.3f", cell.mdfo);
        std::printf("\n");
    }

    std::printf("\nShape target: distillation tracks ideal; none / "
                "max-const are far worse; rc-diff sits in between.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
