/**
 * Table 4 — Overhead (%) incurred by ProteusTM (PolyTM) relative to
 * the bare TM backend, per backend and thread count, measured on real
 * executions of this repository's TM runtimes.
 *
 * "Bare" drives the backend directly with a minimal retry loop (no
 * thread gate, no counters); "PolyTM" goes through PolyTm::run with
 * the dispatch pointer, the Algorithm-1 gate fetch-and-adds, budget
 * management and profiling counters. HTM-naive additionally routes
 * the emulated-HTM accesses through an instrumented shim, standing in
 * for GCC's fully-instrumented code path (the dual-path ablation).
 *
 * Shape targets: overheads small (paper: <5% on STMs / HTM-opt;
 * 14-24% for HTM-naive). This host has one core, so thread counts >1
 * are oversubscribed; the *relative* bare-vs-PolyTM comparison is
 * still meaningful since both sides are oversubscribed equally.
 */

#include <thread>

#include "bench_util.hpp"
#include "common/timing.hpp"
#include "polytm/polytm.hpp"
#include "tm/global_lock.hpp"
#include "tm/hybrid_norec.hpp"
#include "tm/norec.hpp"
#include "tm/swisstm.hpp"
#include "tm/tinystm.hpp"
#include "tm/tl2.hpp"

namespace proteus::bench {
namespace {

using polytm::PolyTm;
using polytm::TmConfig;
using tm::BackendKind;
using tm::TxDesc;

constexpr std::uint64_t kSlots = 1 << 18;
constexpr int kReads = 40;
constexpr int kWrites = 8;
constexpr std::uint64_t kOpsPerThread = 15000;
constexpr int kLocalWorkIters = 120; // intra-tx compute, STAMP-like

/** Non-transactional work inside the transaction body. */
inline std::uint64_t
localWork(std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (int i = 0; i < kLocalWorkIters; ++i) {
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
    }
    return h;
}

/** One synthetic transaction against a raw backend descriptor. */
template <typename ReadFn, typename WriteFn>
void
syntheticBody(Rng &rng, std::vector<std::uint64_t> &slots, ReadFn read,
              WriteFn write)
{
    std::uint64_t acc = 0;
    std::uint64_t idx[kReads];
    for (int i = 0; i < kReads; ++i)
        idx[i] = rng.nextBounded(kSlots);
    for (int i = 0; i < kReads; ++i)
        acc += read(&slots[idx[i]]);
    acc = localWork(acc);
    for (int i = 0; i < kWrites; ++i)
        write(&slots[rng.nextBounded(kSlots)], acc + i);
}

/** Bare-backend ops/sec. */
double
runBare(tm::TmBackend &backend, int threads, bool instrumented_shim)
{
    std::vector<std::uint64_t> slots(kSlots, 1);
    std::vector<std::thread> workers;
    Stopwatch sw;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            TxDesc desc(t, 0xb00 + t);
            backend.registerThread(desc);
            Rng rng(0xabc + t);
            for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
                desc.consecutiveAborts = 0;
                desc.htmBudgetLeft = 5;
                for (;;) {
                    backend.txBegin(desc);
                    try {
                        syntheticBody(
                            rng, slots,
                            [&](const std::uint64_t *a) {
                                if (instrumented_shim) {
                                    // Emulated per-access
                                    // instrumentation of the naive
                                    // (fully compiled) path.
                                    volatile std::uint64_t sink =
                                        reinterpret_cast<
                                            std::uintptr_t>(a) *
                                        0x9e3779b97f4a7c15ull;
                                    (void)sink;
                                }
                                return backend.txRead(desc, a);
                            },
                            [&](std::uint64_t *a, std::uint64_t v) {
                                if (instrumented_shim) {
                                    volatile std::uint64_t sink =
                                        reinterpret_cast<
                                            std::uintptr_t>(a) ^ v;
                                    (void)sink;
                                }
                                backend.txWrite(desc, a, v);
                            });
                        backend.txCommit(desc);
                        break;
                    } catch (const tm::TxAbort &) {
                        ++desc.consecutiveAborts;
                        if (desc.htmBudgetLeft > 0)
                            --desc.htmBudgetLeft;
                        tm::backoffOnAbort(desc);
                    }
                }
            }
            backend.deregisterThread(desc);
        });
    }
    for (auto &w : workers)
        w.join();
    return static_cast<double>(kOpsPerThread) * threads /
           sw.elapsedSeconds();
}

/** PolyTM ops/sec with the same body. */
double
runPoly(BackendKind kind, int threads, bool instrumented_shim)
{
    PolyTm poly(TmConfig{kind, threads, {}});
    std::vector<std::uint64_t> slots(kSlots, 1);
    std::vector<std::thread> workers;
    Stopwatch sw;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(0xabc + t);
            for (std::uint64_t op = 0; op < kOpsPerThread; ++op) {
                poly.run(token, [&](polytm::Tx &tx) {
                    syntheticBody(
                        rng, slots,
                        [&](const std::uint64_t *a) {
                            if (instrumented_shim) {
                                volatile std::uint64_t sink =
                                    reinterpret_cast<std::uintptr_t>(a) *
                                    0x9e3779b97f4a7c15ull;
                                (void)sink;
                            }
                            return tx.readWord(a);
                        },
                        [&](std::uint64_t *a, std::uint64_t v) {
                            if (instrumented_shim) {
                                volatile std::uint64_t sink =
                                    reinterpret_cast<std::uintptr_t>(a) ^
                                    v;
                                (void)sink;
                            }
                            tx.writeWord(a, v);
                        });
                });
            }
            poly.deregisterThread(token);
        });
    }
    for (auto &w : workers)
        w.join();
    return static_cast<double>(kOpsPerThread) * threads /
           sw.elapsedSeconds();
}

std::unique_ptr<tm::TmBackend>
makeBare(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kTl2: return std::make_unique<tm::Tl2Tm>(18);
      case BackendKind::kNorec: return std::make_unique<tm::NorecTm>();
      case BackendKind::kSwissTm:
        return std::make_unique<tm::SwissTm>(18);
      case BackendKind::kTinyStm:
        return std::make_unique<tm::TinyStmTm>(18);
      case BackendKind::kSimHtm:
        return std::make_unique<tm::SimHtm>(tm::SimHtmConfig{}, 18);
      default: return nullptr;
    }
}

int
run()
{
    printTitle("Table 4: PolyTM overhead (%) vs bare TM "
               "(median of 5 runs; 1-core host, >1t oversubscribed)");
    std::printf("%-10s", "#threads");
    const char *columns[] = {"TL2",     "NOrec",   "Swiss",
                             "Tiny",    "HTM-opt", "HTM-naive"};
    for (const auto *c : columns)
        std::printf(" %10s", c);
    std::printf("\n");

    const BackendKind kinds[] = {
        BackendKind::kTl2,    BackendKind::kNorec,
        BackendKind::kSwissTm, BackendKind::kTinyStm,
        BackendKind::kSimHtm, BackendKind::kSimHtm};

    for (const int threads : {1, 4, 8}) {
        std::printf("%-10d", threads);
        for (int k = 0; k < 6; ++k) {
            const bool shim = k == 5; // HTM-naive column
            std::vector<double> overheads;
            for (int rep = 0; rep < 5; ++rep) {
                // Baseline is always the bare, *uninstrumented* path;
                // the HTM-naive column runs PolyTM through the
                // instrumented shim (GCC's default dual-path choice).
                auto bare_backend = makeBare(kinds[k]);
                const double bare =
                    runBare(*bare_backend, threads, false);
                const double poly = runPoly(kinds[k], threads, shim);
                overheads.push_back((bare / poly - 1.0) * 100.0);
            }
            std::printf(" %10.1f", median(overheads));
        }
        std::printf("\n");
    }
    std::printf("\nShape target: STM/HTM-opt columns ~0-5%%; the gate "
                "fetch-and-add dominates PolyTM's added cost.\n"
                "Negative cells are oversubscription scheduling noise "
                "on this 1-core host.\n");
    return 0;
}

} // namespace
} // namespace proteus::bench

int
main()
{
    return proteus::bench::run();
}
