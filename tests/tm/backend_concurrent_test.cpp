/**
 * Concurrency stress tests, parameterized over every backend. The
 * host may have a single core; these tests validate *correctness*
 * under oversubscription (atomicity, isolation, conservation
 * invariants), not speedup.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/test_util.hpp"

namespace proteus::tm {
namespace {

using testing::makeBackend;
using testing::runTx;

class BackendConcurrentTest : public ::testing::TestWithParam<BackendKind>
{
  protected:
    std::unique_ptr<TmBackend>
    make()
    {
        return makeBackend(GetParam());
    }
};

TEST_P(BackendConcurrentTest, CounterIncrementsAreAtomic)
{
    auto backend = make();
    constexpr int kThreads = 4;
    constexpr int kIncrementsPerThread = 2000;
    std::uint64_t counter = 0;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            TxDesc desc(t, 1000 + t);
            backend->registerThread(desc);
            for (int i = 0; i < kIncrementsPerThread; ++i) {
                runTx(*backend, desc, [&](TxDesc &d) {
                    backend->txWrite(d, &counter,
                                     backend->txRead(d, &counter) + 1);
                });
            }
            backend->deregisterThread(desc);
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) *
                           kIncrementsPerThread);
}

TEST_P(BackendConcurrentTest, BankTransfersConserveTotal)
{
    auto backend = make();
    constexpr int kThreads = 4;
    constexpr int kAccounts = 64;
    constexpr int kTransfersPerThread = 2000;
    constexpr std::uint64_t kInitial = 1000;

    std::vector<std::uint64_t> accounts(kAccounts, kInitial);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            TxDesc desc(t, 2000 + t);
            backend->registerThread(desc);
            Rng rng(777 + t);
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const auto from = rng.nextBounded(kAccounts);
                const auto to = rng.nextBounded(kAccounts);
                runTx(*backend, desc, [&](TxDesc &d) {
                    const std::uint64_t a =
                        backend->txRead(d, &accounts[from]);
                    const std::uint64_t b =
                        backend->txRead(d, &accounts[to]);
                    if (a == 0)
                        return; // nothing to move
                    backend->txWrite(d, &accounts[from], a - 1);
                    if (from != to)
                        backend->txWrite(d, &accounts[to], b + 1);
                    else
                        backend->txWrite(d, &accounts[to], a);
                });
            }
            backend->deregisterThread(desc);
        });
    }
    for (auto &th : threads)
        th.join();

    std::uint64_t total = 0;
    for (const auto &acc : accounts)
        total += acc;
    EXPECT_EQ(total, kInitial * kAccounts);
}

TEST_P(BackendConcurrentTest, SnapshotsAreConsistent)
{
    // Writers keep x + y == 0 (mod 2^64); readers must never observe
    // a broken invariant — the classic isolation (opacity) smoke test.
    auto backend = make();
    std::uint64_t x = 0, y = 0;
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};

    std::thread writer([&] {
        TxDesc desc(0, 42);
        backend->registerThread(desc);
        for (int i = 0; i < 4000; ++i) {
            runTx(*backend, desc, [&](TxDesc &d) {
                const std::uint64_t v = backend->txRead(d, &x);
                backend->txWrite(d, &x, v + 1);
                backend->txWrite(d, &y, ~(v + 1) + 1); // y = -(x)
            });
        }
        stop.store(true);
        backend->deregisterThread(desc);
    });

    std::thread reader([&] {
        TxDesc desc(1, 43);
        backend->registerThread(desc);
        while (!stop.load()) {
            std::uint64_t sx = 0, sy = 0;
            runTx(*backend, desc, [&](TxDesc &d) {
                sx = backend->txRead(d, &x);
                sy = backend->txRead(d, &y);
            });
            if (sx + sy != 0)
                violations.fetch_add(1);
        }
        backend->deregisterThread(desc);
    });

    writer.join();
    reader.join();
    EXPECT_EQ(violations.load(), 0);
}

TEST_P(BackendConcurrentTest, DisjointWritersAllCommit)
{
    auto backend = make();
    constexpr int kThreads = 4;
    constexpr int kSlots = 1024;
    std::vector<std::uint64_t> slots(kSlots * kThreads, 0);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            TxDesc desc(t, 3000 + t);
            backend->registerThread(desc);
            for (int i = 0; i < kSlots; ++i) {
                runTx(*backend, desc, [&](TxDesc &d) {
                    backend->txWrite(d, &slots[t * kSlots + i],
                                     static_cast<std::uint64_t>(t + 1));
                });
            }
            backend->deregisterThread(desc);
        });
    }
    for (auto &th : threads)
        th.join();

    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kSlots; ++i)
            ASSERT_EQ(slots[t * kSlots + i],
                      static_cast<std::uint64_t>(t + 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConcurrentTest,
    ::testing::ValuesIn(testing::allBackendKinds()),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        return std::string(backendName(info.param));
    });

} // namespace
} // namespace proteus::tm
