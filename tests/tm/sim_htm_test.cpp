/**
 * Emulated-HTM specific behaviour: capacity aborts, retry budget and
 * fallback lock, requester-wins dooming, hybrid software path.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tm/test_util.hpp"

namespace proteus::tm {
namespace {

TEST(SimHtmTest, WriteCapacityAbortRaised)
{
    SimHtmConfig cfg;
    cfg.writeCapacityLines = 8;
    SimHtm htm(cfg, 14);
    TxDesc desc(0, 1);
    htm.registerThread(desc);

    std::vector<std::uint64_t> xs(64, 0);
    desc.htmBudgetLeft = 1;
    htm.txBegin(desc);
    AbortCause cause = AbortCause::kNone;
    try {
        // Spread addresses so they land on distinct stripes.
        for (std::size_t i = 0; i < xs.size(); ++i)
            htm.txWrite(desc, &xs[i], 1);
        htm.txCommit(desc);
    } catch (const TxAbort &abort) {
        cause = abort.cause;
    }
    EXPECT_EQ(cause, AbortCause::kCapacity);
    for (const auto &x : xs)
        EXPECT_EQ(x, 0u) << "aborted hw writes must not be visible";
}

TEST(SimHtmTest, ReadCapacityAbortRaised)
{
    SimHtmConfig cfg;
    cfg.readCapacityLines = 8;
    SimHtm htm(cfg, 14);
    TxDesc desc(0, 1);
    htm.registerThread(desc);

    std::vector<std::uint64_t> xs(512, 0);
    desc.htmBudgetLeft = 1;
    htm.txBegin(desc);
    AbortCause cause = AbortCause::kNone;
    try {
        for (std::size_t i = 0; i < xs.size(); ++i)
            (void)htm.txRead(desc, &xs[i]);
        htm.txCommit(desc);
    } catch (const TxAbort &abort) {
        cause = abort.cause;
    }
    EXPECT_EQ(cause, AbortCause::kCapacity);
}

TEST(SimHtmTest, ZeroBudgetGoesToFallbackAndCommits)
{
    SimHtm htm({}, 14);
    TxDesc desc(0, 1);
    htm.registerThread(desc);

    std::uint64_t x = 0;
    desc.htmBudgetLeft = 0; // exhausted: must take the fallback lock
    htm.txBegin(desc);
    EXPECT_TRUE(desc.inFallback);
    EXPECT_FALSE(htm.revocable(desc));
    htm.txWrite(desc, &x, 5);
    htm.txCommit(desc);
    EXPECT_EQ(x, 5u);
}

TEST(SimHtmTest, CapacityOverflowEventuallyCommitsViaFallback)
{
    SimHtmConfig cfg;
    cfg.writeCapacityLines = 4;
    SimHtm htm(cfg, 14);
    TxDesc desc(0, 1);
    htm.registerThread(desc);

    std::vector<std::uint64_t> xs(64, 0);
    testing::runTx(htm, desc, [&](TxDesc &d) {
        for (std::size_t i = 0; i < xs.size(); ++i)
            htm.txWrite(d, &xs[i], i + 1);
    });
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_EQ(xs[i], i + 1);
}

TEST(SimHtmTest, DoomedFlagAbortsTransaction)
{
    SimHtm htm({}, 14);
    TxDesc desc(0, 1);
    htm.registerThread(desc);

    std::uint64_t x = 0;
    desc.htmBudgetLeft = 5;
    htm.txBegin(desc);
    (void)htm.txRead(desc, &x);
    desc.doomed->store(true); // what a conflicting writer would do
    EXPECT_THROW((void)htm.txRead(desc, &x), TxAbort);
}

TEST(SimHtmTest, WriterDoomsConcurrentReader)
{
    SimHtm htm({}, 14);
    TxDesc reader(0, 1), writer(1, 2);
    htm.registerThread(reader);
    htm.registerThread(writer);

    std::uint64_t x = 0;

    reader.htmBudgetLeft = 5;
    htm.txBegin(reader);
    (void)htm.txRead(reader, &x); // publishes x in reader's signature

    writer.htmBudgetLeft = 5;
    htm.txBegin(writer);
    htm.txWrite(writer, &x, 1); // must doom the reader
    htm.txCommit(writer);

    EXPECT_TRUE(reader.doomed->load());
    EXPECT_THROW(htm.txCommit(reader), TxAbort);
    EXPECT_EQ(x, 1u);
}

TEST(SimHtmTest, FallbackAcquisitionDoomsSpeculators)
{
    SimHtm htm({}, 14);
    TxDesc hw(0, 1), fb(1, 2);
    htm.registerThread(hw);
    htm.registerThread(fb);

    std::uint64_t x = 0;
    hw.htmBudgetLeft = 5;
    htm.txBegin(hw);
    (void)htm.txRead(hw, &x);

    fb.htmBudgetLeft = 0;
    htm.txBegin(fb); // takes the fallback lock, dooms hw
    htm.txWrite(fb, &x, 7);
    htm.txCommit(fb);

    EXPECT_THROW(htm.txCommit(hw), TxAbort);
    EXPECT_EQ(x, 7u);
}

TEST(HybridNorecTest, BudgetExhaustionUsesSoftwarePath)
{
    HybridNorecTm hybrid({}, 14);
    TxDesc desc(0, 1);
    hybrid.registerThread(desc);

    std::uint64_t x = 0;
    desc.htmBudgetLeft = 0;
    hybrid.txBegin(desc);
    EXPECT_FALSE(desc.inHtm);
    EXPECT_TRUE(hybrid.revocable(desc)); // software path can retry
    hybrid.txWrite(desc, &x, 3);
    hybrid.txCommit(desc);
    EXPECT_EQ(x, 3u);
}

TEST(HybridNorecTest, SoftwareCommitAbortsHardwareTx)
{
    HybridNorecTm hybrid({}, 14);
    TxDesc hw(0, 1), sw(1, 2);
    hybrid.registerThread(hw);
    hybrid.registerThread(sw);

    std::uint64_t x = 0, y = 0;

    hw.htmBudgetLeft = 5;
    hybrid.txBegin(hw);
    EXPECT_TRUE(hw.inHtm);
    (void)hybrid.txRead(hw, &x);

    sw.htmBudgetLeft = 0;
    hybrid.txBegin(sw);
    hybrid.txWrite(sw, &y, 1); // disjoint data, but subscription is
    hybrid.txCommit(sw);       // seqlock-wide

    // The hw tx is doomed (or its seq snapshot is stale): its next
    // operation or its commit must fail.
    EXPECT_THROW(
        {
            hybrid.txWrite(hw, &x, 2);
            hybrid.txCommit(hw);
        },
        TxAbort);
    EXPECT_EQ(x, 0u);
    EXPECT_EQ(y, 1u);
}

TEST(HybridNorecTest, HardwareCommitForcesSoftwareRevalidation)
{
    HybridNorecTm hybrid({}, 14);
    TxDesc hw(0, 1), sw(1, 2);
    hybrid.registerThread(hw);
    hybrid.registerThread(sw);

    std::uint64_t x = 0;

    // Software tx reads x...
    sw.htmBudgetLeft = 0;
    hybrid.txBegin(sw);
    EXPECT_EQ(hybrid.txRead(sw, &x), 0u);

    // ...then a hardware tx commits a new value of x.
    hw.htmBudgetLeft = 5;
    hybrid.txBegin(hw);
    hybrid.txWrite(hw, &x, 9);
    hybrid.txCommit(hw);
    EXPECT_EQ(x, 9u);

    // The software tx's value-based validation must now fail at
    // commit (it wrote something, forcing validation).
    hybrid.txWrite(sw, &x, 1);
    EXPECT_THROW(hybrid.txCommit(sw), TxAbort);
    EXPECT_EQ(x, 9u);
}

TEST(SimHtmTest, ConcurrentStressMixedFallback)
{
    SimHtmConfig cfg;
    cfg.writeCapacityLines = 16; // force frequent capacity fallbacks
    SimHtm htm(cfg, 14);

    constexpr int kThreads = 4;
    constexpr int kOps = 1200;
    std::vector<std::uint64_t> accounts(32, 100);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            TxDesc desc(t, 500 + t);
            htm.registerThread(desc);
            Rng rng(900 + t);
            for (int i = 0; i < kOps; ++i) {
                const bool big = rng.bernoulli(0.2);
                testing::runTx(htm, desc, [&](TxDesc &d) {
                    if (big) {
                        // Touches > capacity lines: must fall back.
                        std::uint64_t sum = 0;
                        for (auto &a : accounts)
                            sum += htm.txRead(d, &a);
                        htm.txWrite(d, &accounts[0], sum - sum + 100);
                        for (std::size_t k = 1; k < accounts.size(); ++k)
                            htm.txWrite(d, &accounts[k], 100);
                    } else {
                        const auto i1 = rng.nextBounded(accounts.size());
                        const auto i2 = rng.nextBounded(accounts.size());
                        if (i1 == i2)
                            return;
                        const auto a = htm.txRead(d, &accounts[i1]);
                        const auto b = htm.txRead(d, &accounts[i2]);
                        if (a == 0)
                            return;
                        htm.txWrite(d, &accounts[i1], a - 1);
                        htm.txWrite(d, &accounts[i2], b + 1);
                    }
                });
            }
            htm.deregisterThread(desc);
        });
    }
    for (auto &th : threads)
        th.join();
    // The "big" tx resets all accounts to 100; transfers conserve the
    // sum. Afterwards the total must be exactly 32*100 if the last big
    // tx dominates... which it need not. Instead assert bounds: the
    // sum is conserved modulo big-tx resets, so it equals 3200.
    std::uint64_t total = 0;
    for (const auto &a : accounts)
        total += a;
    EXPECT_EQ(total, 3200u);
}

} // namespace
} // namespace proteus::tm
