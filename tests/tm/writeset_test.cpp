#include <gtest/gtest.h>

#include <vector>

#include "tm/txdesc.hpp"

namespace proteus::tm {
namespace {

TEST(WriteSetTest, EmptyFindsNothing)
{
    WriteSet ws;
    std::uint64_t x = 0;
    EXPECT_EQ(ws.find(&x), nullptr);
    EXPECT_TRUE(ws.empty());
}

TEST(WriteSetTest, PutThenFind)
{
    WriteSet ws;
    std::uint64_t x = 0;
    ws.put(&x, 42);
    ASSERT_NE(ws.find(&x), nullptr);
    EXPECT_EQ(ws.find(&x)->value, 42u);
    EXPECT_EQ(ws.size(), 1u);
}

TEST(WriteSetTest, PutSameAddressUpdatesInPlace)
{
    WriteSet ws;
    std::uint64_t x = 0;
    ws.put(&x, 1);
    ws.put(&x, 2);
    EXPECT_EQ(ws.size(), 1u);
    EXPECT_EQ(ws.find(&x)->value, 2u);
}

TEST(WriteSetTest, ClearForgetsEntries)
{
    WriteSet ws;
    std::uint64_t x = 0;
    ws.put(&x, 1);
    ws.clear();
    EXPECT_TRUE(ws.empty());
    EXPECT_EQ(ws.find(&x), nullptr);
}

TEST(WriteSetTest, ReusableAcrossGenerations)
{
    WriteSet ws;
    std::uint64_t xs[8] = {};
    for (int gen = 0; gen < 100; ++gen) {
        for (int i = 0; i < 8; ++i)
            ws.put(&xs[i], static_cast<std::uint64_t>(gen * 8 + i));
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(ws.find(&xs[i])->value,
                      static_cast<std::uint64_t>(gen * 8 + i));
        ws.clear();
    }
}

TEST(WriteSetTest, GrowsPastInitialCapacity)
{
    WriteSet ws;
    std::vector<std::uint64_t> xs(5000, 0);
    for (std::size_t i = 0; i < xs.size(); ++i)
        ws.put(&xs[i], i);
    EXPECT_EQ(ws.size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        ASSERT_NE(ws.find(&xs[i]), nullptr);
        EXPECT_EQ(ws.find(&xs[i])->value, i);
    }
}

TEST(WriteSetTest, EntriesPreserveInsertionOrder)
{
    WriteSet ws;
    std::uint64_t a = 0, b = 0, c = 0;
    ws.put(&a, 1);
    ws.put(&b, 2);
    ws.put(&c, 3);
    ASSERT_EQ(ws.entries().size(), 3u);
    EXPECT_EQ(ws.entries()[0].addr, &a);
    EXPECT_EQ(ws.entries()[1].addr, &b);
    EXPECT_EQ(ws.entries()[2].addr, &c);
}

TEST(WriteSetTest, GrowPreservesPendingEntries)
{
    WriteSet ws;
    std::vector<std::uint64_t> xs(200, 0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        ws.put(&xs[i], i);
        // Every entry inserted so far must stay reachable as the table
        // rehashes underneath.
        ASSERT_NE(ws.find(&xs[0]), nullptr);
        EXPECT_EQ(ws.find(&xs[0])->value, 0u);
    }
}

} // namespace
} // namespace proteus::tm
