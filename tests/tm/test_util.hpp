/**
 * @file
 * Helpers for driving raw TM backends (no PolyTM) in tests.
 */

#ifndef PROTEUS_TESTS_TM_TEST_UTIL_HPP
#define PROTEUS_TESTS_TM_TEST_UTIL_HPP

#include <memory>

#include "tm/backend.hpp"
#include "tm/global_lock.hpp"
#include "tm/hybrid_norec.hpp"
#include "tm/norec.hpp"
#include "tm/sim_htm.hpp"
#include "tm/swisstm.hpp"
#include "tm/tinystm.hpp"
#include "tm/tl2.hpp"

namespace proteus::tm::testing {

/** Build a backend by kind with small tables (tests are small). */
inline std::unique_ptr<TmBackend>
makeBackend(BackendKind kind, SimHtmConfig htm = {})
{
    switch (kind) {
      case BackendKind::kGlobalLock:
        return std::make_unique<GlobalLockTm>();
      case BackendKind::kTl2:
        return std::make_unique<Tl2Tm>(14);
      case BackendKind::kTinyStm:
        return std::make_unique<TinyStmTm>(14);
      case BackendKind::kNorec:
        return std::make_unique<NorecTm>();
      case BackendKind::kSwissTm:
        return std::make_unique<SwissTm>(14);
      case BackendKind::kSimHtm:
        return std::make_unique<SimHtm>(htm, 14);
      case BackendKind::kHybridNorec:
        return std::make_unique<HybridNorecTm>(htm, 14);
      default:
        return nullptr;
    }
}

/** All kinds, for TEST_P instantiation. */
inline std::vector<BackendKind>
allBackendKinds()
{
    return {BackendKind::kGlobalLock, BackendKind::kTl2,
            BackendKind::kTinyStm,    BackendKind::kNorec,
            BackendKind::kSwissTm,    BackendKind::kSimHtm,
            BackendKind::kHybridNorec};
}

/**
 * Retry loop mirroring PolyTm::run for raw-backend tests, including a
 * simple HTM budget so emulated-HTM tests reach the fallback path.
 */
template <typename F>
void
runTx(TmBackend &backend, TxDesc &desc, F &&body)
{
    desc.consecutiveAborts = 0;
    desc.htmBudgetLeft = 5;
    for (;;) {
        backend.txBegin(desc);
        try {
            body(desc);
            backend.txCommit(desc);
            desc.consecutiveAborts = 0;
            return;
        } catch (const TxAbort &) {
            ++desc.consecutiveAborts;
            if (desc.htmBudgetLeft > 0)
                --desc.htmBudgetLeft;
            backoffOnAbort(desc);
        }
    }
}

} // namespace proteus::tm::testing

#endif // PROTEUS_TESTS_TM_TEST_UTIL_HPP
