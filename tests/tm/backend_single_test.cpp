/**
 * Single-threaded semantic tests, parameterized over every backend:
 * committed writes persist, read-own-writes, explicit abort rolls
 * back, large write sets survive, reset() clears metadata.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tm/test_util.hpp"

namespace proteus::tm {
namespace {

using testing::makeBackend;
using testing::runTx;

class BackendSingleTest : public ::testing::TestWithParam<BackendKind>
{
  protected:
    void
    SetUp() override
    {
        backend_ = makeBackend(GetParam());
        desc_ = std::make_unique<TxDesc>(0, 1234);
        backend_->registerThread(*desc_);
    }

    void
    TearDown() override
    {
        backend_->deregisterThread(*desc_);
    }

    std::unique_ptr<TmBackend> backend_;
    std::unique_ptr<TxDesc> desc_;
};

TEST_P(BackendSingleTest, CommitMakesWritesVisible)
{
    std::uint64_t x = 0, y = 0;
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        backend_->txWrite(d, &x, 7);
        backend_->txWrite(d, &y, 9);
    });
    EXPECT_EQ(x, 7u);
    EXPECT_EQ(y, 9u);
}

TEST_P(BackendSingleTest, ReadSeesCommittedState)
{
    std::uint64_t x = 123;
    std::uint64_t seen = 0;
    runTx(*backend_, *desc_,
          [&](TxDesc &d) { seen = backend_->txRead(d, &x); });
    EXPECT_EQ(seen, 123u);
}

TEST_P(BackendSingleTest, ReadOwnWrites)
{
    std::uint64_t x = 1;
    std::uint64_t seen = 0;
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        backend_->txWrite(d, &x, 2);
        seen = backend_->txRead(d, &x);
    });
    EXPECT_EQ(seen, 2u);
    EXPECT_EQ(x, 2u);
}

TEST_P(BackendSingleTest, WriteAfterReadSameLocation)
{
    std::uint64_t x = 10;
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        const std::uint64_t v = backend_->txRead(d, &x);
        backend_->txWrite(d, &x, v + 5);
        EXPECT_EQ(backend_->txRead(d, &x), v + 5);
    });
    EXPECT_EQ(x, 15u);
}

TEST_P(BackendSingleTest, ExplicitAbortRollsBack)
{
    // Runs on every backend, including the global lock: its in-place
    // writes are undo-logged, so explicit aborts restore memory.
    std::uint64_t x = 5;
    bool aborted_once = false;
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        backend_->txWrite(d, &x, 99);
        if (!aborted_once) {
            aborted_once = true;
            backend_->abortTx(d, AbortCause::kExplicit);
        }
    });
    // First attempt aborted (no 99 visible in between), second
    // attempt committed.
    EXPECT_TRUE(aborted_once);
    EXPECT_EQ(x, 99u);
}

TEST_P(BackendSingleTest, AbortedWritesNeverVisible)
{
    std::uint64_t x = 5;
    int attempts = 0;
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        ++attempts;
        if (attempts == 1) {
            backend_->txWrite(d, &x, 42);
            // The global lock writes in place (undo-logged); every
            // other backend buffers, and a buffered write must not
            // leak to memory before commit. Either way the abort
            // below must leave x == 5 — the semantic property.
            if (GetParam() != BackendKind::kGlobalLock)
                EXPECT_EQ(x, 5u)
                    << "redo-log write leaked before commit";
            backend_->abortTx(d, AbortCause::kExplicit);
        }
    });
    EXPECT_EQ(x, 5u);
}

TEST_P(BackendSingleTest, LargeWriteSetCommits)
{
    std::vector<std::uint64_t> xs(3000, 0);
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        for (std::size_t i = 0; i < xs.size(); ++i)
            backend_->txWrite(d, &xs[i], i + 1);
    });
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_EQ(xs[i], i + 1);
}

TEST_P(BackendSingleTest, SequentialTransactionsAccumulate)
{
    std::uint64_t counter = 0;
    for (int i = 0; i < 100; ++i) {
        runTx(*backend_, *desc_, [&](TxDesc &d) {
            backend_->txWrite(d, &counter,
                              backend_->txRead(d, &counter) + 1);
        });
    }
    EXPECT_EQ(counter, 100u);
}

TEST_P(BackendSingleTest, ResetWhileQuiescedKeepsWorking)
{
    std::uint64_t x = 0;
    runTx(*backend_, *desc_,
          [&](TxDesc &d) { backend_->txWrite(d, &x, 1); });
    backend_->reset();
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        backend_->txWrite(d, &x, backend_->txRead(d, &x) + 1);
    });
    EXPECT_EQ(x, 2u);
}

TEST_P(BackendSingleTest, ReadOnlyTransactionCommits)
{
    std::uint64_t x = 77;
    std::uint64_t total = 0;
    runTx(*backend_, *desc_, [&](TxDesc &d) {
        total = 0;
        for (int i = 0; i < 10; ++i)
            total += backend_->txRead(d, &x);
    });
    EXPECT_EQ(total, 770u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendSingleTest,
    ::testing::ValuesIn(testing::allBackendKinds()),
    [](const ::testing::TestParamInfo<BackendKind> &info) {
        return std::string(backendName(info.param));
    });

} // namespace
} // namespace proteus::tm
