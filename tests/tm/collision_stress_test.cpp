/**
 * Property sweep: correctness must be independent of the orec-table
 * size. Tiny tables force massive stripe aliasing (many addresses per
 * versioned lock), which exercises false conflicts, duplicate-stripe
 * locking and lock-release paths that big tables rarely hit.
 */

#include <gtest/gtest.h>

#include <thread>
#include <tuple>
#include <vector>

#include "tm/test_util.hpp"

namespace proteus::tm {
namespace {

using Param = std::tuple<BackendKind, unsigned>; // backend, log2 orecs

class CollisionStressTest : public ::testing::TestWithParam<Param>
{
  protected:
    std::unique_ptr<TmBackend>
    make()
    {
        const auto [kind, log2] = GetParam();
        switch (kind) {
          case BackendKind::kTl2:
            return std::make_unique<Tl2Tm>(log2);
          case BackendKind::kTinyStm:
            return std::make_unique<TinyStmTm>(log2);
          case BackendKind::kSwissTm:
            return std::make_unique<SwissTm>(log2);
          case BackendKind::kSimHtm:
            return std::make_unique<SimHtm>(SimHtmConfig{}, log2);
          default:
            return nullptr;
        }
    }
};

TEST_P(CollisionStressTest, BankInvariantUnderHeavyAliasing)
{
    auto backend = make();
    constexpr int kThreads = 4;
    constexpr int kAccounts = 128; // >> stripes at log2=2..4
    constexpr int kTransfers = 800;
    std::vector<std::uint64_t> accounts(kAccounts, 50);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            TxDesc desc(t, 77 + t);
            backend->registerThread(desc);
            Rng rng(3000 + t);
            for (int i = 0; i < kTransfers; ++i) {
                const auto from = rng.nextBounded(kAccounts);
                const auto to = rng.nextBounded(kAccounts);
                if (from == to)
                    continue;
                testing::runTx(*backend, desc, [&](TxDesc &d) {
                    const auto a = backend->txRead(d, &accounts[from]);
                    const auto b = backend->txRead(d, &accounts[to]);
                    if (a == 0)
                        return;
                    backend->txWrite(d, &accounts[from], a - 1);
                    backend->txWrite(d, &accounts[to], b + 1);
                });
            }
            backend->deregisterThread(desc);
        });
    }
    for (auto &th : threads)
        th.join();

    std::uint64_t total = 0;
    for (const auto &a : accounts)
        total += a;
    EXPECT_EQ(total, 50u * kAccounts);
}

TEST_P(CollisionStressTest, SingleThreadSemanticsSurviveAliasing)
{
    auto backend = make();
    TxDesc desc(0, 11);
    backend->registerThread(desc);

    // Many addresses, few stripes: writes to aliased stripes within
    // one transaction must all commit correctly.
    std::vector<std::uint64_t> xs(512, 0);
    testing::runTx(*backend, desc, [&](TxDesc &d) {
        for (std::size_t i = 0; i < xs.size(); ++i)
            backend->txWrite(d, &xs[i], i + 1);
        // Read-own-write through stripe aliases.
        for (std::size_t i = 0; i < xs.size(); i += 37)
            EXPECT_EQ(backend->txRead(d, &xs[i]), i + 1);
    });
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_EQ(xs[i], i + 1);
    backend->deregisterThread(desc);
}

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    const auto [kind, log2] = info.param;
    return std::string(backendName(kind)) + "_log2_" +
           std::to_string(log2);
}

INSTANTIATE_TEST_SUITE_P(
    TableSizes, CollisionStressTest,
    ::testing::Combine(
        ::testing::Values(BackendKind::kTl2, BackendKind::kTinyStm,
                          BackendKind::kSwissTm, BackendKind::kSimHtm),
        ::testing::Values(2u, 4u, 8u, 14u)),
    paramName);

} // namespace
} // namespace proteus::tm
