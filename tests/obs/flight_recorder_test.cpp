/**
 * Flight-recorder suite:
 *
 *  1. Ring mechanics — events survive into dumpRecent(), sorted by
 *     (seq, order); wrap-around keeps only the newest kSlotsPerRing
 *     per ring; maxEvents trims from the old end; disabled recorders
 *     record nothing.
 *  2. Concurrent recording — threads racing record() against
 *     dumpRecent() stay TSan-clean and every surviving event is
 *     well-formed.
 *  3. Racing KvStore commits — cross-shard 2PC writers race; the
 *     store recorder's dump must contain one flip per committed
 *     multiOp, merged in commitSeq order with distinct sequences
 *     (the commit-point order IS the dump order).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "obs/flight_recorder.hpp"

namespace proteus::obs {
namespace {

TEST(FlightRecorderTest, DumpSortsBySeqThenOrder)
{
    FlightRecorder recorder;
    // Record out of seq order; same-seq events must keep record order.
    recorder.record(TraceKind::kTwoPhaseFlip, 1, 30);
    recorder.record(TraceKind::kTwoPhasePrepare, 0, 10, 2, 5);
    recorder.record(TraceKind::kTwoPhaseReserve, -1, 10);
    recorder.record(TraceKind::kSnapshotRetry, 2, 20, 1);

    const std::vector<TraceEvent> events = recorder.dumpRecent();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].seq, 10u);
    EXPECT_EQ(events[0].kind, TraceKind::kTwoPhasePrepare);
    EXPECT_EQ(events[0].shard, 0);
    EXPECT_EQ(events[0].a, 2u);
    EXPECT_EQ(events[0].b, 5u);
    EXPECT_EQ(events[1].seq, 10u);
    EXPECT_EQ(events[1].kind, TraceKind::kTwoPhaseReserve);
    EXPECT_EQ(events[1].shard, -1);
    EXPECT_LT(events[0].order, events[1].order);
    EXPECT_EQ(events[2].kind, TraceKind::kSnapshotRetry);
    EXPECT_EQ(events[3].kind, TraceKind::kTwoPhaseFlip);

    EXPECT_EQ(events[3].format(), "[seq 30] shard 1 2pc.flip a=0 b=0");

    // maxEvents keeps the most recent tail.
    const std::vector<TraceEvent> tail = recorder.dumpRecent(2);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].kind, TraceKind::kSnapshotRetry);
    EXPECT_EQ(tail[1].kind, TraceKind::kTwoPhaseFlip);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndDisabledRecordsNothing)
{
    FlightRecorder recorder;
    const std::size_t n = FlightRecorder::kSlotsPerRing + 100;
    for (std::size_t i = 0; i < n; ++i)
        recorder.record(TraceKind::kGrow, 0, i);
    const std::vector<TraceEvent> events = recorder.dumpRecent();
    // One thread = one ring: exactly kSlotsPerRing survivors, and
    // they are the newest ones.
    ASSERT_EQ(events.size(), FlightRecorder::kSlotsPerRing);
    EXPECT_EQ(events.front().seq, 100u);
    EXPECT_EQ(events.back().seq, n - 1);

    FlightRecorder off(false);
    off.record(TraceKind::kGrow, 0, 1);
    EXPECT_TRUE(off.dumpRecent().empty());
    off.setEnabled(true);
    off.record(TraceKind::kGrow, 0, 2);
    EXPECT_EQ(off.dumpRecent().size(), 1u);
}

TEST(FlightRecorderTest, ConcurrentRecordAndDumpStayWellFormed)
{
    FlightRecorder recorder;
    constexpr int kThreads = 6;
    constexpr std::uint64_t kPerThread = 20000;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                recorder.record(TraceKind::kSnapshotRetry, t, i, i, t);
        });
    }
    std::thread reader([&] {
        while (!stop.load()) {
            for (const TraceEvent &ev : recorder.dumpRecent(256)) {
                // A torn slot would mix fields from two events.
                ASSERT_EQ(ev.kind, TraceKind::kSnapshotRetry);
                ASSERT_EQ(ev.a, ev.seq);
                ASSERT_EQ(ev.b, static_cast<std::uint64_t>(ev.shard));
                ASSERT_NE(ev.order, 0u);
            }
        }
    });
    for (std::thread &w : writers)
        w.join();
    stop.store(true);
    reader.join();

    // Quiescent dump is fully sorted.
    const std::vector<TraceEvent> events = recorder.dumpRecent();
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].seq, events[i - 1].seq);
        if (events[i].seq == events[i - 1].seq)
            EXPECT_GT(events[i].order, events[i - 1].order);
    }
}

TEST(FlightRecorderTest, RacingKvStoreCommitsMergeInCommitSeqOrder)
{
    using namespace proteus::kvstore;
    constexpr int kWriters = 4;
    constexpr int kCommitsPerWriter = 200;
    constexpr std::uint64_t kKeys = 64;

    KvStoreOptions options;
    options.numShards = 4;
    options.log2SlotsPerShard = 10;
    options.commitMode = CommitMode::kTwoPhase;
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(options);

    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            std::vector<KvOp> ops;
            for (int i = 0; i < kCommitsPerWriter; ++i) {
                // Two keys on distinct shards force the 2PC path.
                const std::uint64_t base =
                    static_cast<std::uint64_t>(w * kCommitsPerWriter + i);
                std::uint64_t first = base % kKeys;
                std::uint64_t second = (first + 1) % kKeys;
                while (store.shardOf(second) == store.shardOf(first))
                    second = (second + 1) % kKeys;
                ops.clear();
                ops.push_back({KvOp::Kind::kPut, first, base, false});
                ops.push_back(
                    {KvOp::Kind::kPut, second, base + 1, false});
                ASSERT_TRUE(store.multiOp(session, ops));
            }
            store.closeSession(session);
        });
    }
    for (std::thread &th : threads)
        th.join();

    const std::vector<TraceEvent> events =
        store.flightRecorder().dumpRecent();
    ASSERT_FALSE(events.empty());

    std::set<std::uint64_t> flipSeqs;
    std::uint64_t lastSeq = 0;
    for (const TraceEvent &ev : events) {
        EXPECT_GE(ev.seq, lastSeq); // merged in commitSeq order
        lastSeq = ev.seq;
        if (ev.kind == TraceKind::kTwoPhaseFlip) {
            // Every commit point reserved a distinct store-wide seq.
            EXPECT_TRUE(flipSeqs.insert(ev.seq).second);
        }
    }
    // Rings are big enough that no flip was recycled, and every
    // multiOp crossed shards, so each commit contributed one flip.
    EXPECT_EQ(flipSeqs.size(),
              static_cast<std::size_t>(kWriters * kCommitsPerWriter));
    EXPECT_LE(*flipSeqs.rbegin(), store.commitSequence());
}

} // namespace
} // namespace proteus::obs
