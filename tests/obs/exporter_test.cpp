/**
 * Exporter golden-format suite: a fixed TelemetrySnapshot must render
 * byte-for-byte to the documented JSON and Prometheus text formats —
 * downstream scrapers parse these strings, so any drift is a break.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/metric_registry.hpp"

namespace proteus::obs {
namespace {

TelemetrySnapshot
goldenSnapshot()
{
    MetricRegistry registry;
    registry.counter("ops_total").add(1234);
    registry.gauge("bytes_live").set(4096);
    Histogram &h = registry.histogram("get_latency_ns");
    // 10 samples at 100ns land in one bucket (upper edge 111); the
    // lone 900ns outlier only surfaces as the exact max (the p95/p99
    // ranks of 11 samples stay inside the first bucket).
    for (int i = 0; i < 10; ++i)
        h.record(100);
    h.record(900);
    TelemetrySnapshot snap = registry.snapshot();
    snap.commitSeq = 77;
    return snap;
}

TEST(ExporterTest, JsonGoldenFormat)
{
    const std::string expected =
        "{\n"
        "  \"commit_seq\": 77,\n"
        "  \"metrics\": {\n"
        "    \"ops_total\": 1234,\n"
        "    \"bytes_live\": 4096,\n"
        "    \"get_latency_ns\": {\"count\": 11, \"p50_ns\": 111, "
        "\"p95_ns\": 111, \"p99_ns\": 111, \"max_ns\": 900}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(goldenSnapshot().toJson(), expected);
}

TEST(ExporterTest, PrometheusGoldenFormat)
{
    const std::string expected =
        "# TYPE proteus_commit_seq gauge\n"
        "proteus_commit_seq 77\n"
        "# TYPE proteus_ops_total counter\n"
        "proteus_ops_total 1234\n"
        "# TYPE proteus_bytes_live gauge\n"
        "proteus_bytes_live 4096\n"
        "# TYPE proteus_get_latency_ns summary\n"
        "proteus_get_latency_ns{quantile=\"0.5\"} 111\n"
        "proteus_get_latency_ns{quantile=\"0.95\"} 111\n"
        "proteus_get_latency_ns{quantile=\"0.99\"} 111\n"
        "proteus_get_latency_ns_count 11\n";
    EXPECT_EQ(goldenSnapshot().toPrometheus(), expected);
}

TEST(ExporterTest, CustomPrefixAndEmptySnapshot)
{
    TelemetrySnapshot empty;
    empty.commitSeq = 5;
    EXPECT_EQ(empty.toPrometheus("kv_"),
              "# TYPE kv_commit_seq gauge\nkv_commit_seq 5\n");
    EXPECT_EQ(empty.toJson(),
              "{\n  \"commit_seq\": 5,\n  \"metrics\": {\n  }\n}\n");
    EXPECT_EQ(empty.value("missing"), 0u);
    EXPECT_EQ(empty.find("missing"), nullptr);
}

} // namespace
} // namespace proteus::obs
