/**
 * MetricRegistry suite:
 *
 *  1. Exactness under contention — 8 threads hammer shared counters
 *     and histograms through cached handles; every increment must
 *     survive into the totals (striped relaxed adds lose nothing).
 *  2. Register-or-get identity — the same name returns the same
 *     instrument; a kind clash throws instead of aliasing.
 *  3. Callback bridges — counterFn/gaugeFn are sampled at snapshot
 *     time, so external counters move between snapshots.
 *  4. Histogram stripes — concurrent records merge into one
 *     LogLinearHistogram whose count/max/percentiles are exact.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metric_registry.hpp"

namespace proteus::obs {
namespace {

TEST(MetricRegistryTest, EightThreadsCountersAndHistogramsExact)
{
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 200000;

    MetricRegistry registry;
    Counter &hits = registry.counter("hits");
    Counter &bulk = registry.counter("bulk");
    Histogram &latency = registry.histogram("latency_ns");

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                hits.add(1, static_cast<std::size_t>(t));
                bulk.add(3, static_cast<std::size_t>(t));
                latency.record(i % 5000, static_cast<std::size_t>(t));
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(hits.total(), kThreads * kPerThread);
    EXPECT_EQ(bulk.total(), 3 * kThreads * kPerThread);

    const LogLinearHistogram merged = latency.snapshot();
    EXPECT_EQ(merged.count(), kThreads * kPerThread);
    EXPECT_EQ(merged.maxNanos(), 4999u);
    // The p99 upper bucket edge must cover the true p99 with the
    // histogram's <= 25% relative error.
    const std::uint64_t p99 = merged.percentileNanos(0.99);
    EXPECT_GE(p99, 4949u);
    EXPECT_LE(p99, 4999u);

    const TelemetrySnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.value("hits"), kThreads * kPerThread);
    const MetricSample *hist = snap.find("latency_ns");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->kind, MetricKind::kHistogram);
    EXPECT_EQ(hist->hist.count(), kThreads * kPerThread);
}

TEST(MetricRegistryTest, RegisterOrGetReturnsSameInstrument)
{
    MetricRegistry registry;
    Counter &a = registry.counter("ops");
    Counter &b = registry.counter("ops");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.total(), 7u);

    Gauge &g1 = registry.gauge("depth");
    Gauge &g2 = registry.gauge("depth");
    EXPECT_EQ(&g1, &g2);

    EXPECT_THROW(registry.gauge("ops"), std::invalid_argument);
    EXPECT_THROW(registry.histogram("depth"), std::invalid_argument);
    EXPECT_THROW(registry.counterFn("ops", [] { return 0ull; }),
                 std::invalid_argument);
}

TEST(MetricRegistryTest, CallbackBridgesSampledAtSnapshot)
{
    MetricRegistry registry;
    std::atomic<std::uint64_t> external{10};
    registry.counterFn("tm_commits",
                       [&] { return external.load(); });
    registry.gaugeFn("bytes_live", [&] { return 2 * external.load(); });

    EXPECT_EQ(registry.snapshot().value("tm_commits"), 10u);
    external.store(42);
    const TelemetrySnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.value("tm_commits"), 42u);
    EXPECT_EQ(snap.value("bytes_live"), 84u);
    ASSERT_NE(snap.find("bytes_live"), nullptr);
    EXPECT_EQ(snap.find("bytes_live")->kind, MetricKind::kGauge);
}

TEST(MetricRegistryTest, GaugeSetAndAdd)
{
    MetricRegistry registry;
    Gauge &g = registry.gauge("queue_depth");
    g.set(100);
    g.add(-25);
    EXPECT_EQ(g.value(), 75u);
    EXPECT_EQ(registry.snapshot().value("queue_depth"), 75u);
}

TEST(MetricRegistryTest, SnapshotPreservesRegistrationOrder)
{
    MetricRegistry registry;
    registry.counter("zeta");
    registry.gauge("alpha");
    registry.histogram("mid");
    const TelemetrySnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.samples.size(), 3u);
    EXPECT_EQ(snap.samples[0].name, "zeta");
    EXPECT_EQ(snap.samples[1].name, "alpha");
    EXPECT_EQ(snap.samples[2].name, "mid");
}

TEST(MetricRegistryTest, HistogramMergeDataFoldsWorkerCopies)
{
    MetricRegistry registry;
    Histogram &h = registry.histogram("phase_latency");

    LogLinearHistogram worker0;
    LogLinearHistogram worker1;
    for (std::uint64_t n = 0; n < 1000; ++n)
        worker0.record(n);
    for (std::uint64_t n = 0; n < 500; ++n)
        worker1.record(10 * n);
    h.mergeData(worker0, 0);
    h.mergeData(worker1, 1);

    const LogLinearHistogram merged = h.snapshot();
    EXPECT_EQ(merged.count(), 1500u);
    EXPECT_EQ(merged.maxNanos(), 4990u);

    LogLinearHistogram reference = worker0;
    reference.merge(worker1);
    EXPECT_EQ(merged.percentileNanos(0.5), reference.percentileNanos(0.5));
    EXPECT_EQ(merged.percentileNanos(0.99),
              reference.percentileNanos(0.99));
}

} // namespace
} // namespace proteus::obs
