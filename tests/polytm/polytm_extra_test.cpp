/**
 * Additional PolyTM edge cases: typed fields over the full payload
 * spectrum, instance independence, registration churn, reconfigure
 * storms, and abort accounting.
 */

#include <gtest/gtest.h>

#include <thread>

#include "polytm/polytm.hpp"

namespace proteus::polytm {
namespace {

TEST(PolyTmExtraTest, TxFieldSupportsVariedPayloads)
{
    PolyTm poly;
    auto token = poly.registerThread();

    TxField<std::int8_t> tiny(-5);
    TxField<std::uint16_t> medium(65535);
    TxField<std::int64_t> negative(-123456789012345LL);
    TxField<float> fraction(0.25f);
    int sentinel = 42;
    TxField<int *> pointer(&sentinel);

    poly.run(token, [&](Tx &tx) {
        tx.write(tiny, static_cast<std::int8_t>(tx.read(tiny) - 1));
        tx.write(medium, static_cast<std::uint16_t>(
                             tx.read(medium) - 1));
        tx.write(negative, tx.read(negative) * 2);
        tx.write(fraction, tx.read(fraction) + 0.5f);
        *tx.read(pointer) += 1; // read the pointer transactionally
    });

    EXPECT_EQ(tiny.rawGet(), -6);
    EXPECT_EQ(medium.rawGet(), 65534);
    EXPECT_EQ(negative.rawGet(), -246913578024690LL);
    EXPECT_FLOAT_EQ(fraction.rawGet(), 0.75f);
    EXPECT_EQ(sentinel, 43);
    poly.deregisterThread(token);
}

TEST(PolyTmExtraTest, InstancesAreIndependent)
{
    PolyTm a({tm::BackendKind::kTl2, 2, {}});
    PolyTm b({tm::BackendKind::kNorec, 4, {}});
    auto ta = a.registerThread();
    auto tb = b.registerThread();

    TxField<int> x(0);
    a.run(ta, [&](Tx &tx) { tx.write(x, 1); });
    b.run(tb, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });
    EXPECT_EQ(x.rawGet(), 2);

    a.reconfigure({tm::BackendKind::kSwissTm, 1, {}});
    EXPECT_EQ(b.currentConfig().backend, tm::BackendKind::kNorec);
    EXPECT_EQ(a.snapshotStats().commits, 1u);
    EXPECT_EQ(b.snapshotStats().commits, 1u);

    a.deregisterThread(ta);
    b.deregisterThread(tb);
}

TEST(PolyTmExtraTest, RegistrationChurnReusesTids)
{
    PolyTm poly;
    for (int round = 0; round < 50; ++round) {
        auto token = poly.registerThread();
        EXPECT_EQ(token.tid, 0) << "lowest tid must be reused";
        TxField<int> x(round);
        poly.run(token, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });
        EXPECT_EQ(x.rawGet(), round + 1);
        poly.deregisterThread(token);
    }
    EXPECT_EQ(poly.registeredThreads(), 0);
    EXPECT_EQ(poly.snapshotStats().commits, 50u);
}

TEST(PolyTmExtraTest, ReconfigureStormWithIdleThreads)
{
    PolyTm poly({tm::BackendKind::kTl2, 8, {}});
    auto t0 = poly.registerThread();
    auto t1 = poly.registerThread();

    // Nobody is running transactions: the storm must not wedge the
    // gate state.
    const tm::BackendKind kinds[] = {
        tm::BackendKind::kNorec, tm::BackendKind::kTinyStm,
        tm::BackendKind::kSimHtm, tm::BackendKind::kTl2};
    for (int i = 0; i < 200; ++i)
        poly.reconfigure({kinds[i % 4], 1 + i % 8, {}});

    poly.reconfigure({tm::BackendKind::kTl2, 8, {}});
    TxField<int> x(0);
    poly.run(t0, [&](Tx &tx) { tx.write(x, 1); });
    poly.run(t1, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });
    EXPECT_EQ(x.rawGet(), 2);

    poly.deregisterThread(t0);
    poly.deregisterThread(t1);
}

TEST(PolyTmExtraTest, AbortsAttributedToCauses)
{
    tm::SimHtmConfig htm;
    htm.writeCapacityLines = 2;
    PolyTm poly({tm::BackendKind::kSimHtm, 1, {}}, htm);
    auto token = poly.registerThread();

    std::vector<TxField<int>> xs(32);
    poly.run(token, [&](Tx &tx) {
        for (auto &x : xs)
            tx.write(x, 1);
    });
    bool once = false;
    poly.run(token, [&](Tx &tx) {
        tx.write(xs[0], 2);
        if (!once) {
            once = true;
            tx.retry();
        }
    });

    const PolyStats stats = poly.snapshotStats();
    std::uint64_t by_cause = 0;
    for (const auto n : stats.abortsByCause)
        by_cause += n;
    EXPECT_EQ(by_cause, stats.aborts)
        << "every abort must carry exactly one cause";
    EXPECT_GT(stats.abortsByCause[static_cast<std::size_t>(
                  tm::AbortCause::kCapacity)],
              0u);
    EXPECT_EQ(stats.abortsByCause[static_cast<std::size_t>(
                  tm::AbortCause::kExplicit)],
              1u);
    poly.deregisterThread(token);
}

TEST(PolyTmExtraTest, RunResetsConsecutiveAbortsBetweenTransactions)
{
    PolyTm poly;
    auto token = poly.registerThread();
    TxField<int> x(0);
    // A transaction that aborts twice then commits.
    int tries = 0;
    poly.run(token, [&](Tx &tx) {
        tx.write(x, 1);
        if (++tries < 3)
            tx.retry();
    });
    EXPECT_EQ(token.desc->consecutiveAborts, 0u)
        << "commit must clear the backoff state";
    poly.deregisterThread(token);
}

TEST(PolyTmExtraTest, ThreadsBeyondMaxRejected)
{
    PolyTm poly;
    std::vector<ThreadToken> tokens;
    for (int i = 0; i < tm::kMaxThreads; ++i)
        tokens.push_back(poly.registerThread());
    EXPECT_THROW((void)poly.registerThread(), std::runtime_error);
    for (auto &t : tokens)
        poly.deregisterThread(t);
}

TEST(PolyTmExtraTest, TryRunRespectsDegreeAndPinUnpinIsSymmetric)
{
    // Degree 1: tid 1 starts disabled, so tryRun must refuse without
    // parking. A pin enables it; the unpin must re-disable it (a
    // transient pin, as used by KvStore::multiOp, may not defeat the
    // configured parallelism degree permanently).
    PolyTm poly(TmConfig{tm::BackendKind::kTl2, 1, {}});
    auto token0 = poly.registerThread();
    auto token1 = poly.registerThread();
    TxField<int> field(0);

    auto bump = [&](Tx &tx) { tx.write(field, tx.read(field) + 1); };
    EXPECT_TRUE(poly.tryRun(token0, bump));
    EXPECT_FALSE(poly.tryRun(token1, bump)) << "tid 1 is disabled";
    EXPECT_EQ(field.rawGet(), 1);

    poly.setPinned(token1.tid, true);
    EXPECT_TRUE(poly.tryRun(token1, bump));
    poly.setPinned(token1.tid, false);
    EXPECT_FALSE(poly.tryRun(token1, bump))
        << "unpin must put the thread back behind the gate";
    EXPECT_EQ(field.rawGet(), 2);

    // Raising the degree admits it again.
    poly.reconfigure({tm::BackendKind::kTl2, 2, {}});
    EXPECT_TRUE(poly.tryRun(token1, bump));
    EXPECT_EQ(field.rawGet(), 3);

    poly.resumeAllForShutdown();
    poly.deregisterThread(token0);
    poly.deregisterThread(token1);
}

} // namespace
} // namespace proteus::polytm
