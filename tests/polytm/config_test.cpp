#include <gtest/gtest.h>

#include <set>

#include "polytm/config.hpp"
#include "polytm/kpi.hpp"

namespace proteus::polytm {
namespace {

TEST(ConfigSpaceTest, MachineAHas130Configurations)
{
    EXPECT_EQ(ConfigSpace::machineA().size(), 130u);
}

TEST(ConfigSpaceTest, MachineBHas32Configurations)
{
    EXPECT_EQ(ConfigSpace::machineB().size(), 32u);
}

TEST(ConfigSpaceTest, LabelsAreUnique)
{
    for (const auto &space :
         {ConfigSpace::machineA(), ConfigSpace::machineB()}) {
        std::set<std::string> labels;
        for (const auto &c : space.all())
            labels.insert(c.label());
        EXPECT_EQ(labels.size(), space.size());
    }
}

TEST(ConfigSpaceTest, IndexOfRoundTrips)
{
    const auto space = ConfigSpace::machineA();
    for (std::size_t i = 0; i < space.size(); ++i)
        EXPECT_EQ(space.indexOf(space.at(i)), static_cast<int>(i));
}

TEST(ConfigSpaceTest, MachineBHasNoHtm)
{
    const auto space = ConfigSpace::machineB();
    for (const auto &c : space.all()) {
        EXPECT_NE(c.backend, tm::BackendKind::kSimHtm);
        EXPECT_NE(c.backend, tm::BackendKind::kHybridNorec);
    }
}

TEST(ConfigSpaceTest, MachineAThreadRangeIsOneToEight)
{
    const auto space = ConfigSpace::machineA();
    for (const auto &c : space.all()) {
        EXPECT_GE(c.threads, 1);
        EXPECT_LE(c.threads, 8);
    }
}

TEST(TmConfigTest, EqualityIgnoresHtmKnobsForStms)
{
    TmConfig a{tm::BackendKind::kTl2, 4, {}};
    TmConfig b{tm::BackendKind::kTl2, 4, {}};
    b.cm.htmBudget = 999;
    EXPECT_EQ(a, b);
}

TEST(TmConfigTest, EqualityUsesHtmKnobsForHtm)
{
    TmConfig a{tm::BackendKind::kSimHtm, 4, {}};
    TmConfig b = a;
    b.cm.htmBudget = a.cm.htmBudget + 1;
    EXPECT_FALSE(a == b);
}

TEST(TmConfigTest, LabelFormat)
{
    TmConfig stm{tm::BackendKind::kTinyStm, 4, {}};
    EXPECT_EQ(stm.label(), "tiny:4t");

    TmConfig htm{tm::BackendKind::kSimHtm, 8, {}};
    htm.cm.htmBudget = 4;
    htm.cm.capacityPolicy = tm::CapacityPolicy::kHalve;
    EXPECT_EQ(htm.label(), "htm:8t:B4:halve");
}

TEST(KpiTest, OrientationAndNames)
{
    EXPECT_TRUE(kpiIsMaximize(KpiKind::kThroughput));
    EXPECT_FALSE(kpiIsMaximize(KpiKind::kExecTime));
    EXPECT_FALSE(kpiIsMaximize(KpiKind::kEdp));
    EXPECT_EQ(kpiName(KpiKind::kEdp), "edp");
}

TEST(PowerModelTest, EnergyAndEdpScale)
{
    PowerModel pm;
    pm.staticWatts = 10;
    pm.perThreadWatts = 5;
    EXPECT_DOUBLE_EQ(pm.watts(2), 20.0);
    EXPECT_DOUBLE_EQ(pm.energyJoules(3.0, 2), 60.0);
    EXPECT_DOUBLE_EQ(pm.edp(3.0, 2), 180.0);
}

} // namespace
} // namespace proteus::polytm
