/**
 * End-to-end PolyTM tests: the typed API, stats, quiesced backend
 * switching under load, parallelism-degree changes, pinning, and
 * contention-management hot updates.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "polytm/polytm.hpp"

namespace proteus::polytm {
namespace {

TEST(PolyTmTest, SingleThreadTypedFields)
{
    PolyTm poly;
    auto token = poly.registerThread();

    TxField<int> x(5);
    TxField<double> d(1.5);
    TxField<bool> flag(false);

    poly.run(token, [&](Tx &tx) {
        tx.write(x, tx.read(x) + 1);
        tx.write(d, tx.read(d) * 2.0);
        tx.write(flag, true);
    });

    EXPECT_EQ(x.rawGet(), 6);
    EXPECT_DOUBLE_EQ(d.rawGet(), 3.0);
    EXPECT_TRUE(flag.rawGet());
    poly.deregisterThread(token);
}

TEST(PolyTmTest, StatsCountCommits)
{
    PolyTm poly;
    auto token = poly.registerThread();
    TxField<std::uint64_t> x(0);
    for (int i = 0; i < 50; ++i)
        poly.run(token, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });
    const PolyStats stats = poly.snapshotStats();
    EXPECT_EQ(stats.commits, 50u);
    poly.deregisterThread(token);
}

TEST(PolyTmTest, RetryIsCountedAsExplicitAbort)
{
    PolyTm poly;
    auto token = poly.registerThread();
    TxField<int> x(0);
    bool once = false;
    poly.run(token, [&](Tx &tx) {
        tx.write(x, 1);
        if (!once) {
            once = true;
            tx.retry();
        }
    });
    const PolyStats stats = poly.snapshotStats();
    EXPECT_EQ(stats.commits, 1u);
    EXPECT_EQ(stats.abortsByCause[static_cast<std::size_t>(
                  tm::AbortCause::kExplicit)],
              1u);
    poly.deregisterThread(token);
}

TEST(PolyTmTest, ReconfigureSwitchesBackend)
{
    PolyTm poly({tm::BackendKind::kTl2, 2, {}});
    auto token = poly.registerThread();
    TxField<int> x(0);

    poly.run(token, [&](Tx &tx) { tx.write(x, 1); });
    poly.reconfigure({tm::BackendKind::kNorec, 2, {}});
    poly.run(token, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });
    poly.reconfigure({tm::BackendKind::kSimHtm, 2, {}});
    poly.run(token, [&](Tx &tx) { tx.write(x, tx.read(x) + 1); });

    EXPECT_EQ(x.rawGet(), 3);
    EXPECT_EQ(poly.currentConfig().backend, tm::BackendKind::kSimHtm);
    poly.deregisterThread(token);
}

TEST(PolyTmTest, SwitchingUnderLoadPreservesInvariant)
{
    PolyTm poly({tm::BackendKind::kTl2, 8, {}});
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 1500;
    TxField<std::uint64_t> counter(0);

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            auto token = poly.registerThread();
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                poly.run(token, [&](Tx &tx) {
                    tx.write(counter, tx.read(counter) + 1);
                });
            }
            poly.deregisterThread(token);
        });
    }

    // Adapter: rotate through every backend while workers hammer.
    const tm::BackendKind kinds[] = {
        tm::BackendKind::kNorec,   tm::BackendKind::kTinyStm,
        tm::BackendKind::kSwissTm, tm::BackendKind::kSimHtm,
        tm::BackendKind::kHybridNorec, tm::BackendKind::kTl2,
    };
    for (int round = 0; round < 12; ++round) {
        poly.reconfigure({kinds[round % 6], 8, {}});
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    for (auto &w : workers)
        w.join();
    EXPECT_EQ(counter.rawGet(), kThreads * kPerThread);
}

TEST(PolyTmTest, ParallelismDegreeBlocksExtraThreads)
{
    PolyTm poly({tm::BackendKind::kTl2, 1, {}});

    std::atomic<bool> stop{false};
    std::atomic<int> t1_commits{0};

    // Thread with tid 0: always enabled. Thread tid 1: blocked at P=1.
    auto token0 = poly.registerThread();

    std::thread worker([&] {
        auto token1 = poly.registerThread();
        while (!stop.load()) {
            TxField<int> dummy(0);
            poly.run(token1, [&](Tx &tx) { tx.write(dummy, 1); });
            t1_commits.fetch_add(1);
        }
        poly.deregisterThread(token1);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(t1_commits.load(), 0) << "tid 1 must be disabled at P=1";

    poly.reconfigure({tm::BackendKind::kTl2, 2, {}});
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_GT(t1_commits.load(), 0) << "tid 1 must run at P=2";

    stop.store(true);
    poly.resumeAllForShutdown();
    worker.join();
    poly.deregisterThread(token0);
}

TEST(PolyTmTest, PinnedThreadSurvivesParallelismShrink)
{
    PolyTm poly({tm::BackendKind::kTl2, 2, {}});
    auto token0 = poly.registerThread();

    std::atomic<bool> stop{false};
    std::atomic<int> t1_commits{0};
    std::thread worker([&] {
        auto token1 = poly.registerThread();
        poly.setPinned(token1.tid, true);
        while (!stop.load()) {
            TxField<int> dummy(0);
            poly.run(token1, [&](Tx &tx) { tx.write(dummy, 1); });
            t1_commits.fetch_add(1);
        }
        poly.deregisterThread(token1);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    poly.reconfigure({tm::BackendKind::kTl2, 1, {}});
    const int before = t1_commits.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_GT(t1_commits.load(), before)
        << "pinned thread must keep running at P=1";

    stop.store(true);
    poly.resumeAllForShutdown();
    worker.join();
    poly.deregisterThread(token0);
}

TEST(PolyTmTest, CmOnlyChangeNeedsNoQuiescence)
{
    PolyTm poly({tm::BackendKind::kSimHtm, 2, {}});
    auto token = poly.registerThread();

    TmConfig next = poly.currentConfig();
    next.cm.htmBudget = 16;
    next.cm.capacityPolicy = tm::CapacityPolicy::kHalve;
    poly.reconfigure(next);
    // A CM-only change must not count as a quiesced reconfiguration.
    EXPECT_EQ(poly.lastReconfigureNanos(), 0u);
    EXPECT_EQ(poly.currentConfig().cm.htmBudget, 16);
    poly.deregisterThread(token);
}

TEST(PolyTmTest, ReconfigureLatencyIsRecorded)
{
    PolyTm poly({tm::BackendKind::kTl2, 1, {}});
    auto token = poly.registerThread();
    poly.reconfigure({tm::BackendKind::kNorec, 1, {}});
    EXPECT_GT(poly.lastReconfigureNanos(), 0u);
    poly.deregisterThread(token);
}

TEST(PolyTmTest, HtmBudgetConsumedAcrossRetries)
{
    // With a tiny capacity, a big transaction must land in the
    // fallback path and still commit.
    tm::SimHtmConfig htm;
    htm.writeCapacityLines = 2;
    PolyTm poly({tm::BackendKind::kSimHtm, 1, {}}, htm);
    auto token = poly.registerThread();

    std::vector<TxField<int>> xs(64);
    poly.run(token, [&](Tx &tx) {
        for (auto &x : xs)
            tx.write(x, 7);
    });
    for (auto &x : xs)
        EXPECT_EQ(x.rawGet(), 7);

    const PolyStats stats = poly.snapshotStats();
    EXPECT_GT(stats.abortsByCause[static_cast<std::size_t>(
                  tm::AbortCause::kCapacity)],
              0u);
    poly.deregisterThread(token);
}

TEST(PolyTmTest, BankInvariantAcrossBackendsAndParallelism)
{
    PolyTm poly({tm::BackendKind::kSwissTm, 8, {}});
    constexpr int kThreads = 4;
    constexpr int kAccounts = 32;
    std::vector<TxField<std::uint64_t>> accounts(kAccounts);
    for (auto &a : accounts)
        a.rawSet(100);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(t + 1);
            while (!stop.load()) {
                const auto i = rng.nextBounded(kAccounts);
                const auto j = rng.nextBounded(kAccounts);
                if (i == j)
                    continue;
                poly.run(token, [&](Tx &tx) {
                    const auto a = tx.read(accounts[i]);
                    const auto b = tx.read(accounts[j]);
                    if (a == 0)
                        return;
                    tx.write(accounts[i], a - 1);
                    tx.write(accounts[j], b + 1);
                });
            }
            poly.deregisterThread(token);
        });
    }

    const tm::BackendKind kinds[] = {
        tm::BackendKind::kTl2, tm::BackendKind::kNorec,
        tm::BackendKind::kSimHtm, tm::BackendKind::kTinyStm};
    for (int round = 0; round < 8; ++round) {
        poly.reconfigure({kinds[round % 4], 1 + round % 4, {}});
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    stop.store(true);
    poly.resumeAllForShutdown();
    for (auto &w : workers)
        w.join();

    std::uint64_t total = 0;
    for (auto &a : accounts)
        total += a.rawGet();
    EXPECT_EQ(total, 100u * kAccounts);
}

} // namespace
} // namespace proteus::polytm
