#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "polytm/thread_gate.hpp"

namespace proteus::polytm {
namespace {

TEST(ThreadGateTest, EnterExitLeavesStateClean)
{
    ThreadGate gate;
    gate.enter(0);
    EXPECT_EQ(gate.rawState(0), 1u);
    gate.exit(0);
    EXPECT_EQ(gate.rawState(0), 0u);
}

TEST(ThreadGateTest, BlockOnIdleThreadReturnsImmediately)
{
    ThreadGate gate;
    gate.block(3);
    EXPECT_TRUE(gate.blocked(3));
    gate.unblock(3);
    EXPECT_FALSE(gate.blocked(3));
}

TEST(ThreadGateTest, BlockedThreadParksUntilUnblocked)
{
    ThreadGate gate;
    gate.block(0);

    std::atomic<bool> entered{false};
    std::thread worker([&] {
        gate.enter(0);
        entered.store(true);
        gate.exit(0);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(entered.load());

    gate.unblock(0);
    worker.join();
    EXPECT_TRUE(entered.load());
}

TEST(ThreadGateTest, BlockWaitsForInFlightTransaction)
{
    ThreadGate gate;
    std::atomic<bool> block_returned{false};

    gate.enter(0); // simulate an in-flight transaction

    std::thread adapter([&] {
        gate.block(0);
        block_returned.store(true);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(block_returned.load());

    gate.exit(0); // transaction ends; block() may now return
    adapter.join();
    EXPECT_TRUE(block_returned.load());
    gate.unblock(0);
}

TEST(ThreadGateTest, NestedBlocksRequireMatchingUnblocks)
{
    ThreadGate gate;
    gate.block(0);
    gate.block(0);
    EXPECT_TRUE(gate.blocked(0));
    gate.unblock(0);
    EXPECT_TRUE(gate.blocked(0));
    gate.unblock(0);
    EXPECT_FALSE(gate.blocked(0));
}

TEST(ThreadGateTest, ManyThreadsEnterExitConcurrently)
{
    ThreadGate gate;
    constexpr int kThreads = 8;
    constexpr int kIters = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                gate.enter(t);
                gate.exit(t);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(gate.rawState(t), 0u);
}

TEST(ThreadGateTest, BlockUnblockRaceWithEnteringThread)
{
    // The adapter repeatedly toggles a thread that hammers the gate;
    // at the end everything must drain to a clean state.
    ThreadGate gate;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> entries{0};

    std::thread worker([&] {
        while (!stop.load()) {
            gate.enter(0);
            entries.fetch_add(1);
            gate.exit(0);
        }
    });

    for (int i = 0; i < 200; ++i) {
        gate.block(0);
        std::this_thread::yield();
        gate.unblock(0);
    }
    stop.store(true);
    worker.join();
    EXPECT_EQ(gate.rawState(0), 0u);
    EXPECT_GT(entries.load(), 0u);
}

TEST(ThreadGateTest, OutOfRangeTidFailsLoudly)
{
    // A driver spawning more workers than tm::kMaxThreads must get a
    // clear error, not a scribble past the slot array.
    ThreadGate gate;
    EXPECT_THROW(gate.enter(tm::kMaxThreads), std::out_of_range);
    EXPECT_THROW(gate.enter(-1), std::out_of_range);
    EXPECT_THROW(gate.exit(tm::kMaxThreads), std::out_of_range);
    EXPECT_THROW(gate.block(tm::kMaxThreads + 7), std::out_of_range);
    EXPECT_THROW(gate.unblock(-3), std::out_of_range);
    EXPECT_THROW(gate.blocked(tm::kMaxThreads), std::out_of_range);
    EXPECT_THROW((void)gate.rawState(tm::kMaxThreads),
                 std::out_of_range);
    // In-range tids still work after the failed calls.
    gate.enter(tm::kMaxThreads - 1);
    gate.exit(tm::kMaxThreads - 1);
    EXPECT_EQ(gate.rawState(tm::kMaxThreads - 1), 0u);
}

} // namespace
} // namespace proteus::polytm
