/**
 * KvTunable closed-loop tests: a live shard driven by real traffic is
 * tuned by a ProteusRuntime; an injected workload phase change must
 * trip the CUSUM monitor and trigger a re-tune (a second SMBO
 * episode). Also covers the ShardTunable adapter surface and the
 * concurrent multi-shard RuntimeGroup wiring.
 */

#include <gtest/gtest.h>

#include "kvstore/kv_tunable.hpp"
#include "kvstore/traffic.hpp"
#include "rectm/engine.hpp"

namespace proteus::kvstore {
namespace {

/**
 * Training matrix for the menu's column space: unimodal population
 * rows peaking mid-menu (the runtime_test idiom) — enough signal for
 * the CF ensemble without needing the simulator.
 */
rectm::RecTmEngine
makeEngine(std::size_t cols)
{
    rectm::UtilityMatrix train(12, cols);
    Rng rng(77);
    for (std::size_t r = 0; r < 12; ++r) {
        const double scale = rng.uniform(1.0, 100.0);
        for (std::size_t c = 0; c < cols; ++c) {
            const double x = static_cast<double>(c);
            const double mid = static_cast<double>(cols) / 2.0;
            train.set(r, c,
                      scale * (1.0 + x - 0.12 * (x - mid) * (x - mid)) *
                          rng.uniform(0.97, 1.03));
        }
    }
    rectm::RecTmEngine::Options opts;
    opts.tuner.trials = 4;
    return rectm::RecTmEngine(train, opts);
}

KvTunableOptions
fastTunable()
{
    KvTunableOptions options;
    options.menu = {
        {tm::BackendKind::kTl2, 2, {}},
        {tm::BackendKind::kTl2, 4, {}},
        {tm::BackendKind::kNorec, 2, {}},
        {tm::BackendKind::kTinyStm, 2, {}},
        {tm::BackendKind::kSwissTm, 2, {}},
        {tm::BackendKind::kGlobalLock, 1, {}},
    };
    options.periodSeconds = 0.012;
    return options;
}

TEST(KvTunableTest, ShardTunableAppliesMenuConfigs)
{
    ShardOptions shard_options;
    shard_options.log2Slots = 10;
    shard_options.initial = {tm::BackendKind::kTl2, 2, {}};
    Shard shard(shard_options);
    ShardTunable tunable(shard, fastTunable());
    ASSERT_EQ(tunable.numConfigs(), 6u);

    tunable.applyConfig(2);
    EXPECT_EQ(shard.poly().currentConfig(),
              tunable.configAt(2));
    EXPECT_EQ(tunable.appliedConfig(), 2u);
    const int after_switch = tunable.reconfigurations();
    EXPECT_GE(after_switch, 1);

    // Re-applying the active config must not quiesce again.
    tunable.applyConfig(2);
    EXPECT_EQ(tunable.reconfigurations(), after_switch);
}

TEST(KvTunableTest, MeasureKpiSeesLiveTraffic)
{
    KvStoreOptions store_options;
    store_options.numShards = 1;
    store_options.log2SlotsPerShard = 10;
    store_options.initial = {tm::BackendKind::kTl2, 2, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = 2;
    traffic_options.phases = {TrafficMix::preset(MixKind::kReadHeavy)};
    traffic_options.phases[0].keySpace = 512;
    TrafficDriver driver(store, traffic_options);
    driver.preload(256);
    driver.start();

    ShardTunable tunable(store.shard(0), fastTunable());
    tunable.applyConfig(0);
    double kpi = 0;
    // One no-traffic-yet sample is possible right at startup; take a
    // few periods and require progress.
    for (int i = 0; i < 5 && kpi <= 0; ++i)
        kpi = tunable.measureKpi();
    EXPECT_GT(kpi, 0.0) << "commit rate of live traffic must be > 0";

    driver.stop();
}

TEST(KvTunableTest, PhaseChangeTriggersRetune)
{
    KvStoreOptions store_options;
    store_options.numShards = 1;
    store_options.log2SlotsPerShard = 10;
    store_options.initial = {tm::BackendKind::kTl2, 2, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = 2;
    // Phase 0: fast uniform reads. Phase 1: long contended scans +
    // writes on a hot set — a KPI collapse CUSUM must notice.
    traffic_options.phases = {TrafficMix::preset(MixKind::kReadHeavy),
                              TrafficMix::preset(MixKind::kScanHeavy)};
    traffic_options.phases[0].keySpace = 512;
    traffic_options.phases[1].keySpace = 64;
    traffic_options.phases[1].scanLen = 256;
    TrafficDriver driver(store, traffic_options);
    driver.preload(256);
    driver.start();

    const auto engine = makeEngine(fastTunable().menu.size());
    ShardTunable tunable(store.shard(0), fastTunable());
    rectm::RuntimeOptions runtime_options;
    runtime_options.smbo.maxExplorations = 6;
    runtime_options.cusum.warmup = 3;
    runtime_options.cusum.threshold = 6.0;
    rectm::ProteusRuntime runtime(engine, tunable, runtime_options);

    const auto records = runtime.run(90, [&](int period) {
        if (period == 45)
            driver.setPhase(1);
    });
    driver.stop();

    // A change detected near the end overshoots total_periods by the
    // re-exploration episode's ticks, so >= rather than ==.
    ASSERT_GE(records.size(), 90u);
    EXPECT_GE(runtime.episodes(), 2)
        << "the phase shift must trigger at least one re-tune";
    bool change_marked = false;
    for (const auto &rec : records)
        change_marked |= rec.changeDetected;
    EXPECT_TRUE(change_marked);
}

TEST(KvTunableTest, AutoTunerDrivesAllShardsConcurrently)
{
    KvStoreOptions store_options;
    store_options.numShards = 2;
    store_options.log2SlotsPerShard = 10;
    store_options.initial = {tm::BackendKind::kTl2, 2, {}};
    KvStore store(store_options);

    TrafficOptions traffic_options;
    traffic_options.threads = 2;
    traffic_options.phases = {TrafficMix::preset(MixKind::kReadHeavy)};
    traffic_options.phases[0].keySpace = 1024;
    // Cross-shard multiOps racing the tuner's degree changes: the
    // latched multi-key path must never wedge on a parked latch
    // holder (regression for the tryRun/pinning design).
    traffic_options.phases[0].multiRatio = 0.05;
    TrafficDriver driver(store, traffic_options);
    driver.preload(512);
    driver.start();

    const auto engine = makeEngine(fastTunable().menu.size());
    rectm::RuntimeOptions runtime_options;
    runtime_options.smbo.maxExplorations = 4;
    KvAutoTuner tuner(store, engine, fastTunable(), runtime_options);

    const auto records = tuner.run(12);
    driver.stop();

    ASSERT_EQ(records.size(), 2u);
    for (std::size_t s = 0; s < records.size(); ++s) {
        // >= not ==: a (noise-triggered) CUSUM detection near the end
        // legitimately overshoots total_periods with exploration
        // ticks, as in PhaseChangeTriggersRetune.
        EXPECT_GE(records[s].size(), 12u);
        EXPECT_GE(tuner.episodes(s), 1);
        EXPECT_GE(tuner.tunable(s).reconfigurations(), 1);
    }
}

} // namespace
} // namespace proteus::kvstore
