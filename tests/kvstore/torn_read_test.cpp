/**
 * Torn-read hunter: concurrent single-key readers and snapshot
 * readers race writing multiOps and assert that no observer ever
 * sees a half-committed composite, under both commit protocols.
 *
 * Each writer owns one key pair (A, B) routed to *different* shards
 * and repeatedly writes both keys to the same monotonically
 * increasing version, tagged with the writer id:
 *  - pair readers (read-only multiOp) must always see equal versions
 *    on A and B — any inequality is a torn composite;
 *  - single-key readers must always decode a well-formed value (an
 *    intent pointer or other garbage leaking out of the 2PC machinery
 *    would fail the tag check) and must never observe a version going
 *    backwards on the same key — a resolver preferring a stale
 *    pre-image after the post-image was visible would.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

constexpr int kPairs = 4;
constexpr int kItersPerWriter = 1500;
constexpr std::uint64_t kTag = 0x5eedull << 48;

std::uint64_t
encode(int pair, std::uint64_t version)
{
    return kTag | (static_cast<std::uint64_t>(pair) << 32) | version;
}

bool
wellFormed(std::uint64_t value, int pair)
{
    return (value >> 48) == (kTag >> 48) &&
           ((value >> 32) & 0xffff) == static_cast<std::uint64_t>(pair);
}

std::uint64_t
versionOf(std::uint64_t value)
{
    return value & 0xffffffffull;
}

class TornReadTest : public ::testing::TestWithParam<CommitMode>
{
};

TEST_P(TornReadTest, NoObserverSeesHalfCommittedComposite)
{
    KvStoreOptions options;
    options.numShards = 4;
    options.log2SlotsPerShard = 10;
    options.commitMode = GetParam();
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(options);

    // Pick pairs whose halves live on different shards, so every
    // composite write is genuinely cross-shard.
    std::uint64_t a_keys[kPairs];
    std::uint64_t b_keys[kPairs];
    std::uint64_t next = 1;
    for (int p = 0; p < kPairs; ++p) {
        a_keys[p] = next++;
        while (store.shardOf(next) == store.shardOf(a_keys[p]))
            ++next;
        b_keys[p] = next++;
    }
    {
        auto session = store.openSession();
        for (int p = 0; p < kPairs; ++p) {
            ASSERT_TRUE(store.put(session, a_keys[p], encode(p, 0)));
            ASSERT_TRUE(store.put(session, b_keys[p], encode(p, 0)));
        }
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> torn{false};
    std::atomic<bool> malformed{false};
    std::atomic<bool> regressed{false};
    std::vector<std::thread> threads;

    for (int p = 0; p < kPairs; ++p) {
        threads.emplace_back([&, p] {
            auto session = store.openSession();
            std::vector<KvOp> ops;
            for (std::uint64_t v = 1; v <= kItersPerWriter; ++v) {
                ops.clear();
                ops.push_back({KvOp::Kind::kPut, a_keys[p],
                               encode(p, v), false});
                ops.push_back({KvOp::Kind::kPut, b_keys[p],
                               encode(p, v), false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    // Pair readers: read-only multiOp snapshots.
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            auto session = store.openSession();
            Rng rng(40 + static_cast<unsigned>(r));
            std::vector<KvOp> snap;
            while (writers_done.load() < kPairs && !torn.load()) {
                const int p =
                    static_cast<int>(rng.nextBounded(kPairs));
                snap.clear();
                snap.push_back(
                    {KvOp::Kind::kGet, a_keys[p], 0, false});
                snap.push_back(
                    {KvOp::Kind::kGet, b_keys[p], 0, false});
                store.multiOp(session, snap);
                if (!snap[0].ok || !snap[1].ok ||
                    !wellFormed(snap[0].value, p) ||
                    !wellFormed(snap[1].value, p)) {
                    malformed.store(true);
                } else if (versionOf(snap[0].value) !=
                           versionOf(snap[1].value)) {
                    torn.store(true);
                }
            }
            store.closeSession(session);
        });
    }

    // Single-key readers: value integrity + per-key monotonicity.
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            auto session = store.openSession();
            Rng rng(80 + static_cast<unsigned>(r));
            std::uint64_t last_a[kPairs] = {};
            std::uint64_t last_b[kPairs] = {};
            while (writers_done.load() < kPairs &&
                   !regressed.load()) {
                const int p =
                    static_cast<int>(rng.nextBounded(kPairs));
                const bool pick_a = rng.bernoulli(0.5);
                const std::uint64_t key =
                    pick_a ? a_keys[p] : b_keys[p];
                std::uint64_t value = 0;
                if (!store.get(session, key, &value)) {
                    malformed.store(true); // keys are never deleted
                    continue;
                }
                if (!wellFormed(value, p)) {
                    malformed.store(true);
                    continue;
                }
                std::uint64_t &last =
                    pick_a ? last_a[p] : last_b[p];
                if (versionOf(value) < last)
                    regressed.store(true);
                last = versionOf(value);
            }
            store.closeSession(session);
        });
    }

    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(malformed.load())
        << "a reader decoded a malformed/missing value";
    EXPECT_FALSE(torn.load())
        << "a snapshot reader saw a half-committed pair";
    EXPECT_FALSE(regressed.load())
        << "a single-key reader saw a version go backwards";

    // Quiesced end state: every pair at its final version.
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (int p = 0; p < kPairs; ++p) {
        ASSERT_TRUE(store.get(session, a_keys[p], &value));
        EXPECT_EQ(value, encode(p, kItersPerWriter));
        ASSERT_TRUE(store.get(session, b_keys[p], &value));
        EXPECT_EQ(value, encode(p, kItersPerWriter));
    }
    store.closeSession(session);
}

INSTANTIATE_TEST_SUITE_P(
    CommitModes, TornReadTest,
    ::testing::Values(CommitMode::kLatch, CommitMode::kTwoPhase),
    [](const ::testing::TestParamInfo<CommitMode> &info) {
        return info.param == CommitMode::kLatch ? "Latch" : "TwoPhase";
    });

} // namespace
} // namespace proteus::kvstore
