/**
 * Resize torture hunter (run under TSan in CI): 8 writer threads fill
 * two 256-slot shards to 4x+ their initial capacity — driving several
 * online grows and incremental migrations each — while cross-shard
 * 2PC transfers and snapshot scans run through the same slots. The
 * invariants under fire:
 *
 *  - put() never reports table-full on a growable shard;
 *  - no inserted key is lost and no value (word or wide) is torn by a
 *    relocation, in either commit mode;
 *  - transferred totals are conserved across resizes (every snapshot
 *    taken mid-run and the final quiesced sum agree);
 *  - draining the migration afterwards accounts for every entry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

constexpr unsigned kLog2Slots = 8; // 256 slots per shard initially
constexpr std::uint64_t kAccounts = 64;
constexpr std::uint64_t kInitialBalance = 1000;
constexpr int kInserters = 4;
constexpr int kTransferThreads = 2;
constexpr int kSnapshotThreads = 2;
constexpr std::uint64_t kKeysPerInserter = 600;
constexpr int kTransfersPerThread = 400;
constexpr std::uint64_t kInsertBase = 1 << 20;

std::string
widePayload(std::uint64_t key)
{
    std::string bytes(64 + (key & 127), '\0');
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<char>((key * 131 + i * 7) & 0xff);
    return bytes;
}

class ResizeTortureTest : public ::testing::TestWithParam<CommitMode>
{
};

TEST_P(ResizeTortureTest, GrowthUnderTransfersAndScansLosesNothing)
{
    KvStoreOptions options;
    options.numShards = 2;
    options.log2SlotsPerShard = kLog2Slots;
    options.commitMode = GetParam();
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    KvStore store(options);

    const std::size_t initial_cap = store.shard(0).capacity();
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kAccounts; ++key)
            ASSERT_TRUE(store.put(session, key, kInitialBalance));
        store.closeSession(session);
    }

    std::atomic<bool> put_failed{false};
    std::atomic<bool> torn_snapshot{false};
    std::atomic<int> writers_done{0};
    constexpr int kWriters = kInserters + kTransferThreads; // 8 incl.
    std::vector<std::thread> threads;

    // Inserters: disjoint key ranges, word values tagged by key, every
    // 8th key a wide (blob) value. These drive the shards past 4x
    // their initial capacity while everything else runs.
    for (int w = 0; w < kInserters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            const std::uint64_t base =
                kInsertBase + static_cast<std::uint64_t>(w) *
                                  kKeysPerInserter;
            for (std::uint64_t i = 0; i < kKeysPerInserter; ++i) {
                const std::uint64_t key = base + i;
                bool ok;
                if ((key & 7) == 0) {
                    const std::string bytes = widePayload(key);
                    ok = store.putBytes(session, key, bytes.data(),
                                        bytes.size());
                } else {
                    ok = store.put(session, key,
                                   key * 2654435761ull + 1);
                }
                if (!ok)
                    put_failed.store(true);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    // Transfer threads: cross-shard 2-op kAdd composites over the
    // account keys — their intents land in slots that migrations are
    // concurrently relocating.
    for (int w = 0; w < kTransferThreads; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(0x5eed + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const std::uint64_t from = rng.nextBounded(kAccounts);
                std::uint64_t to = rng.nextBounded(kAccounts);
                if (to == from)
                    to = (to + 1) % kAccounts;
                const std::int64_t amount =
                    static_cast<std::int64_t>(rng.nextBounded(7)) + 1;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-amount),
                               false});
                ops.push_back({KvOp::Kind::kAdd, to,
                               static_cast<std::uint64_t>(amount),
                               false});
                if (!store.multiOp(session, ops))
                    put_failed.store(true);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    // Snapshot threads: read-only multiOps over every account (must
    // always see the conserved total) plus shard scans through the
    // live+old tables.
    for (int r = 0; r < kSnapshotThreads; ++r) {
        threads.emplace_back([&, r] {
            auto session = store.openSession();
            Rng rng(0xabcd + static_cast<unsigned>(r));
            std::vector<KvOp> snapshot;
            std::vector<std::pair<std::uint64_t, std::uint64_t>> hits;
            while (writers_done.load() < kWriters &&
                   !torn_snapshot.load()) {
                snapshot.clear();
                for (std::uint64_t key = 0; key < kAccounts; ++key)
                    snapshot.push_back(
                        {KvOp::Kind::kGet, key, 0, false});
                store.multiOp(session, snapshot);
                std::uint64_t total = 0;
                for (const KvOp &op : snapshot)
                    total += op.ok ? op.value : 0;
                if (total != kAccounts * kInitialBalance)
                    torn_snapshot.store(true);
                store.scan(session, rng.nextBounded(kAccounts), 32,
                           &hits);
            }
            store.closeSession(session);
        });
    }

    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(put_failed.load())
        << "put()/multiOp() must never fail on a growable shard";
    EXPECT_FALSE(torn_snapshot.load())
        << "a snapshot observed a non-conserved transfer total";

    // The shards must have grown well past their initial capacity
    // (the acceptance bar: 4x fill without a table-full).
    EXPECT_GE(store.shard(0).capacity() + store.shard(1).capacity(),
              2 * 4 * initial_cap)
        << "shard0 " << store.shard(0).capacity() << " shard1 "
        << store.shard(1).capacity();

    auto session = store.openSession();

    // Conservation of transferred totals after all resizes.
    std::uint64_t total = 0;
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < kAccounts; ++key) {
        ASSERT_TRUE(store.get(session, key, &value)) << key;
        total += value;
    }
    EXPECT_EQ(total, kAccounts * kInitialBalance);

    // No lost keys, no torn values — word and wide alike.
    std::string bytes;
    for (int w = 0; w < kInserters; ++w) {
        const std::uint64_t base =
            kInsertBase +
            static_cast<std::uint64_t>(w) * kKeysPerInserter;
        for (std::uint64_t i = 0; i < kKeysPerInserter; ++i) {
            const std::uint64_t key = base + i;
            if ((key & 7) == 0) {
                ASSERT_TRUE(store.getBytes(session, key, &bytes))
                    << key;
                ASSERT_EQ(bytes, widePayload(key)) << key;
            } else {
                ASSERT_TRUE(store.get(session, key, &value)) << key;
                ASSERT_EQ(value, key * 2654435761ull + 1) << key;
            }
        }
    }

    // Drain the tail of any in-flight migration and account for every
    // entry exactly once.
    for (int s = 0; s < store.numShards(); ++s)
        store.shard(static_cast<std::size_t>(s))
            .drainMigration(session.token(static_cast<std::size_t>(s)));
    std::size_t live = 0;
    for (int s = 0; s < store.numShards(); ++s) {
        EXPECT_FALSE(
            store.shard(static_cast<std::size_t>(s)).migrationActive());
        live += store.shard(static_cast<std::size_t>(s)).sizeQuiesced();
    }
    EXPECT_EQ(live, kAccounts + kInserters * kKeysPerInserter);

    store.closeSession(session);
}

INSTANTIATE_TEST_SUITE_P(
    CommitModes, ResizeTortureTest,
    ::testing::Values(CommitMode::kLatch, CommitMode::kTwoPhase),
    [](const ::testing::TestParamInfo<CommitMode> &info) {
        return info.param == CommitMode::kLatch ? "Latch" : "TwoPhase";
    });

} // namespace
} // namespace proteus::kvstore
