/**
 * Fault-armed chaos hunter: each iteration builds a durable store in
 * a scratch directory, arms a seeded schedule of injected I/O faults
 * (failed appends, spills, fsyncs, short writes, checkpoint faults),
 * then hammers it with cross-shard 2PC transfers, acknowledged ledger
 * puts and concurrent checkpoints. Whatever the schedule does to the
 * durability plane, the store must degrade — never corrupt:
 *
 *   - in-memory conservation: transfers stay zero-sum even when the
 *     WAL is failing under them (aborts unwind fully, flips apply
 *     fully);
 *   - graceful degradation: once health leaves kHealthy, writes fail
 *     fast with kReadOnly and snapshot reads keep serving a
 *     consistent state;
 *   - no lost acks: after disarming and reopening the directory,
 *     every acknowledged transfer/put is present (un-acked writes are
 *     of indeterminate durability and asserted neither way);
 *   - idempotence: recovering the recovered directory again changes
 *     nothing.
 *
 * Iteration count comes from PROTEUS_FAULT_ITERS (CI loops >= 100);
 * schedules are derived from the iteration seed, so a failure replays
 * exactly. A failing iteration keeps its WAL directory plus the fault
 * schedule (fault_schedule.txt) under ./fault_hunter/ for upload as a
 * CI artifact.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kPoolBase = 1'000'000;
constexpr int kPoolKeys = 32;
constexpr std::uint64_t kInitialBalance = 1'000;
constexpr std::uint64_t kTransferCounterKey = 2'000'000;
constexpr std::uint64_t kLedgerBase = 3'000'000;
constexpr int kThreads = 3;
constexpr int kOpsPerThread = 200;

std::uint64_t
splitMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

KvStoreOptions
chaosOptions(const std::string &wal_dir, Durability mode)
{
    KvStoreOptions options;
    options.numShards = 4;
    options.log2SlotsPerShard = 12;
    options.commitMode = CommitMode::kTwoPhase;
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    options.telemetry = true;
    options.durability = mode;
    options.walDir = wal_dir;
    options.walFlushBytes = 1 << 10; // small: batches hit the spill path
    return options;
}

/** One entry of the armable menu; which entries (and when they fire)
 *  is drawn from the iteration seed. */
struct ChaosFault {
    const char *point;
    int err;
};

constexpr ChaosFault kMenu[] = {
    {"wal.fsync", EIO},
    {"wal.append.write", EIO},
    {"wal.append.write", ENOSPC},
    {"wal.spill.write", ENOSPC},
    {"wal.append.short_write", EIO},
    {"wal.rotate.fsync", EIO},
    {"ckpt.write", ENOSPC},
    {"ckpt.fsync", EIO},
    {"ckpt.rename", EIO},
};

/** Arm 1-2 menu entries with seeded nth-hit triggers; returns the
 *  human-readable schedule for the artifact. */
std::string
armSchedule(std::uint64_t seed)
{
    const int count = 1 + static_cast<int>(splitMix(seed ^ 0x51ed) % 2);
    for (int i = 0; i < count; ++i) {
        const std::uint64_t draw = splitMix(seed ^ (0xfa0ull + i));
        const ChaosFault &choice = kMenu[draw % std::size(kMenu)];
        fault::FaultSpec spec;
        spec.trigger = fault::FaultSpec::Trigger::kNth;
        spec.nth = 1 + splitMix(draw) % 200;
        spec.err = choice.err;
        if (std::string(choice.point) == "wal.append.short_write")
            spec.arg = 1 + splitMix(draw ^ 0xbeef) % 40;
        fault::arm(choice.point, spec);
    }
    return fault::describeArmed();
}

struct AckState {
    std::uint64_t transfers = 0;
    std::uint64_t ledger[kThreads] = {};
};

struct RecoveredState {
    std::uint64_t poolSum = 0;
    std::uint64_t transferCount = 0;
    std::vector<std::uint64_t> ledger;
};

RecoveredState
readBack(const std::string &wal_dir, Durability mode)
{
    RecoveredState state;
    KvStore store(chaosOptions(wal_dir, mode));
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (int j = 0; j < kPoolKeys; ++j) {
        EXPECT_TRUE(store.get(session, kPoolBase + j, &value))
            << "pool key " << j << " lost";
        state.poolSum += value;
    }
    if (store.get(session, kTransferCounterKey, &value))
        state.transferCount = value;
    for (int t = 0; t < kThreads; ++t) {
        value = 0;
        (void)store.get(session, kLedgerBase + t, &value);
        state.ledger.push_back(value);
    }
    store.closeSession(session);
    return state;
}

/** Live phase: preload, arm, hammer, assert degradation semantics.
 *  Returns the acks the recovery phase must honour. */
AckState
runLivePhase(const std::string &wal_dir, Durability mode,
             std::uint64_t seed)
{
    AckState acks;
    KvStore store(chaosOptions(wal_dir, mode));
    {
        auto session = store.openSession();
        for (int j = 0; j < kPoolKeys; ++j)
            EXPECT_TRUE(
                store.put(session, kPoolBase + j, kInitialBalance));
        store.closeSession(session);
    }
    store.flushWal();

    // Arm only after the pool is durable, so conservation has a
    // well-defined baseline.
    armSchedule(seed);

    std::vector<std::uint64_t> acked_transfers(kThreads, 0);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            auto session = store.openSession();
            std::uint64_t rng = splitMix(seed ^ (0x77u + t));
            std::uint64_t ledger_seq = 0;
            for (int i = 0; i < kOpsPerThread; ++i) {
                rng = splitMix(rng);
                const std::uint64_t a = kPoolBase + rng % kPoolKeys;
                const std::uint64_t b =
                    kPoolBase + (rng >> 8) % kPoolKeys;
                if (a == b)
                    continue;
                const std::int64_t delta =
                    static_cast<std::int64_t>((rng >> 16) % 100);
                std::vector<KvOp> ops;
                ops.push_back(
                    {KvOp::Kind::kAdd, a,
                     static_cast<std::uint64_t>(-delta), false});
                ops.push_back(
                    {KvOp::Kind::kAdd, b,
                     static_cast<std::uint64_t>(delta), false});
                ops.push_back(
                    {KvOp::Kind::kAdd, kTransferCounterKey, 1, false});
                if (store.multiOp(session, ops))
                    ++acked_transfers[static_cast<std::size_t>(t)];
                if ((i & 7) == 0) {
                    ++ledger_seq;
                    if (store.put(session, kLedgerBase + t,
                                  ledger_seq))
                        acks.ledger[t] = ledger_seq;
                }
                // Thread 0 interleaves checkpoints so ckpt.* faults
                // and rotation race real traffic.
                if (t == 0 && (i % 64) == 63)
                    (void)store.checkpoint(session);
            }
            store.closeSession(session);
        });
    }
    for (auto &worker : workers)
        worker.join();
    for (int t = 0; t < kThreads; ++t)
        acks.transfers += acked_transfers[static_cast<std::size_t>(t)];

    // Whatever fired, the live store must still be consistent: the
    // 2PC unwind/flip discipline keeps transfers zero-sum in memory.
    auto session = store.openSession();
    std::uint64_t sum = 0;
    std::uint64_t value = 0;
    for (int j = 0; j < kPoolKeys; ++j) {
        EXPECT_TRUE(store.get(session, kPoolBase + j, &value));
        sum += value;
    }
    EXPECT_EQ(sum, kPoolKeys * kInitialBalance)
        << "live conservation broke";
    if (store.health() != Health::kHealthy) {
        // Degraded: writes fail fast *before* touching memory, reads
        // keep serving.
        EXPECT_EQ(store.put(session, 42, 1).status,
                  KvStatus::kReadOnly);
        // Degradation is always evidenced in telemetry: either a WAL
        // error or a checkpoint failure (ckpt ENOSPC degrades too).
        EXPECT_GE(store.telemetry().value("wal_errors") +
                      store.telemetry().value("checkpoint_failures"),
                  1u);
    }
    store.closeSession(session);
    return acks;
}

TEST(FaultChaosHunter, InjectedIoFaultsNeverLoseAckedWrites)
{
    int iters = 6;
    if (const char *env = std::getenv("PROTEUS_FAULT_ITERS"))
        iters = std::atoi(env);
    const fs::path root = fs::current_path() / "fault_hunter";
    fs::create_directories(root);

    for (int iter = 0; iter < iters; ++iter) {
        const std::uint64_t seed = splitMix(0xfa017 + iter);
        const Durability mode = (splitMix(seed) & 1) != 0
                                    ? Durability::kBuffered
                                    : Durability::kFsyncGroup;
        const fs::path dir = root / ("iter-" + std::to_string(iter));
        fs::remove_all(dir);
        fs::create_directories(dir);
        const std::string wal_dir = (dir / "wal").string();

        const AckState acks = runLivePhase(wal_dir, mode, seed);
        // Record the schedule (with fire counts) before disarming, so
        // a kept artifact shows exactly what was injected and when.
        const std::string schedule = fault::describeArmed();
        // Recovery itself must never run against armed faults the
        // schedule aimed at the live run.
        fault::disarmAll();
        // Recovery compacts (the constructor checkpoints), so keep a
        // pristine pre-recovery image for the artifact: without it a
        // failure's most interesting evidence is gone.
        fs::copy(wal_dir, dir / "wal.prerecovery",
                 fs::copy_options::recursive);

        const RecoveredState first = readBack(wal_dir, mode);
        EXPECT_EQ(first.poolSum, kPoolKeys * kInitialBalance)
            << "iter " << iter << " (dir kept: " << dir << ")";
        EXPECT_GE(first.transferCount, acks.transfers)
            << "iter " << iter << " (dir kept: " << dir << ")";
        for (int t = 0; t < kThreads; ++t)
            EXPECT_GE(first.ledger[static_cast<std::size_t>(t)],
                      acks.ledger[t])
                << "iter " << iter << " thread " << t
                << " (dir kept: " << dir << ")";

        // Idempotence: recovering the recovered directory.
        const RecoveredState second = readBack(wal_dir, mode);
        EXPECT_EQ(second.poolSum, first.poolSum);
        EXPECT_GE(second.transferCount, first.transferCount);

        if (!::testing::Test::HasFailure()) {
            fs::remove_all(dir);
        } else {
            std::ofstream(dir / "fault_schedule.txt")
                << "seed=" << seed << " mode="
                << (mode == Durability::kBuffered ? "buffered"
                                                  : "fsync_group")
                << "\n"
                << schedule;
            GTEST_FAIL() << "fault chaos hunter failed at iter "
                         << iter << "; surviving WAL dir + schedule: "
                         << dir;
        }
    }
}

} // namespace
} // namespace proteus::kvstore
