/**
 * Control-byte probe filter tests: the group-filtered probe must rest
 * its correctness entirely on the transactional state/key words —
 * fingerprint collisions fall through to the key check, deliberately
 * corrupted hints (in the directions that keep lanes visible) only add
 * probes, and the scalar and group probes agree on a shared table.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "kvstore/shard.hpp"

namespace proteus::kvstore {
namespace {

ShardOptions
smallShard(unsigned log2_slots)
{
    ShardOptions options;
    options.log2Slots = log2_slots;
    options.initial = {tm::BackendKind::kTl2, 1, {}};
    return options;
}

/** Keys whose mixed hash lands on `seed`'s home slot (and, when
 *  `same_fp`, also shares its 7-bit fingerprint) in a `slots`-wide
 *  table. Returns `count` keys including the seed. */
std::vector<std::uint64_t>
colliders(std::uint64_t seed, std::size_t slots, std::size_t count,
          bool same_fp)
{
    const std::uint64_t h = Shard::keyHash(seed);
    const std::size_t home = static_cast<std::size_t>(h) & (slots - 1);
    const std::uint8_t fp = ctrlFingerprint(h);
    std::vector<std::uint64_t> keys{seed};
    for (std::uint64_t k = seed + 1; keys.size() < count; ++k) {
        const std::uint64_t kh = Shard::keyHash(k);
        if ((static_cast<std::size_t>(kh) & (slots - 1)) != home)
            continue;
        if (same_fp && ctrlFingerprint(kh) != fp)
            continue;
        keys.push_back(k);
    }
    return keys;
}

/** RAII reset for the bench's runtime probe switch. */
struct ScalarProbeGuard
{
    ~ScalarProbeGuard() { simd::setForceScalarProbe(false); }
};

TEST(KvProbeFilterTest, FingerprintCollisionFallsThroughToKeyCheck)
{
    Shard shard(smallShard(8));
    auto token = shard.registerWorker();

    // Three resident keys plus one absent, all sharing home slot AND
    // fingerprint: every lookup past the first slot sees fp-matching
    // lanes holding the wrong key.
    const auto keys = colliders(7, shard.capacity(), 4, true);
    for (std::size_t i = 0; i + 1 < keys.size(); ++i)
        ASSERT_TRUE(shard.put(token, keys[i], 1000 + i));

    const std::uint64_t fp_before = shard.ctrlFalsePositives();
    std::uint64_t value = 0;
    for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
        ASSERT_TRUE(shard.get(token, keys[i], &value)) << keys[i];
        EXPECT_EQ(value, 1000 + i);
    }
    EXPECT_FALSE(shard.get(token, keys.back(), &value));
    // The colliding lanes were candidates, the key words vetoed them,
    // and the probe counted each veto.
    EXPECT_GT(shard.ctrlFalsePositives(), fp_before);

    // Each resident key's ctrl byte is its fingerprint — and here all
    // three share it by construction.
    const std::uint8_t fp = ctrlFingerprint(Shard::keyHash(keys[0]));
    for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
        const std::size_t slot = shard.findSlotQuiesced(keys[i]);
        ASSERT_LT(slot, shard.capacity());
        EXPECT_EQ(shard.ctrlByteQuiesced(slot), fp);
    }

    shard.deregisterWorker(token);
}

TEST(KvProbeFilterTest, CorruptedHintsOnlyAddProbes)
{
    Shard shard(smallShard(8));
    auto token = shard.registerWorker();

    constexpr std::uint64_t kKeys = 64;
    for (std::uint64_t key = 0; key < kKeys; ++key)
        ASSERT_TRUE(shard.put(token, key, key * 11));

    // Safe corruption over RESIDENT keys: anything with bit 7 set
    // (empty marker, tombstone marker, garbage) keeps the lane a
    // candidate, and the state word — not the hint — decides.
    const std::uint8_t wrong[] = {kCtrlEmpty, kCtrlTombstone, 0xc7};
    for (std::uint64_t key = 0; key < 3; ++key) {
        const std::size_t slot = shard.findSlotQuiesced(key);
        ASSERT_LT(slot, shard.capacity());
        shard.setCtrlByteQuiesced(slot, wrong[key]);
    }

    // Safe corruption over an EMPTY slot: plant an absent key's
    // fingerprint on its own probe path. The lane becomes a candidate
    // whose kEmpty state word terminates the probe — the key must
    // still read as absent.
    const std::uint64_t absent = 1u << 20;
    ASSERT_EQ(shard.findSlotQuiesced(absent), shard.capacity());
    const std::uint64_t ah = Shard::keyHash(absent);
    std::size_t empty_slot =
        static_cast<std::size_t>(ah) & (shard.capacity() - 1);
    while (shard.ctrlByteQuiesced(empty_slot) != kCtrlEmpty)
        empty_slot = (empty_slot + 1) & (shard.capacity() - 1);
    shard.setCtrlByteQuiesced(empty_slot, ctrlFingerprint(ah));

    const std::uint64_t fp_before = shard.ctrlFalsePositives();
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(shard.get(token, key, &value)) << key;
        EXPECT_EQ(value, key * 11);
    }
    EXPECT_FALSE(shard.get(token, absent, &value));
    // Corruption is visible only as extra verification reads.
    EXPECT_GE(shard.ctrlFalsePositives(), fp_before);

    // Writes through corrupted hints still work: the overwrite and
    // delete both locate their keys via the state/key words.
    ASSERT_TRUE(shard.put(token, 0, 555));
    ASSERT_TRUE(shard.get(token, 0, &value));
    EXPECT_EQ(value, 555u);
    ASSERT_TRUE(shard.del(token, 1));
    EXPECT_FALSE(shard.get(token, 1, &value));

    shard.deregisterWorker(token);
}

TEST(KvProbeFilterTest, ScalarAndGroupProbesAgree)
{
    ScalarProbeGuard guard;
    Shard shard(smallShard(6));
    auto token = shard.registerWorker();

    // Enough churn to force growth, tombstones, and long runs.
    constexpr std::uint64_t kKeys = 300;
    for (std::uint64_t key = 0; key < kKeys; ++key)
        ASSERT_TRUE(shard.put(token, key, key + 1));
    for (std::uint64_t key = 0; key < kKeys; key += 3)
        ASSERT_TRUE(shard.del(token, key));
    for (std::uint64_t key = 0; key < kKeys; key += 7)
        ASSERT_TRUE(shard.put(token, key, key + 2));

    for (std::uint64_t key = 0; key < kKeys + 50; ++key) {
        simd::setForceScalarProbe(false);
        std::uint64_t group_value = 0;
        const bool group_found =
            shard.get(token, key, &group_value);
        simd::setForceScalarProbe(true);
        std::uint64_t scalar_value = 0;
        const bool scalar_found =
            shard.get(token, key, &scalar_value);
        ASSERT_EQ(group_found, scalar_found) << key;
        if (group_found)
            ASSERT_EQ(group_value, scalar_value) << key;
    }

    shard.deregisterWorker(token);
}

TEST(KvProbeFilterTest, TombstoneChainsAcrossGroupsStayReachable)
{
    Shard shard(smallShard(8));
    auto token = shard.registerWorker();

    // 24 same-home keys: the probe chain spans more than one 16-slot
    // ctrl group. Delete the front of the chain, then verify the
    // group scan still crosses the tombstones to the survivors and
    // reuses them for new colliders.
    const auto keys = colliders(3, shard.capacity(), 24, false);
    for (std::size_t i = 0; i < keys.size(); ++i)
        ASSERT_TRUE(shard.put(token, keys[i], i));
    for (std::size_t i = 0; i < 12; ++i)
        ASSERT_TRUE(shard.del(token, keys[i]));

    std::uint64_t value = 0;
    for (std::size_t i = 12; i < keys.size(); ++i) {
        ASSERT_TRUE(shard.get(token, keys[i], &value)) << keys[i];
        EXPECT_EQ(value, i);
    }
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_FALSE(shard.get(token, keys[i], &value));
        const std::size_t slot = shard.findSlotQuiesced(keys[i]);
        EXPECT_EQ(slot, shard.capacity());
    }

    // Reinsert into the tombstoned prefix; everything stays reachable.
    for (std::size_t i = 0; i < 12; ++i)
        ASSERT_TRUE(shard.put(token, keys[i], 900 + i));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(shard.get(token, keys[i], &value)) << keys[i];
        EXPECT_EQ(value, i < 12 ? 900 + i : i);
    }
    EXPECT_EQ(shard.sizeQuiesced(), keys.size());

    shard.deregisterWorker(token);
}

} // namespace
} // namespace proteus::kvstore
