/**
 * KvStore tests: deterministic shard routing, batch semantics, and —
 * the critical one — atomicity of cross-shard multi-key transactions
 * observed by 8+ concurrent threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

KvStoreOptions
smallStore(int shards, unsigned log2_slots = 10)
{
    KvStoreOptions options;
    options.numShards = shards;
    options.log2SlotsPerShard = log2_slots;
    // Parallelism degree high enough that every test session stays
    // enabled; degree-shrinking behaviour is covered by polytm tests.
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    return options;
}

TEST(KvStoreTest, ShardRoutingIsDeterministicAndBalanced)
{
    KvStore a(smallStore(8));
    KvStore b(smallStore(8));

    std::vector<std::size_t> load(8, 0);
    for (std::uint64_t key = 0; key < 4096; ++key) {
        const std::size_t s = a.shardOf(key);
        ASSERT_LT(s, 8u);
        // Same key, same options => same shard, on any instance.
        EXPECT_EQ(s, b.shardOf(key));
        EXPECT_EQ(s, a.shardOf(key)) << "routing must be stable";
        ++load[s];
    }
    // 4096 uniform keys over 8 shards: each shard within 2x of fair.
    for (const std::size_t n : load) {
        EXPECT_GT(n, 4096u / 16) << "shard starved";
        EXPECT_LT(n, 4096u / 4) << "shard overloaded";
    }
}

TEST(KvStoreTest, OpsLandOnTheirHomeShardOnly)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    for (std::uint64_t key = 0; key < 128; ++key)
        ASSERT_TRUE(store.put(session, key, key + 7));

    std::size_t total = 0;
    for (int s = 0; s < store.numShards(); ++s)
        total += store.shard(static_cast<std::size_t>(s)).sizeQuiesced();
    EXPECT_EQ(total, 128u);

    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 128; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        EXPECT_EQ(value, key + 7);
    }
    store.closeSession(session);
}

TEST(KvStoreTest, BatchAppliesAndReportsPerOpResults)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    KvStore::Batch batch;
    for (std::uint64_t key = 0; key < 64; ++key)
        batch.put(key, key * 3);
    EXPECT_TRUE(store.applyBatch(session, batch));
    batch.clear();

    batch.get(10);
    batch.get(9999); // absent
    batch.del(11);
    EXPECT_TRUE(store.applyBatch(session, batch));
    EXPECT_TRUE(batch.ops()[0].ok);
    EXPECT_EQ(batch.ops()[0].value, 30u);
    EXPECT_FALSE(batch.ops()[1].ok);
    EXPECT_TRUE(batch.ops()[2].ok);
    EXPECT_FALSE(store.get(session, 11));

    store.closeSession(session);
}

TEST(KvStoreTest, MultiOpReadsAndWritesAcrossShards)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    std::vector<KvOp> ops;
    for (std::uint64_t key = 0; key < 16; ++key)
        ops.push_back({KvOp::Kind::kPut, key, key + 100, false});
    EXPECT_TRUE(store.multiOp(session, ops));

    ops.clear();
    for (std::uint64_t key = 0; key < 16; ++key)
        ops.push_back({KvOp::Kind::kGet, key, 0, false});
    EXPECT_TRUE(store.multiOp(session, ops));
    for (std::uint64_t key = 0; key < 16; ++key) {
        EXPECT_TRUE(ops[key].ok);
        EXPECT_EQ(ops[key].value, key + 100);
    }
    store.closeSession(session);
}

TEST(KvStoreTest, MultiShardTransfersStayAtomicUnder8Threads)
{
    // Bank invariant: kKeys accounts start at kInitial each; writers
    // move random amounts between random accounts with cross-shard
    // kAdd multiOps; readers snapshot all accounts with a read-only
    // multiOp and must always observe the exact total.
    constexpr std::uint64_t kKeys = 64;
    constexpr std::uint64_t kInitial = 1000;
    constexpr int kWriters = 6;
    constexpr int kReaders = 2;
    constexpr int kTransfersPerWriter = 400;

    KvStore store(smallStore(4));
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;

    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(7000 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfersPerWriter; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                const std::int64_t amount =
                    static_cast<std::int64_t>(rng.nextBounded(5)) + 1;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-amount),
                               false});
                ops.push_back({KvOp::Kind::kAdd, to,
                               static_cast<std::uint64_t>(amount),
                               false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            auto session = store.openSession();
            std::vector<KvOp> snapshot;
            while (writers_done.load() < kWriters &&
                   !violation.load()) {
                snapshot.clear();
                for (std::uint64_t key = 0; key < kKeys; ++key)
                    snapshot.push_back(
                        {KvOp::Kind::kGet, key, 0, false});
                store.multiOp(session, snapshot);
                std::uint64_t total = 0;
                for (const KvOp &op : snapshot)
                    total += op.ok ? op.value : 0;
                if (total != kKeys * kInitial)
                    violation.store(true);
            }
            store.closeSession(session);
        });
    }

    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load())
        << "a reader observed a torn cross-shard transfer";

    // Final balance check, single-threaded.
    auto session = store.openSession();
    std::uint64_t total = 0;
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        total += value;
    }
    EXPECT_EQ(total, kKeys * kInitial);
    store.closeSession(session);
}

TEST(KvStoreTest, SingleKeyOpsRaceMultiOpsWithoutCorruption)
{
    // Mixed traffic: single-key put/get (shared latches) racing
    // cross-shard multiOps (exclusive latches) on overlapping keys.
    KvStore store(smallStore(2));
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;

    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            auto session = store.openSession();
            Rng rng(900 + static_cast<unsigned>(t));
            std::vector<KvOp> ops;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::uint64_t key = rng.nextBounded(256);
                if (t % 2 == 0) {
                    store.put(session, key, key);
                    store.get(session, key);
                } else {
                    ops.clear();
                    ops.push_back(
                        {KvOp::Kind::kPut, key, key, false});
                    ops.push_back({KvOp::Kind::kPut, key + 128,
                                   key + 128, false});
                    store.multiOp(session, ops);
                }
            }
            store.closeSession(session);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    for (auto &thread : threads)
        thread.join();

    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 384; ++key) {
        if (store.get(session, key, &value))
            EXPECT_EQ(value, key) << "value corrupted for key " << key;
    }
    store.closeSession(session);
}

TEST(KvStoreTest, OpenSessionFailureLeaksNoRegistrations)
{
    KvStore store(smallStore(2, 8));

    // Exhaust shard 1's thread slots only, so openSession registers
    // with shard 0 and then fails on shard 1.
    std::vector<polytm::ThreadToken> extra;
    while (store.shard(1).poly().registeredThreads() < tm::kMaxThreads)
        extra.push_back(store.shard(1).registerWorker());

    // Every failed openSession must give back its shard-0 slot; if it
    // leaked, 70 failures would exhaust shard 0 (64 slots) too.
    for (int i = 0; i < 70; ++i)
        EXPECT_THROW(store.openSession(), std::runtime_error);

    for (auto &token : extra)
        store.shard(1).deregisterWorker(token);
    auto session = store.openSession();
    EXPECT_TRUE(store.put(session, 1, 2));
    store.closeSession(session);
}

} // namespace
} // namespace proteus::kvstore
