/**
 * KvStore tests: deterministic shard routing, batch semantics, and —
 * the critical ones — atomicity of cross-shard multi-key transactions
 * observed by 8+ concurrent threads, and all-or-nothing table-full
 * aborts. Concurrency/atomicity tests run under both commit protocols
 * (legacy exclusive latches and the 2PC-over-TM intent protocol).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"
#include "kvstore/traffic.hpp"

namespace proteus::kvstore {
namespace {

KvStoreOptions
smallStore(int shards, unsigned log2_slots = 10,
           CommitMode mode = CommitMode::kTwoPhase)
{
    KvStoreOptions options;
    options.numShards = shards;
    options.log2SlotsPerShard = log2_slots;
    options.commitMode = mode;
    // Parallelism degree high enough that every test session stays
    // enabled; degree-shrinking behaviour is covered by polytm tests.
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    return options;
}

/** Like smallStore but with online growth disabled (the fixed-capacity
 *  stance the table-full semantics are specified against). */
KvStoreOptions
pinnedStore(int shards, unsigned log2_slots,
            CommitMode mode = CommitMode::kTwoPhase)
{
    KvStoreOptions options = smallStore(shards, log2_slots, mode);
    options.maxLog2SlotsPerShard = log2_slots;
    return options;
}

/** Always-irrevocable configuration: the emulated HTM with a zero
 *  retry budget begins every transaction on its fallback lock (the
 *  global-lock backend grew an undo log and is revocable now, so it
 *  no longer exercises the in-place revert paths). */
polytm::TmConfig
irrevocableConfig()
{
    return {tm::BackendKind::kSimHtm, 16,
            {/*htmBudget=*/0, tm::CapacityPolicy::kDecrease}};
}

TEST(KvStoreTest, ShardRoutingIsDeterministicAndBalanced)
{
    KvStore a(smallStore(8));
    KvStore b(smallStore(8));

    std::vector<std::size_t> load(8, 0);
    for (std::uint64_t key = 0; key < 4096; ++key) {
        const std::size_t s = a.shardOf(key);
        ASSERT_LT(s, 8u);
        // Same key, same options => same shard, on any instance.
        EXPECT_EQ(s, b.shardOf(key));
        EXPECT_EQ(s, a.shardOf(key)) << "routing must be stable";
        ++load[s];
    }
    // 4096 uniform keys over 8 shards: each shard within 2x of fair.
    for (const std::size_t n : load) {
        EXPECT_GT(n, 4096u / 16) << "shard starved";
        EXPECT_LT(n, 4096u / 4) << "shard overloaded";
    }
}

TEST(KvStoreTest, OpsLandOnTheirHomeShardOnly)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    for (std::uint64_t key = 0; key < 128; ++key)
        ASSERT_TRUE(store.put(session, key, key + 7));

    std::size_t total = 0;
    for (int s = 0; s < store.numShards(); ++s)
        total += store.shard(static_cast<std::size_t>(s)).sizeQuiesced();
    EXPECT_EQ(total, 128u);

    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 128; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        EXPECT_EQ(value, key + 7);
    }
    store.closeSession(session);
}

TEST(KvStoreTest, BatchAppliesAndReportsPerOpResults)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    KvStore::Batch batch;
    for (std::uint64_t key = 0; key < 64; ++key)
        batch.put(key, key * 3);
    EXPECT_TRUE(store.applyBatch(session, batch));
    batch.clear();

    batch.get(10);
    batch.get(9999); // absent
    batch.del(11);
    EXPECT_TRUE(store.applyBatch(session, batch));
    EXPECT_TRUE(batch.ops()[0].ok);
    EXPECT_EQ(batch.ops()[0].value, 30u);
    EXPECT_FALSE(batch.ops()[1].ok);
    EXPECT_TRUE(batch.ops()[2].ok);
    EXPECT_FALSE(store.get(session, 11));

    store.closeSession(session);
}

TEST(KvStoreTest, OpenSessionFailureLeaksNoRegistrations)
{
    KvStore store(smallStore(2, 8));

    // Exhaust shard 1's thread slots only, so openSession registers
    // with shard 0 and then fails on shard 1.
    std::vector<polytm::ThreadToken> extra;
    while (store.shard(1).poly().registeredThreads() < tm::kMaxThreads)
        extra.push_back(store.shard(1).registerWorker());

    // Every failed openSession must give back its shard-0 slot; if it
    // leaked, 70 failures would exhaust shard 0 (64 slots) too.
    for (int i = 0; i < 70; ++i)
        EXPECT_THROW(store.openSession(), std::runtime_error);

    for (auto &token : extra)
        store.shard(1).deregisterWorker(token);
    auto session = store.openSession();
    EXPECT_TRUE(store.put(session, 1, 2));
    store.closeSession(session);
}

/** Commit-protocol-parameterized suite: everything below must hold
 *  under both the latch and the 2PC commit. */
class KvStoreCommitModeTest : public ::testing::TestWithParam<CommitMode>
{
};

TEST_P(KvStoreCommitModeTest, MultiOpReadsAndWritesAcrossShards)
{
    KvStore store(smallStore(4, 10, GetParam()));
    auto session = store.openSession();

    std::vector<KvOp> ops;
    for (std::uint64_t key = 0; key < 16; ++key)
        ops.push_back({KvOp::Kind::kPut, key, key + 100, false});
    EXPECT_TRUE(store.multiOp(session, ops));

    ops.clear();
    for (std::uint64_t key = 0; key < 16; ++key)
        ops.push_back({KvOp::Kind::kGet, key, 0, false});
    EXPECT_TRUE(store.multiOp(session, ops));
    for (std::uint64_t key = 0; key < 16; ++key) {
        EXPECT_TRUE(ops[key].ok);
        EXPECT_EQ(ops[key].value, key + 100);
    }
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, MultiOpSeesItsOwnWrites)
{
    KvStore store(smallStore(4, 10, GetParam()));
    auto session = store.openSession();
    ASSERT_TRUE(store.put(session, 5, 50));

    // put(5, 77); get(5); del(7-absent); put(9, 90); get(9) — the
    // reads must observe the composite's own uncommitted writes.
    std::vector<KvOp> ops;
    ops.push_back({KvOp::Kind::kPut, 5, 77, false});
    ops.push_back({KvOp::Kind::kGet, 5, 0, false});
    ops.push_back({KvOp::Kind::kDel, 7, 0, false});
    ops.push_back({KvOp::Kind::kPut, 9, 90, false});
    ops.push_back({KvOp::Kind::kGet, 9, 0, false});
    EXPECT_TRUE(store.multiOp(session, ops));
    EXPECT_TRUE(ops[1].ok);
    EXPECT_EQ(ops[1].value, 77u);
    EXPECT_FALSE(ops[2].ok);
    EXPECT_TRUE(ops[4].ok);
    EXPECT_EQ(ops[4].value, 90u);

    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 5, &value));
    EXPECT_EQ(value, 77u);
    ASSERT_TRUE(store.get(session, 9, &value));
    EXPECT_EQ(value, 90u);
    store.closeSession(session);
}

/**
 * All-or-nothing table-full scenario, shared by the revocable (TL2)
 * and irrevocable (HTM-fallback) variants, on stores with growth
 * pinned off. 2 shards of 16 slots each: fill shard 1 to capacity,
 * keep one known key on shard 0, then run multiOps whose inserts
 * cannot fit — every already-applied part must roll back, both across
 * shards and on the single-shard fast path.
 */
void
runTableFullScenario(KvStoreOptions options)
{
    KvStore store(options);
    auto session = store.openSession();

    std::uint64_t key = 1000;
    const auto next_on_shard = [&](std::size_t shard) {
        while (store.shardOf(key) != shard)
            ++key;
        return key++;
    };

    const std::uint64_t witness = next_on_shard(0);
    ASSERT_TRUE(store.put(session, witness, 111));
    std::vector<std::uint64_t> fillers;
    for (std::size_t i = 0; i < store.shard(1).capacity(); ++i) {
        fillers.push_back(next_on_shard(1));
        ASSERT_TRUE(store.put(session, fillers.back(), i))
            << "filler " << i << " should fit";
    }
    const std::uint64_t overflow = next_on_shard(1);

    // Cross-shard: shard 0's overwrite applies first, shard 1 fails.
    std::vector<KvOp> ops;
    ops.push_back({KvOp::Kind::kPut, witness, 999, false});
    ops.push_back({KvOp::Kind::kPut, overflow, 42, false});
    EXPECT_FALSE(store.multiOp(session, ops)) << "insert cannot fit";

    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, witness, &value));
    EXPECT_EQ(value, 111u) << "shard-0 overwrite must be rolled back";
    EXPECT_FALSE(store.get(session, overflow));

    // Single-shard fast path: overwrite + impossible insert on the
    // full shard itself.
    const std::uint64_t overflow2 = next_on_shard(1);
    ops.clear();
    ops.push_back({KvOp::Kind::kPut, fillers[0], 888, false});
    ops.push_back({KvOp::Kind::kPut, overflow2, 43, false});
    EXPECT_FALSE(store.multiOp(session, ops)) << "insert cannot fit";
    EXPECT_FALSE(store.get(session, overflow2));

    for (std::size_t i = 0; i < fillers.size(); ++i) {
        ASSERT_TRUE(store.get(session, fillers[i], &value));
        EXPECT_EQ(value, i) << "filler " << i << " must be untouched";
    }

    // The store must not be wedged: shard 0 still accepts writes, and
    // overwrites of existing shard-1 keys still work.
    EXPECT_TRUE(store.put(session, witness, 123));
    EXPECT_TRUE(store.put(session, fillers[0], 321));
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, TableFullMultiOpAbortsAllOrNothing)
{
    runTableFullScenario(pinnedStore(2, 4, GetParam()));
}

TEST_P(KvStoreCommitModeTest,
       TableFullAbortIsCleanOnIrrevocableBackend)
{
    // An irrevocable backend writes in place and cannot roll back;
    // the abort paths must revert by hand instead of relying on the
    // TM's rollback.
    KvStoreOptions options = pinnedStore(2, 4, GetParam());
    options.initial = irrevocableConfig();
    runTableFullScenario(options);
}

TEST_P(KvStoreCommitModeTest, TransfersStayAtomicOnIrrevocableBackend)
{
    // Smoke the pending-intent wait/fold paths where tx.retry() is
    // illegal (irrevocable fallback): concurrent transfers + snapshots
    // must still conserve the total.
    constexpr std::uint64_t kKeys = 32;
    constexpr std::uint64_t kInitial = 100;
    constexpr int kWriters = 3;
    constexpr int kTransfers = 200;

    KvStoreOptions options = smallStore(4, 10, GetParam());
    options.initial = irrevocableConfig();
    KvStore store(options);
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(5100 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfers; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-1), false});
                ops.push_back({KvOp::Kind::kAdd, to, 1, false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }
    threads.emplace_back([&] {
        auto session = store.openSession();
        std::vector<KvOp> snapshot;
        while (writers_done.load() < kWriters && !violation.load()) {
            snapshot.clear();
            for (std::uint64_t key = 0; key < kKeys; ++key)
                snapshot.push_back({KvOp::Kind::kGet, key, 0, false});
            store.multiOp(session, snapshot);
            std::uint64_t total = 0;
            for (const KvOp &op : snapshot)
                total += op.ok ? op.value : 0;
            if (total != kKeys * kInitial)
                violation.store(true);
        }
        store.closeSession(session);
    });
    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load())
        << "a reader observed a torn transfer on the global-lock "
           "backend";
}

TEST_P(KvStoreCommitModeTest, MultiShardTransfersStayAtomicUnder8Threads)
{
    // Bank invariant: kKeys accounts start at kInitial each; writers
    // move random amounts between random accounts with cross-shard
    // kAdd multiOps; readers snapshot all accounts with a read-only
    // multiOp and must always observe the exact total.
    constexpr std::uint64_t kKeys = 64;
    constexpr std::uint64_t kInitial = 1000;
    constexpr int kWriters = 6;
    constexpr int kReaders = 2;
    constexpr int kTransfersPerWriter = 400;

    KvStore store(smallStore(4, 10, GetParam()));
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;

    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(7000 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfersPerWriter; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                const std::int64_t amount =
                    static_cast<std::int64_t>(rng.nextBounded(5)) + 1;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-amount),
                               false});
                ops.push_back({KvOp::Kind::kAdd, to,
                               static_cast<std::uint64_t>(amount),
                               false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            auto session = store.openSession();
            std::vector<KvOp> snapshot;
            while (writers_done.load() < kWriters &&
                   !violation.load()) {
                snapshot.clear();
                for (std::uint64_t key = 0; key < kKeys; ++key)
                    snapshot.push_back(
                        {KvOp::Kind::kGet, key, 0, false});
                store.multiOp(session, snapshot);
                std::uint64_t total = 0;
                for (const KvOp &op : snapshot)
                    total += op.ok ? op.value : 0;
                if (total != kKeys * kInitial)
                    violation.store(true);
            }
            store.closeSession(session);
        });
    }

    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load())
        << "a reader observed a torn cross-shard transfer";

    // Final balance check, single-threaded.
    auto session = store.openSession();
    std::uint64_t total = 0;
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        total += value;
    }
    EXPECT_EQ(total, kKeys * kInitial);
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, SingleKeyOpsRaceMultiOpsWithoutCorruption)
{
    // Mixed traffic: single-key put/get racing cross-shard multiOps
    // on overlapping keys, under the selected commit protocol.
    KvStore store(smallStore(2, 10, GetParam()));
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;

    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            auto session = store.openSession();
            Rng rng(900 + static_cast<unsigned>(t));
            std::vector<KvOp> ops;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::uint64_t key = rng.nextBounded(256);
                if (t % 2 == 0) {
                    store.put(session, key, key);
                    store.get(session, key);
                } else {
                    ops.clear();
                    ops.push_back(
                        {KvOp::Kind::kPut, key, key, false});
                    ops.push_back({KvOp::Kind::kPut, key + 128,
                                   key + 128, false});
                    store.multiOp(session, ops);
                }
            }
            store.closeSession(session);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    for (auto &thread : threads)
        thread.join();

    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 384; ++key) {
        if (store.get(session, key, &value))
            EXPECT_EQ(value, key) << "value corrupted for key " << key;
    }
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, ElasticShardsGrowInsteadOfFailing)
{
    // 2 shards of 16 slots each, growth unbounded: 400 inserts (≈12x
    // the initial per-shard capacity) must all land, via single-key
    // puts and multiOps alike, with every key readable afterwards.
    KvStore store(smallStore(2, 4, GetParam()));
    auto session = store.openSession();

    const std::size_t initial_cap = store.shard(0).capacity();
    for (std::uint64_t key = 0; key < 200; ++key)
        ASSERT_TRUE(store.put(session, key, key * 3 + 1)) << key;

    std::vector<KvOp> ops;
    for (std::uint64_t key = 200; key < 400; key += 2) {
        ops.clear();
        ops.push_back({KvOp::Kind::kPut, key, key * 3 + 1, false});
        ops.push_back({KvOp::Kind::kPut, key + 1, key * 3 + 4, false});
        ASSERT_TRUE(store.multiOp(session, ops)) << key;
    }

    EXPECT_GT(store.shard(0).capacity() + store.shard(1).capacity(),
              2 * initial_cap)
        << "at least one shard must have grown";

    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 400; ++key) {
        ASSERT_TRUE(store.get(session, key, &value)) << key;
        EXPECT_EQ(value, key * 3 + 1) << key;
    }
    // Quiesce any in-flight migration and re-check: relocation must
    // not lose or duplicate keys.
    for (int s = 0; s < store.numShards(); ++s)
        store.shard(static_cast<std::size_t>(s))
            .drainMigration(session.token(static_cast<std::size_t>(s)));
    std::size_t total = 0;
    for (int s = 0; s < store.numShards(); ++s)
        total += store.shard(static_cast<std::size_t>(s)).sizeQuiesced();
    EXPECT_EQ(total, 400u);
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, WideValuesRoundTripThroughAllPaths)
{
    KvStore store(smallStore(2, 8, GetParam()));
    auto session = store.openSession();

    const auto pattern = [](std::uint64_t key, std::size_t len) {
        std::string bytes(len, '\0');
        for (std::size_t i = 0; i < len; ++i)
            bytes[i] = static_cast<char>((key * 131 + i * 7) & 0xff);
        return bytes;
    };

    // Sizes straddling the inline/blob boundary and ≥ 64 bytes.
    const std::size_t sizes[] = {0, 3, 7, 8, 64, 200, 1024};
    std::uint64_t key = 0;
    for (const std::size_t len : sizes) {
        const std::string bytes = pattern(key, len);
        ASSERT_TRUE(
            store.putBytes(session, key, bytes.data(), bytes.size()));
        std::string out;
        ASSERT_TRUE(store.getBytes(session, key, &out));
        EXPECT_EQ(out, bytes) << "len " << len;
        ++key;
    }

    // Overwrite a blob with a blob (the displaced one is reclaimed)
    // and a blob with a word value.
    const std::string big = pattern(99, 300);
    ASSERT_TRUE(store.putBytes(session, 4, big.data(), big.size()));
    std::string out;
    ASSERT_TRUE(store.getBytes(session, 4, &out));
    EXPECT_EQ(out, big);
    ASSERT_TRUE(store.put(session, 4, 0xdeadbeef));
    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 4, &value));
    EXPECT_EQ(value, 0xdeadbeefu);

    // Wide values through the multiOp write path (cross-shard) and
    // the byte read path, including read-your-writes.
    const std::string wide_a = pattern(1000, 96);
    const std::string wide_b = pattern(1001, 700);
    std::vector<KvOp> ops;
    ops.push_back({KvOp::Kind::kPutBytes, 1000, 0, false, wide_a});
    ops.push_back({KvOp::Kind::kPutBytes, 1001, 0, false, wide_b});
    ops.push_back({KvOp::Kind::kGetBytes, 1000, 0, false});
    ASSERT_TRUE(store.multiOp(session, ops));
    EXPECT_TRUE(ops[2].ok);
    EXPECT_EQ(ops[2].bytes, wide_a) << "read-your-writes on bytes";
    ASSERT_TRUE(store.getBytes(session, 1001, &out));
    EXPECT_EQ(out, wide_b);

    // Byte-decoding scan sees the wide values.
    std::vector<Shard::ScanEntry> entries;
    const std::size_t n = store.scanEntries(session, 1000, 4, &entries);
    EXPECT_GE(n, 1u);

    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, WideValuesSurviveAbortOnIrrevocable)
{
    // A multiOp that overwrites a 128-byte value and then fails on a
    // pinned-full shard must restore the wide value byte-for-byte —
    // on an irrevocable backend this runs the manual in-place revert.
    KvStoreOptions options = pinnedStore(2, 4, GetParam());
    options.initial = irrevocableConfig();
    KvStore store(options);
    auto session = store.openSession();

    std::uint64_t key = 1000;
    const auto next_on_shard = [&](std::size_t shard) {
        while (store.shardOf(key) != shard)
            ++key;
        return key++;
    };

    const std::uint64_t witness = next_on_shard(0);
    std::string wide(128, '\0');
    for (std::size_t i = 0; i < wide.size(); ++i)
        wide[i] = static_cast<char>((i * 13 + 5) & 0xff);
    ASSERT_TRUE(
        store.putBytes(session, witness, wide.data(), wide.size()));

    for (std::size_t i = 0; i < store.shard(1).capacity(); ++i)
        ASSERT_TRUE(store.put(session, next_on_shard(1), i));
    const std::uint64_t overflow = next_on_shard(1);

    std::vector<KvOp> ops;
    std::string replacement(96, 'x');
    ops.push_back(
        {KvOp::Kind::kPutBytes, witness, 0, false, replacement});
    ops.push_back({KvOp::Kind::kPut, overflow, 42, false});
    EXPECT_FALSE(store.multiOp(session, ops)) << "insert cannot fit";

    std::string out;
    ASSERT_TRUE(store.getBytes(session, witness, &out));
    EXPECT_EQ(out, wide) << "wide pre-image must survive the revert";

    // The store is not wedged: the witness still accepts overwrites.
    ASSERT_TRUE(store.putBytes(session, witness, replacement.data(),
                               replacement.size()));
    ASSERT_TRUE(store.getBytes(session, witness, &out));
    EXPECT_EQ(out, replacement);
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, TtlExpiresLazilyAndSweeps)
{
    KvStore store(smallStore(2, 8, GetParam()));
    auto session = store.openSession();

    constexpr std::uint64_t kTtl = 40ull * 1000 * 1000; // 40 ms
    ASSERT_TRUE(store.put(session, 1, 100, kTtl));
    std::string wide(80, 'w');
    ASSERT_TRUE(
        store.putBytes(session, 2, wide.data(), wide.size(), kTtl));
    ASSERT_TRUE(store.put(session, 3, 300)); // no TTL

    std::uint64_t value = 0;
    EXPECT_TRUE(store.get(session, 1, &value));
    EXPECT_EQ(value, 100u);
    std::string out;
    EXPECT_TRUE(store.getBytes(session, 2, &out));

    std::this_thread::sleep_for(std::chrono::milliseconds(60));

    EXPECT_FALSE(store.get(session, 1)) << "expired key must read absent";
    EXPECT_FALSE(store.getBytes(session, 2, &out));
    EXPECT_TRUE(store.get(session, 3, &value)) << "no-TTL key survives";
    EXPECT_EQ(value, 300u);

    // A put over an expired slot revives the key.
    ASSERT_TRUE(store.put(session, 1, 111));
    EXPECT_TRUE(store.get(session, 1, &value));
    EXPECT_EQ(value, 111u);
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, DefaultTtlFromOptionsApplies)
{
    KvStoreOptions options = smallStore(2, 8, GetParam());
    options.defaultTtlNanos = 40ull * 1000 * 1000;
    KvStore store(options);
    auto session = store.openSession();
    ASSERT_TRUE(store.put(session, 7, 70));
    std::uint64_t value = 0;
    EXPECT_TRUE(store.get(session, 7, &value));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_FALSE(store.get(session, 7))
        << "store-default TTL must apply to plain puts";
    store.closeSession(session);
}

TEST(TrafficCacheTest, TtlChurnDropsHitRate)
{
    // The cache preset's eviction must be visible in the driver's
    // hit-rate telemetry: with every key preloaded, a TTL-free run
    // never misses, while the TTL run loses its cold tail to expiry.
    const auto run_mix = [](std::uint64_t ttl_nanos) {
        KvStore store(smallStore(2, 10));
        TrafficMix mix = TrafficMix::preset(MixKind::kCache);
        mix.keySpace = 1 << 8;
        mix.ttlNanos = ttl_nanos;
        TrafficOptions traffic;
        traffic.threads = 2;
        traffic.phases = {mix};
        TrafficDriver driver(store, traffic);
        driver.preload(mix.keySpace);
        driver.start();
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        driver.stop();
        EXPECT_GT(driver.getAttempts(), 0u);
        return driver.hitRate();
    };

    const double no_ttl_rate = run_mix(0);
    const double ttl_rate = run_mix(15ull * 1000 * 1000); // 15 ms
    EXPECT_GT(no_ttl_rate, 0.999)
        << "fully preloaded, TTL-free gets must all hit";
    EXPECT_LT(ttl_rate, no_ttl_rate)
        << "TTL churn must evict (hit-rate drop invisible)";
}

TEST_P(KvStoreCommitModeTest, SnapshotReadsUnderWriteStormStayConsistent)
{
    // Hammer the snapshot-epoch read path with a cross-shard write
    // storm: totals must still be conserved (every in-flight commit
    // resolves all-or-nothing against the sampled read timestamp) and
    // the test must terminate (rounds repeat only on actual commit
    // flips, which the finite writers eventually stop producing).
    constexpr std::uint64_t kKeys = 32;
    constexpr std::uint64_t kInitial = 50;
    constexpr int kWriters = 3;
    constexpr int kTransfers = 300;

    KvStoreOptions options = smallStore(4, 10, GetParam());
    KvStore store(options);
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(3300 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfers; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-1), false});
                ops.push_back({KvOp::Kind::kAdd, to, 1, false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }
    threads.emplace_back([&] {
        auto session = store.openSession();
        std::vector<KvOp> snapshot;
        while (writers_done.load() < kWriters && !violation.load()) {
            snapshot.clear();
            for (std::uint64_t key = 0; key < kKeys; ++key)
                snapshot.push_back({KvOp::Kind::kGet, key, 0, false});
            store.multiOp(session, snapshot);
            std::uint64_t total = 0;
            for (const KvOp &op : snapshot)
                total += op.ok ? op.value : 0;
            if (total != kKeys * kInitial)
                violation.store(true);
        }
        store.closeSession(session);
    });
    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load())
        << "an escalated snapshot read observed a torn transfer";
}

INSTANTIATE_TEST_SUITE_P(
    CommitModes, KvStoreCommitModeTest,
    ::testing::Values(CommitMode::kLatch, CommitMode::kTwoPhase),
    [](const ::testing::TestParamInfo<CommitMode> &info) {
        return info.param == CommitMode::kLatch ? "Latch" : "TwoPhase";
    });

} // namespace
} // namespace proteus::kvstore
