/**
 * KvStore tests: deterministic shard routing, batch semantics, and —
 * the critical ones — atomicity of cross-shard multi-key transactions
 * observed by 8+ concurrent threads, and all-or-nothing table-full
 * aborts. Concurrency/atomicity tests run under both commit protocols
 * (legacy exclusive latches and the 2PC-over-TM intent protocol).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

KvStoreOptions
smallStore(int shards, unsigned log2_slots = 10,
           CommitMode mode = CommitMode::kTwoPhase)
{
    KvStoreOptions options;
    options.numShards = shards;
    options.log2SlotsPerShard = log2_slots;
    options.commitMode = mode;
    // Parallelism degree high enough that every test session stays
    // enabled; degree-shrinking behaviour is covered by polytm tests.
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    return options;
}

TEST(KvStoreTest, ShardRoutingIsDeterministicAndBalanced)
{
    KvStore a(smallStore(8));
    KvStore b(smallStore(8));

    std::vector<std::size_t> load(8, 0);
    for (std::uint64_t key = 0; key < 4096; ++key) {
        const std::size_t s = a.shardOf(key);
        ASSERT_LT(s, 8u);
        // Same key, same options => same shard, on any instance.
        EXPECT_EQ(s, b.shardOf(key));
        EXPECT_EQ(s, a.shardOf(key)) << "routing must be stable";
        ++load[s];
    }
    // 4096 uniform keys over 8 shards: each shard within 2x of fair.
    for (const std::size_t n : load) {
        EXPECT_GT(n, 4096u / 16) << "shard starved";
        EXPECT_LT(n, 4096u / 4) << "shard overloaded";
    }
}

TEST(KvStoreTest, OpsLandOnTheirHomeShardOnly)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    for (std::uint64_t key = 0; key < 128; ++key)
        ASSERT_TRUE(store.put(session, key, key + 7));

    std::size_t total = 0;
    for (int s = 0; s < store.numShards(); ++s)
        total += store.shard(static_cast<std::size_t>(s)).sizeQuiesced();
    EXPECT_EQ(total, 128u);

    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 128; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        EXPECT_EQ(value, key + 7);
    }
    store.closeSession(session);
}

TEST(KvStoreTest, BatchAppliesAndReportsPerOpResults)
{
    KvStore store(smallStore(4));
    auto session = store.openSession();

    KvStore::Batch batch;
    for (std::uint64_t key = 0; key < 64; ++key)
        batch.put(key, key * 3);
    EXPECT_TRUE(store.applyBatch(session, batch));
    batch.clear();

    batch.get(10);
    batch.get(9999); // absent
    batch.del(11);
    EXPECT_TRUE(store.applyBatch(session, batch));
    EXPECT_TRUE(batch.ops()[0].ok);
    EXPECT_EQ(batch.ops()[0].value, 30u);
    EXPECT_FALSE(batch.ops()[1].ok);
    EXPECT_TRUE(batch.ops()[2].ok);
    EXPECT_FALSE(store.get(session, 11));

    store.closeSession(session);
}

TEST(KvStoreTest, OpenSessionFailureLeaksNoRegistrations)
{
    KvStore store(smallStore(2, 8));

    // Exhaust shard 1's thread slots only, so openSession registers
    // with shard 0 and then fails on shard 1.
    std::vector<polytm::ThreadToken> extra;
    while (store.shard(1).poly().registeredThreads() < tm::kMaxThreads)
        extra.push_back(store.shard(1).registerWorker());

    // Every failed openSession must give back its shard-0 slot; if it
    // leaked, 70 failures would exhaust shard 0 (64 slots) too.
    for (int i = 0; i < 70; ++i)
        EXPECT_THROW(store.openSession(), std::runtime_error);

    for (auto &token : extra)
        store.shard(1).deregisterWorker(token);
    auto session = store.openSession();
    EXPECT_TRUE(store.put(session, 1, 2));
    store.closeSession(session);
}

/** Commit-protocol-parameterized suite: everything below must hold
 *  under both the latch and the 2PC commit. */
class KvStoreCommitModeTest : public ::testing::TestWithParam<CommitMode>
{
};

TEST_P(KvStoreCommitModeTest, MultiOpReadsAndWritesAcrossShards)
{
    KvStore store(smallStore(4, 10, GetParam()));
    auto session = store.openSession();

    std::vector<KvOp> ops;
    for (std::uint64_t key = 0; key < 16; ++key)
        ops.push_back({KvOp::Kind::kPut, key, key + 100, false});
    EXPECT_TRUE(store.multiOp(session, ops));

    ops.clear();
    for (std::uint64_t key = 0; key < 16; ++key)
        ops.push_back({KvOp::Kind::kGet, key, 0, false});
    EXPECT_TRUE(store.multiOp(session, ops));
    for (std::uint64_t key = 0; key < 16; ++key) {
        EXPECT_TRUE(ops[key].ok);
        EXPECT_EQ(ops[key].value, key + 100);
    }
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, MultiOpSeesItsOwnWrites)
{
    KvStore store(smallStore(4, 10, GetParam()));
    auto session = store.openSession();
    ASSERT_TRUE(store.put(session, 5, 50));

    // put(5, 77); get(5); del(7-absent); put(9, 90); get(9) — the
    // reads must observe the composite's own uncommitted writes.
    std::vector<KvOp> ops;
    ops.push_back({KvOp::Kind::kPut, 5, 77, false});
    ops.push_back({KvOp::Kind::kGet, 5, 0, false});
    ops.push_back({KvOp::Kind::kDel, 7, 0, false});
    ops.push_back({KvOp::Kind::kPut, 9, 90, false});
    ops.push_back({KvOp::Kind::kGet, 9, 0, false});
    EXPECT_TRUE(store.multiOp(session, ops));
    EXPECT_TRUE(ops[1].ok);
    EXPECT_EQ(ops[1].value, 77u);
    EXPECT_FALSE(ops[2].ok);
    EXPECT_TRUE(ops[4].ok);
    EXPECT_EQ(ops[4].value, 90u);

    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 5, &value));
    EXPECT_EQ(value, 77u);
    ASSERT_TRUE(store.get(session, 9, &value));
    EXPECT_EQ(value, 90u);
    store.closeSession(session);
}

/**
 * All-or-nothing table-full scenario, shared by the revocable (TL2)
 * and irrevocable (global lock) variants. 2 shards of 16 slots each:
 * fill shard 1 to capacity, keep one known key on shard 0, then run
 * multiOps whose inserts cannot fit — every already-applied part must
 * roll back (the seed's documented wart), both across shards and on
 * the single-shard fast path.
 */
void
runTableFullScenario(KvStoreOptions options)
{
    KvStore store(options);
    auto session = store.openSession();

    std::uint64_t key = 1000;
    const auto next_on_shard = [&](std::size_t shard) {
        while (store.shardOf(key) != shard)
            ++key;
        return key++;
    };

    const std::uint64_t witness = next_on_shard(0);
    ASSERT_TRUE(store.put(session, witness, 111));
    std::vector<std::uint64_t> fillers;
    for (std::size_t i = 0; i < store.shard(1).capacity(); ++i) {
        fillers.push_back(next_on_shard(1));
        ASSERT_TRUE(store.put(session, fillers.back(), i))
            << "filler " << i << " should fit";
    }
    const std::uint64_t overflow = next_on_shard(1);

    // Cross-shard: shard 0's overwrite applies first, shard 1 fails.
    std::vector<KvOp> ops;
    ops.push_back({KvOp::Kind::kPut, witness, 999, false});
    ops.push_back({KvOp::Kind::kPut, overflow, 42, false});
    EXPECT_FALSE(store.multiOp(session, ops)) << "insert cannot fit";

    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, witness, &value));
    EXPECT_EQ(value, 111u) << "shard-0 overwrite must be rolled back";
    EXPECT_FALSE(store.get(session, overflow));

    // Single-shard fast path: overwrite + impossible insert on the
    // full shard itself.
    const std::uint64_t overflow2 = next_on_shard(1);
    ops.clear();
    ops.push_back({KvOp::Kind::kPut, fillers[0], 888, false});
    ops.push_back({KvOp::Kind::kPut, overflow2, 43, false});
    EXPECT_FALSE(store.multiOp(session, ops)) << "insert cannot fit";
    EXPECT_FALSE(store.get(session, overflow2));

    for (std::size_t i = 0; i < fillers.size(); ++i) {
        ASSERT_TRUE(store.get(session, fillers[i], &value));
        EXPECT_EQ(value, i) << "filler " << i << " must be untouched";
    }

    // The store must not be wedged: shard 0 still accepts writes, and
    // overwrites of existing shard-1 keys still work.
    EXPECT_TRUE(store.put(session, witness, 123));
    EXPECT_TRUE(store.put(session, fillers[0], 321));
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, TableFullMultiOpAbortsAllOrNothing)
{
    runTableFullScenario(smallStore(2, 4, GetParam()));
}

TEST_P(KvStoreCommitModeTest,
       TableFullAbortIsCleanOnIrrevocableBackend)
{
    // The global-lock backend writes in place and cannot roll back;
    // the abort paths must revert by hand instead of relying on the
    // TM's rollback.
    KvStoreOptions options = smallStore(2, 4, GetParam());
    options.initial = {tm::BackendKind::kGlobalLock, 16, {}};
    runTableFullScenario(options);
}

TEST_P(KvStoreCommitModeTest, TransfersStayAtomicOnIrrevocableBackend)
{
    // Smoke the pending-intent wait/fold paths where tx.retry() is
    // illegal (global lock): concurrent transfers + snapshots must
    // still conserve the total.
    constexpr std::uint64_t kKeys = 32;
    constexpr std::uint64_t kInitial = 100;
    constexpr int kWriters = 3;
    constexpr int kTransfers = 200;

    KvStoreOptions options = smallStore(4, 10, GetParam());
    options.initial = {tm::BackendKind::kGlobalLock, 16, {}};
    KvStore store(options);
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(5100 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfers; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-1), false});
                ops.push_back({KvOp::Kind::kAdd, to, 1, false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }
    threads.emplace_back([&] {
        auto session = store.openSession();
        std::vector<KvOp> snapshot;
        while (writers_done.load() < kWriters && !violation.load()) {
            snapshot.clear();
            for (std::uint64_t key = 0; key < kKeys; ++key)
                snapshot.push_back({KvOp::Kind::kGet, key, 0, false});
            store.multiOp(session, snapshot);
            std::uint64_t total = 0;
            for (const KvOp &op : snapshot)
                total += op.ok ? op.value : 0;
            if (total != kKeys * kInitial)
                violation.store(true);
        }
        store.closeSession(session);
    });
    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load())
        << "a reader observed a torn transfer on the global-lock "
           "backend";
}

TEST_P(KvStoreCommitModeTest, MultiShardTransfersStayAtomicUnder8Threads)
{
    // Bank invariant: kKeys accounts start at kInitial each; writers
    // move random amounts between random accounts with cross-shard
    // kAdd multiOps; readers snapshot all accounts with a read-only
    // multiOp and must always observe the exact total.
    constexpr std::uint64_t kKeys = 64;
    constexpr std::uint64_t kInitial = 1000;
    constexpr int kWriters = 6;
    constexpr int kReaders = 2;
    constexpr int kTransfersPerWriter = 400;

    KvStore store(smallStore(4, 10, GetParam()));
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;

    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(7000 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfersPerWriter; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                const std::int64_t amount =
                    static_cast<std::int64_t>(rng.nextBounded(5)) + 1;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-amount),
                               false});
                ops.push_back({KvOp::Kind::kAdd, to,
                               static_cast<std::uint64_t>(amount),
                               false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&] {
            auto session = store.openSession();
            std::vector<KvOp> snapshot;
            while (writers_done.load() < kWriters &&
                   !violation.load()) {
                snapshot.clear();
                for (std::uint64_t key = 0; key < kKeys; ++key)
                    snapshot.push_back(
                        {KvOp::Kind::kGet, key, 0, false});
                store.multiOp(session, snapshot);
                std::uint64_t total = 0;
                for (const KvOp &op : snapshot)
                    total += op.ok ? op.value : 0;
                if (total != kKeys * kInitial)
                    violation.store(true);
            }
            store.closeSession(session);
        });
    }

    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violation.load())
        << "a reader observed a torn cross-shard transfer";

    // Final balance check, single-threaded.
    auto session = store.openSession();
    std::uint64_t total = 0;
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        total += value;
    }
    EXPECT_EQ(total, kKeys * kInitial);
    store.closeSession(session);
}

TEST_P(KvStoreCommitModeTest, SingleKeyOpsRaceMultiOpsWithoutCorruption)
{
    // Mixed traffic: single-key put/get racing cross-shard multiOps
    // on overlapping keys, under the selected commit protocol.
    KvStore store(smallStore(2, 10, GetParam()));
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;

    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            auto session = store.openSession();
            Rng rng(900 + static_cast<unsigned>(t));
            std::vector<KvOp> ops;
            while (!stop.load(std::memory_order_relaxed)) {
                const std::uint64_t key = rng.nextBounded(256);
                if (t % 2 == 0) {
                    store.put(session, key, key);
                    store.get(session, key);
                } else {
                    ops.clear();
                    ops.push_back(
                        {KvOp::Kind::kPut, key, key, false});
                    ops.push_back({KvOp::Kind::kPut, key + 128,
                                   key + 128, false});
                    store.multiOp(session, ops);
                }
            }
            store.closeSession(session);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    for (auto &thread : threads)
        thread.join();

    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 384; ++key) {
        if (store.get(session, key, &value))
            EXPECT_EQ(value, key) << "value corrupted for key " << key;
    }
    store.closeSession(session);
}

INSTANTIATE_TEST_SUITE_P(
    CommitModes, KvStoreCommitModeTest,
    ::testing::Values(CommitMode::kLatch, CommitMode::kTwoPhase),
    [](const ::testing::TestParamInfo<CommitMode> &info) {
        return info.param == CommitMode::kLatch ? "Latch" : "TwoPhase";
    });

} // namespace
} // namespace proteus::kvstore
