/**
 * Kill-9 crash-recovery hunter: each iteration forks a child that
 * hammers a durable store with cross-shard 2PC transfers and
 * acknowledged single-key ledger puts, arms the flight recorder to
 * SIGKILL the process at a randomized trace point mid-protocol, then
 * the parent recovers the WAL directory and asserts
 *
 *   - conservation: cross-shard transfers moved value, never created
 *     or destroyed it (2PC all-or-nothing across shards);
 *   - no lost acks: every transfer/put acknowledged before the kill
 *     is present after recovery (the ack counters are pwritten to a
 *     sideband file at fixed offsets — atomic 8-byte overwrites, so
 *     the parent never parses a torn line);
 *   - idempotence: recovering the recovered directory again changes
 *     nothing.
 *
 * Iteration count comes from PROTEUS_CRASH_ITERS (CI loops >= 100).
 * A failing iteration keeps its WAL directory under ./crash_hunter/
 * for upload as a CI artifact.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kPoolBase = 1'000'000;
constexpr int kPoolKeys = 32;
constexpr std::uint64_t kInitialBalance = 1'000;
constexpr std::uint64_t kTransferCounterKey = 2'000'000;
constexpr std::uint64_t kLedgerBase = 3'000'000;
constexpr int kThreads = 3;

// Ack-file layout: fixed-offset u64 slots, overwritten in place, one
// writer per slot (monotonic counters — a kill mid-write only ever
// under-reports, which is the safe direction).
constexpr off_t kAckPreloaded = 0;               // 1 once pool durable
constexpr off_t kAckTransfers0 = 8;              // + 8*tid: acked 2PC
constexpr off_t kAckLedger0 = 8 + 8 * kThreads;  // + 8*tid: ledger seq

std::uint64_t
splitMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

KvStoreOptions
hunterOptions(const std::string &wal_dir, Durability mode)
{
    KvStoreOptions options;
    options.numShards = 4;
    options.log2SlotsPerShard = 12;
    options.commitMode = CommitMode::kTwoPhase;
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    options.telemetry = true; // armCrash fires through record()
    options.durability = mode;
    options.walDir = wal_dir;
    return options;
}

void
pwriteU64(int fd, off_t off, std::uint64_t v)
{
    (void)::pwrite(fd, &v, sizeof v, off);
}

std::uint64_t
preadU64(int fd, off_t off)
{
    std::uint64_t v = 0;
    (void)::pread(fd, &v, sizeof v, off);
    return v;
}

/** Child body; never returns (exits or is SIGKILLed). */
[[noreturn]] void
runChild(const std::string &wal_dir, const std::string &ack_path,
         std::uint64_t seed)
{
    const Durability mode = (splitMix(seed) & 1) != 0
                                ? Durability::kBuffered
                                : Durability::kFsyncGroup;
    const int ack_fd =
        ::open(ack_path.c_str(), O_WRONLY | O_CREAT, 0644);
    if (ack_fd < 0)
        ::_exit(2);
    try {
        KvStore store(hunterOptions(wal_dir, mode));
        {
            auto session = store.openSession();
            for (int j = 0; j < kPoolKeys; ++j)
                if (!store.put(session, kPoolBase + j, kInitialBalance))
                    ::_exit(2);
            store.closeSession(session);
        }
        store.flushWal();
        pwriteU64(ack_fd, kAckPreloaded, 1);

        // Arm the bomb AFTER the pool is durable, at a randomized
        // protocol point. kWalFsync never fires under kBuffered — the
        // iteration then just exhausts its budget and exits cleanly.
        static const obs::TraceKind kPoints[] = {
            obs::TraceKind::kWalAppend,
            obs::TraceKind::kWalFsync,
            obs::TraceKind::kTwoPhasePrepare,
            obs::TraceKind::kTwoPhaseReserve,
            obs::TraceKind::kTwoPhaseFlip,
            obs::TraceKind::kTwoPhaseFinalize,
        };
        const obs::TraceKind point =
            kPoints[splitMix(seed ^ 0xabcd) % std::size(kPoints)];
        const std::uint64_t nth = 1 + splitMix(seed ^ 0x1234) % 40;
        store.flightRecorder().armCrash(point, nth);

        const int budget =
            mode == Durability::kFsyncGroup ? 400 : 4000;
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                auto session = store.openSession();
                std::uint64_t rng = splitMix(seed ^ (0x77u + t));
                std::uint64_t ledger_seq = 0;
                std::uint64_t acked = 0;
                for (int i = 0; i < budget; ++i) {
                    rng = splitMix(rng);
                    const std::uint64_t a =
                        kPoolBase + rng % kPoolKeys;
                    const std::uint64_t b =
                        kPoolBase + (rng >> 8) % kPoolKeys;
                    if (a == b)
                        continue;
                    const std::int64_t delta =
                        static_cast<std::int64_t>((rng >> 16) % 100);
                    std::vector<KvOp> ops;
                    ops.push_back(
                        {KvOp::Kind::kAdd, a,
                         static_cast<std::uint64_t>(-delta), false});
                    ops.push_back(
                        {KvOp::Kind::kAdd, b,
                         static_cast<std::uint64_t>(delta), false});
                    ops.push_back({KvOp::Kind::kAdd,
                                   kTransferCounterKey, 1, false});
                    if (store.multiOp(session, ops)) {
                        // Acked: the outcome is durable everywhere.
                        ++acked;
                        pwriteU64(ack_fd, kAckTransfers0 + 8 * t,
                                  acked);
                    }
                    if ((i & 7) == 0) {
                        ++ledger_seq;
                        if (store.put(session, kLedgerBase + t,
                                      ledger_seq))
                            pwriteU64(ack_fd, kAckLedger0 + 8 * t,
                                      ledger_seq);
                    }
                }
                store.closeSession(session);
            });
        }
        for (auto &worker : workers)
            worker.join();
    } catch (...) {
        ::_exit(3);
    }
    ::_exit(0); // bomb never went off this time
}

struct RecoveredState {
    std::uint64_t poolSum = 0;
    std::uint64_t transferCount = 0;
    std::vector<std::uint64_t> ledger;
};

RecoveredState
readBack(const std::string &wal_dir, Durability mode)
{
    RecoveredState state;
    KvStore store(hunterOptions(wal_dir, mode));
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (int j = 0; j < kPoolKeys; ++j) {
        EXPECT_TRUE(store.get(session, kPoolBase + j, &value))
            << "pool key " << j << " lost";
        state.poolSum += value;
    }
    if (store.get(session, kTransferCounterKey, &value))
        state.transferCount = value;
    for (int t = 0; t < kThreads; ++t) {
        value = 0;
        (void)store.get(session, kLedgerBase + t, &value);
        state.ledger.push_back(value);
    }
    store.closeSession(session);
    return state;
}

TEST(CrashRecoveryHunter, Kill9MidProtocolNeverLosesAckedCommits)
{
    int iters = 8;
    if (const char *env = std::getenv("PROTEUS_CRASH_ITERS"))
        iters = std::atoi(env);
    const fs::path root = fs::current_path() / "crash_hunter";
    fs::create_directories(root);

    int crashed = 0;
    for (int iter = 0; iter < iters; ++iter) {
        const std::uint64_t seed = splitMix(0xc0ffee + iter);
        const Durability mode = (splitMix(seed) & 1) != 0
                                    ? Durability::kBuffered
                                    : Durability::kFsyncGroup;
        const fs::path dir =
            root / ("iter-" + std::to_string(iter));
        fs::remove_all(dir);
        fs::create_directories(dir);
        const std::string wal_dir = (dir / "wal").string();
        const std::string ack_path = (dir / "ack").string();

        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0)
            runChild(wal_dir, ack_path, seed); // never returns

        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        const bool killed =
            WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        ASSERT_TRUE(killed || clean)
            << "child died abnormally, status=" << status
            << " (dir kept: " << dir << ")";
        crashed += killed ? 1 : 0;

        const int ack_fd = ::open(ack_path.c_str(), O_RDONLY);
        const bool preloaded =
            ack_fd >= 0 && preadU64(ack_fd, kAckPreloaded) == 1;
        std::uint64_t acked_transfers = 0;
        std::uint64_t acked_ledger[kThreads] = {};
        if (ack_fd >= 0) {
            for (int t = 0; t < kThreads; ++t) {
                acked_transfers +=
                    preadU64(ack_fd, kAckTransfers0 + 8 * t);
                acked_ledger[t] = preadU64(ack_fd, kAckLedger0 + 8 * t);
            }
            ::close(ack_fd);
        }
        if (!preloaded) {
            // Killed before the pool was durable: nothing to assert.
            fs::remove_all(dir);
            continue;
        }

        const RecoveredState first = readBack(wal_dir, mode);
        // Conservation: transfers are zero-sum (mod 2^64, so debits
        // past zero still cancel exactly).
        EXPECT_EQ(first.poolSum, kPoolKeys * kInitialBalance)
            << "iter " << iter << " (dir kept: " << dir << ")";
        // No lost acks.
        EXPECT_GE(first.transferCount, acked_transfers)
            << "iter " << iter << " (dir kept: " << dir << ")";
        for (int t = 0; t < kThreads; ++t)
            EXPECT_GE(first.ledger[t], acked_ledger[t])
                << "iter " << iter << " thread " << t
                << " (dir kept: " << dir << ")";

        // Idempotence: recovery of the recovered directory.
        const RecoveredState second = readBack(wal_dir, mode);
        EXPECT_EQ(second.poolSum, first.poolSum);
        EXPECT_GE(second.transferCount, first.transferCount);

        if (!::testing::Test::HasFailure())
            fs::remove_all(dir);
        else
            GTEST_FAIL() << "crash hunter failed at iter " << iter
                         << "; surviving WAL dir: " << dir;
    }
    // Not an assert: a pathological seed set could dodge every bomb,
    // but near-always most iterations die mid-protocol.
    RecordProperty("crashed_iterations", crashed);
}

} // namespace
} // namespace proteus::kvstore
