/**
 * Shard unit tests: open-addressing semantics (overwrite, tombstone
 * reuse, full-table behaviour), scans, and transactional composition
 * through the *Tx primitives.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "kvstore/shard.hpp"

namespace proteus::kvstore {
namespace {

ShardOptions
tinyShard(unsigned log2_slots)
{
    ShardOptions options;
    options.log2Slots = log2_slots;
    options.initial = {tm::BackendKind::kTl2, 1, {}};
    return options;
}

TEST(ShardTest, PutGetDelRoundTrip)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    std::uint64_t value = 0;
    EXPECT_FALSE(shard.get(token, 42, &value));
    EXPECT_TRUE(shard.put(token, 42, 1000));
    EXPECT_TRUE(shard.get(token, 42, &value));
    EXPECT_EQ(value, 1000u);

    // Overwrite keeps a single entry.
    EXPECT_TRUE(shard.put(token, 42, 2000));
    EXPECT_TRUE(shard.get(token, 42, &value));
    EXPECT_EQ(value, 2000u);
    EXPECT_EQ(shard.sizeQuiesced(), 1u);

    EXPECT_TRUE(shard.del(token, 42));
    EXPECT_FALSE(shard.get(token, 42, &value));
    EXPECT_FALSE(shard.del(token, 42));
    EXPECT_EQ(shard.sizeQuiesced(), 0u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, TombstonesAreReusedAndProbesCrossThem)
{
    Shard shard(tinyShard(4)); // 16 slots: collisions guaranteed
    auto token = shard.registerWorker();

    for (std::uint64_t key = 0; key < 12; ++key)
        ASSERT_TRUE(shard.put(token, key, key));
    // Delete every other key, then re-insert different keys: the
    // tombstones must be reusable and remaining keys reachable.
    for (std::uint64_t key = 0; key < 12; key += 2)
        ASSERT_TRUE(shard.del(token, key));
    for (std::uint64_t key = 100; key < 106; ++key)
        ASSERT_TRUE(shard.put(token, key, key * 7));

    std::uint64_t value = 0;
    for (std::uint64_t key = 1; key < 12; key += 2) {
        EXPECT_TRUE(shard.get(token, key, &value)) << key;
        EXPECT_EQ(value, key);
    }
    for (std::uint64_t key = 100; key < 106; ++key) {
        EXPECT_TRUE(shard.get(token, key, &value)) << key;
        EXPECT_EQ(value, key * 7);
    }
    EXPECT_EQ(shard.sizeQuiesced(), 12u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, PinnedTableRejectsNewKeysButAcceptsOverwrites)
{
    // maxLog2Slots == log2Slots restores the seed's fixed-capacity
    // semantics: put() reports failure instead of growing.
    ShardOptions options = tinyShard(4);
    options.maxLog2Slots = 4;
    Shard shard(options);
    auto token = shard.registerWorker();

    for (std::uint64_t key = 0; key < 16; ++key)
        ASSERT_TRUE(shard.put(token, key, key));
    EXPECT_FALSE(shard.put(token, 999, 1)) << "table is full";
    EXPECT_TRUE(shard.put(token, 3, 333)) << "overwrite must still work";

    // Freeing one slot admits one new key again.
    EXPECT_TRUE(shard.del(token, 7));
    EXPECT_TRUE(shard.put(token, 999, 1));
    EXPECT_FALSE(shard.put(token, 1000, 1));

    shard.deregisterWorker(token);
}

TEST(ShardTest, GrowsOnlineWhenFullAndKeepsEveryKey)
{
    // 16 initial slots, growth unbounded: 4x the initial capacity in
    // inserts never fails, the table doubles (possibly repeatedly),
    // and every key/value survives the migrations.
    Shard shard(tinyShard(4));
    auto token = shard.registerWorker();
    const std::size_t initial_cap = shard.capacity();

    for (std::uint64_t key = 0; key < 4 * 16; ++key)
        ASSERT_TRUE(shard.put(token, key, key * 7 + 1)) << key;

    EXPECT_GT(shard.capacity(), initial_cap);
    EXPECT_GE(shard.growCount(), 1u);

    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < 4 * 16; ++key) {
        ASSERT_TRUE(shard.get(token, key, &value)) << key;
        EXPECT_EQ(value, key * 7 + 1);
    }

    // Drain the incremental migration and re-verify: relocation must
    // neither lose nor duplicate entries.
    shard.drainMigration(token);
    EXPECT_FALSE(shard.migrationActive());
    EXPECT_EQ(shard.sizeQuiesced(), 4 * 16u);
    for (std::uint64_t key = 0; key < 4 * 16; ++key)
        ASSERT_TRUE(shard.get(token, key, &value)) << key;

    // Scans cover entries still in the old table mid-migration.
    EXPECT_EQ(shard.scan(token, 0, 1000), 4 * 16u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, BytesRoundTripInlineAndBlob)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    const std::string small = "abc";           // inline
    const std::string exact8 = "12345678";     // smallest blob
    const std::string wide(513, 'q');          // multi-word blob
    ASSERT_TRUE(
        shard.putBytes(token, 1, small.data(), small.size()));
    ASSERT_TRUE(
        shard.putBytes(token, 2, exact8.data(), exact8.size()));
    ASSERT_TRUE(shard.putBytes(token, 3, wide.data(), wide.size()));

    std::string out;
    ASSERT_TRUE(shard.getBytes(token, 1, &out));
    EXPECT_EQ(out, small);
    ASSERT_TRUE(shard.getBytes(token, 2, &out));
    EXPECT_EQ(out, exact8);
    ASSERT_TRUE(shard.getBytes(token, 3, &out));
    EXPECT_EQ(out, wide);

    // Numeric view of a byte value decodes the leading 8 bytes; byte
    // view of a numeric value returns its raw 8 bytes.
    std::uint64_t value = 0;
    ASSERT_TRUE(shard.get(token, 1, &value));
    std::uint64_t expect = 0;
    std::memcpy(&expect, small.data(), small.size());
    EXPECT_EQ(value, expect);
    ASSERT_TRUE(shard.put(token, 4, 0x1122334455667788ull));
    ASSERT_TRUE(shard.getBytes(token, 4, &out));
    ASSERT_EQ(out.size(), 8u);
    std::memcpy(&value, out.data(), 8);
    EXPECT_EQ(value, 0x1122334455667788ull);

    // Overwriting a blob reclaims it into the arena; repeated
    // overwrites must not grow live bytes without bound.
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(shard.putBytes(token, 3, wide.data(), wide.size()));
    EXPECT_LE(shard.arena().bytesLive(), 4096u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, TtlLazyExpiryAndSweep)
{
    Shard shard(tinyShard(6));
    auto token = shard.registerWorker();

    constexpr std::uint64_t kTtl = 30ull * 1000 * 1000; // 30 ms
    for (std::uint64_t key = 0; key < 8; ++key)
        ASSERT_TRUE(shard.put(token, key, key, kTtl));
    ASSERT_TRUE(shard.put(token, 100, 1));

    std::uint64_t value = 0;
    EXPECT_TRUE(shard.get(token, 0, &value));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    for (std::uint64_t key = 0; key < 8; ++key)
        EXPECT_FALSE(shard.get(token, key)) << key;
    EXPECT_TRUE(shard.get(token, 100, &value));
    EXPECT_EQ(shard.sizeQuiesced(), 1u) << "expired keys read absent";

    // The clock-hand sweep reclaims the expired slots (tombstones).
    for (int i = 0; i < 200; ++i)
        shard.maintainTick(token);
    EXPECT_EQ(shard.scan(token, 0, 100), 1u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, ScanCollectsLiveEntries)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    for (std::uint64_t key = 0; key < 40; ++key)
        ASSERT_TRUE(shard.put(token, key, key + 1));

    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    const std::size_t n = shard.scan(token, 5, 10, &out);
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(out.size(), 10u);
    for (const auto &[key, value] : out) {
        EXPECT_LT(key, 40u);
        EXPECT_EQ(value, key + 1);
    }

    // Limit larger than population: returns everything once.
    EXPECT_EQ(shard.scan(token, 0, 1000, &out), 40u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, AddTxComposesReadModifyWrite)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    shard.poly().run(token, [&](polytm::Tx &tx) {
        EXPECT_TRUE(shard.addTx(tx, 7, 10));
        EXPECT_TRUE(shard.addTx(tx, 7, -4));
    });
    std::uint64_t value = 0;
    EXPECT_TRUE(shard.get(token, 7, &value));
    EXPECT_EQ(value, 6u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, SurvivesLiveReconfiguration)
{
    Shard shard(tinyShard(10));
    auto token = shard.registerWorker();
    for (std::uint64_t key = 0; key < 100; ++key)
        ASSERT_TRUE(shard.put(token, key, key));

    for (const auto backend :
         {tm::BackendKind::kNorec, tm::BackendKind::kSwissTm,
          tm::BackendKind::kSimHtm, tm::BackendKind::kTl2}) {
        shard.poly().reconfigure({backend, 1, {}});
        std::uint64_t value = 0;
        for (std::uint64_t key = 0; key < 100; key += 17) {
            EXPECT_TRUE(shard.get(token, key, &value));
            EXPECT_EQ(value, key);
        }
    }

    shard.deregisterWorker(token);
}

} // namespace
} // namespace proteus::kvstore
