/**
 * Shard unit tests: open-addressing semantics (overwrite, tombstone
 * reuse, full-table behaviour), scans, and transactional composition
 * through the *Tx primitives.
 */

#include <gtest/gtest.h>

#include "kvstore/shard.hpp"

namespace proteus::kvstore {
namespace {

ShardOptions
tinyShard(unsigned log2_slots)
{
    ShardOptions options;
    options.log2Slots = log2_slots;
    options.initial = {tm::BackendKind::kTl2, 1, {}};
    return options;
}

TEST(ShardTest, PutGetDelRoundTrip)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    std::uint64_t value = 0;
    EXPECT_FALSE(shard.get(token, 42, &value));
    EXPECT_TRUE(shard.put(token, 42, 1000));
    EXPECT_TRUE(shard.get(token, 42, &value));
    EXPECT_EQ(value, 1000u);

    // Overwrite keeps a single entry.
    EXPECT_TRUE(shard.put(token, 42, 2000));
    EXPECT_TRUE(shard.get(token, 42, &value));
    EXPECT_EQ(value, 2000u);
    EXPECT_EQ(shard.sizeQuiesced(), 1u);

    EXPECT_TRUE(shard.del(token, 42));
    EXPECT_FALSE(shard.get(token, 42, &value));
    EXPECT_FALSE(shard.del(token, 42));
    EXPECT_EQ(shard.sizeQuiesced(), 0u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, TombstonesAreReusedAndProbesCrossThem)
{
    Shard shard(tinyShard(4)); // 16 slots: collisions guaranteed
    auto token = shard.registerWorker();

    for (std::uint64_t key = 0; key < 12; ++key)
        ASSERT_TRUE(shard.put(token, key, key));
    // Delete every other key, then re-insert different keys: the
    // tombstones must be reusable and remaining keys reachable.
    for (std::uint64_t key = 0; key < 12; key += 2)
        ASSERT_TRUE(shard.del(token, key));
    for (std::uint64_t key = 100; key < 106; ++key)
        ASSERT_TRUE(shard.put(token, key, key * 7));

    std::uint64_t value = 0;
    for (std::uint64_t key = 1; key < 12; key += 2) {
        EXPECT_TRUE(shard.get(token, key, &value)) << key;
        EXPECT_EQ(value, key);
    }
    for (std::uint64_t key = 100; key < 106; ++key) {
        EXPECT_TRUE(shard.get(token, key, &value)) << key;
        EXPECT_EQ(value, key * 7);
    }
    EXPECT_EQ(shard.sizeQuiesced(), 12u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, FullTableRejectsNewKeysButAcceptsOverwrites)
{
    Shard shard(tinyShard(4));
    auto token = shard.registerWorker();

    for (std::uint64_t key = 0; key < 16; ++key)
        ASSERT_TRUE(shard.put(token, key, key));
    EXPECT_FALSE(shard.put(token, 999, 1)) << "table is full";
    EXPECT_TRUE(shard.put(token, 3, 333)) << "overwrite must still work";

    // Freeing one slot admits one new key again.
    EXPECT_TRUE(shard.del(token, 7));
    EXPECT_TRUE(shard.put(token, 999, 1));
    EXPECT_FALSE(shard.put(token, 1000, 1));

    shard.deregisterWorker(token);
}

TEST(ShardTest, ScanCollectsLiveEntries)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    for (std::uint64_t key = 0; key < 40; ++key)
        ASSERT_TRUE(shard.put(token, key, key + 1));

    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    const std::size_t n = shard.scan(token, 5, 10, &out);
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(out.size(), 10u);
    for (const auto &[key, value] : out) {
        EXPECT_LT(key, 40u);
        EXPECT_EQ(value, key + 1);
    }

    // Limit larger than population: returns everything once.
    EXPECT_EQ(shard.scan(token, 0, 1000, &out), 40u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, AddTxComposesReadModifyWrite)
{
    Shard shard(tinyShard(8));
    auto token = shard.registerWorker();

    shard.poly().run(token, [&](polytm::Tx &tx) {
        EXPECT_TRUE(shard.addTx(tx, 7, 10));
        EXPECT_TRUE(shard.addTx(tx, 7, -4));
    });
    std::uint64_t value = 0;
    EXPECT_TRUE(shard.get(token, 7, &value));
    EXPECT_EQ(value, 6u);

    shard.deregisterWorker(token);
}

TEST(ShardTest, SurvivesLiveReconfiguration)
{
    Shard shard(tinyShard(10));
    auto token = shard.registerWorker();
    for (std::uint64_t key = 0; key < 100; ++key)
        ASSERT_TRUE(shard.put(token, key, key));

    for (const auto backend :
         {tm::BackendKind::kNorec, tm::BackendKind::kSwissTm,
          tm::BackendKind::kSimHtm, tm::BackendKind::kTl2}) {
        shard.poly().reconfigure({backend, 1, {}});
        std::uint64_t value = 0;
        for (std::uint64_t key = 0; key < 100; key += 17) {
            EXPECT_TRUE(shard.get(token, key, &value));
            EXPECT_EQ(value, key);
        }
    }

    shard.deregisterWorker(token);
}

} // namespace
} // namespace proteus::kvstore
