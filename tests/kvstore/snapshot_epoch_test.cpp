/**
 * Snapshot-epoch read-path suite:
 *
 *  1. Linearizability hunter — concurrent cross-shard pair transfers
 *     race validation-free snapshot reads and scans under both commit
 *     modes; total money must be conserved in every snapshot and the
 *     store-wide commit sequence must be monotonic per observer.
 *  2. Validation-free guarantee — on a write-free workload every
 *     snapshot round settles first try: zero retries, zero pending
 *     waits, zero escalations (the acceptance counter).
 *  3. Blob pinning — getBytes/scanEntries race putBytes displacement
 *     and the deferred-recycle machinery; every returned payload must
 *     be internally consistent (a torn or recycled-under-the-reader
 *     copy would mix fill bytes).
 *  4. Delete-churn compaction — tombstone-heavy churn must trigger
 *     same-size compacting migrations, never doubling grows, keeping
 *     the table size flat (the ROADMAP follow-up regression test).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {
namespace {

KvStoreOptions
smallStore(int shards, unsigned log2_slots, CommitMode mode)
{
    KvStoreOptions options;
    options.numShards = shards;
    options.log2SlotsPerShard = log2_slots;
    options.commitMode = mode;
    options.initial = {tm::BackendKind::kTl2, 16, {}};
    return options;
}

class SnapshotEpochTest : public ::testing::TestWithParam<CommitMode>
{
};

TEST_P(SnapshotEpochTest, TransfersConserveUnderSnapshotReadsAndScans)
{
    constexpr std::uint64_t kKeys = 48;
    constexpr std::uint64_t kInitial = 100;
    constexpr int kWriters = 3;
    constexpr int kTransfers = 400;

    KvStore store(smallStore(4, 10, GetParam()));
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key)
            ASSERT_TRUE(store.put(session, key, kInitial));
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> violation{false};
    std::atomic<bool> epoch_regressed{false};
    std::vector<std::thread> threads;

    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(4400 + static_cast<unsigned>(w));
            std::vector<KvOp> ops;
            for (int i = 0; i < kTransfers; ++i) {
                const std::uint64_t from = rng.nextBounded(kKeys);
                std::uint64_t to = rng.nextBounded(kKeys);
                if (to == from)
                    to = (to + 1) % kKeys;
                ops.clear();
                ops.push_back({KvOp::Kind::kAdd, from,
                               static_cast<std::uint64_t>(-1), false});
                ops.push_back({KvOp::Kind::kAdd, to, 1, false});
                store.multiOp(session, ops);
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    // Snapshot readers: full-conservation read-only multiOps, plus a
    // monotonic-epoch check — the commit sequence an observer samples
    // may never go backwards.
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            auto session = store.openSession();
            std::vector<KvOp> snapshot;
            std::uint64_t last_epoch = 0;
            while (writers_done.load() < kWriters &&
                   !violation.load()) {
                const std::uint64_t before = store.commitSequence();
                snapshot.clear();
                for (std::uint64_t key = 0; key < kKeys; ++key)
                    snapshot.push_back(
                        {KvOp::Kind::kGet, key, 0, false});
                store.multiOp(session, snapshot);
                const std::uint64_t after = store.commitSequence();
                if (before < last_epoch || after < before)
                    epoch_regressed.store(true);
                last_epoch = after;
                std::uint64_t total = 0;
                for (const KvOp &op : snapshot)
                    total += op.ok ? op.value : 0;
                if (total != kKeys * kInitial)
                    violation.store(true);
            }
            store.closeSession(session);
        });
    }

    // Scan readers keep the walk + settle paths hot under the storm
    // (per-shard scans cannot assert the global sum; the TSan run and
    // the resolver's all-or-nothing verdicts are what they test).
    threads.emplace_back([&] {
        auto session = store.openSession();
        Rng rng(7100);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        while (writers_done.load() < kWriters && !violation.load())
            store.scan(session, rng.nextBounded(kKeys), 16, &out);
        store.closeSession(session);
    });

    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(violation.load())
        << "a snapshot read observed a torn transfer";
    EXPECT_FALSE(epoch_regressed.load())
        << "the commit sequence regressed for an observer";

    // Quiesced: the books must balance exactly.
    auto session = store.openSession();
    std::uint64_t total = 0;
    std::uint64_t value = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_TRUE(store.get(session, key, &value));
        total += value;
    }
    EXPECT_EQ(total, kKeys * kInitial);
    store.closeSession(session);
}

TEST_P(SnapshotEpochTest, WriteFreeWorkloadReadsValidationFree)
{
    constexpr std::uint64_t kKeys = 1 << 10;
    KvStore store(smallStore(4, 12, GetParam()));
    {
        auto session = store.openSession();
        std::string payload(64, 'p');
        for (std::uint64_t key = 0; key < kKeys; ++key) {
            if ((key & 3) == 0) {
                ASSERT_TRUE(store.putBytes(session, key,
                                           payload.data(),
                                           payload.size()));
            } else {
                ASSERT_TRUE(store.put(session, key, key * 7 + 1));
            }
        }
        store.closeSession(session);
    }

    std::vector<std::thread> threads;
    for (int r = 0; r < 4; ++r) {
        threads.emplace_back([&, r] {
            auto session = store.openSession();
            Rng rng(900 + static_cast<unsigned>(r));
            std::vector<KvOp> snap;
            std::vector<Shard::ScanEntry> entries;
            for (int i = 0; i < 2000; ++i) {
                if ((i & 7) == 7) {
                    store.scanEntries(session, rng.nextBounded(kKeys),
                                      8, &entries);
                    continue;
                }
                snap.clear();
                for (int k = 0; k < 6; ++k) {
                    const std::uint64_t key = rng.nextBounded(kKeys);
                    snap.push_back(
                        {(key & 3) == 0 ? KvOp::Kind::kGetBytes
                                        : KvOp::Kind::kGet,
                         key, 0, false});
                }
                store.multiOp(session, snap);
                for (const KvOp &op : snap)
                    EXPECT_TRUE(op.ok);
            }
            store.closeSession(session);
        });
    }
    for (auto &thread : threads)
        thread.join();

    // The acceptance criterion: a write-free workload pays ZERO
    // validation retries, verdict waits, or escalations — every
    // snapshot round settles on its first try.
    const KvStore::SnapshotReadStats stats = store.snapshotReadStats();
    EXPECT_GT(stats.rounds, 0u);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.pendingWaits, 0u);
    EXPECT_EQ(stats.escalations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CommitModes, SnapshotEpochTest,
    ::testing::Values(CommitMode::kLatch, CommitMode::kTwoPhase),
    [](const ::testing::TestParamInfo<CommitMode> &info) {
        return info.param == CommitMode::kLatch ? "Latch" : "TwoPhase";
    });

namespace {

/** Deterministic self-describing payload: every byte equals a tag
 *  derived from (key, version), and the length encodes the version —
 *  any mix of two generations (torn copy, recycled-under-reader blob)
 *  breaks the all-bytes-equal invariant. */
std::string
blobPayload(std::uint64_t key, std::uint32_t version)
{
    const std::size_t len = 32 + (version % 96);
    const char tag =
        static_cast<char>((key * 31 + version * 131) & 0xff);
    return std::string(len, tag);
}

bool
payloadWellFormed(const std::string &bytes)
{
    if (bytes.size() < 32 || bytes.size() >= 128)
        return false;
    for (const char c : bytes) {
        if (c != bytes[0])
            return false;
    }
    return true;
}

} // namespace

TEST(BlobPinningTest, GetBytesRacesDisplacementAndRecycle)
{
    constexpr std::uint64_t kKeys = 64;
    constexpr int kWriters = 2;
    constexpr int kVersions = 1500;

    KvStore store(smallStore(2, 10, CommitMode::kTwoPhase));
    {
        auto session = store.openSession();
        for (std::uint64_t key = 0; key < kKeys; ++key) {
            const std::string payload = blobPayload(key, 0);
            ASSERT_TRUE(store.putBytes(session, key, payload.data(),
                                       payload.size()));
        }
        store.closeSession(session);
    }

    std::atomic<int> writers_done{0};
    std::atomic<bool> malformed{false};
    std::vector<std::thread> threads;

    // Writers displace every key's blob over and over: each put
    // retires the previous generation into the reader-epoch limbo,
    // and the magazines/free lists recycle it under the readers.
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            auto session = store.openSession();
            Rng rng(50 + static_cast<unsigned>(w));
            for (std::uint32_t v = 1; v <= kVersions; ++v) {
                const std::uint64_t key = rng.nextBounded(kKeys);
                const std::string payload = blobPayload(key, v);
                store.putBytes(session, key, payload.data(),
                               payload.size());
            }
            store.closeSession(session);
            writers_done.fetch_add(1);
        });
    }

    // Readers: pinned copies via getBytes and scanEntries must always
    // be internally consistent, even while their blob is displaced,
    // retired, reclaimed and reallocated.
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            auto session = store.openSession();
            Rng rng(70 + static_cast<unsigned>(r));
            std::string bytes;
            std::vector<Shard::ScanEntry> entries;
            while (writers_done.load() < kWriters &&
                   !malformed.load()) {
                if (rng.bernoulli(0.25)) {
                    store.scanEntries(session, rng.nextBounded(kKeys),
                                      8, &entries);
                    for (const Shard::ScanEntry &entry : entries) {
                        if (!payloadWellFormed(entry.bytes))
                            malformed.store(true);
                    }
                } else {
                    const std::uint64_t key = rng.nextBounded(kKeys);
                    if (store.getBytes(session, key, &bytes) &&
                        !payloadWellFormed(bytes))
                        malformed.store(true);
                }
            }
            store.closeSession(session);
        });
    }

    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(malformed.load())
        << "a pinned blob read returned a torn or recycled payload";

    // Quiesce and drain: after the writers' limbo flushes, recycling
    // must catch up (nothing stays stranded past reader quiescence).
    auto session = store.openSession();
    for (std::uint64_t key = 0; key < kKeys; ++key)
        store.put(session, key + kKeys, 1); // ticks drive reclaim
    std::uint64_t recycled_total = 0;
    for (int s = 0; s < store.numShards(); ++s) {
        const ValueArena::Stats stats =
            store.shard(static_cast<std::size_t>(s)).arena().stats();
        recycled_total += stats.recycled;
        EXPECT_EQ(stats.retired,
                  stats.recycled +
                      store.shard(static_cast<std::size_t>(s))
                          .arena()
                          .limboCount())
            << "limbo bookkeeping leaked a blob on shard " << s;
    }
    EXPECT_GT(recycled_total, 0u)
        << "the deferred-recycle pipeline never cycled a blob";
    store.closeSession(session);
}

TEST(DeleteChurnTest, TombstoneChurnCompactsInsteadOfGrowing)
{
    // The ROADMAP follow-up: delete churn consumes slots without
    // holding data. The heuristic must answer with SAME-size
    // compacting migrations — table capacity stays flat.
    constexpr unsigned kLog2Slots = 8; // 256 slots
    constexpr std::uint64_t kChurn = 20000;

    KvStore store(smallStore(1, kLog2Slots, CommitMode::kTwoPhase));
    auto session = store.openSession();
    const std::size_t initial_capacity = store.shard(0).capacity();

    for (std::uint64_t i = 0; i < kChurn; ++i) {
        ASSERT_TRUE(store.put(session, i, i * 3 + 1));
        ASSERT_TRUE(store.del(session, i));
    }

    EXPECT_EQ(store.shard(0).capacity(), initial_capacity)
        << "tombstone churn must not grow the table";
    EXPECT_EQ(store.shard(0).growCount(), 0u);
    EXPECT_GE(store.shard(0).compactCount(), 1u)
        << "churn never triggered a compacting migration";

    // The table still works: a fresh insert lands and reads back.
    ASSERT_TRUE(store.put(session, kChurn + 1, 42));
    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, kChurn + 1, &value));
    EXPECT_EQ(value, 42u);
    store.closeSession(session);
}

TEST(DeleteChurnTest, CappedShardSurvivesChurnViaCompaction)
{
    // A capacity-pinned shard whose table fills with tombstones must
    // recover through same-size compaction instead of failing puts.
    constexpr unsigned kLog2Slots = 8;
    KvStoreOptions options =
        smallStore(1, kLog2Slots, CommitMode::kTwoPhase);
    options.maxLog2SlotsPerShard = kLog2Slots; // pinned capacity
    KvStore store(options);

    auto session = store.openSession();
    for (std::uint64_t i = 0; i < 5000; ++i) {
        ASSERT_TRUE(store.put(session, i, i))
            << "capped shard failed a put under pure churn at " << i;
        ASSERT_TRUE(store.del(session, i));
    }
    EXPECT_EQ(store.shard(0).capacity(),
              std::size_t{1} << kLog2Slots);
    EXPECT_EQ(store.shard(0).growCount(), 0u);
    store.closeSession(session);
}

} // namespace
} // namespace proteus::kvstore
