/**
 * WAL + recovery tests: options validation, durable-reopen roundtrips
 * across every write path (single-key, batch, cross-shard 2PC),
 * checkpoint truncation, torn-tail / bit-flip corruption (recovery to
 * a consistent prefix), hand-crafted in-doubt 2PC resolution, and the
 * wal_* telemetry counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "kvstore/wal.hpp"

namespace proteus::kvstore {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch WAL directory per test. */
class WalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("proteus_wal_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    KvStoreOptions
    durableStore(int shards, Durability mode = Durability::kBuffered)
    {
        KvStoreOptions options;
        options.numShards = shards;
        options.log2SlotsPerShard = 10;
        options.commitMode = CommitMode::kTwoPhase;
        options.initial = {tm::BackendKind::kTl2, 16, {}};
        options.durability = mode;
        options.walDir = dir_.string();
        return options;
    }

    fs::path dir_;
};

TEST_F(WalTest, OptionsValidationRejectsBrokenConfigs)
{
    const auto expect_invalid = [](KvStoreOptions options) {
        EXPECT_THROW(KvStore{options}, std::invalid_argument);
    };
    KvStoreOptions base = durableStore(2);

    KvStoreOptions o = base;
    o.numShards = 0;
    expect_invalid(o);

    o = base;
    o.log2SlotsPerShard = 0;
    expect_invalid(o);

    o = base;
    o.log2SlotsPerShard = 31;
    expect_invalid(o);

    o = base;
    o.maxLog2SlotsPerShard = 8; // below initial 10
    expect_invalid(o);

    o = base;
    o.growLoadPercent = 0;
    expect_invalid(o);
    o.growLoadPercent = 101;
    expect_invalid(o);

    o = base;
    o.walDir.clear();
    expect_invalid(o);

    o = base;
    o.commitMode = CommitMode::kLatch;
    expect_invalid(o);

    o = base;
    o.walFlushBytes = 0;
    expect_invalid(o);

    o = base;
    o.checkpointChunkSlots = 0;
    expect_invalid(o);
}

TEST_F(WalTest, MetaRejectsShardCountMismatch)
{
    { KvStore store(durableStore(4)); }
    EXPECT_THROW(KvStore{durableStore(2)}, std::invalid_argument);
}

TEST_F(WalTest, SingleKeyWritesSurviveReopen)
{
    {
        KvStore store(durableStore(2));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 200; ++k)
            ASSERT_TRUE(store.put(session, k, k * 7));
        ASSERT_TRUE(store.del(session, 3));
        ASSERT_TRUE(
            store.putBytes(session, 777, "wide-value-payload", 18));
        store.closeSession(session);
        // No clean shutdown call: the dtor's final flush is the only
        // thing standing between the buffer and the reopen.
    }
    KvStore store(durableStore(2));
    EXPECT_GT(store.recoveryInfo().checkpointEntries +
                  store.recoveryInfo().replayedRecords,
              0u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 200; ++k) {
        if (k == 3)
            continue;
        ASSERT_TRUE(store.get(session, k, &value)) << "key " << k;
        EXPECT_EQ(value, k * 7);
    }
    EXPECT_FALSE(store.get(session, 3, &value));
    std::string bytes;
    ASSERT_TRUE(store.getBytes(session, 777, &bytes));
    EXPECT_EQ(bytes, "wide-value-payload");
    store.closeSession(session);
}

TEST_F(WalTest, BatchAndTwoPhaseWritesSurviveReopen)
{
    {
        KvStore store(durableStore(4));
        auto session = store.openSession();
        KvStore::Batch batch;
        for (std::uint64_t k = 1000; k < 1100; ++k)
            batch.put(k, k + 5);
        batch.del(1001);
        ASSERT_TRUE(store.applyBatch(session, batch));

        // Cross-shard 2PC transfers; adds must replay as computed
        // post-images, not re-execute.
        for (int round = 0; round < 10; ++round) {
            std::vector<KvOp> ops;
            ops.push_back({KvOp::Kind::kAdd, 1000, 10, false});
            ops.push_back(
                {KvOp::Kind::kAdd, 1099,
                 static_cast<std::uint64_t>(-10), false});
            ASSERT_TRUE(store.multiOp(session, ops));
        }
        store.closeSession(session);
    }
    KvStore store(durableStore(4));
    auto session = store.openSession();
    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 1000, &value));
    EXPECT_EQ(value, 1005u + 100u);
    ASSERT_TRUE(store.get(session, 1099, &value));
    EXPECT_EQ(value, 1104u - 100u);
    EXPECT_FALSE(store.get(session, 1001, &value));
    for (std::uint64_t k = 1002; k < 1099; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k + 5);
    }
    store.closeSession(session);
}

TEST_F(WalTest, BatchCoalescesFsyncsPerShard)
{
    KvStore store(durableStore(4, Durability::kFsyncGroup));
    auto session = store.openSession();

    // Reference: N single-key durable puts pay one fsync each
    // (appendAndBarrier per op; nothing to group on one thread).
    constexpr std::uint64_t kOps = 64;
    const std::uint64_t fsyncs0 =
        store.telemetry().value("wal_fsyncs");
    for (std::uint64_t k = 0; k < kOps; ++k)
        ASSERT_TRUE(store.put(session, 10'000 + k, k));
    const std::uint64_t fsyncs1 =
        store.telemetry().value("wal_fsyncs");
    EXPECT_GE(fsyncs1 - fsyncs0, kOps);

    // The same op count as ONE batch: the barrier pass runs after
    // every slice appended — at most one fsync per touched shard,
    // never one per slice (let alone per op).
    KvStore::Batch batch;
    for (std::uint64_t k = 0; k < kOps; ++k)
        batch.put(20'000 + k, k);
    ASSERT_TRUE(store.applyBatch(session, batch));
    const std::uint64_t fsyncs2 =
        store.telemetry().value("wal_fsyncs");
    EXPECT_GE(fsyncs2 - fsyncs1, 1u);
    EXPECT_LE(fsyncs2 - fsyncs1, 4u);

    store.closeSession(session);
}

TEST_F(WalTest, GrowRetryBatchStillRidesOneBarrier)
{
    {
        KvStore store(durableStore(1, Durability::kFsyncGroup));
        auto session = store.openSession();
        // One oversized batch against the 2^10-slot table must
        // space-fail, grow and retry — several WAL appends on the
        // shard, still exactly ONE fsync for the whole batch.
        const std::uint64_t fsyncs0 =
            store.telemetry().value("wal_fsyncs");
        KvStore::Batch batch;
        for (std::uint64_t k = 0; k < 1500; ++k)
            batch.put(k + 1, k * 3);
        ASSERT_TRUE(store.applyBatch(session, batch));
        const std::uint64_t fsyncs1 =
            store.telemetry().value("wal_fsyncs");
        EXPECT_EQ(fsyncs1 - fsyncs0, 1u);
        store.closeSession(session);
    }
    // The coalesced barrier still made everything durable.
    KvStore store(durableStore(1, Durability::kFsyncGroup));
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 0; k < 1500; k += 97) {
        ASSERT_TRUE(store.get(session, k + 1, &value)) << "key " << k;
        EXPECT_EQ(value, k * 3);
    }
    store.closeSession(session);
}

TEST_F(WalTest, CheckpointTruncatesLogAndPreservesData)
{
    {
        KvStore store(durableStore(2));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 500; ++k)
            ASSERT_TRUE(store.put(session, k, k));
        store.checkpoint(session);
        store.closeSession(session);
    }
    // After the checkpoint, replay needs no records — the image
    // carries everything (the post-checkpoint log is empty).
    KvStore store(durableStore(2));
    EXPECT_EQ(store.recoveryInfo().replayedRecords, 0u);
    EXPECT_GE(store.recoveryInfo().checkpointEntries, 500u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 500; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k);
    }
    store.closeSession(session);
}

TEST_F(WalTest, CheckpointSurvivesConcurrentWriters)
{
    KvStore store(durableStore(2));
    auto writer_session = store.openSession();
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::uint64_t k = 10000;
        while (!stop.load(std::memory_order_relaxed)) {
            store.put(writer_session, k, k);
            ++k;
        }
    });
    auto session = store.openSession();
    for (std::uint64_t k = 1; k <= 100; ++k)
        ASSERT_TRUE(store.put(session, k, k * 3));
    for (int i = 0; i < 5; ++i)
        store.checkpoint(session);
    stop.store(true);
    writer.join();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 100; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k * 3);
    }
    store.closeSession(session);
    store.closeSession(writer_session);
}

/** The torn-tail fixtures write through a 1-shard store so every
 *  record lands in one segment file we can then mutilate. */
class WalTornTailTest : public WalTest
{
  protected:
    void
    seed()
    {
        KvStore store(durableStore(1));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 100; ++k)
            ASSERT_TRUE(store.put(session, k, k * 10));
        store.closeSession(session);
    }

    fs::path
    newestSegment()
    {
        fs::path best;
        std::uint64_t best_gen = 0;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            const std::string name = entry.path().filename().string();
            std::uint64_t gen = 0;
            if (std::sscanf(name.c_str(), "wal-0-%lu.log", &gen) == 1 &&
                gen >= best_gen && fs::file_size(entry.path()) > 0) {
                best_gen = gen;
                best = entry.path();
            }
        }
        EXPECT_FALSE(best.empty());
        return best;
    }

    /** Keys still readable after reopen, in [1, 100]. */
    std::vector<std::uint64_t>
    survivingKeys(KvStore &store)
    {
        std::vector<std::uint64_t> keys;
        auto session = store.openSession();
        std::uint64_t value = 0;
        for (std::uint64_t k = 1; k <= 100; ++k) {
            if (store.get(session, k, &value)) {
                EXPECT_EQ(value, k * 10) << "key " << k;
                keys.push_back(k);
            }
        }
        store.closeSession(session);
        return keys;
    }
};

TEST_F(WalTornTailTest, TrailingGarbageIsIgnored)
{
    seed();
    {
        std::ofstream out(newestSegment(),
                          std::ios::binary | std::ios::app);
        out << "garbage-that-is-not-a-frame";
    }
    KvStore store(durableStore(1));
    EXPECT_EQ(survivingKeys(store).size(), 100u);
    EXPECT_GT(store.recoveryInfo().tornBytes, 0u);
}

TEST_F(WalTornTailTest, TruncatedTailLosesOnlyTheTail)
{
    seed();
    const fs::path seg = newestSegment();
    fs::resize_file(seg, fs::file_size(seg) - 5);
    KvStore store(durableStore(1));
    const auto keys = survivingKeys(store);
    ASSERT_FALSE(keys.empty());
    EXPECT_LT(keys.size(), 100u);
    // Consistent prefix: exactly keys 1..N.
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(keys[i], i + 1);
}

TEST_F(WalTornTailTest, BitFlipTruncatesToConsistentPrefix)
{
    seed();
    const fs::path seg = newestSegment();
    const auto size = static_cast<std::size_t>(fs::file_size(seg));
    {
        std::fstream f(seg, std::ios::binary | std::ios::in |
                                std::ios::out);
        f.seekg(static_cast<std::streamoff>(size / 2));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(static_cast<std::streamoff>(size / 2));
        f.write(&byte, 1);
    }
    KvStore store(durableStore(1));
    EXPECT_GT(store.recoveryInfo().tornBytes, 0u);
    const auto keys = survivingKeys(store);
    EXPECT_LT(keys.size(), 100u);
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(keys[i], i + 1);
}

TEST_F(WalTornTailTest, InDoubtPrepareIsAbortedWithoutOutcome)
{
    seed();
    // A prepare whose outcome was never logged anywhere: recovery
    // must drop it (it was never acknowledged).
    wal::Record prep;
    prep.type = wal::RecordType::kTxnPrepare;
    prep.txid = 424242;
    prep.lsn = std::uint64_t{1} << 40; // past every real ticket
    prep.ops.push_back(
        {wal::WalOp::Kind::kPut, 55555, 1, 0, {}});
    std::string frame;
    wal::encodeRecord(prep, &frame);
    {
        std::ofstream out(newestSegment(),
                          std::ios::binary | std::ios::app);
        out.write(frame.data(),
                  static_cast<std::streamsize>(frame.size()));
    }
    KvStore store(durableStore(1));
    EXPECT_GE(store.recoveryInfo().inDoubtAborted, 1u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    EXPECT_FALSE(store.get(session, 55555, &value));
    store.closeSession(session);
}

TEST_F(WalTornTailTest, PrepareWithLoggedOutcomeCommits)
{
    seed();
    wal::Record prep;
    prep.type = wal::RecordType::kTxnPrepare;
    prep.txid = 434343;
    prep.lsn = std::uint64_t{1} << 40;
    prep.ops.push_back(
        {wal::WalOp::Kind::kPut, 66666, 99, 0, {}});
    wal::Record outcome;
    outcome.type = wal::RecordType::kTxnOutcome;
    outcome.txid = 434343;
    outcome.commitSeq = 1u << 20;
    outcome.committed = true;
    std::string frames;
    wal::encodeRecord(prep, &frames);
    wal::encodeRecord(outcome, &frames);
    {
        std::ofstream out(newestSegment(),
                          std::ios::binary | std::ios::app);
        out.write(frames.data(),
                  static_cast<std::streamsize>(frames.size()));
    }
    KvStore store(durableStore(1));
    auto session = store.openSession();
    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 66666, &value));
    EXPECT_EQ(value, 99u);
    store.closeSession(session);
}

TEST_F(WalTest, WalTelemetryCountersFlow)
{
    KvStoreOptions options = durableStore(2, Durability::kFsyncGroup);
    options.telemetry = true;
    KvStore store(options);
    auto session = store.openSession();
    for (std::uint64_t k = 1; k <= 50; ++k)
        ASSERT_TRUE(store.put(session, k, k));
    store.closeSession(session);
    const auto snapshot = store.telemetry();
    EXPECT_GE(snapshot.value("wal_appends"), 50u);
    EXPECT_GT(snapshot.value("wal_bytes"), 0u);
    EXPECT_GE(snapshot.value("wal_fsyncs"), 1u);
    const auto *fsync_hist = snapshot.find("wal_fsync_nanos");
    ASSERT_NE(fsync_hist, nullptr);
    EXPECT_GE(fsync_hist->hist.count(), 1u);
}

} // namespace
} // namespace proteus::kvstore
