/**
 * WAL + recovery tests: options validation, durable-reopen roundtrips
 * across every write path (single-key, batch, cross-shard 2PC),
 * checkpoint truncation, torn-tail / bit-flip corruption (recovery to
 * a consistent prefix), hand-crafted in-doubt 2PC resolution, and the
 * wal_* telemetry counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "kvstore/kvstore.hpp"
#include "kvstore/wal.hpp"

namespace proteus::kvstore {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch WAL directory per test. */
class WalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("proteus_wal_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    KvStoreOptions
    durableStore(int shards, Durability mode = Durability::kBuffered)
    {
        KvStoreOptions options;
        options.numShards = shards;
        options.log2SlotsPerShard = 10;
        options.commitMode = CommitMode::kTwoPhase;
        options.initial = {tm::BackendKind::kTl2, 16, {}};
        options.durability = mode;
        options.walDir = dir_.string();
        return options;
    }

    fs::path dir_;
};

TEST_F(WalTest, OptionsValidationRejectsBrokenConfigs)
{
    const auto expect_invalid = [](KvStoreOptions options) {
        EXPECT_THROW(KvStore{options}, std::invalid_argument);
    };
    KvStoreOptions base = durableStore(2);

    KvStoreOptions o = base;
    o.numShards = 0;
    expect_invalid(o);

    o = base;
    o.log2SlotsPerShard = 0;
    expect_invalid(o);

    o = base;
    o.log2SlotsPerShard = 31;
    expect_invalid(o);

    o = base;
    o.maxLog2SlotsPerShard = 8; // below initial 10
    expect_invalid(o);

    o = base;
    o.growLoadPercent = 0;
    expect_invalid(o);
    o.growLoadPercent = 101;
    expect_invalid(o);

    o = base;
    o.walDir.clear();
    expect_invalid(o);

    o = base;
    o.commitMode = CommitMode::kLatch;
    expect_invalid(o);

    o = base;
    o.walFlushBytes = 0;
    expect_invalid(o);

    o = base;
    o.checkpointChunkSlots = 0;
    expect_invalid(o);
}

TEST_F(WalTest, MetaRejectsShardCountMismatch)
{
    { KvStore store(durableStore(4)); }
    EXPECT_THROW(KvStore{durableStore(2)}, std::invalid_argument);
}

TEST_F(WalTest, SingleKeyWritesSurviveReopen)
{
    {
        KvStore store(durableStore(2));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 200; ++k)
            ASSERT_TRUE(store.put(session, k, k * 7));
        ASSERT_TRUE(store.del(session, 3));
        ASSERT_TRUE(
            store.putBytes(session, 777, "wide-value-payload", 18));
        store.closeSession(session);
        // No clean shutdown call: the dtor's final flush is the only
        // thing standing between the buffer and the reopen.
    }
    KvStore store(durableStore(2));
    EXPECT_GT(store.recoveryInfo().checkpointEntries +
                  store.recoveryInfo().replayedRecords,
              0u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 200; ++k) {
        if (k == 3)
            continue;
        ASSERT_TRUE(store.get(session, k, &value)) << "key " << k;
        EXPECT_EQ(value, k * 7);
    }
    EXPECT_FALSE(store.get(session, 3, &value));
    std::string bytes;
    ASSERT_TRUE(store.getBytes(session, 777, &bytes));
    EXPECT_EQ(bytes, "wide-value-payload");
    store.closeSession(session);
}

TEST_F(WalTest, BatchAndTwoPhaseWritesSurviveReopen)
{
    {
        KvStore store(durableStore(4));
        auto session = store.openSession();
        KvStore::Batch batch;
        for (std::uint64_t k = 1000; k < 1100; ++k)
            batch.put(k, k + 5);
        batch.del(1001);
        ASSERT_TRUE(store.applyBatch(session, batch));

        // Cross-shard 2PC transfers; adds must replay as computed
        // post-images, not re-execute.
        for (int round = 0; round < 10; ++round) {
            std::vector<KvOp> ops;
            ops.push_back({KvOp::Kind::kAdd, 1000, 10, false});
            ops.push_back(
                {KvOp::Kind::kAdd, 1099,
                 static_cast<std::uint64_t>(-10), false});
            ASSERT_TRUE(store.multiOp(session, ops));
        }
        store.closeSession(session);
    }
    KvStore store(durableStore(4));
    auto session = store.openSession();
    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 1000, &value));
    EXPECT_EQ(value, 1005u + 100u);
    ASSERT_TRUE(store.get(session, 1099, &value));
    EXPECT_EQ(value, 1104u - 100u);
    EXPECT_FALSE(store.get(session, 1001, &value));
    for (std::uint64_t k = 1002; k < 1099; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k + 5);
    }
    store.closeSession(session);
}

TEST_F(WalTest, BatchCoalescesFsyncsPerShard)
{
    KvStore store(durableStore(4, Durability::kFsyncGroup));
    auto session = store.openSession();

    // Reference: N single-key durable puts pay one fsync each
    // (appendAndBarrier per op; nothing to group on one thread).
    constexpr std::uint64_t kOps = 64;
    const std::uint64_t fsyncs0 =
        store.telemetry().value("wal_fsyncs");
    for (std::uint64_t k = 0; k < kOps; ++k)
        ASSERT_TRUE(store.put(session, 10'000 + k, k));
    const std::uint64_t fsyncs1 =
        store.telemetry().value("wal_fsyncs");
    EXPECT_GE(fsyncs1 - fsyncs0, kOps);

    // The same op count as ONE batch: the barrier pass runs after
    // every slice appended — at most one fsync per touched shard,
    // never one per slice (let alone per op).
    KvStore::Batch batch;
    for (std::uint64_t k = 0; k < kOps; ++k)
        batch.put(20'000 + k, k);
    ASSERT_TRUE(store.applyBatch(session, batch));
    const std::uint64_t fsyncs2 =
        store.telemetry().value("wal_fsyncs");
    EXPECT_GE(fsyncs2 - fsyncs1, 1u);
    EXPECT_LE(fsyncs2 - fsyncs1, 4u);

    store.closeSession(session);
}

TEST_F(WalTest, GrowRetryBatchStillRidesOneBarrier)
{
    {
        KvStore store(durableStore(1, Durability::kFsyncGroup));
        auto session = store.openSession();
        // One oversized batch against the 2^10-slot table must
        // space-fail, grow and retry — several WAL appends on the
        // shard, still exactly ONE fsync for the whole batch.
        const std::uint64_t fsyncs0 =
            store.telemetry().value("wal_fsyncs");
        KvStore::Batch batch;
        for (std::uint64_t k = 0; k < 1500; ++k)
            batch.put(k + 1, k * 3);
        ASSERT_TRUE(store.applyBatch(session, batch));
        const std::uint64_t fsyncs1 =
            store.telemetry().value("wal_fsyncs");
        EXPECT_EQ(fsyncs1 - fsyncs0, 1u);
        store.closeSession(session);
    }
    // The coalesced barrier still made everything durable.
    KvStore store(durableStore(1, Durability::kFsyncGroup));
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 0; k < 1500; k += 97) {
        ASSERT_TRUE(store.get(session, k + 1, &value)) << "key " << k;
        EXPECT_EQ(value, k * 3);
    }
    store.closeSession(session);
}

TEST_F(WalTest, CheckpointTruncatesLogAndPreservesData)
{
    {
        KvStore store(durableStore(2));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 500; ++k)
            ASSERT_TRUE(store.put(session, k, k));
        store.checkpoint(session);
        store.closeSession(session);
    }
    // After the checkpoint, replay needs no records — the image
    // carries everything (the post-checkpoint log is empty).
    KvStore store(durableStore(2));
    EXPECT_EQ(store.recoveryInfo().replayedRecords, 0u);
    EXPECT_GE(store.recoveryInfo().checkpointEntries, 500u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 500; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k);
    }
    store.closeSession(session);
}

TEST_F(WalTest, CheckpointSurvivesConcurrentWriters)
{
    KvStore store(durableStore(2));
    auto writer_session = store.openSession();
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        std::uint64_t k = 10000;
        while (!stop.load(std::memory_order_relaxed)) {
            store.put(writer_session, k, k);
            ++k;
        }
    });
    auto session = store.openSession();
    for (std::uint64_t k = 1; k <= 100; ++k)
        ASSERT_TRUE(store.put(session, k, k * 3));
    for (int i = 0; i < 5; ++i)
        store.checkpoint(session);
    stop.store(true);
    writer.join();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 100; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k * 3);
    }
    store.closeSession(session);
    store.closeSession(writer_session);
}

/** The torn-tail fixtures write through a 1-shard store so every
 *  record lands in one segment file we can then mutilate. */
class WalTornTailTest : public WalTest
{
  protected:
    void
    seed()
    {
        KvStore store(durableStore(1));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 100; ++k)
            ASSERT_TRUE(store.put(session, k, k * 10));
        store.closeSession(session);
    }

    fs::path
    newestSegment()
    {
        fs::path best;
        std::uint64_t best_gen = 0;
        for (const auto &entry : fs::directory_iterator(dir_)) {
            const std::string name = entry.path().filename().string();
            std::uint64_t gen = 0;
            if (std::sscanf(name.c_str(), "wal-0-%lu.log", &gen) == 1 &&
                gen >= best_gen && fs::file_size(entry.path()) > 0) {
                best_gen = gen;
                best = entry.path();
            }
        }
        EXPECT_FALSE(best.empty());
        return best;
    }

    /** Keys still readable after reopen, in [1, 100]. */
    std::vector<std::uint64_t>
    survivingKeys(KvStore &store)
    {
        std::vector<std::uint64_t> keys;
        auto session = store.openSession();
        std::uint64_t value = 0;
        for (std::uint64_t k = 1; k <= 100; ++k) {
            if (store.get(session, k, &value)) {
                EXPECT_EQ(value, k * 10) << "key " << k;
                keys.push_back(k);
            }
        }
        store.closeSession(session);
        return keys;
    }
};

TEST_F(WalTornTailTest, TrailingGarbageIsIgnored)
{
    seed();
    {
        std::ofstream out(newestSegment(),
                          std::ios::binary | std::ios::app);
        out << "garbage-that-is-not-a-frame";
    }
    KvStore store(durableStore(1));
    EXPECT_EQ(survivingKeys(store).size(), 100u);
    EXPECT_GT(store.recoveryInfo().tornBytes, 0u);
}

TEST_F(WalTornTailTest, TruncatedTailLosesOnlyTheTail)
{
    seed();
    const fs::path seg = newestSegment();
    fs::resize_file(seg, fs::file_size(seg) - 5);
    KvStore store(durableStore(1));
    const auto keys = survivingKeys(store);
    ASSERT_FALSE(keys.empty());
    EXPECT_LT(keys.size(), 100u);
    // Consistent prefix: exactly keys 1..N.
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(keys[i], i + 1);
}

TEST_F(WalTornTailTest, BitFlipTruncatesToConsistentPrefix)
{
    seed();
    const fs::path seg = newestSegment();
    const auto size = static_cast<std::size_t>(fs::file_size(seg));
    {
        std::fstream f(seg, std::ios::binary | std::ios::in |
                                std::ios::out);
        f.seekg(static_cast<std::streamoff>(size / 2));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(static_cast<std::streamoff>(size / 2));
        f.write(&byte, 1);
    }
    KvStore store(durableStore(1));
    EXPECT_GT(store.recoveryInfo().tornBytes, 0u);
    const auto keys = survivingKeys(store);
    EXPECT_LT(keys.size(), 100u);
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(keys[i], i + 1);
}

TEST_F(WalTornTailTest, InDoubtPrepareIsAbortedWithoutOutcome)
{
    seed();
    // A prepare whose outcome was never logged anywhere: recovery
    // must drop it (it was never acknowledged).
    wal::Record prep;
    prep.type = wal::RecordType::kTxnPrepare;
    prep.txid = 424242;
    prep.lsn = std::uint64_t{1} << 40; // past every real ticket
    prep.ops.push_back(
        {wal::WalOp::Kind::kPut, 55555, 1, 0, {}});
    std::string frame;
    wal::encodeRecord(prep, &frame);
    {
        std::ofstream out(newestSegment(),
                          std::ios::binary | std::ios::app);
        out.write(frame.data(),
                  static_cast<std::streamsize>(frame.size()));
    }
    KvStore store(durableStore(1));
    EXPECT_GE(store.recoveryInfo().inDoubtAborted, 1u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    EXPECT_FALSE(store.get(session, 55555, &value));
    store.closeSession(session);
}

TEST_F(WalTornTailTest, PrepareWithLoggedOutcomeCommits)
{
    seed();
    wal::Record prep;
    prep.type = wal::RecordType::kTxnPrepare;
    prep.txid = 434343;
    prep.lsn = std::uint64_t{1} << 40;
    prep.ops.push_back(
        {wal::WalOp::Kind::kPut, 66666, 99, 0, {}});
    wal::Record outcome;
    outcome.type = wal::RecordType::kTxnOutcome;
    outcome.txid = 434343;
    outcome.commitSeq = 1u << 20;
    outcome.committed = true;
    std::string frames;
    wal::encodeRecord(prep, &frames);
    wal::encodeRecord(outcome, &frames);
    {
        std::ofstream out(newestSegment(),
                          std::ios::binary | std::ios::app);
        out.write(frames.data(),
                  static_cast<std::streamsize>(frames.size()));
    }
    KvStore store(durableStore(1));
    auto session = store.openSession();
    std::uint64_t value = 0;
    ASSERT_TRUE(store.get(session, 66666, &value));
    EXPECT_EQ(value, 99u);
    store.closeSession(session);
}

/** Fault-armed failure-ladder tests. Fault points are process-global,
 *  so every test disarms on the way out. */
class WalFaultTest : public WalTest
{
  protected:
    void
    TearDown() override
    {
        fault::disarmAll();
        WalTest::TearDown();
    }

    static fault::FaultSpec
    once(int err)
    {
        fault::FaultSpec spec;
        spec.trigger = fault::FaultSpec::Trigger::kOnce;
        spec.err = err;
        return spec;
    }
};

TEST_F(WalFaultTest, FollowerNeverAcksAfterLeaderFsyncLoss)
{
    fs::create_directories(dir_);
    wal::ShardWal wal((dir_ / "wal-0-1.log").string(),
                      Durability::kFsyncGroup, 1 << 20,
                      wal::WalObs{});
    wal::Record rec;
    rec.lsn = 1;
    rec.ops.push_back({wal::WalOp::Kind::kPut, 1, 10, 0, {}});
    const wal::AppendResult first = wal.append(rec);
    ASSERT_EQ(first.err, wal::WalError::kOk);

    fault::arm("wal.fsync", once(EIO));
    // Leader: the injected fdatasync failure poisons the range of
    // bytes whose durability is now indeterminate.
    EXPECT_EQ(wal.barrier(first.end), wal::WalError::kSyncLoss);
    // A follower arriving over the same range must observe the loss
    // and never ack — the covered-check runs after the poison check.
    EXPECT_EQ(wal.barrier(first.end), wal::WalError::kSyncLoss);
    EXPECT_EQ(wal.status(), wal::WalError::kSyncLoss);
    EXPECT_TRUE(wal.canRescue());
    EXPECT_GT(wal.lostBytes(), 0u);

    // Sticky: appends fail fast while unrescued.
    rec.lsn = 2;
    EXPECT_EQ(wal.append(rec).err, wal::WalError::kSyncLoss);

    // One-shot rescue: a fresh segment acks normally again...
    ASSERT_EQ(wal.rotateFresh((dir_ / "wal-0-2.log").string()),
              wal::WalError::kOk);
    EXPECT_EQ(wal.status(), wal::WalError::kOk);
    EXPECT_FALSE(wal.canRescue());
    rec.lsn = 3;
    const wal::AppendResult fresh = wal.append(rec);
    ASSERT_EQ(fresh.err, wal::WalError::kOk);
    EXPECT_EQ(wal.barrier(fresh.end), wal::WalError::kOk);
    // ...but the poisoned range stays un-ackable forever (fsyncgate:
    // the failed sync is never re-asserted, even after later syncs).
    EXPECT_EQ(wal.barrier(first.end), wal::WalError::kSyncLoss);
}

TEST_F(WalFaultTest, EnospcAtSpillDegradesStoreToReadOnly)
{
    KvStoreOptions options = durableStore(1);
    options.walFlushBytes = 64; // batch records spill inside append()
    KvStore store(options);
    auto session = store.openSession();
    for (std::uint64_t k = 1; k <= 20; ++k)
        ASSERT_TRUE(store.put(session, k, k * 3));
    store.flushWal();

    fault::arm("wal.spill.write", once(ENOSPC));
    KvStore::Batch batch;
    for (std::uint64_t k = 100; k < 150; ++k)
        batch.put(k, k);
    const KvResult failed = store.applyBatch(session, batch);
    ASSERT_FALSE(failed);
    EXPECT_EQ(failed.status, KvStatus::kReadOnly);
    EXPECT_EQ(store.health(), Health::kDegradedReadOnly);

    // Fail-fast gate: later writes bounce before touching the WAL.
    const KvResult gated = store.put(session, 999, 1);
    EXPECT_EQ(gated.status, KvStatus::kReadOnly);
    const auto snapshot = store.telemetry();
    EXPECT_GE(snapshot.value("writes_rejected"), 1u);
    EXPECT_GE(snapshot.value("wal_errors"), 1u);
    EXPECT_EQ(snapshot.value("health_state"), 1u);
    EXPECT_GE(snapshot.value("health_transitions"), 1u);

    // Reads keep serving the acked prefix.
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 20; ++k) {
        ASSERT_TRUE(store.get(session, k, &value));
        EXPECT_EQ(value, k * 3);
    }
    store.closeSession(session);
}

TEST_F(WalFaultTest, FsyncLossRescuesOntoFreshGeneration)
{
    {
        KvStore store(durableStore(1, Durability::kFsyncGroup));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 50; ++k)
            ASSERT_TRUE(store.put(session, k, k + 7));

        fault::arm("wal.fsync", once(EIO));
        const KvResult lost = store.put(session, 500, 1);
        ASSERT_FALSE(lost);
        EXPECT_EQ(lost.status, KvStatus::kWalError);
        // One-shot rescue: the shard rotated onto a fresh generation
        // and stays healthy; the poisoned write was never acked.
        EXPECT_EQ(store.health(), Health::kHealthy);
        EXPECT_EQ(store.telemetry().value("wal_rescues"), 1u);
        EXPECT_GT(store.telemetry().value("wal_lost_bytes"), 0u);

        // Post-rescue writes ack normally...
        ASSERT_TRUE(store.put(session, 501, 2));

        // ...but the rescue is one-shot: a second sync loss degrades.
        fault::arm("wal.fsync", once(EIO));
        const KvResult second = store.put(session, 502, 3);
        ASSERT_FALSE(second);
        EXPECT_EQ(store.health(), Health::kDegradedReadOnly);
        std::uint64_t value = 0;
        ASSERT_TRUE(store.get(session, 10, &value));
        EXPECT_EQ(value, 17u);
        store.closeSession(session);
    }
    // Every acked write survives reopen; the un-acked keys (500, 502)
    // are of indeterminate durability and asserted neither way.
    KvStore store(durableStore(1, Durability::kFsyncGroup));
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 50; ++k) {
        ASSERT_TRUE(store.get(session, k, &value)) << "key " << k;
        EXPECT_EQ(value, k + 7);
    }
    ASSERT_TRUE(store.get(session, 501, &value));
    EXPECT_EQ(value, 2u);
    store.closeSession(session);
}

TEST_F(WalFaultTest, ShortWriteTearsTailAndRecoveryTruncates)
{
    {
        KvStore store(durableStore(1));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 50; ++k)
            ASSERT_TRUE(store.put(session, k, k * 10));

        fault::FaultSpec spec = once(EIO);
        spec.arg = 3; // three real bytes reach the fd, then the error
        fault::arm("wal.append.short_write", spec);
        const KvResult torn = store.put(session, 51, 510);
        ASSERT_FALSE(torn);
        EXPECT_EQ(torn.status, KvStatus::kWalError);
        // EIO on write is unrescuable: the store declares itself
        // failed but still serves reads over the in-memory state.
        EXPECT_EQ(store.health(), Health::kFailed);
        EXPECT_GE(store.telemetry().value("wal_lost_bytes"), 1u);
        std::uint64_t value = 0;
        ASSERT_TRUE(store.get(session, 7, &value));
        EXPECT_EQ(value, 70u);
        EXPECT_EQ(store.put(session, 52, 1).status,
                  KvStatus::kReadOnly);
        store.closeSession(session);
    }
    // Recovery truncates the genuinely-torn frame and keeps exactly
    // the acked prefix.
    KvStore store(durableStore(1));
    EXPECT_GT(store.recoveryInfo().tornBytes, 0u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 50; ++k) {
        ASSERT_TRUE(store.get(session, k, &value)) << "key " << k;
        EXPECT_EQ(value, k * 10);
    }
    EXPECT_FALSE(store.get(session, 51, &value));
    store.closeSession(session);
}

TEST_F(WalFaultTest, RecoveryFallsBackToPreviousCheckpointGeneration)
{
    {
        KvStore store(durableStore(1));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 50; ++k)
            ASSERT_TRUE(store.put(session, k, k + 1));
        ASSERT_TRUE(store.checkpoint(session));
        for (std::uint64_t k = 51; k <= 80; ++k)
            ASSERT_TRUE(store.put(session, k, k + 1));
        ASSERT_TRUE(store.checkpoint(session));
        store.closeSession(session);
    }
    // Retention keeps the previous checkpoint generation (and the
    // segments since it) as recovery fallback; find and corrupt the
    // newest image.
    fs::path newest;
    std::uint64_t best_gen = 0;
    int ckpt_files = 0;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        const std::string name = entry.path().filename().string();
        std::uint64_t gen = 0;
        if (std::sscanf(name.c_str(), "ckpt-0-%lu.dat", &gen) != 1)
            continue;
        ++ckpt_files;
        if (gen > best_gen) {
            best_gen = gen;
            newest = entry.path();
        }
    }
    ASSERT_GE(ckpt_files, 2) << "retention must keep a fallback image";
    ASSERT_FALSE(newest.empty());
    const auto size =
        static_cast<std::size_t>(fs::file_size(newest));
    {
        std::fstream f(newest, std::ios::binary | std::ios::in |
                                   std::ios::out);
        f.seekg(static_cast<std::streamoff>(size / 2));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x10);
        f.seekp(static_cast<std::streamoff>(size / 2));
        f.write(&byte, 1);
    }
    KvStore store(durableStore(1));
    // Fallback proof: the state came from the OLD image (50 entries)
    // plus replay of the segments written after it.
    EXPECT_EQ(store.recoveryInfo().checkpointEntries, 50u);
    EXPECT_GE(store.recoveryInfo().replayedRecords, 30u);
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 80; ++k) {
        ASSERT_TRUE(store.get(session, k, &value)) << "key " << k;
        EXPECT_EQ(value, k + 1);
    }
    store.closeSession(session);
}

TEST_F(WalFaultTest, CheckpointWriteFailureKeepsStoreServing)
{
    {
        KvStore store(durableStore(2));
        auto session = store.openSession();
        for (std::uint64_t k = 1; k <= 60; ++k)
            ASSERT_TRUE(store.put(session, k, k * 2));
        fault::arm("ckpt.write", once(EIO));
        EXPECT_FALSE(store.checkpoint(session));
        EXPECT_GE(store.telemetry().value("checkpoint_failures"), 1u);
        // A failed checkpoint is not a log failure: the WAL keeps
        // acking and health stays green (only ENOSPC degrades here).
        EXPECT_EQ(store.health(), Health::kHealthy);
        ASSERT_TRUE(store.put(session, 61, 122));
        store.closeSession(session);
    }
    KvStore store(durableStore(2));
    auto session = store.openSession();
    std::uint64_t value = 0;
    for (std::uint64_t k = 1; k <= 61; ++k) {
        ASSERT_TRUE(store.get(session, k, &value)) << "key " << k;
        EXPECT_EQ(value, k * 2);
    }
    store.closeSession(session);
}

TEST_F(WalTest, WalTelemetryCountersFlow)
{
    KvStoreOptions options = durableStore(2, Durability::kFsyncGroup);
    options.telemetry = true;
    KvStore store(options);
    auto session = store.openSession();
    for (std::uint64_t k = 1; k <= 50; ++k)
        ASSERT_TRUE(store.put(session, k, k));
    store.closeSession(session);
    const auto snapshot = store.telemetry();
    EXPECT_GE(snapshot.value("wal_appends"), 50u);
    EXPECT_GT(snapshot.value("wal_bytes"), 0u);
    EXPECT_GE(snapshot.value("wal_fsyncs"), 1u);
    const auto *fsync_hist = snapshot.find("wal_fsync_nanos");
    ASSERT_NE(fsync_hist, nullptr);
    EXPECT_GE(fsync_hist->hist.count(), 1u);
}

} // namespace
} // namespace proteus::kvstore
