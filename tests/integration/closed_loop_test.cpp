/**
 * Integration: the full stack on *real* executions — PolyTM running a
 * real transactional workload on this host while a controller
 * explores configurations, measures live KPIs from the profiling
 * counters, settles, and the data structure stays consistent
 * throughout. (The calibrated closed-loop experiments live in
 * bench_fig8/bench_fig9 against the simulated machine; this test pins
 * the plumbing end to end on real transactions.)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "polytm/polytm.hpp"
#include "rectm/cusum.hpp"
#include "workloads/data_structure_workloads.hpp"
#include "workloads/runner.hpp"

namespace proteus {
namespace {

using polytm::PolyTm;
using polytm::TmConfig;

TEST(ClosedLoopIntegrationTest, ExploreSettleOnRealWorkload)
{
    PolyTm poly(TmConfig{tm::BackendKind::kTl2, 4, {}});
    workloads::SetWorkloadOptions opts;
    opts.keyRange = 4096;
    opts.initialKeys = 2048;
    opts.updateRatio = 0.4;
    workloads::HashMapWorkload workload(opts);
    workloads::setupWorkload(poly, workload);

    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(500 + t);
            while (!stop.load(std::memory_order_relaxed))
                workload.op(poly, token, rng);
            poly.deregisterThread(token);
        });
    }

    // Controller: measure commit throughput under each candidate.
    auto measure = [&](double seconds) {
        const auto before = poly.snapshotStats();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
        const auto after = poly.snapshotStats();
        return static_cast<double>(after.commits - before.commits);
    };

    const TmConfig menu[] = {
        {tm::BackendKind::kTl2, 4, {}},
        {tm::BackendKind::kNorec, 4, {}},
        {tm::BackendKind::kTinyStm, 2, {}},
        {tm::BackendKind::kSwissTm, 4, {}},
        {tm::BackendKind::kSimHtm, 4, {}},
    };
    std::size_t best = 0;
    double best_kpi = -1;
    for (std::size_t i = 0; i < std::size(menu); ++i) {
        poly.reconfigure(menu[i]);
        const double kpi = measure(0.05);
        EXPECT_GT(kpi, 0.0) << "workload must make progress under "
                            << menu[i].label();
        if (kpi > best_kpi) {
            best_kpi = kpi;
            best = i;
        }
    }
    poly.reconfigure(menu[best]);
    const double settled = measure(0.05);
    EXPECT_GT(settled, 0.0);

    stop.store(true);
    poly.resumeAllForShutdown();
    for (auto &w : workers)
        w.join();

    EXPECT_TRUE(workload.consistent())
        << "structure corrupted across live reconfigurations";
    const auto stats = poly.snapshotStats();
    EXPECT_GT(stats.commits, 0u);
}

TEST(ClosedLoopIntegrationTest, CusumOnRealKpiStream)
{
    // Drive CUSUM with real measured throughput; inject a workload
    // change (update ratio jump) and expect a detection.
    PolyTm poly(TmConfig{tm::BackendKind::kTinyStm, 2, {}});
    workloads::TxArena arena;
    workloads::HashMapTx map(arena, 10);

    std::atomic<bool> stop{false};
    std::atomic<int> mode{0}; // 0: reads; 1: heavy contended writes
    std::thread worker([&] {
        auto token = poly.registerThread();
        Rng rng(1);
        while (!stop.load(std::memory_order_relaxed)) {
            if (mode.load(std::memory_order_relaxed) == 0) {
                const auto key = rng.nextBounded(1024);
                poly.run(token,
                         [&](polytm::Tx &tx) { map.get(tx, key); });
            } else {
                // Long scans + writes on a hot set: far slower ops.
                const auto key = rng.nextBounded(8);
                poly.run(token, [&](polytm::Tx &tx) {
                    for (std::uint64_t k = 0; k < 64; ++k)
                        map.get(tx, k);
                    map.put(tx, key, key);
                });
            }
        }
        poly.deregisterThread(token);
    });

    rectm::CusumDetector detector;
    auto sample = [&]() {
        const auto before = poly.snapshotStats().commits;
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
        return static_cast<double>(poly.snapshotStats().commits -
                                   before);
    };

    // Steady regime first. A noisy shared host can produce the odd
    // false alarm; tolerate it by resetting (what the runtime's
    // re-exploration effectively does) — the hard requirement is that
    // the injected collapse below IS detected.
    for (int period = 0; period < 30; ++period) {
        if (detector.push(sample()))
            detector.reset();
    }

    mode.store(1);
    bool detected = false;
    for (int period = 0; period < 60 && !detected; ++period)
        detected = detector.push(sample());
    EXPECT_TRUE(detected) << "the KPI collapse must trip the monitor";

    stop.store(true);
    poly.resumeAllForShutdown();
    worker.join();
}

} // namespace
} // namespace proteus
