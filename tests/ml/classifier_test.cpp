#include <gtest/gtest.h>

#include <cmath>

#include "ml/cart.hpp"
#include "ml/classifier.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace proteus::ml {
namespace {

/** 3 well-separated Gaussian blobs in 2D. */
Dataset
blobs(std::size_t per_class, std::uint64_t seed, double spread = 0.3)
{
    const double centers[3][2] = {{0, 0}, {4, 0}, {0, 4}};
    Dataset data;
    data.numClasses = 3;
    Rng rng(seed);
    for (int cls = 0; cls < 3; ++cls) {
        for (std::size_t i = 0; i < per_class; ++i) {
            data.features.push_back(
                {rng.gaussian(centers[cls][0], spread),
                 rng.gaussian(centers[cls][1], spread)});
            data.labels.push_back(cls);
        }
    }
    return data;
}

/** XOR-ish dataset: not linearly separable. */
Dataset
xorSet(std::size_t per_quadrant, std::uint64_t seed)
{
    Dataset data;
    data.numClasses = 2;
    Rng rng(seed);
    for (int qx = 0; qx < 2; ++qx) {
        for (int qy = 0; qy < 2; ++qy) {
            for (std::size_t i = 0; i < per_quadrant; ++i) {
                const double x = rng.gaussian(qx ? 2 : -2, 0.4);
                const double y = rng.gaussian(qy ? 2 : -2, 0.4);
                data.features.push_back({x, y});
                data.labels.push_back(qx ^ qy);
            }
        }
    }
    return data;
}

TEST(StandardizerTest, ZeroMeanUnitVariance)
{
    const auto data = blobs(50, 1);
    Standardizer std_;
    std_.fit(data);
    const auto scaled = std_.apply(data);
    for (std::size_t f = 0; f < 2; ++f) {
        double sum = 0, sq = 0;
        for (const auto &x : scaled.features) {
            sum += x[f];
            sq += x[f] * x[f];
        }
        const double mean = sum / scaled.size();
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(sq / scaled.size() - mean * mean, 1.0, 1e-6);
    }
}

TEST(CartTest, SeparatesBlobs)
{
    const auto train = blobs(40, 2);
    const auto test = blobs(20, 3);
    CartClassifier cart;
    cart.fit(train);
    EXPECT_GT(accuracy(cart, test), 0.95);
}

TEST(CartTest, HandlesXor)
{
    const auto train = xorSet(40, 4);
    const auto test = xorSet(15, 5);
    CartClassifier cart;
    cart.fit(train);
    EXPECT_GT(accuracy(cart, test), 0.9) << "trees split XOR fine";
}

TEST(CartTest, DepthOneIsAStump)
{
    CartClassifier::Hyper hyper;
    hyper.maxDepth = 1;
    CartClassifier stump(hyper);
    const auto train = xorSet(40, 6);
    stump.fit(train);
    // A stump cannot solve XOR: accuracy stays near chance.
    EXPECT_LT(accuracy(stump, train), 0.8);
}

TEST(SvmTest, SeparatesBlobs)
{
    const auto train = blobs(40, 7);
    const auto test = blobs(20, 8);
    SvmClassifier svm;
    svm.fit(train);
    EXPECT_GT(accuracy(svm, test), 0.95);
}

TEST(SvmTest, LinearModelFailsXor)
{
    const auto train = xorSet(40, 9);
    SvmClassifier svm;
    svm.fit(train);
    EXPECT_LT(accuracy(svm, train), 0.75)
        << "a linear separator cannot express XOR";
}

TEST(MlpTest, SeparatesBlobs)
{
    const auto train = blobs(40, 10);
    const auto test = blobs(20, 11);
    MlpClassifier mlp;
    mlp.fit(train);
    EXPECT_GT(accuracy(mlp, test), 0.95);
}

TEST(MlpTest, SolvesXor)
{
    const auto train = xorSet(50, 12);
    const auto test = xorSet(20, 13);
    MlpClassifier::Hyper hyper;
    hyper.hiddenUnits = 16;
    hyper.epochs = 400;
    MlpClassifier mlp(hyper);
    mlp.fit(train);
    EXPECT_GT(accuracy(mlp, test), 0.9);
}

TEST(MlpTest, DeterministicForSeed)
{
    const auto train = blobs(30, 14);
    MlpClassifier::Hyper hyper;
    hyper.seed = 321;
    MlpClassifier a(hyper), b(hyper);
    a.fit(train);
    b.fit(train);
    for (const auto &x : train.features)
        EXPECT_EQ(a.predict(x), b.predict(x));
}

TEST(CvTest, CvAccuracyHighOnEasyData)
{
    const auto data = blobs(30, 15);
    CartClassifier cart;
    EXPECT_GT(cvAccuracy(cart, data, 4, 1), 0.9);
}

TEST(TunerTest, AllFamiliesProduceWorkingModels)
{
    const auto data = blobs(30, 16);
    for (const auto family :
         {ClassifierFamily::kCart, ClassifierFamily::kSvm,
          ClassifierFamily::kMlp}) {
        const auto tuned = tuneClassifier(family, data, 4, 17);
        ASSERT_NE(tuned.model, nullptr)
            << classifierFamilyName(family);
        EXPECT_GT(tuned.cvAccuracy, 0.8);
        EXPECT_FALSE(tuned.description.empty());
        auto model = tuned.model->clone();
        model->fit(data);
        EXPECT_GT(accuracy(*model, data), 0.8);
    }
}

} // namespace
} // namespace proteus::ml
