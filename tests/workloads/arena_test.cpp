#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "workloads/tx_arena.hpp"

namespace proteus::workloads {
namespace {

TEST(TxArenaTest, AllocationsAreAligned)
{
    TxArena arena;
    for (const std::size_t size : {1, 3, 8, 13, 64, 100}) {
        void *p = arena.alloc(size);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u)
            << "size " << size;
    }
}

TEST(TxArenaTest, AllocationsDoNotOverlap)
{
    TxArena arena(256); // small chunks: force growth
    std::vector<std::byte *> blocks;
    constexpr std::size_t kSize = 24;
    for (int i = 0; i < 200; ++i) {
        auto *p = static_cast<std::byte *>(arena.alloc(kSize));
        std::fill(p, p + kSize, std::byte{static_cast<unsigned char>(i)});
        blocks.push_back(p);
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (std::size_t b = 0; b < kSize; ++b) {
            EXPECT_EQ(blocks[i][b],
                      std::byte{static_cast<unsigned char>(i)});
        }
    }
}

TEST(TxArenaTest, CreateConstructsObjects)
{
    struct Node
    {
        std::uint64_t a;
        std::uint64_t b;
    };
    TxArena arena;
    Node *n = arena.create<Node>(Node{1, 2});
    EXPECT_EQ(n->a, 1u);
    EXPECT_EQ(n->b, 2u);
}

TEST(TxArenaTest, LargeAllocationGetsOwnChunk)
{
    TxArena arena(128);
    void *big = arena.alloc(4096);
    ASSERT_NE(big, nullptr);
    // And the arena keeps working afterwards.
    void *small = arena.alloc(16);
    ASSERT_NE(small, nullptr);
    EXPECT_NE(big, small);
}

TEST(TxArenaTest, ReservedBytesGrow)
{
    TxArena arena(1024);
    const std::size_t before = arena.reservedBytes();
    for (int i = 0; i < 100; ++i)
        arena.alloc(64);
    EXPECT_GT(arena.reservedBytes(), before);
}

TEST(TxArenaTest, ConcurrentAllocationsAreDistinct)
{
    TxArena arena(4096);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::vector<void *>> out(kThreads);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                out[static_cast<std::size_t>(t)].push_back(
                    arena.alloc(32));
        });
    }
    for (auto &th : threads)
        th.join();

    std::set<void *> all;
    for (const auto &v : out)
        all.insert(v.begin(), v.end());
    EXPECT_EQ(all.size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
}

} // namespace
} // namespace proteus::workloads
