/**
 * Application workloads: setup, concurrent execution via the runner,
 * and their domain-specific consistency predicates (conservation of
 * money / bookings / routed paths).
 */

#include <gtest/gtest.h>

#include "workloads/app_workloads.hpp"
#include "workloads/data_structure_workloads.hpp"
#include "workloads/runner.hpp"

namespace proteus::workloads {
namespace {

using polytm::PolyTm;
using polytm::TmConfig;

TEST(VacationTest, ReservationsNeverOversellAcrossBackends)
{
    for (const auto kind :
         {tm::BackendKind::kTl2, tm::BackendKind::kSimHtm}) {
        PolyTm poly(TmConfig{kind, 4, {}});
        VacationWorkload::Options opts;
        opts.resourcesPerTable = 128;
        opts.customers = 64;
        VacationWorkload vacation(opts);
        setupWorkload(poly, vacation);

        const auto result = runOps(poly, vacation, 4, 300);
        EXPECT_EQ(result.ops, 4u * 300u);
        EXPECT_TRUE(vacation.consistent())
            << "backend " << tm::backendName(kind);
        EXPECT_GT(vacation.totalBookedUnsafe(), 0u);
    }
}

TEST(TpccLiteTest, MoneyConservedUnderConcurrency)
{
    PolyTm poly(TmConfig{tm::BackendKind::kSwissTm, 4, {}});
    TpccLiteWorkload::Options opts;
    opts.warehouses = 2;
    opts.items = 512;
    TpccLiteWorkload tpcc(opts);
    setupWorkload(poly, tpcc);

    const auto result = runOps(poly, tpcc, 4, 400);
    EXPECT_EQ(result.ops, 4u * 400u);
    EXPECT_TRUE(tpcc.consistent());
    EXPECT_GT(result.commits, 0u);
}

TEST(KvCacheTest, RunsAndStaysConsistent)
{
    PolyTm poly(TmConfig{tm::BackendKind::kNorec, 4, {}});
    KvCacheWorkload::Options opts;
    opts.keys = 1 << 10;
    KvCacheWorkload cache(opts);
    setupWorkload(poly, cache);

    const auto result = runOps(poly, cache, 4, 500);
    EXPECT_EQ(result.ops, 4u * 500u);
    EXPECT_TRUE(cache.consistent());
}

TEST(GridRouterTest, RoutesNeverOverlap)
{
    PolyTm poly(TmConfig{tm::BackendKind::kTinyStm, 4, {}});
    GridRouterWorkload::Options opts;
    opts.side = 128;
    GridRouterWorkload router(opts);
    setupWorkload(poly, router);

    const auto result = runOps(poly, router, 4, 40);
    EXPECT_EQ(result.ops, 4u * 40u);
    EXPECT_TRUE(router.consistent());
    EXPECT_GT(router.routedUnsafe(), 0u);
}

TEST(GridRouterTest, CapacityBoundOnEmulatedHtmStillCorrect)
{
    // Small HTM capacity: router transactions exceed it and must
    // commit through the fallback path.
    tm::SimHtmConfig htm;
    htm.writeCapacityLines = 32;
    PolyTm poly(TmConfig{tm::BackendKind::kSimHtm, 4, {}}, htm);
    GridRouterWorkload::Options opts;
    opts.side = 96;
    GridRouterWorkload router(opts);
    setupWorkload(poly, router);

    const auto result = runOps(poly, router, 4, 25);
    EXPECT_TRUE(router.consistent());
    const auto stats = poly.snapshotStats();
    EXPECT_GT(stats.abortsByCause[static_cast<std::size_t>(
                  tm::AbortCause::kCapacity)],
              0u)
        << "router should trip the HTM capacity limit";
    (void)result;
}

TEST(SyntheticTest, FixedOpsProduceExpectedCommitCount)
{
    PolyTm poly(TmConfig{tm::BackendKind::kTl2, 2, {}});
    SyntheticWorkload::Options opts;
    opts.arraySlots = 1 << 12;
    opts.reads = 10;
    opts.writes = 2;
    SyntheticWorkload synth(opts);
    setupWorkload(poly, synth);

    const auto result = runOps(poly, synth, 2, 250);
    EXPECT_EQ(result.ops, 500u);
    // One transaction per op, plus retries counted separately.
    EXPECT_GE(result.commits, 500u);
}

TEST(RunnerTest, TimedRunStopsAndReports)
{
    PolyTm poly(TmConfig{tm::BackendKind::kTinyStm, 2, {}});
    SetWorkloadOptions opts;
    opts.keyRange = 1 << 10;
    opts.initialKeys = 1 << 9;
    HashMapWorkload workload(opts);
    setupWorkload(poly, workload);

    const auto result = runTimed(poly, workload, 2, 0.2);
    EXPECT_GT(result.ops, 0u);
    EXPECT_GT(result.opsPerSec, 0.0);
    EXPECT_NEAR(result.seconds, 0.2, 0.15);
    EXPECT_TRUE(workload.consistent());
}

TEST(RunnerTest, ParallelismDegreeOneStillCompletesTimedRun)
{
    // Workers beyond the parallelism degree park; the shutdown path
    // must wake them so the run terminates.
    PolyTm poly(TmConfig{tm::BackendKind::kTl2, 1, {}});
    SetWorkloadOptions opts;
    opts.keyRange = 512;
    opts.initialKeys = 128;
    RbTreeWorkload workload(opts);
    setupWorkload(poly, workload);

    const auto result = runTimed(poly, workload, 4, 0.15);
    EXPECT_GT(result.ops, 0u);
    EXPECT_TRUE(workload.consistent());
}

} // namespace
} // namespace proteus::workloads
