/**
 * Concurrent stress on the transactional structures, with PolyTM
 * switching backends mid-run; invariants checked after quiescing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "polytm/polytm.hpp"
#include "workloads/hashmap.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/skiplist.hpp"

namespace proteus::workloads {
namespace {

using polytm::PolyTm;
using polytm::TmConfig;
using polytm::Tx;

TEST(ConcurrentStructuresTest, RbTreeUnderConcurrentMutationAndSwitches)
{
    PolyTm poly(TmConfig{tm::BackendKind::kTl2, 8, {}});
    TxArena arena;
    RedBlackTreeTx tree(arena);

    constexpr int kThreads = 4;
    constexpr int kOpsPerThread = 1500;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            Rng rng(100 + t);
            for (int i = 0; i < kOpsPerThread; ++i) {
                const std::uint64_t key = rng.nextBounded(256) + 1;
                const auto action = rng.nextBounded(3);
                poly.run(token, [&](Tx &tx) {
                    if (action == 0)
                        tree.insert(tx, key, key);
                    else if (action == 1)
                        tree.erase(tx, key);
                    else
                        tree.lookup(tx, key);
                });
            }
            poly.deregisterThread(token);
        });
    }

    const tm::BackendKind kinds[] = {
        tm::BackendKind::kNorec, tm::BackendKind::kSimHtm,
        tm::BackendKind::kTinyStm, tm::BackendKind::kSwissTm,
        tm::BackendKind::kTl2};
    for (int round = 0; round < 10; ++round) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        poly.reconfigure({kinds[round % 5], 8, {}});
    }
    for (auto &w : workers)
        w.join();

    EXPECT_TRUE(tree.invariantsHold());
}

TEST(ConcurrentStructuresTest, SkipListConcurrentSetSemantics)
{
    PolyTm poly(TmConfig{tm::BackendKind::kTinyStm, 8, {}});
    TxArena arena;
    SkipListTx list(arena);

    // Each thread inserts a disjoint key range, then everyone verifies.
    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 400;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const std::uint64_t key =
                    static_cast<std::uint64_t>(t) * kPerThread + i + 1;
                poly.run(token,
                         [&](Tx &tx) { list.insert(tx, key, key); });
            }
            poly.deregisterThread(token);
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_TRUE(list.invariantsHold());
    auto token = poly.registerThread();
    std::uint64_t size = 0;
    poly.run(token, [&](Tx &tx) { size = list.size(tx); });
    EXPECT_EQ(size, kThreads * kPerThread);
    for (std::uint64_t key = 1; key <= kThreads * kPerThread; ++key) {
        bool found = false;
        poly.run(token, [&](Tx &tx) { found = list.lookup(tx, key); });
        ASSERT_TRUE(found) << "missing key " << key;
    }
    poly.deregisterThread(token);
}

TEST(ConcurrentStructuresTest, HashMapConcurrentDisjointInserts)
{
    PolyTm poly(TmConfig{tm::BackendKind::kSimHtm, 8, {}});
    TxArena arena;
    HashMapTx map(arena, 8);

    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 600;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            auto token = poly.registerThread();
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const std::uint64_t key =
                    static_cast<std::uint64_t>(t) * kPerThread + i;
                poly.run(token,
                         [&](Tx &tx) { map.put(tx, key, key * 2); });
            }
            poly.deregisterThread(token);
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_TRUE(map.invariantsHold());
    auto token = poly.registerThread();
    std::uint64_t size = 0;
    poly.run(token, [&](Tx &tx) { size = map.size(tx); });
    EXPECT_EQ(size, kThreads * kPerThread);
    poly.deregisterThread(token);
}

} // namespace
} // namespace proteus::workloads
