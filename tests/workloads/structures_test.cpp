/**
 * Transactional data-structure semantics: single-threaded against a
 * std::set/map reference model, parameterized over TM backends, plus
 * structural invariants.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "polytm/polytm.hpp"
#include "workloads/hashmap.hpp"
#include "workloads/linkedlist.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/skiplist.hpp"

namespace proteus::workloads {
namespace {

using polytm::PolyTm;
using polytm::TmConfig;
using polytm::Tx;

class StructuresTest : public ::testing::TestWithParam<tm::BackendKind>
{
  protected:
    StructuresTest()
        : poly_(TmConfig{GetParam(), 2, {}}), token_(poly_.registerThread())
    {}

    ~StructuresTest() override { poly_.deregisterThread(token_); }

    PolyTm poly_;
    polytm::ThreadToken token_;
    TxArena arena_;
};

TEST_P(StructuresTest, RbTreeMatchesReferenceModel)
{
    RedBlackTreeTx tree(arena_);
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(42);

    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = rng.nextBounded(500) + 1;
        const auto action = rng.nextBounded(3);
        const bool present = ref.count(key) > 0;
        poly_.run(token_, [&](Tx &tx) {
            if (action == 0) {
                EXPECT_EQ(tree.insert(tx, key, key * 2), !present);
            } else if (action == 1) {
                EXPECT_EQ(tree.erase(tx, key), present);
            } else {
                std::uint64_t v = 0;
                EXPECT_EQ(tree.lookup(tx, key, &v), present);
                if (present) {
                    EXPECT_EQ(v, ref[key]);
                }
            }
        });
        // Mirror the committed mutation into the reference model.
        if (action == 0)
            ref[key] = key * 2;
        else if (action == 1)
            ref.erase(key);
        ASSERT_TRUE(tree.invariantsHold()) << "after op " << i;
    }
    EXPECT_EQ(tree.sizeUnsafe(), ref.size());
}

TEST_P(StructuresTest, SkipListMatchesReferenceModel)
{
    SkipListTx list(arena_);
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(43);

    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = rng.nextBounded(400) + 1;
        const auto action = rng.nextBounded(3);
        const bool present = ref.count(key) > 0;
        poly_.run(token_, [&](Tx &tx) {
            if (action == 0) {
                EXPECT_EQ(list.insert(tx, key, key + 9), !present);
            } else if (action == 1) {
                EXPECT_EQ(list.erase(tx, key), present);
            } else {
                std::uint64_t v = 0;
                EXPECT_EQ(list.lookup(tx, key, &v), present);
                if (present) {
                    EXPECT_EQ(v, ref[key]);
                }
            }
        });
        if (action == 0)
            ref[key] = key + 9;
        else if (action == 1)
            ref.erase(key);
    }
    EXPECT_TRUE(list.invariantsHold());
}

TEST_P(StructuresTest, LinkedListMatchesReferenceModel)
{
    LinkedListTx list(arena_);
    std::set<std::uint64_t> ref;
    Rng rng(44);

    for (int i = 0; i < 1500; ++i) {
        const std::uint64_t key = rng.nextBounded(150) + 1;
        const auto action = rng.nextBounded(3);
        const bool present = ref.count(key) > 0;
        poly_.run(token_, [&](Tx &tx) {
            if (action == 0) {
                EXPECT_EQ(list.insert(tx, key), !present);
            } else if (action == 1) {
                EXPECT_EQ(list.erase(tx, key), present);
            } else {
                EXPECT_EQ(list.contains(tx, key), present);
            }
        });
        if (action == 0)
            ref.insert(key);
        else if (action == 1)
            ref.erase(key);
    }
    EXPECT_TRUE(list.invariantsHold());
}

TEST_P(StructuresTest, HashMapMatchesReferenceModel)
{
    HashMapTx map(arena_, 6); // tiny table: chains exercised
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(45);

    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = rng.nextBounded(300);
        const auto action = rng.nextBounded(3);
        const bool present = ref.count(key) > 0;
        poly_.run(token_, [&](Tx &tx) {
            if (action == 0) {
                EXPECT_EQ(map.put(tx, key, key ^ 7), !present);
            } else if (action == 1) {
                EXPECT_EQ(map.erase(tx, key), present);
            } else {
                std::uint64_t v = 0;
                EXPECT_EQ(map.get(tx, key, &v), present);
                if (present) {
                    EXPECT_EQ(v, key ^ 7);
                }
            }
        });
        if (action == 0)
            ref[key] = key ^ 7;
        else if (action == 1)
            ref.erase(key);
    }
    EXPECT_TRUE(map.invariantsHold());
}

TEST_P(StructuresTest, RbTreeSizeIsTransactional)
{
    RedBlackTreeTx tree(arena_);
    for (std::uint64_t k = 1; k <= 100; ++k)
        poly_.run(token_, [&](Tx &tx) { tree.insert(tx, k, k); });
    std::uint64_t size = 0;
    poly_.run(token_, [&](Tx &tx) { size = tree.size(tx); });
    EXPECT_EQ(size, 100u);
    for (std::uint64_t k = 1; k <= 50; ++k)
        poly_.run(token_, [&](Tx &tx) { tree.erase(tx, k); });
    poly_.run(token_, [&](Tx &tx) { size = tree.size(tx); });
    EXPECT_EQ(size, 50u);
}

TEST_P(StructuresTest, AbortedStructuralOpLeavesTreeIntact)
{
    // Runs on the global lock too: undo-logged in-place writes make
    // tx.retry() legal and restore the tree mid-rebalance.
    RedBlackTreeTx tree(arena_);
    for (std::uint64_t k = 1; k <= 64; ++k)
        poly_.run(token_, [&](Tx &tx) { tree.insert(tx, k, k); });

    bool aborted = false;
    poly_.run(token_, [&](Tx &tx) {
        tree.insert(tx, 1000, 1);
        tree.erase(tx, 32); // structural rebalance mid-tx
        if (!aborted) {
            aborted = true;
            tx.retry();
        }
    });
    // Second attempt committed both ops exactly once.
    EXPECT_TRUE(tree.invariantsHold());
    EXPECT_EQ(tree.sizeUnsafe(), 64u); // +1 insert, -1 erase
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StructuresTest,
    ::testing::Values(tm::BackendKind::kGlobalLock,
                      tm::BackendKind::kTl2, tm::BackendKind::kTinyStm,
                      tm::BackendKind::kNorec, tm::BackendKind::kSwissTm,
                      tm::BackendKind::kSimHtm,
                      tm::BackendKind::kHybridNorec),
    [](const ::testing::TestParamInfo<tm::BackendKind> &info) {
        return std::string(tm::backendName(info.param));
    });

} // namespace
} // namespace proteus::workloads
