#include <gtest/gtest.h>

#include <set>

#include "simarch/workload_model.hpp"

namespace proteus::simarch {
namespace {

TEST(WorkloadModelTest, FifteenPresets)
{
    const auto all = presets::all();
    EXPECT_EQ(all.size(), 15u);
    std::set<std::string> names;
    for (const auto &w : all)
        names.insert(w.name);
    EXPECT_EQ(names.size(), 15u);
}

TEST(WorkloadModelTest, FeatureVectorHas17Entries)
{
    const WorkloadFeatures f;
    EXPECT_EQ(f.toVector().size(), kNumFeatures);
    EXPECT_EQ(WorkloadFeatures::featureNames().size(), kNumFeatures);
    EXPECT_EQ(kNumFeatures, 17u);
}

TEST(WorkloadModelTest, FeatureVectorMatchesFields)
{
    WorkloadFeatures f;
    f.readsPerTx = 123;
    f.burstiness = 0.5;
    const auto v = f.toVector();
    EXPECT_DOUBLE_EQ(v.front(), 123.0);
    EXPECT_DOUBLE_EQ(v.back(), 0.5);
}

TEST(WorkloadModelTest, CorpusSizeAndNaming)
{
    const auto corpus = WorkloadCorpus::generate(21, 7);
    EXPECT_EQ(corpus.size(), 15u * 21u); // 315 workloads, paper: >300
    std::set<std::string> names;
    for (const auto &w : corpus)
        names.insert(w.name);
    EXPECT_EQ(names.size(), corpus.size());
}

TEST(WorkloadModelTest, CorpusDeterministicPerSeed)
{
    const auto a = WorkloadCorpus::generate(5, 42);
    const auto b = WorkloadCorpus::generate(5, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].features.toVector(), b[i].features.toVector());
    }
}

TEST(WorkloadModelTest, CorpusSeedsDiffer)
{
    const auto a = WorkloadCorpus::generate(5, 1);
    const auto b = WorkloadCorpus::generate(5, 2);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].features.toVector() == b[i].features.toVector();
    // Variant 0 of each preset is pristine in both corpora (15 hits);
    // the jittered ones must differ.
    EXPECT_EQ(same, 15);
}

TEST(WorkloadModelTest, VariantZeroIsPristinePreset)
{
    const auto corpus = WorkloadCorpus::generate(3, 99);
    const auto base = presets::all();
    for (std::size_t p = 0; p < base.size(); ++p) {
        EXPECT_EQ(corpus[p * 3].features.toVector(),
                  base[p].features.toVector());
    }
}

TEST(WorkloadModelTest, JitteredFeaturesStayInValidRanges)
{
    const auto corpus = WorkloadCorpus::generate(30, 3);
    for (const auto &w : corpus) {
        const auto &f = w.features;
        EXPECT_GE(f.readsPerTx, 1.0);
        EXPECT_GT(f.writesPerTx, 0.0);
        EXPECT_GE(f.updateTxFraction, 0.0);
        EXPECT_LE(f.updateTxFraction, 1.0);
        EXPECT_GE(f.hotspotSkew, 0.0);
        EXPECT_LE(f.hotspotSkew, 1.0);
        EXPECT_GE(f.cacheLocality, 0.0);
        EXPECT_LE(f.cacheLocality, 1.0);
        EXPECT_GE(f.abortWasteFactor, 0.2);
        EXPECT_LE(f.abortWasteFactor, 1.0);
        EXPECT_GE(f.workingSetLines, 1e3);
    }
}

} // namespace
} // namespace proteus::simarch
