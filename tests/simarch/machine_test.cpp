#include <gtest/gtest.h>

#include "simarch/machine.hpp"

namespace proteus::simarch {
namespace {

TEST(MachineModelTest, PresetTopologies)
{
    const auto a = MachineModel::machineA();
    EXPECT_EQ(a.physicalCores(), 4);
    EXPECT_EQ(a.maxThreads(), 8);
    EXPECT_TRUE(a.hasHtm);
    EXPECT_TRUE(a.hasRapl);

    const auto b = MachineModel::machineB();
    EXPECT_EQ(b.physicalCores(), 48);
    EXPECT_EQ(b.maxThreads(), 48);
    EXPECT_FALSE(b.hasHtm);
    EXPECT_EQ(b.sockets, 4);
}

TEST(MachineModelTest, EffectiveCoresSaturatesWithSmt)
{
    const auto a = MachineModel::machineA();
    EXPECT_DOUBLE_EQ(a.effectiveCores(1), 1.0);
    EXPECT_DOUBLE_EQ(a.effectiveCores(4), 4.0);
    // Hyperthreads add less than full cores.
    EXPECT_GT(a.effectiveCores(8), 4.0);
    EXPECT_LT(a.effectiveCores(8), 8.0);
}

TEST(MachineModelTest, EffectiveCoresMonotone)
{
    for (const auto &m :
         {MachineModel::machineA(), MachineModel::machineB()}) {
        for (int n = 2; n <= m.maxThreads(); ++n)
            EXPECT_GT(m.effectiveCores(n), m.effectiveCores(n - 1));
    }
}

TEST(MachineModelTest, SocketsSpanned)
{
    const auto b = MachineModel::machineB();
    EXPECT_EQ(b.socketsSpanned(1), 1);
    EXPECT_EQ(b.socketsSpanned(12), 1);
    EXPECT_EQ(b.socketsSpanned(13), 2);
    EXPECT_EQ(b.socketsSpanned(48), 4);
}

TEST(MachineModelTest, CoherencePenaltyGrowsAcrossSockets)
{
    const auto b = MachineModel::machineB();
    EXPECT_DOUBLE_EQ(b.coherencePenalty(8), 1.0);
    EXPECT_GT(b.coherencePenalty(16), 1.0);
    EXPECT_GT(b.coherencePenalty(48), b.coherencePenalty(16));
    EXPECT_DOUBLE_EQ(b.coherencePenalty(48), b.numaFactor);

    const auto a = MachineModel::machineA();
    EXPECT_DOUBLE_EQ(a.coherencePenalty(8), 1.0); // single socket
}

} // namespace
} // namespace proteus::simarch
