/**
 * Property tests pinning the qualitative shapes the paper's
 * evaluation depends on (see DESIGN.md §4 "shape targets").
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "simarch/perf_model.hpp"

namespace proteus::simarch {
namespace {

using polytm::ConfigSpace;
using polytm::KpiKind;
using polytm::TmConfig;
using tm::BackendKind;

TmConfig
htmCfg(int threads, int budget,
       tm::CapacityPolicy policy = tm::CapacityPolicy::kDecrease)
{
    TmConfig c{BackendKind::kSimHtm, threads, {}};
    c.cm.htmBudget = budget;
    c.cm.capacityPolicy = policy;
    return c;
}

std::size_t
argbest(const std::vector<double> &row, KpiKind kind)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < row.size(); ++i) {
        if (polytm::kpiIsMaximize(kind) ? row[i] > row[best]
                                        : row[i] < row[best]) {
            best = i;
        }
    }
    return best;
}

class PerfModelTest : public ::testing::Test
{
  protected:
    PerfModel pmA_{MachineModel::machineA()};
    PerfModel pmB_{MachineModel::machineB()};
};

TEST_F(PerfModelTest, AllKpisPositiveAndFinite)
{
    const auto spaceA = ConfigSpace::machineA();
    const auto spaceB = ConfigSpace::machineB();
    for (const auto &w : presets::all()) {
        for (const auto kind :
             {KpiKind::kThroughput, KpiKind::kExecTime, KpiKind::kEdp}) {
            for (const double v : pmA_.kpiRow(w, spaceA, kind)) {
                EXPECT_GT(v, 0.0);
                EXPECT_TRUE(std::isfinite(v));
            }
            for (const double v : pmB_.kpiRow(w, spaceB, kind)) {
                EXPECT_GT(v, 0.0);
                EXPECT_TRUE(std::isfinite(v));
            }
        }
    }
}

TEST_F(PerfModelTest, DeterministicWithAndWithoutNoise)
{
    const auto w = presets::vacation();
    const auto space = ConfigSpace::machineA();
    EXPECT_EQ(pmA_.kpiRow(w, space, KpiKind::kThroughput, true),
              pmA_.kpiRow(w, space, KpiKind::kThroughput, true));
    EXPECT_EQ(pmA_.kpiRow(w, space, KpiKind::kThroughput, false),
              pmA_.kpiRow(w, space, KpiKind::kThroughput, false));
}

TEST_F(PerfModelTest, NoiseIsSmallAndMultiplicative)
{
    const auto w = presets::genome();
    const auto space = ConfigSpace::machineA();
    const auto noisy = pmA_.kpiRow(w, space, KpiKind::kThroughput, true);
    const auto clean = pmA_.kpiRow(w, space, KpiKind::kThroughput, false);
    for (std::size_t i = 0; i < noisy.size(); ++i) {
        const double factor = noisy[i] / clean[i];
        EXPECT_GT(factor, 0.8);
        EXPECT_LT(factor, 1.25);
    }
}

TEST_F(PerfModelTest, ExecTimeIsBatchOverThroughput)
{
    const auto w = presets::tpcc();
    const TmConfig c{BackendKind::kTinyStm, 4, {}};
    const double thr = pmA_.kpi(w, c, KpiKind::kThroughput, false);
    const double time = pmA_.kpi(w, c, KpiKind::kExecTime, false);
    EXPECT_NEAR(time, PerfModel::kBatchTxs / thr, 1e-9 * time);
}

TEST_F(PerfModelTest, EdpConsistentWithPowerModel)
{
    const auto w = presets::tpcc();
    const TmConfig c{BackendKind::kTl2, 6, {}};
    const double time = pmA_.kpi(w, c, KpiKind::kExecTime, false);
    const double edp = pmA_.kpi(w, c, KpiKind::kEdp, false);
    EXPECT_NEAR(edp, pmA_.machine().power.edp(time, 6), 1e-6 * edp);
}

TEST_F(PerfModelTest, GlobalLockDoesNotScale)
{
    const auto w = presets::hashMap();
    const double t1 = pmA_.kpi(w, {BackendKind::kGlobalLock, 1, {}},
                               KpiKind::kThroughput, false);
    const double t8 = pmA_.kpi(w, {BackendKind::kGlobalLock, 8, {}},
                               KpiKind::kThroughput, false);
    EXPECT_LE(t8, t1 * 1.05); // at best flat; typically worse
}

TEST_F(PerfModelTest, ScalableWorkloadScales)
{
    const auto w = presets::hashMap();
    const double t1 = pmB_.kpi(w, {BackendKind::kTinyStm, 1, {}},
                               KpiKind::kThroughput, false);
    const double t48 = pmB_.kpi(w, {BackendKind::kTinyStm, 48, {}},
                                KpiKind::kThroughput, false);
    EXPECT_GT(t48, 8.0 * t1);
}

TEST_F(PerfModelTest, NorecCollapsesUnderManyWriters)
{
    // NOrec serializes writer commits: at 48 threads on a write-heavy
    // workload it must lose to TinySTM; at 1 thread it wins (cheapest
    // instrumentation).
    const auto w = presets::tpcc();
    const double norec48 = pmB_.kpi(w, {BackendKind::kNorec, 48, {}},
                                    KpiKind::kThroughput, false);
    const double tiny48 = pmB_.kpi(w, {BackendKind::kTinyStm, 48, {}},
                                   KpiKind::kThroughput, false);
    EXPECT_LT(norec48, tiny48);

    const double norec1 = pmB_.kpi(w, {BackendKind::kNorec, 1, {}},
                                   KpiKind::kThroughput, false);
    const double tiny1 = pmB_.kpi(w, {BackendKind::kTinyStm, 1, {}},
                                  KpiKind::kThroughput, false);
    EXPECT_GT(norec1, tiny1);
}

TEST_F(PerfModelTest, LabyrinthIsHtmHostile)
{
    // Capacity-bound transactions: every decent STM config must beat
    // every HTM config (Fig. 1a's labyrinth bar).
    const auto w = presets::labyrinth();
    double best_stm = 0, best_htm = 0;
    const auto space = ConfigSpace::machineA();
    for (const auto &c : space.all()) {
        const double v = pmA_.kpi(w, c, KpiKind::kThroughput, false);
        if (c.backend == BackendKind::kSimHtm ||
            c.backend == BackendKind::kHybridNorec) {
            best_htm = std::max(best_htm, v);
        } else if (c.backend != BackendKind::kGlobalLock) {
            best_stm = std::max(best_stm, v);
        }
    }
    EXPECT_GT(best_stm, best_htm * 1.2);
}

TEST_F(PerfModelTest, SmallTxWorkloadIsHtmFriendly)
{
    // Red-black tree: short transactions fit HTM; it should beat every
    // STM (Fig. 1's rbt bars, Table 6's HTM optima).
    const auto w = presets::redBlackTree();
    const auto space = ConfigSpace::machineA();
    double best_stm = 0, best_htm = 0;
    for (const auto &c : space.all()) {
        const double v = pmA_.kpi(w, c, KpiKind::kThroughput, false);
        if (c.backend == BackendKind::kSimHtm)
            best_htm = std::max(best_htm, v);
        else if (c.backend != BackendKind::kHybridNorec &&
                 c.backend != BackendKind::kGlobalLock)
            best_stm = std::max(best_stm, v);
    }
    EXPECT_GT(best_htm, best_stm);
}

TEST_F(PerfModelTest, OptimaAreHeterogeneousAcrossWorkloads)
{
    // The Fig. 1 premise: no universal configuration. Across presets
    // there must be several distinct optima, and no single config may
    // be within 25% of the best everywhere.
    const auto space = ConfigSpace::machineA();
    std::set<std::size_t> optima;
    std::vector<std::vector<double>> rows;
    for (const auto &w : presets::all()) {
        rows.push_back(pmA_.kpiRow(w, space, KpiKind::kThroughput, false));
        optima.insert(argbest(rows.back(), KpiKind::kThroughput));
    }
    EXPECT_GE(optima.size(), 4u);

    bool universal_exists = false;
    for (std::size_t c = 0; c < space.size(); ++c) {
        bool good_everywhere = true;
        for (const auto &row : rows) {
            const double best = *std::max_element(row.begin(), row.end());
            if (row[c] < 0.75 * best) {
                good_everywhere = false;
                break;
            }
        }
        if (good_everywhere)
            universal_exists = true;
    }
    EXPECT_FALSE(universal_exists);
}

TEST_F(PerfModelTest, WrongConfigCanLoseAnOrderOfMagnitude)
{
    // "choosing wrong configurations can cripple performance by
    // several orders of magnitude" — at least 10x on some preset.
    const auto space = ConfigSpace::machineB();
    double max_spread = 0;
    for (const auto &w : presets::all()) {
        const auto row = pmB_.kpiRow(w, space, KpiKind::kThroughput,
                                     false);
        const double best = *std::max_element(row.begin(), row.end());
        const double worst = *std::min_element(row.begin(), row.end());
        max_spread = std::max(max_spread, best / worst);
    }
    EXPECT_GT(max_spread, 10.0);
}

TEST_F(PerfModelTest, EdpPrefersFewerThreadsThanThroughput)
{
    // Energy grows with active threads, so the EDP-optimal thread
    // count never exceeds the throughput-optimal one (checked for a
    // fixed backend on a scalable workload).
    const auto w = presets::vacation();
    auto best_threads = [&](KpiKind kind) {
        int best_t = 1;
        double best_v = 0;
        for (int t = 1; t <= 8; ++t) {
            const double v = pmA_.kpi(w, {BackendKind::kTinyStm, t, {}},
                                      kind, false);
            const bool better = polytm::kpiIsMaximize(kind)
                ? (best_v == 0 || v > best_v)
                : (best_v == 0 || v < best_v);
            if (better) {
                best_v = v;
                best_t = t;
            }
        }
        return best_t;
    };
    EXPECT_LE(best_threads(KpiKind::kEdp),
              best_threads(KpiKind::kThroughput));
}

TEST_F(PerfModelTest, GiveUpPolicyBestWhenCapacityBound)
{
    // Labyrinth overflows on (almost) every attempt: spending budget
    // on capacity retries is pure waste, so giveup >= decrease.
    const auto w = presets::labyrinth();
    const double giveup = pmA_.kpi(
        w, htmCfg(4, 8, tm::CapacityPolicy::kGiveUp),
        KpiKind::kThroughput, false);
    const double decrease = pmA_.kpi(
        w, htmCfg(4, 8, tm::CapacityPolicy::kDecrease),
        KpiKind::kThroughput, false);
    EXPECT_GE(giveup, decrease);
}

TEST_F(PerfModelTest, RetryingPolicyWinsWhenCapacityIsTransient)
{
    // High size-variance, mean far below capacity: a retry usually
    // fits, so granting capacity retries (decrease) beats giving up.
    auto w = presets::vacation();
    w.features.readsPerTx = 700; // near the read-capacity knee
    w.features.txSizeCv = 1.6;
    const double giveup = pmA_.kpi(
        w, htmCfg(8, 8, tm::CapacityPolicy::kGiveUp),
        KpiKind::kThroughput, false);
    const double decrease = pmA_.kpi(
        w, htmCfg(8, 8, tm::CapacityPolicy::kDecrease),
        KpiKind::kThroughput, false);
    EXPECT_GT(decrease, giveup);
}

TEST_F(PerfModelTest, CrossSocketCoherenceHurtsContendedWorkloads)
{
    // Intruder (high conflict): per-thread efficiency at 16 threads
    // (2 sockets) is worse than at 8 threads (1 socket) on Machine B.
    const auto w = presets::intruder();
    const double t8 = pmB_.kpi(w, {BackendKind::kTinyStm, 8, {}},
                               KpiKind::kThroughput, false);
    const double t16 = pmB_.kpi(w, {BackendKind::kTinyStm, 16, {}},
                                KpiKind::kThroughput, false);
    EXPECT_LT(t16 / 16.0, t8 / 8.0);
}

TEST_F(PerfModelTest, HigherBudgetHelpsContendedHtm)
{
    // Conflict aborts are transient: a budget of 8 reaches the
    // fallback (serial) path far less often than a budget of 1.
    const auto w = presets::intruder();
    const double b1 = pmA_.kpi(w, htmCfg(8, 1), KpiKind::kThroughput,
                               false);
    const double b8 = pmA_.kpi(w, htmCfg(8, 8), KpiKind::kThroughput,
                               false);
    EXPECT_GT(b8, b1 * 0.9); // never catastrophically worse
}

TEST_F(PerfModelTest, KpiRowMatchesPointQueries)
{
    const auto w = presets::kmeans();
    const auto space = ConfigSpace::machineA();
    const auto row = pmA_.kpiRow(w, space, KpiKind::kEdp, true);
    for (std::size_t i = 0; i < space.size(); i += 17) {
        EXPECT_DOUBLE_EQ(row[i],
                         pmA_.kpi(w, space.at(i), KpiKind::kEdp, true));
    }
}

} // namespace
} // namespace proteus::simarch
