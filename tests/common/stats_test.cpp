#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace proteus {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
}

TEST(StatsTest, VarianceBasic)
{
    // Population variance of {2,4,4,4,5,5,7,9} is 4.
    EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
    EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(StatsTest, VarianceOfSingletonIsZero)
{
    EXPECT_EQ(variance({5.0}), 0.0);
}

TEST(StatsTest, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(StatsTest, PercentileEndpoints)
{
    std::vector<double> xs{10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
}

TEST(StatsTest, PercentileInterpolates)
{
    std::vector<double> xs{0, 10};
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 90), 9.0);
}

TEST(StatsTest, IndexOfDispersion)
{
    // var = 4, mean = 5 -> D = 0.8
    EXPECT_DOUBLE_EQ(indexOfDispersion({2, 4, 4, 4, 5, 5, 7, 9}), 0.8);
}

TEST(StatsTest, IndexOfDispersionZeroMeanIsInf)
{
    EXPECT_TRUE(std::isinf(indexOfDispersion({0.0, 0.0})));
}

TEST(StatsTest, EmpiricalCdfMonotone)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    const auto cdf = empiricalCdf(xs, {0.5, 2.5, 5.0});
    EXPECT_DOUBLE_EQ(cdf[0], 0.0);
    EXPECT_DOUBLE_EQ(cdf[1], 0.4);
    EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(StatsTest, RunningStatsMatchesBatch)
{
    RunningStats rs;
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    for (double x : xs)
        rs.push(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-12);
}

TEST(StatsTest, RunningStatsClear)
{
    RunningStats rs;
    rs.push(1.0);
    rs.clear();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_EQ(rs.mean(), 0.0);
}

} // namespace
} // namespace proteus
