#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace proteus {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.nextU64() == b.nextU64();
    EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, UniformMeanApproximatelyCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform(2.0, 4.0);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequencyMatchesP)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PermutationIsAPermutation)
{
    Rng rng(19);
    const auto perm = rng.permutation(100);
    std::set<std::size_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices)
{
    Rng rng(23);
    const int n = 50000;
    int low = 0;
    for (int i = 0; i < n; ++i)
        low += rng.zipf(1000, 0.8) < 100;
    // With strong skew, far more than 10% of mass is in the first 10%.
    EXPECT_GT(low, n / 4);
}

TEST(RngTest, ZipfStaysInRange)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.zipf(57, 0.5), 57u);
}

TEST(RngTest, SplitStreamsAreIndependent)
{
    Rng parent(31);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.nextU64() == child.nextU64();
    EXPECT_LT(equal, 3);
}

} // namespace
} // namespace proteus
