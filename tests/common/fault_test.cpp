/**
 * Fault-injection harness tests: trigger semantics (nth / once /
 * seeded probability), one-shot auto-expiry, pending specs applied at
 * registration, and the describeArmed() schedule dump.
 *
 * FaultPoints register into a process-global intrusive list that
 * assumes static storage, so every point here is a function-local
 * static and every test disarms on the way out.
 */

#include <gtest/gtest.h>

#include <cerrno>

#include "common/fault.hpp"

namespace proteus::fault {
namespace {

class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { disarmAll(); }

    static FaultSpec
    spec(FaultSpec::Trigger trigger)
    {
        FaultSpec s;
        s.trigger = trigger;
        s.err = EIO;
        return s;
    }
};

TEST_F(FaultTest, DisarmedPointNeverFires)
{
    static FaultPoint point("test.disarmed");
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fires(), 0u);
}

TEST_F(FaultTest, OnceFiresExactlyOnceThenAutoDisarms)
{
    static FaultPoint point("test.once");
    const std::uint64_t before = point.fires();
    arm("test.once", spec(FaultSpec::Trigger::kOnce));
    EXPECT_EQ(point.fire(), EIO);
    EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fires(), before + 1);
}

TEST_F(FaultTest, NthFiresOnExactlyTheNthEvaluation)
{
    static FaultPoint point("test.nth");
    FaultSpec s = spec(FaultSpec::Trigger::kNth);
    s.nth = 3;
    s.err = ENOSPC;
    arm("test.nth", s);
    EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fire(), ENOSPC);
    EXPECT_EQ(point.fire(), 0); // nth is one-shot

    // Re-arming resets the evaluation count.
    arm("test.nth", s);
    EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fire(), 0);
    EXPECT_EQ(point.fire(), ENOSPC);
}

TEST_F(FaultTest, StickyProbabilityIsSeededAndDeterministic)
{
    static FaultPoint point("test.prob");
    FaultSpec s = spec(FaultSpec::Trigger::kProbability);
    s.probability = 0.5;
    s.oneShot = false;
    s.seed = 12345;

    const auto run = [&] {
        arm("test.prob", s);
        std::uint64_t mask = 0;
        for (int i = 0; i < 64; ++i)
            mask = (mask << 1) | (point.fire() != 0 ? 1u : 0u);
        return mask;
    };
    const std::uint64_t first = run();
    // p=0.5 over 64 draws: statistically certain to be mixed.
    EXPECT_NE(first, 0u);
    EXPECT_NE(first, ~std::uint64_t{0});
    // Same seed, same stream — a failing chaos iteration replays.
    EXPECT_EQ(run(), first);
    s.seed = 54321;
    arm("test.prob", s);
    std::uint64_t other = 0;
    for (int i = 0; i < 64; ++i)
        other = (other << 1) | (point.fire() != 0 ? 1u : 0u);
    EXPECT_NE(other, first);
}

TEST_F(FaultTest, PendingSpecAppliesWhenThePointRegisters)
{
    // Arm before any call site has ever executed: held pending.
    FaultSpec s = spec(FaultSpec::Trigger::kOnce);
    s.arg = 7;
    EXPECT_FALSE(arm("test.pending", s));
    EXPECT_EQ(find("test.pending"), nullptr);

    static FaultPoint point("test.pending");
    EXPECT_EQ(point.arg(), 7u);
    EXPECT_EQ(point.fire(), EIO);
    EXPECT_TRUE(arm("test.pending", s)); // now registered
}

TEST_F(FaultTest, DescribeArmedListsScheduleAndFireCounts)
{
    static FaultPoint point("test.describe");
    arm("test.describe", spec(FaultSpec::Trigger::kOnce));
    arm("test.describe.pending", spec(FaultSpec::Trigger::kOnce));
    EXPECT_EQ(point.fire(), EIO);
    const std::string out = describeArmed();
    EXPECT_NE(out.find("test.describe"), std::string::npos);
    EXPECT_NE(out.find("pending"), std::string::npos);
    EXPECT_NE(out.find("fires=1"), std::string::npos);
}

TEST_F(FaultTest, DisarmAllDropsArmedAndPendingSpecs)
{
    static FaultPoint point("test.disarmall");
    arm("test.disarmall", spec(FaultSpec::Trigger::kOnce));
    arm("test.disarmall.pending", spec(FaultSpec::Trigger::kOnce));
    disarmAll();
    EXPECT_EQ(point.fire(), 0);
    static FaultPoint late("test.disarmall.pending");
    EXPECT_EQ(late.fire(), 0);
}

} // namespace
} // namespace proteus::fault
