/**
 * simd.hpp tests: both lane-match paths (SSE2 when compiled in, the
 * portable per-byte fallback always) against hand-computed patterns
 * and against each other on random words, plus lane-numbering pins
 * and the bench's runtime scalar-probe toggle.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace proteus::simd {
namespace {

/** Independent brute-force reference, structured differently from
 *  the scalar path on purpose. */
std::uint32_t
refMatchByte(std::uint64_t lo, std::uint64_t hi, std::uint8_t byte)
{
    std::uint8_t bytes[16];
    for (unsigned i = 0; i < 8; ++i) {
        bytes[i] = static_cast<std::uint8_t>(lo >> (8 * i));
        bytes[8 + i] = static_cast<std::uint8_t>(hi >> (8 * i));
    }
    std::uint32_t mask = 0;
    for (unsigned lane = 0; lane < 16; ++lane)
        if (bytes[lane] == byte)
            mask |= 1u << lane;
    return mask;
}

std::uint32_t
refMatchHighBit(std::uint64_t lo, std::uint64_t hi)
{
    std::uint32_t mask = 0;
    for (unsigned lane = 0; lane < 16; ++lane) {
        const std::uint64_t word = lane < 8 ? lo : hi;
        if ((word >> (8 * (lane & 7) + 7)) & 1)
            mask |= 1u << lane;
    }
    return mask;
}

TEST(SimdTest, LaneNumberingIsLittleEndianLoThenHi)
{
    // Byte 0 of lo is lane 0; byte 0 of hi is lane 8.
    EXPECT_EQ(matchByte16(0xffull, 0, 0xff), 0x0001u);
    EXPECT_EQ(matchByte16(0, 0xffull, 0xff), 0x0100u);
    // Byte 7 of lo is lane 7; byte 7 of hi is lane 15.
    EXPECT_EQ(matchByte16(0xffull << 56, 0, 0xff), 0x0080u);
    EXPECT_EQ(matchByte16(0, 0xffull << 56, 0xff), 0x8000u);
}

TEST(SimdTest, KnownByteMatchPatterns)
{
    EXPECT_EQ(matchByte16(0, 0, 0x00), 0xffffu);
    EXPECT_EQ(matchByte16(0, 0, 0x80), 0u);
    // A fresh ctrl group: all sixteen lanes read "never used".
    const std::uint64_t empty = 0x8080808080808080ull;
    EXPECT_EQ(matchByte16(empty, empty, 0x80), 0xffffu);
    EXPECT_EQ(matchByte16(empty, 0, 0x80), 0x00ffu);
    EXPECT_EQ(matchByte16(0, empty, 0x80), 0xff00u);
    // Mixed word: fingerprint 0x41 in lanes 1 and 6 only.
    const std::uint64_t mixed = 0x0041800080ff4100ull;
    EXPECT_EQ(matchByte16(mixed, 0, 0x41), (1u << 1) | (1u << 6));
    EXPECT_EQ(matchByte16(mixed, 0, 0xff), 1u << 2);
}

TEST(SimdTest, KnownHighBitPatterns)
{
    EXPECT_EQ(matchHighBit16(0, 0), 0u);
    const std::uint64_t empty = 0x8080808080808080ull;
    EXPECT_EQ(matchHighBit16(empty, empty), 0xffffu);
    EXPECT_EQ(matchHighBit16(empty, 0), 0x00ffu);
    // 0x7f (high bit clear) must not match; 0xff and 0x80 must.
    EXPECT_EQ(matchHighBit16(0x7fff807f00000000ull, 0),
              (1u << 5) | (1u << 6));
}

TEST(SimdTest, DispatchAgreesWithScalarAndBruteForce)
{
    Rng rng(0x51);
    for (int i = 0; i < 200000; ++i) {
        const std::uint64_t lo = rng.nextU64();
        const std::uint64_t hi = rng.nextU64();
        const auto byte = static_cast<std::uint8_t>(rng.nextU64());
        const std::uint32_t expect_eq = refMatchByte(lo, hi, byte);
        ASSERT_EQ(matchByte16Scalar(lo, hi, byte), expect_eq);
        ASSERT_EQ(matchByte16(lo, hi, byte), expect_eq);
        const std::uint32_t expect_hi = refMatchHighBit(lo, hi);
        ASSERT_EQ(matchHighBit16Scalar(lo, hi), expect_hi);
        ASSERT_EQ(matchHighBit16(lo, hi), expect_hi);
    }
}

#if PROTEUS_SIMD_SSE2
TEST(SimdTest, Sse2PathAgreesWithScalarOnBiasedBytes)
{
    // Bias toward the probe's real operands: 0x80 / 0xff / small
    // fingerprints, repeated across lanes, where SWAR-style bugs
    // (carry between lanes) would show.
    Rng rng(0x52);
    const std::uint8_t bytes[] = {0x00, 0x01, 0x7f, 0x80, 0x81, 0xff};
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t lo = 0, hi = 0;
        for (unsigned b = 0; b < 8; ++b) {
            lo |= static_cast<std::uint64_t>(
                      bytes[rng.nextBounded(6)])
                  << (8 * b);
            hi |= static_cast<std::uint64_t>(
                      bytes[rng.nextBounded(6)])
                  << (8 * b);
        }
        for (const std::uint8_t needle : bytes) {
            ASSERT_EQ(matchByte16Sse2(lo, hi, needle),
                      matchByte16Scalar(lo, hi, needle));
        }
        ASSERT_EQ(matchHighBit16Sse2(lo, hi),
                  matchHighBit16Scalar(lo, hi));
    }
}
#endif

TEST(SimdTest, ForceScalarProbeToggleRoundTrips)
{
    EXPECT_FALSE(forceScalarProbe());
    setForceScalarProbe(true);
    EXPECT_TRUE(forceScalarProbe());
    setForceScalarProbe(false);
    EXPECT_FALSE(forceScalarProbe());
}

} // namespace
} // namespace proteus::simd
