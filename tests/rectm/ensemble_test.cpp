#include <gtest/gtest.h>

#include "rectm/cf_tuner.hpp"
#include "rectm/ensemble.hpp"

namespace proteus::rectm {
namespace {

UtilityMatrix
randomRatings(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    UtilityMatrix m(rows, cols);
    Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        const double scale = rng.uniform(0.5, 2.0);
        for (std::size_t c = 0; c < cols; ++c)
            m.set(r, c, scale * (1.0 + 0.1 * c) * rng.uniform(0.9, 1.1));
    }
    return m;
}

TEST(EnsembleTest, BagsCount)
{
    KnnModel proto(3, Similarity::kCosine);
    BaggingEnsemble ensemble(proto, 7);
    EXPECT_EQ(ensemble.bags(), 7);
}

TEST(EnsembleTest, PredictionsHaveFiniteMeanAndNonNegativeVariance)
{
    const auto ratings = randomRatings(20, 8, 1);
    KnnModel proto(5, Similarity::kCosine);
    BaggingEnsemble ensemble(proto, 10);
    ensemble.fit(ratings);

    std::vector<double> query(8, kUnknown);
    query[0] = 1.0;
    query[3] = 1.3;
    for (std::size_t c = 0; c < 8; ++c) {
        const auto pred = ensemble.predict(query, c);
        EXPECT_TRUE(std::isfinite(pred.mean));
        EXPECT_GE(pred.variance, 0.0);
    }
}

TEST(EnsembleTest, BatchAgreesWithPointQueries)
{
    const auto ratings = randomRatings(15, 6, 2);
    KnnModel proto(4, Similarity::kPearson);
    BaggingEnsemble ensemble(proto, 6);
    ensemble.fit(ratings);

    std::vector<double> query(6, kUnknown);
    query[1] = 0.9;
    query[4] = 1.4;
    const auto batch = ensemble.predictAllConfigs(query, 6);
    for (std::size_t c = 0; c < 6; ++c) {
        const auto point = ensemble.predict(query, c);
        EXPECT_DOUBLE_EQ(batch[c].mean, point.mean);
        EXPECT_DOUBLE_EQ(batch[c].variance, point.variance);
    }
}

TEST(EnsembleTest, DeterministicPerSeed)
{
    const auto ratings = randomRatings(15, 6, 3);
    KnnModel proto(4, Similarity::kCosine);
    BaggingEnsemble a(proto, 5, 99), b(proto, 5, 99);
    a.fit(ratings);
    b.fit(ratings);
    std::vector<double> query(6, kUnknown);
    query[2] = 1.1;
    for (std::size_t c = 0; c < 6; ++c) {
        EXPECT_DOUBLE_EQ(a.predict(query, c).mean,
                         b.predict(query, c).mean);
    }
}

TEST(EnsembleTest, BootstrapDiversityCreatesVariance)
{
    // With many bags over a heterogeneous population, at least some
    // configurations must show non-zero predictive variance.
    const auto ratings = randomRatings(30, 10, 4);
    KnnModel proto(3, Similarity::kEuclidean);
    BaggingEnsemble ensemble(proto, 10);
    ensemble.fit(ratings);
    std::vector<double> query(10, kUnknown);
    query[0] = 1.0;
    double total_var = 0;
    for (std::size_t c = 0; c < 10; ++c)
        total_var += ensemble.predict(query, c).variance;
    EXPECT_GT(total_var, 0.0);
}

TEST(CfTunerTest, CrossValidationProducesFiniteMape)
{
    const auto ratings = randomRatings(24, 10, 5);
    KnnModel proto(5, Similarity::kCosine);
    const double mape = crossValidateMape(proto, ratings, 4, 3, 7);
    EXPECT_TRUE(std::isfinite(mape));
    EXPECT_GT(mape, 0.0);
    EXPECT_LT(mape, 2.0);
}

TEST(CfTunerTest, TunerReturnsTrainablePrototype)
{
    const auto ratings = randomRatings(24, 10, 6);
    TunerOptions opts;
    opts.trials = 8;
    const TunedCf tuned = tuneCf(ratings, opts);
    ASSERT_NE(tuned.prototype, nullptr);
    EXPECT_FALSE(tuned.description.empty());
    EXPECT_TRUE(std::isfinite(tuned.cvMape));

    auto model = tuned.prototype->clone();
    model->fit(ratings);
    std::vector<double> query(10, kUnknown);
    query[0] = 1.0;
    EXPECT_TRUE(std::isfinite(model->predict(query, 5)));
}

TEST(CfTunerTest, TunedBeatsWorstCandidateOnAverage)
{
    // The tuner's selection must be at least as good as an
    // intentionally bad configuration (k = 1 euclidean on ratio data).
    const auto ratings = randomRatings(30, 12, 7);
    TunerOptions opts;
    opts.trials = 10;
    const TunedCf tuned = tuneCf(ratings, opts);
    KnnModel bad(1, Similarity::kEuclidean);
    const double bad_mape = crossValidateMape(bad, ratings, 4, 3, 11);
    EXPECT_LE(tuned.cvMape, bad_mape + 1e-9);
}

} // namespace
} // namespace proteus::rectm
