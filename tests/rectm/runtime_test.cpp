/**
 * ProteusRuntime unit tests against a scripted TunableSystem (no
 * simulator): episode structure, steady-state behaviour, change
 * re-triggering, and record bookkeeping.
 */

#include <gtest/gtest.h>

#include "rectm/proteus_runtime.hpp"

namespace proteus::rectm {
namespace {

/** A tiny engine over a hand-made training matrix. */
RecTmEngine
makeEngine(std::size_t cols)
{
    UtilityMatrix train(12, cols);
    Rng rng(5);
    for (std::size_t r = 0; r < 12; ++r) {
        const double scale = rng.uniform(1.0, 100.0);
        for (std::size_t c = 0; c < cols; ++c) {
            // Unimodal population peaking at the middle column.
            const double x = static_cast<double>(c);
            const double mid = static_cast<double>(cols) / 2.0;
            train.set(r, c,
                      scale * (1.0 + x - 0.12 * (x - mid) * (x - mid)) *
                          rng.uniform(0.97, 1.03));
        }
    }
    RecTmEngine::Options opts;
    opts.tuner.trials = 6;
    return RecTmEngine(train, opts);
}

/** Scripted system: KPI = level * shape(config), level switchable. */
class ScriptedSystem : public TunableSystem
{
  public:
    explicit ScriptedSystem(std::size_t cols) : cols_(cols) {}

    std::size_t numConfigs() const override { return cols_; }
    void applyConfig(std::size_t c) override { config_ = c; }

    double
    measureKpi() override
    {
        const double x = static_cast<double>(config_);
        const double mid = static_cast<double>(cols_) / 2.0;
        return level_ * (1.0 + x - 0.12 * (x - mid) * (x - mid));
    }

    void setLevel(double level) { level_ = level; }
    std::size_t appliedConfig() const { return config_; }

  private:
    std::size_t cols_;
    std::size_t config_ = 0;
    double level_ = 10.0;
};

TEST(ProteusRuntimeTest, SteadyWorkloadRunsExactlyOneEpisode)
{
    const auto engine = makeEngine(10);
    ScriptedSystem system(10);
    RuntimeOptions opts;
    ProteusRuntime runtime(engine, system, opts);

    const auto records = runtime.run(50);
    EXPECT_EQ(records.size(), 50u);
    EXPECT_EQ(runtime.episodes(), 1);

    // After the episode every period uses one settled config.
    std::size_t settled = records.back().config;
    int steady = 0;
    for (const auto &rec : records) {
        if (!rec.exploring) {
            EXPECT_EQ(rec.config, settled);
            ++steady;
        }
    }
    EXPECT_GT(steady, 30);
}

TEST(ProteusRuntimeTest, PeriodsAreSequentialAndComplete)
{
    const auto engine = makeEngine(8);
    ScriptedSystem system(8);
    ProteusRuntime runtime(engine, system, {});
    const auto records = runtime.run(25);
    ASSERT_EQ(records.size(), 25u);
    for (int i = 0; i < 25; ++i)
        EXPECT_EQ(records[static_cast<std::size_t>(i)].period, i);
}

TEST(ProteusRuntimeTest, LevelShiftTriggersReoptimization)
{
    const auto engine = makeEngine(10);
    ScriptedSystem system(10);
    RuntimeOptions opts;
    ProteusRuntime runtime(engine, system, opts);

    const auto records = runtime.run(80, [&](int period) {
        system.setLevel(period < 40 ? 10.0 : 40.0);
    });
    EXPECT_GE(runtime.episodes(), 2);
    // The period before the new episode is marked as the change point.
    bool change_marked = false;
    for (const auto &rec : records)
        change_marked |= rec.changeDetected;
    EXPECT_TRUE(change_marked);
}

TEST(ProteusRuntimeTest, SettlesNearTheTrueOptimum)
{
    const auto engine = makeEngine(12);
    ScriptedSystem system(12);
    ProteusRuntime runtime(engine, system, {});
    const auto records = runtime.run(30);

    // True optimum of the scripted shape.
    std::size_t best = 0;
    double best_v = -1;
    for (std::size_t c = 0; c < 12; ++c) {
        system.applyConfig(c);
        const double v = system.measureKpi();
        if (v > best_v) {
            best_v = v;
            best = c;
        }
    }
    system.applyConfig(records.back().config);
    EXPECT_GE(system.measureKpi(), 0.95 * best_v)
        << "settled on config " << records.back().config
        << ", optimum is " << best;
}

TEST(ProteusRuntimeTest, ExplorationsReportedPerEpisode)
{
    const auto engine = makeEngine(10);
    ScriptedSystem system(10);
    ProteusRuntime runtime(engine, system, {});
    (void)runtime.run(20);
    EXPECT_GT(runtime.lastEpisodeExplorations(), 0);
    EXPECT_LE(runtime.lastEpisodeExplorations(), 20);
}

} // namespace
} // namespace proteus::rectm
