/**
 * End-to-end RecTM tests on simulator-generated utility matrices:
 * training on a workload corpus, optimizing held-out workloads, and
 * the closed-loop runtime reacting to phase changes.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.hpp"
#include "rectm/engine.hpp"
#include "rectm/proteus_runtime.hpp"
#include "simarch/perf_model.hpp"

namespace proteus::rectm {
namespace {

using polytm::ConfigSpace;
using polytm::KpiKind;
using simarch::MachineModel;
using simarch::PerfModel;
using simarch::Workload;
using simarch::WorkloadCorpus;

class EngineFixture : public ::testing::Test
{
  protected:
    EngineFixture()
        : space_(ConfigSpace::machineA()),
          perf_(MachineModel::machineA())
    {
        corpus_ = WorkloadCorpus::generate(6, 42); // 90 workloads
        // 30/70 train/test split.
        Rng rng(9);
        const auto perm = rng.permutation(corpus_.size());
        const std::size_t train_n = corpus_.size() * 3 / 10;
        for (std::size_t i = 0; i < corpus_.size(); ++i) {
            if (i < train_n)
                trainIdx_.push_back(perm[i]);
            else
                testIdx_.push_back(perm[i]);
        }
    }

    UtilityMatrix
    trainingMatrix(KpiKind kpi) const
    {
        UtilityMatrix m(trainIdx_.size(), space_.size());
        for (std::size_t i = 0; i < trainIdx_.size(); ++i) {
            const auto row =
                perf_.kpiRow(corpus_[trainIdx_[i]], space_, kpi);
            for (std::size_t c = 0; c < space_.size(); ++c)
                m.set(i, c, toGoodness(row[c], kpi));
        }
        return m;
    }

    /** Distance-from-optimum of a chosen config for a workload. */
    double
    dfo(const Workload &w, std::size_t chosen, KpiKind kpi) const
    {
        const auto row = perf_.kpiRow(w, space_, kpi, false);
        double best = row[0];
        for (const double v : row) {
            best = polytm::kpiIsMaximize(kpi) ? std::max(best, v)
                                              : std::min(best, v);
        }
        return std::abs(row[chosen] - best) / best;
    }

    ConfigSpace space_;
    PerfModel perf_;
    std::vector<Workload> corpus_;
    std::vector<std::size_t> trainIdx_, testIdx_;
};

TEST_F(EngineFixture, TunerPicksAModelWithReasonableCv)
{
    const auto train = trainingMatrix(KpiKind::kThroughput);
    RecTmEngine::Options opts;
    opts.tuner.trials = 8;
    RecTmEngine engine(train, opts);
    EXPECT_FALSE(engine.modelDescription().empty());
    EXPECT_LT(engine.tunerCvMape(), 0.5);
    EXPECT_GE(engine.referenceColumn(), 0);
    EXPECT_EQ(engine.numConfigs(), space_.size());
}

TEST_F(EngineFixture, OptimizesHeldOutWorkloadsToLowMdfo)
{
    const auto train = trainingMatrix(KpiKind::kThroughput);
    RecTmEngine::Options opts;
    opts.tuner.trials = 8;
    RecTmEngine engine(train, opts);

    std::vector<double> dfos;
    std::vector<int> explorations;
    for (std::size_t i = 0; i < 20; ++i) {
        const Workload &w = corpus_[testIdx_[i]];
        auto sampler = [&](std::size_t c) {
            return toGoodness(
                perf_.kpi(w, space_.at(c), KpiKind::kThroughput),
                KpiKind::kThroughput);
        };
        SmboOptions smbo;
        smbo.epsilon = 0.01;
        const auto result = engine.optimize(sampler, smbo);
        dfos.push_back(dfo(w, result.bestConfig, KpiKind::kThroughput));
        explorations.push_back(result.explorations);
    }
    EXPECT_LT(mean(dfos), 0.10) << "MDFO should be near-optimal";
    EXPECT_LT(mean(std::vector<double>(explorations.begin(),
                                       explorations.end())),
              12.0);
}

TEST_F(EngineFixture, DistillationBeatsNoNormalization)
{
    const auto train = trainingMatrix(KpiKind::kExecTime);

    auto mdfoWith = [&](NormalizerKind kind) {
        RecTmEngine::Options opts;
        opts.normalizer = kind;
        opts.tuner.trials = 6;
        RecTmEngine engine(train, opts);
        std::vector<double> dfos;
        for (std::size_t i = 0; i < 15; ++i) {
            const Workload &w = corpus_[testIdx_[i]];
            auto sampler = [&](std::size_t c) {
                return toGoodness(
                    perf_.kpi(w, space_.at(c), KpiKind::kExecTime),
                    KpiKind::kExecTime);
            };
            SmboOptions smbo;
            smbo.stop = StopRule::kFixed;
            smbo.fixedExplorations = 5;
            const auto result = engine.optimize(sampler, smbo);
            dfos.push_back(
                dfo(w, result.bestConfig, KpiKind::kExecTime));
        }
        return mean(dfos);
    };

    EXPECT_LT(mdfoWith(NormalizerKind::kDistillation) * 1.05,
              mdfoWith(NormalizerKind::kNone) + 0.02);
}

/** Simulated tunable system whose workload shifts by phase. */
class PhasedSystem : public TunableSystem
{
  public:
    PhasedSystem(const PerfModel &perf, const ConfigSpace &space,
                 std::vector<Workload> phases)
        : perf_(perf), space_(space), phases_(std::move(phases))
    {}

    void setPhase(std::size_t p) { phase_ = p; }
    std::size_t numConfigs() const override { return space_.size(); }
    void applyConfig(std::size_t c) override { config_ = c; }

    double
    measureKpi() override
    {
        // Small per-period measurement jitter on top of the model.
        jitter_ = jitter_ * 6364136223846793005ull + 1442695040888963407ull;
        const double noise =
            1.0 + 0.01 * (static_cast<double>(jitter_ >> 40) / (1 << 24) -
                          0.5);
        return perf_.kpi(phases_[phase_], space_.at(config_),
                         KpiKind::kThroughput, false) *
               noise;
    }

  private:
    const PerfModel &perf_;
    const ConfigSpace &space_;
    std::vector<Workload> phases_;
    std::size_t phase_ = 0;
    std::size_t config_ = 0;
    std::uint64_t jitter_ = 99;
};

TEST_F(EngineFixture, RuntimeReoptimizesOnPhaseChange)
{
    const auto train = trainingMatrix(KpiKind::kThroughput);
    RecTmEngine::Options opts;
    opts.tuner.trials = 6;
    RecTmEngine engine(train, opts);

    // Two very different phases: read-dominated hashmap-like vs
    // write-heavy contended intruder-like.
    PhasedSystem system(perf_, space_,
                        {corpus_[testIdx_[0]], corpus_[testIdx_[1]]});

    RuntimeOptions ropts;
    ropts.smbo.epsilon = 0.05;
    ProteusRuntime runtime(engine, system, ropts);

    const auto records = runtime.run(120, [&](int period) {
        system.setPhase(period < 60 ? 0 : 1);
    });

    ASSERT_EQ(records.size(), 120u);
    EXPECT_GE(runtime.episodes(), 2)
        << "the monitor must trigger at least one re-optimization";

    // After the initial episode the runtime settles (not exploring).
    int steady = 0;
    for (const auto &rec : records)
        steady += rec.exploring ? 0 : 1;
    EXPECT_GT(steady, 60);
}

TEST_F(EngineFixture, PredictAllGoodnessRoundTrips)
{
    const auto train = trainingMatrix(KpiKind::kThroughput);
    RecTmEngine::Options opts;
    opts.tuner.trials = 6;
    RecTmEngine engine(train, opts);

    const Workload &w = corpus_[testIdx_[3]];
    std::vector<double> query(space_.size(), kUnknown);
    const auto ref = static_cast<std::size_t>(engine.referenceColumn());
    query[ref] = toGoodness(
        perf_.kpi(w, space_.at(ref), KpiKind::kThroughput),
        KpiKind::kThroughput);
    const auto preds = engine.predictAllGoodness(query);
    ASSERT_EQ(preds.size(), space_.size());
    for (const double p : preds)
        EXPECT_GT(p, 0.0);
}

} // namespace
} // namespace proteus::rectm
