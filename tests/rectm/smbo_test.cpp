#include <gtest/gtest.h>

#include <cmath>

#include "rectm/cusum.hpp"
#include "rectm/smbo.hpp"

namespace proteus::rectm {
namespace {

TEST(EiTest, ClosedFormProperties)
{
    // Zero variance: EI is the positive part of the mean gap.
    EXPECT_DOUBLE_EQ(expectedImprovement(5.0, 0.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(expectedImprovement(2.0, 0.0, 3.0), 0.0);
    // EI grows with variance at fixed mean.
    const double lo = expectedImprovement(3.0, 0.01, 3.0);
    const double hi = expectedImprovement(3.0, 1.0, 3.0);
    EXPECT_GT(hi, lo);
    // EI grows with mean at fixed variance.
    EXPECT_GT(expectedImprovement(4.0, 0.5, 3.0),
              expectedImprovement(3.5, 0.5, 3.0));
    // Always non-negative.
    EXPECT_GE(expectedImprovement(-10.0, 0.2, 3.0), 0.0);
    // At mean == best with unit variance: sigma * phi(0) ~ 0.3989.
    EXPECT_NEAR(expectedImprovement(3.0, 1.0, 3.0), 0.39894, 1e-4);
}

/** Tiny synthetic setup: 12 workload rows over 10 configs, each row a
 *  scaled trend; optimum at config 7 for the query family. */
class SmboFixture : public ::testing::Test
{
  protected:
    static double
    trend(std::size_t c)
    {
        // unimodal with peak at c = 7
        const double x = static_cast<double>(c);
        return 6.0 - 0.1 * (x - 7) * (x - 7);
    }

    SmboFixture()
    {
        UtilityMatrix raw(12, 10);
        Rng rng(3);
        for (std::size_t r = 0; r < 12; ++r) {
            const double scale = std::pow(10.0, rng.nextBounded(4));
            for (std::size_t c = 0; c < 10; ++c) {
                const double jitter = rng.uniform(0.95, 1.05);
                raw.set(r, c, scale * trend(c) * jitter);
            }
        }
        normalizer_ = Normalizer::make(NormalizerKind::kDistillation);
        const auto ratings = normalizer_->fitTransform(raw);
        KnnModel proto(4, Similarity::kCosine);
        ensemble_ = std::make_unique<BaggingEnsemble>(proto, 10);
        ensemble_->fit(ratings);
    }

    std::unique_ptr<Normalizer> normalizer_;
    std::unique_ptr<BaggingEnsemble> ensemble_;
};

TEST_F(SmboFixture, EiFindsTheOptimumQuickly)
{
    int samples_spent = 0;
    auto sample = [&](std::size_t c) {
        ++samples_spent;
        return 42.0 * trend(c); // fresh workload on a new scale
    };
    SmboOptions opts;
    opts.policy = ExplorePolicy::kEi;
    opts.stop = StopRule::kCautious;
    opts.epsilon = 0.01;
    const SmboResult result = optimizeWorkload(
        *ensemble_, *normalizer_, 10, sample, opts);

    EXPECT_EQ(result.bestConfig, 7u);
    EXPECT_LE(result.explorations, 6);
    EXPECT_EQ(samples_spent,
              static_cast<int>(result.sampled.size()));
    // The reference config was sampled first.
    EXPECT_EQ(static_cast<int>(result.sampled.front()),
              normalizer_->referenceColumn());
}

TEST_F(SmboFixture, FixedBudgetSamplesExactCount)
{
    auto sample = [&](std::size_t c) { return 5.0 * trend(c); };
    SmboOptions opts;
    opts.stop = StopRule::kFixed;
    opts.fixedExplorations = 4;
    const SmboResult result = optimizeWorkload(
        *ensemble_, *normalizer_, 10, sample, opts);
    // 4 explorations + possibly the final model-favourite sample.
    EXPECT_GE(result.explorations, 4);
    EXPECT_LE(result.explorations, 5);
}

TEST_F(SmboFixture, AllPoliciesReturnAnExploredConfig)
{
    for (const auto policy :
         {ExplorePolicy::kEi, ExplorePolicy::kGreedy,
          ExplorePolicy::kVariance, ExplorePolicy::kRandom}) {
        auto sample = [&](std::size_t c) { return 3.0 * trend(c); };
        SmboOptions opts;
        opts.policy = policy;
        opts.stop = StopRule::kFixed;
        opts.fixedExplorations = 5;
        const SmboResult result = optimizeWorkload(
            *ensemble_, *normalizer_, 10, sample, opts);
        bool found = false;
        for (const auto c : result.sampled)
            found |= c == result.bestConfig;
        EXPECT_TRUE(found) << explorePolicyName(policy);
        EXPECT_DOUBLE_EQ(result.bestGoodness,
                         result.queryGoodness[result.bestConfig]);
    }
}

TEST_F(SmboFixture, NaiveStopsEarlierOrEqualThanCautious)
{
    auto run = [&](StopRule rule) {
        auto sample = [&](std::size_t c) { return 9.0 * trend(c); };
        SmboOptions opts;
        opts.stop = rule;
        opts.epsilon = 0.05;
        return optimizeWorkload(*ensemble_, *normalizer_, 10, sample,
                                opts)
            .explorations;
    };
    EXPECT_LE(run(StopRule::kNaive), run(StopRule::kCautious));
}

TEST_F(SmboFixture, MaxExplorationsIsHonored)
{
    auto sample = [&](std::size_t c) { return trend(c); };
    SmboOptions opts;
    opts.stop = StopRule::kFixed;
    opts.fixedExplorations = 50;
    opts.maxExplorations = 3;
    const SmboResult result = optimizeWorkload(
        *ensemble_, *normalizer_, 10, sample, opts);
    EXPECT_LE(result.explorations, 3);
}

TEST(CusumTest, NoAlarmOnStationarySignal)
{
    CusumDetector detector;
    Rng rng(1);
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(detector.push(rng.gaussian(100.0, 2.0)));
}

TEST(CusumTest, DetectsLevelShiftUpAndDown)
{
    for (const double factor : {2.0, 0.4}) {
        CusumDetector detector;
        Rng rng(2);
        for (int i = 0; i < 60; ++i)
            ASSERT_FALSE(detector.push(rng.gaussian(50.0, 1.0)));
        bool fired = false;
        for (int i = 0; i < 30 && !fired; ++i)
            fired = detector.push(rng.gaussian(50.0 * factor, 1.0));
        EXPECT_TRUE(fired) << "factor " << factor;
    }
}

TEST(CusumTest, DetectsSlowDrift)
{
    CusumDetector detector;
    Rng rng(3);
    for (int i = 0; i < 60; ++i)
        ASSERT_FALSE(detector.push(rng.gaussian(100.0, 1.5)));
    bool fired = false;
    double level = 100.0;
    for (int i = 0; i < 400 && !fired; ++i) {
        level *= 1.01; // 1% per period
        fired = detector.push(rng.gaussian(level, 1.5));
    }
    EXPECT_TRUE(fired);
}

TEST(CusumTest, ResetsAfterDetection)
{
    CusumDetector detector;
    Rng rng(4);
    for (int i = 0; i < 60; ++i)
        detector.push(rng.gaussian(10.0, 0.2));
    bool fired = false;
    for (int i = 0; i < 40 && !fired; ++i)
        fired = detector.push(rng.gaussian(30.0, 0.2));
    ASSERT_TRUE(fired);
    // After the alarm the detector restarts on the new regime and must
    // not immediately re-fire.
    int follow_up_alarms = 0;
    for (int i = 0; i < 100; ++i)
        follow_up_alarms += detector.push(rng.gaussian(30.0, 0.2));
    EXPECT_EQ(follow_up_alarms, 0);
}

TEST(CusumTest, WarmupSuppressesEarlyAlarms)
{
    CusumDetector::Options opts;
    opts.warmup = 10;
    CusumDetector detector(opts);
    // Wild values inside warm-up must not fire.
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(detector.push(i % 2 ? 1.0 : 1000.0));
}

} // namespace
} // namespace proteus::rectm
