#include <gtest/gtest.h>

#include <cmath>

#include "rectm/cf.hpp"
#include "rectm/normalizer.hpp"

namespace proteus::rectm {
namespace {

TEST(KnnSimilarityTest, CosineScaleInsensitive)
{
    KnnModel knn(3, Similarity::kCosine);
    const std::vector<double> a = {1, 2, 3};
    const std::vector<double> b = {10, 20, 30};
    EXPECT_NEAR(knn.rowSimilarity(a, b), 1.0, 1e-9);
}

TEST(KnnSimilarityTest, EuclideanScaleSensitive)
{
    KnnModel knn(3, Similarity::kEuclidean);
    const std::vector<double> a = {1, 2, 3};
    const std::vector<double> same = {1, 2, 3};
    const std::vector<double> scaled = {10, 20, 30};
    EXPECT_GT(knn.rowSimilarity(a, same), knn.rowSimilarity(a, scaled));
    EXPECT_DOUBLE_EQ(knn.rowSimilarity(a, same), 1.0);
}

TEST(KnnSimilarityTest, PearsonDetectsTrendNotOffset)
{
    KnnModel knn(3, Similarity::kPearson);
    const std::vector<double> a = {1, 2, 3};
    const std::vector<double> shifted = {101, 102, 103};
    const std::vector<double> inverted = {3, 2, 1};
    EXPECT_NEAR(knn.rowSimilarity(a, shifted), 1.0, 1e-9);
    EXPECT_NEAR(knn.rowSimilarity(a, inverted), -1.0, 1e-9);
}

TEST(KnnSimilarityTest, IgnoresUnknownEntries)
{
    KnnModel knn(3, Similarity::kCosine);
    const std::vector<double> a = {1, kUnknown, 3};
    const std::vector<double> b = {2, 99, 6};
    EXPECT_NEAR(knn.rowSimilarity(a, b), 1.0, 1e-9);
}

TEST(KnnSimilarityTest, NoCommonEntriesIsZero)
{
    KnnModel knn(3, Similarity::kCosine);
    const std::vector<double> a = {1, kUnknown};
    const std::vector<double> b = {kUnknown, 2};
    EXPECT_DOUBLE_EQ(knn.rowSimilarity(a, b), 0.0);
}

TEST(KnnPredictTest, PaperRunningExample)
{
    // The §5.1 example: after distillation, A3 (100, 200, ?) must be
    // predicted ~300 at C3 because it trends exactly like A1 (1,2,3).
    UtilityMatrix raw(2, 3);
    raw.set(0, 0, 1);
    raw.set(0, 1, 2);
    raw.set(0, 2, 3);
    raw.set(1, 0, 30);
    raw.set(1, 1, 20);
    raw.set(1, 2, 10);

    auto norm = Normalizer::make(NormalizerKind::kDistillation);
    const auto ratings = norm->fitTransform(raw);

    KnnModel knn(1, Similarity::kCosine);
    knn.fit(ratings);

    std::vector<double> query_goodness = {100, 200, kUnknown};
    std::vector<double> query_ratings(3, kUnknown);
    for (std::size_t c = 0; c < 2; ++c) {
        query_ratings[c] =
            norm->toRating(query_goodness, c, query_goodness[c]);
    }
    const double rating = knn.predict(query_ratings, 2);
    const double predicted =
        norm->fromRating(query_goodness, 2, rating);
    EXPECT_NEAR(predicted, 300.0, 15.0);
}

TEST(KnnPredictTest, WithoutNormalizationPredictionIsOffScale)
{
    // Same example, raw ratings: the cosine prediction lives on the
    // neighbour's scale, nowhere near 300 (the paper's motivation).
    UtilityMatrix raw(2, 3);
    raw.set(0, 0, 1);
    raw.set(0, 1, 2);
    raw.set(0, 2, 3);
    raw.set(1, 0, 30);
    raw.set(1, 1, 20);
    raw.set(1, 2, 10);

    KnnModel knn(1, Similarity::kCosine);
    knn.fit(raw);
    const std::vector<double> query = {100, 200, kUnknown};
    const double predicted = knn.predict(query, 2);
    EXPECT_LT(std::abs(predicted - 3.0), 1.0)
        << "raw cosine lands on the A1 scale";
    EXPECT_GT(std::abs(predicted - 300.0), 250.0);
}

TEST(KnnPredictTest, PredictAllAgreesWithPredict)
{
    UtilityMatrix m(4, 5);
    Rng rng(5);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 5; ++c)
            m.set(r, c, rng.uniform(0.5, 2.0));
    }
    KnnModel knn(2, Similarity::kCosine);
    knn.fit(m);
    std::vector<double> query = {1.0, 1.4, kUnknown, kUnknown, 0.7};
    const auto all = knn.predictAll(query, 5);
    for (std::size_t c = 0; c < 5; ++c)
        EXPECT_DOUBLE_EQ(all[c], knn.predict(query, c));
}

TEST(MfTest, ReconstructsLowRankMatrix)
{
    // rank-2 matrix: r(u,i) = a_u * b_i + c_u * d_i (+1 offset).
    const std::size_t rows = 30, cols = 20;
    Rng rng(7);
    std::vector<double> a(rows), c2(rows), b(cols), d(cols);
    for (auto &v : a)
        v = rng.uniform(0.5, 1.5);
    for (auto &v : c2)
        v = rng.uniform(-0.5, 0.5);
    for (auto &v : b)
        v = rng.uniform(0.5, 1.5);
    for (auto &v : d)
        v = rng.uniform(-0.5, 0.5);

    UtilityMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            m.set(r, c, 1.0 + a[r] * b[c] + c2[r] * d[c]);
    }

    MfModel::Hyper hyper;
    hyper.dims = 6;
    hyper.epochs = 120;
    MfModel mf(hyper);
    mf.fit(m);

    // Fold in a fresh row with half its entries known.
    std::vector<double> full(cols), query(cols, kUnknown);
    const double au = 1.2, cu = 0.3;
    for (std::size_t c = 0; c < cols; ++c) {
        full[c] = 1.0 + au * b[c] + cu * d[c];
        if (c % 2 == 0)
            query[c] = full[c];
    }
    double err = 0;
    std::size_t n = 0;
    for (std::size_t c = 1; c < cols; c += 2) {
        err += std::abs(mf.predict(query, c) - full[c]) / full[c];
        ++n;
    }
    EXPECT_LT(err / n, 0.08) << "MAPE on hidden entries";
}

TEST(MfTest, PredictAllAgreesWithPredict)
{
    UtilityMatrix m(6, 4);
    Rng rng(9);
    for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 4; ++c)
            m.set(r, c, rng.uniform(0.5, 2.0));
    }
    MfModel mf({});
    mf.fit(m);
    std::vector<double> query = {1.0, kUnknown, 1.2, kUnknown};
    const auto all = mf.predictAll(query, 4);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(all[c], mf.predict(query, c));
}

TEST(MfTest, DeterministicForSameSeed)
{
    UtilityMatrix m(5, 5);
    Rng rng(11);
    for (std::size_t r = 0; r < 5; ++r) {
        for (std::size_t c = 0; c < 5; ++c)
            m.set(r, c, rng.uniform(1.0, 3.0));
    }
    MfModel::Hyper hyper;
    hyper.seed = 77;
    MfModel m1(hyper), m2(hyper);
    m1.fit(m);
    m2.fit(m);
    std::vector<double> query = {1.5, kUnknown, 2.0, kUnknown, 1.0};
    EXPECT_DOUBLE_EQ(m1.predict(query, 1), m2.predict(query, 1));
}

TEST(CfTest, ItemBasedKnnCannotExtrapolate)
{
    // Paper footnote 3: item-based KNN expresses any unknown rating
    // as a weighted average of ratings the query itself provided, so
    // its prediction can never leave the witnessed range — useless
    // for finding configurations *better* than the sampled ones.
    UtilityMatrix train(8, 5);
    Rng rng(3);
    for (std::size_t r = 0; r < 8; ++r) {
        const double scale = rng.uniform(1, 10);
        for (std::size_t c = 0; c < 5; ++c)
            train.set(r, c, scale * (1.0 + c)); // column 4 is 5x col 0
    }
    ItemKnnModel item(3, Similarity::kCosine);
    item.fit(train);
    KnnModel user(3, Similarity::kCosine);
    user.fit(train);

    // The query knows only its two worst configurations.
    std::vector<double> query = {2.0, 4.0, kUnknown, kUnknown,
                                 kUnknown};
    const double item_pred = item.predict(query, 4);
    const double user_pred = user.predict(query, 4);

    // Item-based is trapped in [2, 4]; user-based extrapolates ~10.
    EXPECT_LE(item_pred, 4.0 + 1e-9);
    EXPECT_GE(item_pred, 2.0 - 1e-9);
    EXPECT_GT(user_pred, 6.0);
}

TEST(CfTest, ItemKnnStillInterpolatesSensibly)
{
    // Inside the witnessed range item-based KNN is a fine predictor;
    // the point of footnote 3 is extrapolation, not interpolation.
    UtilityMatrix train(10, 4);
    Rng rng(9);
    for (std::size_t r = 0; r < 10; ++r) {
        const double s = rng.uniform(1, 5);
        train.set(r, 0, s * 1.0);
        train.set(r, 1, s * 2.0);
        train.set(r, 2, s * 2.1);
        train.set(r, 3, s * 1.1);
    }
    // Euclidean column similarity: all columns here are multiples of
    // the same vector, so cosine cannot discriminate them, but the
    // euclidean distance puts column 2 right next to column 1.
    ItemKnnModel item(1, Similarity::kEuclidean);
    item.fit(train);
    std::vector<double> query = {3.0, 6.0, kUnknown, kUnknown};
    EXPECT_NEAR(item.predict(query, 2), 6.0, 1.0);
}

TEST(CfTest, CloneIsUntrainedSameHyper)
{
    KnnModel knn(7, Similarity::kPearson);
    auto clone = knn.clone();
    EXPECT_EQ(clone->describe(), knn.describe());
}

} // namespace
} // namespace proteus::rectm
