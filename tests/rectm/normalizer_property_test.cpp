/**
 * Property sweep over all normalizer kinds: every scheme must (a)
 * round-trip query values through rating space exactly, and (b)
 * preserve the within-row ordering of ratings (so the argmax in
 * rating space is the argmax in KPI space). Rating distillation
 * additionally preserves within-row ratios (Algorithm 3 property i).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rectm/normalizer.hpp"

namespace proteus::rectm {
namespace {

class NormalizerPropertyTest
    : public ::testing::TestWithParam<NormalizerKind>
{
  protected:
    NormalizerPropertyTest()
    {
        // Heterogeneous random training matrix (positive goodness).
        Rng rng(123);
        UtilityMatrix train(12, 9);
        for (std::size_t r = 0; r < 12; ++r) {
            const double scale = std::pow(10.0, rng.uniform(-2, 3));
            for (std::size_t c = 0; c < 9; ++c)
                train.set(r, c, scale * rng.uniform(0.2, 5.0));
        }
        normalizer_ = Normalizer::make(GetParam());
        ratings_ = normalizer_->fitTransform(train);
        train_ = train;
    }

    UtilityMatrix train_{0, 0};
    UtilityMatrix ratings_{0, 0};
    std::unique_ptr<Normalizer> normalizer_;
};

TEST_P(NormalizerPropertyTest, TransformKeepsShapeAndKnownness)
{
    ASSERT_EQ(ratings_.rows(), train_.rows());
    ASSERT_EQ(ratings_.cols(), train_.cols());
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t c = 0; c < train_.cols(); ++c) {
            EXPECT_EQ(known(ratings_.at(r, c)), known(train_.at(r, c)));
            EXPECT_TRUE(std::isfinite(ratings_.at(r, c)));
        }
    }
}

TEST_P(NormalizerPropertyTest, RowOrderingPreserved)
{
    // RC-diff subtracts a *different* constant per column, so it does
    // NOT preserve within-row ordering — one of the reasons it
    // recommends worse configurations in Fig. 4b. Instead of skipping
    // we assert that defect: the training matrix must exhibit at
    // least one within-row inversion. Every other scheme is strictly
    // monotone per row (scaling by a positive constant or subtracting
    // one row constant) and must preserve every comparison.
    std::size_t inversions = 0;
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t i = 0; i < train_.cols(); ++i) {
            for (std::size_t j = i + 1; j < train_.cols(); ++j) {
                const bool raw_less =
                    train_.at(r, i) < train_.at(r, j);
                const bool rating_less =
                    ratings_.at(r, i) < ratings_.at(r, j);
                if (raw_less != rating_less)
                    ++inversions;
                if (GetParam() != NormalizerKind::kRcDiff) {
                    EXPECT_EQ(raw_less, rating_less)
                        << "row " << r << " cols " << i << "," << j;
                }
            }
        }
    }
    if (GetParam() == NormalizerKind::kRcDiff) {
        EXPECT_GT(inversions, 0u)
            << "rc-diff is documented order-breaking; a fully "
               "order-preserving fit means the scheme (or the test "
               "data) changed";
    } else {
        EXPECT_EQ(inversions, 0u);
    }
}

TEST_P(NormalizerPropertyTest, QueryRoundTripIsExact)
{
    normalizer_->setOracleRowMax(8.0); // only the ideal scheme cares
    Rng rng(9);
    std::vector<double> query(train_.cols(), kUnknown);
    const int ref = normalizer_->referenceColumn();
    if (ref >= 0)
        query[static_cast<std::size_t>(ref)] = rng.uniform(0.5, 4.0);
    query[0] = rng.uniform(0.5, 4.0);
    query[3] = rng.uniform(0.5, 4.0);

    for (const std::size_t c : {std::size_t{0}, std::size_t{3}}) {
        const double g = query[c];
        const double rating = normalizer_->toRating(query, c, g);
        EXPECT_TRUE(std::isfinite(rating));
        EXPECT_NEAR(normalizer_->fromRating(query, c, rating), g,
                    1e-9 * std::abs(g));
    }
}

TEST_P(NormalizerPropertyTest, QueryOrderingPreserved)
{
    normalizer_->setOracleRowMax(10.0);
    std::vector<double> query(train_.cols(), kUnknown);
    const int ref = normalizer_->referenceColumn();
    if (ref >= 0)
        query[static_cast<std::size_t>(ref)] = 2.0;
    query[1] = 1.0;
    query[2] = 3.0;

    if (GetParam() != NormalizerKind::kRcDiff) {
        const double r1 = normalizer_->toRating(query, 1, query[1]);
        const double r2 = normalizer_->toRating(query, 2, query[2]);
        EXPECT_LT(r1, r2);
        return;
    }
    // rc-diff: ordering is NOT preserved in general. Measure the
    // per-column offsets it applies (toRating is goodness minus a
    // query-row mean minus a column adjustment), find two columns
    // whose offsets differ, and craft goodness values whose rating
    // order flips — the concrete failure mode behind Fig. 4b.
    const double probe = 1.0;
    std::size_t col_a = 1;
    std::size_t col_b = 2;
    double k_a = 0;
    double k_b = 0;
    bool found = false;
    for (std::size_t i = 0; !found && i < train_.cols(); ++i) {
        for (std::size_t j = i + 1; !found && j < train_.cols(); ++j) {
            k_a = probe - normalizer_->toRating(query, i, probe);
            k_b = probe - normalizer_->toRating(query, j, probe);
            if (std::abs(k_a - k_b) > 1e-6) {
                col_a = i;
                col_b = j;
                found = true;
            }
        }
    }
    ASSERT_TRUE(found) << "rc-diff applied identical offsets to every "
                          "column — degenerate fit, check the test data";
    if (k_a > k_b) {
        std::swap(col_a, col_b);
        std::swap(k_a, k_b);
    }
    // g_b > g_a in goodness space, but the larger column offset drags
    // its rating below: the argmax flips.
    const double g_a = probe;
    const double g_b = probe + (k_b - k_a) / 2;
    ASSERT_GT(g_b, g_a);
    EXPECT_GT(normalizer_->toRating(query, col_a, g_a),
              normalizer_->toRating(query, col_b, g_b))
        << "rc-diff failed to exhibit its documented inversion";
}

TEST_P(NormalizerPropertyTest, DistillationPreservesRatios)
{
    // Within-row ratio preservation (Algorithm 3 property i) holds
    // exactly for the scaling schemes — distillation, the max-scaling
    // oracle, the max-constant scheme — and trivially for the
    // identity. The subtractive rc-diff scheme breaks it; assert that
    // instead of skipping.
    const bool preserves = GetParam() != NormalizerKind::kRcDiff;
    double worst = 0;
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t i = 0; i + 1 < train_.cols(); ++i) {
            const double raw =
                train_.at(r, i) / train_.at(r, i + 1);
            const double rated =
                ratings_.at(r, i) / ratings_.at(r, i + 1);
            worst = std::max(worst, std::abs(raw - rated));
            if (preserves)
                EXPECT_NEAR(raw, rated, 1e-9)
                    << "row " << r << " col " << i;
        }
    }
    if (!preserves) {
        EXPECT_GT(worst, 1e-6)
            << "rc-diff unexpectedly preserved every within-row "
               "ratio — the subtractive scheme must distort at least "
               "one";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, NormalizerPropertyTest,
    ::testing::Values(NormalizerKind::kNone,
                      NormalizerKind::kMaxConstant,
                      NormalizerKind::kIdeal, NormalizerKind::kRcDiff,
                      NormalizerKind::kDistillation),
    [](const ::testing::TestParamInfo<NormalizerKind> &info) {
        std::string name(normalizerName(info.param));
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace proteus::rectm
