/**
 * Property sweep over all normalizer kinds: every scheme must (a)
 * round-trip query values through rating space exactly, and (b)
 * preserve the within-row ordering of ratings (so the argmax in
 * rating space is the argmax in KPI space). Rating distillation
 * additionally preserves within-row ratios (Algorithm 3 property i).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rectm/normalizer.hpp"

namespace proteus::rectm {
namespace {

class NormalizerPropertyTest
    : public ::testing::TestWithParam<NormalizerKind>
{
  protected:
    NormalizerPropertyTest()
    {
        // Heterogeneous random training matrix (positive goodness).
        Rng rng(123);
        UtilityMatrix train(12, 9);
        for (std::size_t r = 0; r < 12; ++r) {
            const double scale = std::pow(10.0, rng.uniform(-2, 3));
            for (std::size_t c = 0; c < 9; ++c)
                train.set(r, c, scale * rng.uniform(0.2, 5.0));
        }
        normalizer_ = Normalizer::make(GetParam());
        ratings_ = normalizer_->fitTransform(train);
        train_ = train;
    }

    UtilityMatrix train_{0, 0};
    UtilityMatrix ratings_{0, 0};
    std::unique_ptr<Normalizer> normalizer_;
};

TEST_P(NormalizerPropertyTest, TransformKeepsShapeAndKnownness)
{
    ASSERT_EQ(ratings_.rows(), train_.rows());
    ASSERT_EQ(ratings_.cols(), train_.cols());
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t c = 0; c < train_.cols(); ++c) {
            EXPECT_EQ(known(ratings_.at(r, c)), known(train_.at(r, c)));
            EXPECT_TRUE(std::isfinite(ratings_.at(r, c)));
        }
    }
}

TEST_P(NormalizerPropertyTest, RowOrderingPreserved)
{
    if (GetParam() == NormalizerKind::kRcDiff) {
        // RC-diff subtracts a *different* constant per column, so it
        // does NOT preserve within-row ordering — one of the reasons
        // it recommends worse configurations in Fig. 4b.
        GTEST_SKIP() << "rc-diff is not row-order preserving";
    }
    // The remaining schemes are strictly monotone per row (scaling by
    // a positive constant or subtracting one row constant).
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t i = 0; i < train_.cols(); ++i) {
            for (std::size_t j = i + 1; j < train_.cols(); ++j) {
                const bool raw_less =
                    train_.at(r, i) < train_.at(r, j);
                const bool rating_less =
                    ratings_.at(r, i) < ratings_.at(r, j);
                EXPECT_EQ(raw_less, rating_less)
                    << "row " << r << " cols " << i << "," << j;
            }
        }
    }
}

TEST_P(NormalizerPropertyTest, QueryRoundTripIsExact)
{
    normalizer_->setOracleRowMax(8.0); // only the ideal scheme cares
    Rng rng(9);
    std::vector<double> query(train_.cols(), kUnknown);
    const int ref = normalizer_->referenceColumn();
    if (ref >= 0)
        query[static_cast<std::size_t>(ref)] = rng.uniform(0.5, 4.0);
    query[0] = rng.uniform(0.5, 4.0);
    query[3] = rng.uniform(0.5, 4.0);

    for (const std::size_t c : {std::size_t{0}, std::size_t{3}}) {
        const double g = query[c];
        const double rating = normalizer_->toRating(query, c, g);
        EXPECT_TRUE(std::isfinite(rating));
        EXPECT_NEAR(normalizer_->fromRating(query, c, rating), g,
                    1e-9 * std::abs(g));
    }
}

TEST_P(NormalizerPropertyTest, QueryOrderingPreserved)
{
    if (GetParam() == NormalizerKind::kRcDiff)
        GTEST_SKIP() << "rc-diff is not row-order preserving";
    normalizer_->setOracleRowMax(10.0);
    std::vector<double> query(train_.cols(), kUnknown);
    const int ref = normalizer_->referenceColumn();
    if (ref >= 0)
        query[static_cast<std::size_t>(ref)] = 2.0;
    query[1] = 1.0;
    query[2] = 3.0;

    const double r1 = normalizer_->toRating(query, 1, query[1]);
    const double r2 = normalizer_->toRating(query, 2, query[2]);
    EXPECT_LT(r1, r2);
}

TEST_P(NormalizerPropertyTest, DistillationPreservesRatios)
{
    if (GetParam() != NormalizerKind::kDistillation &&
        GetParam() != NormalizerKind::kIdeal &&
        GetParam() != NormalizerKind::kMaxConstant) {
        GTEST_SKIP() << "ratio preservation only for scaling schemes";
    }
    for (std::size_t r = 0; r < train_.rows(); ++r) {
        for (std::size_t i = 0; i + 1 < train_.cols(); ++i) {
            EXPECT_NEAR(train_.at(r, i) / train_.at(r, i + 1),
                        ratings_.at(r, i) / ratings_.at(r, i + 1),
                        1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, NormalizerPropertyTest,
    ::testing::Values(NormalizerKind::kNone,
                      NormalizerKind::kMaxConstant,
                      NormalizerKind::kIdeal, NormalizerKind::kRcDiff,
                      NormalizerKind::kDistillation),
    [](const ::testing::TestParamInfo<NormalizerKind> &info) {
        std::string name(normalizerName(info.param));
        for (auto &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace proteus::rectm
