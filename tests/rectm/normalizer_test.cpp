#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"
#include "rectm/normalizer.hpp"

namespace proteus::rectm {
namespace {

/** 3 workloads x 3 configs with wildly different KPI scales. */
UtilityMatrix
heterogeneousMatrix()
{
    UtilityMatrix m(3, 3);
    // Scalable app, tiny absolute KPI.
    m.set(0, 0, 1);
    m.set(0, 1, 2);
    m.set(0, 2, 3);
    // Anti-scalable app, mid KPI (the paper's A2).
    m.set(1, 0, 30);
    m.set(1, 1, 20);
    m.set(1, 2, 10);
    // Another scalable app, large KPI.
    m.set(2, 0, 100);
    m.set(2, 1, 200);
    m.set(2, 2, 300);
    return m;
}

TEST(UtilityMatrixTest, BasicsAndDensity)
{
    UtilityMatrix m(2, 3);
    EXPECT_EQ(m.density(), 0.0);
    m.set(0, 1, 5.0);
    EXPECT_TRUE(known(m.at(0, 1)));
    EXPECT_FALSE(known(m.at(0, 0)));
    EXPECT_NEAR(m.density(), 1.0 / 6.0, 1e-12);
    EXPECT_EQ(m.knownInRow(0), std::vector<std::size_t>{1});
    EXPECT_EQ(m.bestInRow(0), 1);
    EXPECT_EQ(m.bestInRow(1), -1);
}

TEST(UtilityMatrixTest, GoodnessOrientation)
{
    using polytm::KpiKind;
    EXPECT_DOUBLE_EQ(toGoodness(4.0, KpiKind::kThroughput), 4.0);
    EXPECT_DOUBLE_EQ(toGoodness(4.0, KpiKind::kExecTime), 0.25);
    EXPECT_DOUBLE_EQ(
        fromGoodness(toGoodness(7.0, KpiKind::kEdp), KpiKind::kEdp), 7.0);
}

TEST(DistillationTest, ReferencePicksDispersionMinimizer)
{
    const auto m = heterogeneousMatrix();
    // Normalizing by C1: maxima = {3, 1, 3} -> dispersion high.
    // Normalizing by C3: maxima = {1, 3, 1} -> dispersion high.
    // No column makes them equal, but the argmin must be consistent
    // with a direct computation.
    const int ref = distillationReference(m);
    ASSERT_GE(ref, 0);

    double best_d = std::numeric_limits<double>::infinity();
    int best_c = -1;
    for (std::size_t c = 0; c < 3; ++c) {
        std::vector<double> maxima;
        for (std::size_t r = 0; r < 3; ++r) {
            double mx = 0;
            for (std::size_t i = 0; i < 3; ++i)
                mx = std::max(mx, m.at(r, i) / m.at(r, c));
            maxima.push_back(mx);
        }
        const double d = indexOfDispersion(maxima);
        if (d < best_d) {
            best_d = d;
            best_c = static_cast<int>(c);
        }
    }
    EXPECT_EQ(ref, best_c);
}

TEST(DistillationTest, RatioPreservationProperty)
{
    // Property (i) of the paper: kpi ratios are preserved in rating
    // space for every row.
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kDistillation);
    const auto ratings = norm->fitTransform(m);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t i = 0; i < m.cols(); ++i) {
            for (std::size_t j = 0; j < m.cols(); ++j) {
                EXPECT_NEAR(m.at(r, i) / m.at(r, j),
                            ratings.at(r, i) / ratings.at(r, j), 1e-9);
            }
        }
    }
}

TEST(DistillationTest, ReferenceColumnBecomesOne)
{
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kDistillation);
    const auto ratings = norm->fitTransform(m);
    const int ref = norm->referenceColumn();
    ASSERT_GE(ref, 0);
    for (std::size_t r = 0; r < m.rows(); ++r)
        EXPECT_DOUBLE_EQ(ratings.at(r, static_cast<std::size_t>(ref)),
                         1.0);
}

TEST(DistillationTest, QueryRoundTrip)
{
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kDistillation);
    norm->fitTransform(m);
    const auto ref = static_cast<std::size_t>(norm->referenceColumn());

    std::vector<double> query(3, kUnknown);
    query[ref] = 50.0; // profiled at the reference
    const double rating = norm->toRating(query, 2, 150.0);
    EXPECT_DOUBLE_EQ(rating, 3.0);
    EXPECT_DOUBLE_EQ(norm->fromRating(query, 2, rating), 150.0);
}

TEST(NormalizerTest, IdealDividesByRowMax)
{
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kIdeal);
    const auto ratings = norm->fitTransform(m);
    for (std::size_t r = 0; r < 3; ++r) {
        double mx = 0;
        for (std::size_t c = 0; c < 3; ++c)
            mx = std::max(mx, ratings.at(r, c));
        EXPECT_DOUBLE_EQ(mx, 1.0);
    }
    norm->setOracleRowMax(200.0);
    std::vector<double> query(3, kUnknown);
    EXPECT_DOUBLE_EQ(norm->toRating(query, 0, 100.0), 0.5);
    EXPECT_DOUBLE_EQ(norm->fromRating(query, 0, 0.5), 100.0);
}

TEST(NormalizerTest, MaxConstantUsesGlobalPeak)
{
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kMaxConstant);
    const auto ratings = norm->fitTransform(m);
    EXPECT_DOUBLE_EQ(ratings.at(2, 2), 1.0); // 300 / 300
    EXPECT_DOUBLE_EQ(ratings.at(0, 0), 1.0 / 300.0);
    std::vector<double> query(3, kUnknown);
    EXPECT_DOUBLE_EQ(norm->toRating(query, 1, 150.0), 0.5);
}

TEST(NormalizerTest, NoneIsIdentity)
{
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kNone);
    const auto ratings = norm->fitTransform(m);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(ratings.at(r, c), m.at(r, c));
    }
}

TEST(NormalizerTest, RcDiffCentersRowsAndColumns)
{
    const auto m = heterogeneousMatrix();
    auto norm = Normalizer::make(NormalizerKind::kRcDiff);
    const auto ratings = norm->fitTransform(m);
    // Column means of the final residuals are ~0.
    for (std::size_t c = 0; c < 3; ++c) {
        double sum = 0;
        for (std::size_t r = 0; r < 3; ++r)
            sum += ratings.at(r, c);
        EXPECT_NEAR(sum / 3.0, 0.0, 1e-9);
    }
    // Round trip for a query value.
    std::vector<double> query = {10.0, kUnknown, kUnknown};
    const double rating = norm->toRating(query, 1, 12.0);
    EXPECT_NEAR(norm->fromRating(query, 1, rating), 12.0, 1e-9);
}

TEST(NormalizerTest, FactoryCoversAllKinds)
{
    for (const auto kind :
         {NormalizerKind::kNone, NormalizerKind::kMaxConstant,
          NormalizerKind::kIdeal, NormalizerKind::kRcDiff,
          NormalizerKind::kDistillation}) {
        auto norm = Normalizer::make(kind);
        ASSERT_NE(norm, nullptr);
        EXPECT_EQ(norm->kind(), kind);
        EXPECT_FALSE(normalizerName(kind).empty());
    }
}

} // namespace
} // namespace proteus::rectm
