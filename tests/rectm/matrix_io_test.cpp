#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rectm/matrix_io.hpp"

namespace proteus::rectm {
namespace {

TEST(MatrixIoTest, RoundTripDense)
{
    UtilityMatrix m(3, 4);
    double v = 0.5;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c)
            m.set(r, c, v *= 1.7);
    }
    std::stringstream ss;
    saveCsv(m, ss);
    const UtilityMatrix back = loadCsv(ss);
    ASSERT_EQ(back.rows(), 3u);
    ASSERT_EQ(back.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_DOUBLE_EQ(back.at(r, c), m.at(r, c));
    }
}

TEST(MatrixIoTest, RoundTripSparseWithUnknowns)
{
    UtilityMatrix m(2, 3);
    m.set(0, 0, 1.25);
    m.set(0, 2, -7.5);
    m.set(1, 1, 3e-4);
    std::stringstream ss;
    saveCsv(m, ss);
    const UtilityMatrix back = loadCsv(ss);
    EXPECT_DOUBLE_EQ(back.at(0, 0), 1.25);
    EXPECT_FALSE(known(back.at(0, 1)));
    EXPECT_DOUBLE_EQ(back.at(0, 2), -7.5);
    EXPECT_FALSE(known(back.at(1, 0)));
    EXPECT_DOUBLE_EQ(back.at(1, 1), 3e-4);
    EXPECT_FALSE(known(back.at(1, 2)));
}

TEST(MatrixIoTest, FullPrecisionPreserved)
{
    UtilityMatrix m(1, 1);
    m.set(0, 0, 0.12345678901234567);
    std::stringstream ss;
    saveCsv(m, ss);
    EXPECT_DOUBLE_EQ(loadCsv(ss).at(0, 0), 0.12345678901234567);
}

TEST(MatrixIoTest, HeaderMismatchThrows)
{
    std::stringstream ss("# cols=3\n1,2\n");
    EXPECT_THROW((void)loadCsv(ss), std::runtime_error);
}

TEST(MatrixIoTest, RaggedRowsThrow)
{
    std::stringstream ss("1,2,3\n4,5\n");
    EXPECT_THROW((void)loadCsv(ss), std::runtime_error);
}

TEST(MatrixIoTest, HeaderlessCsvAccepted)
{
    std::stringstream ss("1,2\n,4\n");
    const UtilityMatrix m = loadCsv(ss);
    ASSERT_EQ(m.rows(), 2u);
    ASSERT_EQ(m.cols(), 2u);
    EXPECT_FALSE(known(m.at(1, 0)));
    EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(MatrixIoTest, FileRoundTrip)
{
    UtilityMatrix m(2, 2);
    m.set(0, 0, 42.0);
    m.set(1, 1, -1.0);
    const std::string path = "/tmp/proteus_matrix_io_test.csv";
    saveCsvFile(m, path);
    const UtilityMatrix back = loadCsvFile(path);
    EXPECT_DOUBLE_EQ(back.at(0, 0), 42.0);
    EXPECT_FALSE(known(back.at(0, 1)));
    EXPECT_DOUBLE_EQ(back.at(1, 1), -1.0);
}

TEST(MatrixIoTest, MissingFileThrows)
{
    EXPECT_THROW((void)loadCsvFile("/nonexistent/nope.csv"),
                 std::runtime_error);
}

} // namespace
} // namespace proteus::rectm
