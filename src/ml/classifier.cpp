#include "ml/classifier.hpp"

#include <cassert>
#include <cmath>

#include "ml/cart.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace proteus::ml {

void
Standardizer::fit(const Dataset &data)
{
    const std::size_t nf = data.numFeatures();
    mean_.assign(nf, 0.0);
    stddev_.assign(nf, 0.0);
    for (const auto &x : data.features) {
        for (std::size_t f = 0; f < nf; ++f)
            mean_[f] += x[f];
    }
    for (auto &m : mean_)
        m /= static_cast<double>(data.size());
    for (const auto &x : data.features) {
        for (std::size_t f = 0; f < nf; ++f)
            stddev_[f] += (x[f] - mean_[f]) * (x[f] - mean_[f]);
    }
    for (auto &s : stddev_) {
        s = std::sqrt(s / static_cast<double>(data.size()));
        if (s < 1e-12)
            s = 1.0;
    }
}

std::vector<double>
Standardizer::apply(const std::vector<double> &x) const
{
    std::vector<double> out(x.size());
    for (std::size_t f = 0; f < x.size(); ++f)
        out[f] = (x[f] - mean_[f]) / stddev_[f];
    return out;
}

Dataset
Standardizer::apply(const Dataset &data) const
{
    Dataset out = data;
    for (auto &x : out.features)
        x = apply(x);
    return out;
}

double
accuracy(const Classifier &model, const Dataset &test)
{
    if (test.size() == 0)
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
        hits += model.predict(test.features[i]) == test.labels[i];
    return static_cast<double>(hits) / test.size();
}

double
cvAccuracy(const Classifier &prototype, const Dataset &data, int folds,
           std::uint64_t seed)
{
    Rng rng(seed);
    const auto perm = rng.permutation(data.size());
    double acc_sum = 0;
    int used_folds = 0;
    for (int fold = 0; fold < folds; ++fold) {
        Dataset train, test;
        train.numClasses = test.numClasses = data.numClasses;
        for (std::size_t i = 0; i < data.size(); ++i) {
            Dataset &dst =
                static_cast<int>(i % static_cast<std::size_t>(folds)) ==
                        fold
                    ? test
                    : train;
            dst.features.push_back(data.features[perm[i]]);
            dst.labels.push_back(data.labels[perm[i]]);
        }
        if (train.size() == 0 || test.size() == 0)
            continue;
        auto model = prototype.clone();
        model->fit(train);
        acc_sum += accuracy(*model, test);
        ++used_folds;
    }
    return used_folds ? acc_sum / used_folds : 0.0;
}

std::string_view
classifierFamilyName(ClassifierFamily family)
{
    switch (family) {
      case ClassifierFamily::kCart: return "cart";
      case ClassifierFamily::kSvm: return "svm";
      case ClassifierFamily::kMlp: return "mlp";
    }
    return "invalid";
}

TunedClassifier
tuneClassifier(ClassifierFamily family, const Dataset &data, int trials,
               std::uint64_t seed)
{
    Rng rng(seed);
    TunedClassifier best;
    best.cvAccuracy = -1.0;

    for (int trial = 0; trial < trials; ++trial) {
        std::unique_ptr<Classifier> candidate;
        switch (family) {
          case ClassifierFamily::kCart: {
            CartClassifier::Hyper hyper;
            hyper.maxDepth = 3 + static_cast<int>(rng.nextBounded(12));
            hyper.minSamplesLeaf =
                1 + static_cast<int>(rng.nextBounded(5));
            candidate = std::make_unique<CartClassifier>(hyper);
            break;
          }
          case ClassifierFamily::kSvm: {
            SvmClassifier::Hyper hyper;
            hyper.c = std::pow(10.0, rng.uniform(-1.5, 2.0));
            hyper.epochs = 30 + static_cast<int>(rng.nextBounded(80));
            hyper.learnRate = rng.uniform(0.01, 0.2);
            hyper.seed = rng.nextU64();
            candidate = std::make_unique<SvmClassifier>(hyper);
            break;
          }
          case ClassifierFamily::kMlp: {
            MlpClassifier::Hyper hyper;
            hyper.hiddenUnits =
                8 + static_cast<int>(rng.nextBounded(56));
            hyper.epochs = 60 + static_cast<int>(rng.nextBounded(150));
            hyper.learnRate = rng.uniform(0.01, 0.15);
            hyper.l2 = std::pow(10.0, rng.uniform(-5.0, -2.0));
            hyper.seed = rng.nextU64();
            candidate = std::make_unique<MlpClassifier>(hyper);
            break;
          }
        }
        const double acc =
            cvAccuracy(*candidate, data, 4, rng.nextU64());
        if (acc > best.cvAccuracy) {
            best.cvAccuracy = acc;
            best.description = candidate->describe();
            best.model = std::move(candidate);
        }
    }
    return best;
}

} // namespace proteus::ml
