/**
 * @file
 * Multi-layer perceptron (one tanh hidden layer, softmax output,
 * cross-entropy SGD) standing in for Weka's MLP in Fig. 7.
 */

#ifndef PROTEUS_ML_MLP_HPP
#define PROTEUS_ML_MLP_HPP

#include "ml/classifier.hpp"

namespace proteus::ml {

struct MlpHyper
{
    int hiddenUnits = 32;
    int epochs = 150;
    double learnRate = 0.05;
    double l2 = 1e-4;
    std::uint64_t seed = 0x31f;
};

class MlpClassifier : public Classifier
{
  public:
    using Hyper = MlpHyper;

    explicit MlpClassifier(Hyper hyper = Hyper{}) : hyper_(hyper) {}

    void fit(const Dataset &train) override;
    int predict(const std::vector<double> &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string describe() const override;

  private:
    std::vector<double> hidden(const std::vector<double> &x) const;
    std::vector<double> logits(const std::vector<double> &h) const;

    Hyper hyper_;
    std::size_t numFeatures_ = 0;
    std::size_t numClasses_ = 0;
    /** w1: hidden x (features+1); w2: classes x (hidden+1). */
    std::vector<std::vector<double>> w1_, w2_;
};

} // namespace proteus::ml

#endif // PROTEUS_ML_MLP_HPP
