#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

namespace proteus::ml {

std::vector<double>
MlpClassifier::hidden(const std::vector<double> &x) const
{
    std::vector<double> h(w1_.size());
    for (std::size_t j = 0; j < w1_.size(); ++j) {
        double acc = w1_[j].back();
        for (std::size_t f = 0; f < numFeatures_; ++f)
            acc += w1_[j][f] * x[f];
        h[j] = std::tanh(acc);
    }
    return h;
}

std::vector<double>
MlpClassifier::logits(const std::vector<double> &h) const
{
    std::vector<double> z(w2_.size());
    for (std::size_t k = 0; k < w2_.size(); ++k) {
        double acc = w2_[k].back();
        for (std::size_t j = 0; j < h.size(); ++j)
            acc += w2_[k][j] * h[j];
        z[k] = acc;
    }
    return z;
}

void
MlpClassifier::fit(const Dataset &train)
{
    numFeatures_ = train.numFeatures();
    numClasses_ = static_cast<std::size_t>(train.numClasses);
    const auto nh = static_cast<std::size_t>(hyper_.hiddenUnits);
    Rng rng(hyper_.seed);

    const double init1 = 1.0 / std::sqrt(numFeatures_ + 1.0);
    const double init2 = 1.0 / std::sqrt(nh + 1.0);
    w1_.assign(nh, std::vector<double>(numFeatures_ + 1));
    w2_.assign(numClasses_, std::vector<double>(nh + 1));
    for (auto &row : w1_) {
        for (auto &v : row)
            v = rng.gaussian(0, init1);
    }
    for (auto &row : w2_) {
        for (auto &v : row)
            v = rng.gaussian(0, init2);
    }

    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    for (int epoch = 0; epoch < hyper_.epochs; ++epoch) {
        const double lr = hyper_.learnRate / (1.0 + 0.02 * epoch);
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.nextBounded(i)]);
        for (const std::size_t i : order) {
            const auto &x = train.features[i];
            const auto y = static_cast<std::size_t>(train.labels[i]);

            const std::vector<double> h = hidden(x);
            std::vector<double> z = logits(h);
            // Softmax (stable).
            const double zmax = *std::max_element(z.begin(), z.end());
            double denom = 0;
            for (auto &v : z) {
                v = std::exp(v - zmax);
                denom += v;
            }
            for (auto &v : z)
                v /= denom;

            // Backprop: dL/dz_k = p_k - [k == y].
            std::vector<double> dh(h.size(), 0.0);
            for (std::size_t k = 0; k < numClasses_; ++k) {
                const double dz = z[k] - (k == y ? 1.0 : 0.0);
                auto &w = w2_[k];
                for (std::size_t j = 0; j < h.size(); ++j) {
                    dh[j] += dz * w[j];
                    w[j] -= lr * (dz * h[j] + hyper_.l2 * w[j]);
                }
                w[h.size()] -= lr * dz;
            }
            for (std::size_t j = 0; j < h.size(); ++j) {
                const double dt = dh[j] * (1.0 - h[j] * h[j]);
                auto &w = w1_[j];
                for (std::size_t f = 0; f < numFeatures_; ++f)
                    w[f] -= lr * (dt * x[f] + hyper_.l2 * w[f]);
                w[numFeatures_] -= lr * dt;
            }
        }
    }
}

int
MlpClassifier::predict(const std::vector<double> &x) const
{
    const std::vector<double> z = logits(hidden(x));
    return static_cast<int>(std::max_element(z.begin(), z.end()) -
                            z.begin());
}

std::unique_ptr<Classifier>
MlpClassifier::clone() const
{
    return std::make_unique<MlpClassifier>(hyper_);
}

std::string
MlpClassifier::describe() const
{
    return "mlp(h=" + std::to_string(hyper_.hiddenUnits) +
           ",epochs=" + std::to_string(hyper_.epochs) + ")";
}

} // namespace proteus::ml
