#include "ml/cart.hpp"

#include <algorithm>
#include <cassert>

namespace proteus::ml {

namespace {

/** Gini impurity of a label multiset. */
double
gini(const std::vector<std::size_t> &counts, std::size_t total)
{
    if (total == 0)
        return 0.0;
    double sum_sq = 0;
    for (const std::size_t c : counts) {
        const double p = static_cast<double>(c) / total;
        sum_sq += p * p;
    }
    return 1.0 - sum_sq;
}

int
majority(const std::vector<std::size_t> &counts)
{
    return static_cast<int>(std::max_element(counts.begin(),
                                             counts.end()) -
                            counts.begin());
}

} // namespace

int
CartClassifier::build(const Dataset &data, std::vector<std::size_t> idx,
                      int depth)
{
    std::vector<std::size_t> counts(
        static_cast<std::size_t>(numClasses_), 0);
    for (const std::size_t i : idx)
        ++counts[static_cast<std::size_t>(data.labels[i])];
    const double node_gini = gini(counts, idx.size());

    Node node;
    node.label = majority(counts);

    const bool leaf = depth >= hyper_.maxDepth || node_gini == 0.0 ||
                      idx.size() <
                          2 * static_cast<std::size_t>(
                                  hyper_.minSamplesLeaf);
    if (!leaf) {
        // Exhaustive best split over all features and boundaries.
        double best_gain = 1e-12;
        int best_feature = -1;
        double best_threshold = 0;
        const std::size_t nf = data.numFeatures();
        for (std::size_t f = 0; f < nf; ++f) {
            std::sort(idx.begin(), idx.end(),
                      [&](std::size_t a, std::size_t b) {
                          return data.features[a][f] <
                                 data.features[b][f];
                      });
            std::vector<std::size_t> left_counts(counts.size(), 0);
            for (std::size_t split = 1; split < idx.size(); ++split) {
                ++left_counts[static_cast<std::size_t>(
                    data.labels[idx[split - 1]])];
                const double lo = data.features[idx[split - 1]][f];
                const double hi = data.features[idx[split]][f];
                if (lo == hi)
                    continue;
                if (split < static_cast<std::size_t>(
                                hyper_.minSamplesLeaf) ||
                    idx.size() - split <
                        static_cast<std::size_t>(hyper_.minSamplesLeaf))
                    continue;
                std::vector<std::size_t> right_counts(counts.size());
                for (std::size_t c = 0; c < counts.size(); ++c)
                    right_counts[c] = counts[c] - left_counts[c];
                const double g =
                    node_gini -
                    (gini(left_counts, split) * split +
                     gini(right_counts, idx.size() - split) *
                         (idx.size() - split)) /
                        idx.size();
                if (g > best_gain) {
                    best_gain = g;
                    best_feature = static_cast<int>(f);
                    best_threshold = 0.5 * (lo + hi);
                }
            }
        }
        if (best_feature >= 0) {
            std::vector<std::size_t> left, right;
            for (const std::size_t i : idx) {
                if (data.features[i][static_cast<std::size_t>(
                        best_feature)] < best_threshold)
                    left.push_back(i);
                else
                    right.push_back(i);
            }
            node.feature = best_feature;
            node.threshold = best_threshold;
            const int me = static_cast<int>(nodes_.size());
            nodes_.push_back(node);
            const int l = build(data, std::move(left), depth + 1);
            const int r = build(data, std::move(right), depth + 1);
            nodes_[static_cast<std::size_t>(me)].left = l;
            nodes_[static_cast<std::size_t>(me)].right = r;
            return me;
        }
    }

    const int me = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    return me;
}

void
CartClassifier::fit(const Dataset &train)
{
    assert(!train.features.empty());
    nodes_.clear();
    numClasses_ = train.numClasses;
    std::vector<std::size_t> idx(train.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    build(train, std::move(idx), 0);
}

int
CartClassifier::predict(const std::vector<double> &x) const
{
    int cur = 0;
    for (;;) {
        const Node &node = nodes_[static_cast<std::size_t>(cur)];
        if (node.feature < 0)
            return node.label;
        cur = x[static_cast<std::size_t>(node.feature)] < node.threshold
            ? node.left
            : node.right;
    }
}

std::unique_ptr<Classifier>
CartClassifier::clone() const
{
    return std::make_unique<CartClassifier>(hyper_);
}

std::string
CartClassifier::describe() const
{
    return "cart(depth=" + std::to_string(hyper_.maxDepth) +
           ",minLeaf=" + std::to_string(hyper_.minSamplesLeaf) + ")";
}

} // namespace proteus::ml
