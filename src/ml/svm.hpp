/**
 * @file
 * Linear multi-class SVM (one-vs-rest, hinge loss, SGD) standing in
 * for Weka's SMO in the Fig. 7 comparison.
 */

#ifndef PROTEUS_ML_SVM_HPP
#define PROTEUS_ML_SVM_HPP

#include "ml/classifier.hpp"

namespace proteus::ml {

struct SvmHyper
{
    double c = 1.0;       //!< inverse regularization
    int epochs = 60;
    double learnRate = 0.05;
    std::uint64_t seed = 0x5f3;
};

class SvmClassifier : public Classifier
{
  public:
    using Hyper = SvmHyper;

    explicit SvmClassifier(Hyper hyper = Hyper{}) : hyper_(hyper) {}

    void fit(const Dataset &train) override;
    int predict(const std::vector<double> &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string describe() const override;

  private:
    double margin(std::size_t cls, const std::vector<double> &x) const;

    Hyper hyper_;
    /** numClasses x (numFeatures + 1) weights, bias last. */
    std::vector<std::vector<double>> weights_;
};

} // namespace proteus::ml

#endif // PROTEUS_ML_SVM_HPP
