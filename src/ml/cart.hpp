/**
 * @file
 * CART-style classification tree: binary axis-aligned splits chosen
 * by Gini impurity, depth/min-samples regularized.
 */

#ifndef PROTEUS_ML_CART_HPP
#define PROTEUS_ML_CART_HPP

#include "ml/classifier.hpp"

namespace proteus::ml {

struct CartHyper
{
    int maxDepth = 10;
    int minSamplesLeaf = 2;
};

class CartClassifier : public Classifier
{
  public:
    using Hyper = CartHyper;

    explicit CartClassifier(Hyper hyper = Hyper{}) : hyper_(hyper) {}

    void fit(const Dataset &train) override;
    int predict(const std::vector<double> &x) const override;
    std::unique_ptr<Classifier> clone() const override;
    std::string describe() const override;

  private:
    struct Node
    {
        int feature = -1; //!< -1 => leaf
        double threshold = 0;
        int left = -1, right = -1;
        int label = 0;
    };

    int build(const Dataset &data, std::vector<std::size_t> idx,
              int depth);

    Hyper hyper_;
    std::vector<Node> nodes_;
    int numClasses_ = 0;
};

} // namespace proteus::ml

#endif // PROTEUS_ML_CART_HPP
