#include "ml/svm.hpp"

#include <algorithm>

namespace proteus::ml {

double
SvmClassifier::margin(std::size_t cls, const std::vector<double> &x) const
{
    const auto &w = weights_[cls];
    double m = w.back(); // bias
    for (std::size_t f = 0; f < x.size(); ++f)
        m += w[f] * x[f];
    return m;
}

void
SvmClassifier::fit(const Dataset &train)
{
    const std::size_t nf = train.numFeatures();
    const auto nc = static_cast<std::size_t>(train.numClasses);
    weights_.assign(nc, std::vector<double>(nf + 1, 0.0));
    Rng rng(hyper_.seed);

    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    const double lambda = 1.0 / (hyper_.c * train.size());
    for (int epoch = 0; epoch < hyper_.epochs; ++epoch) {
        const double lr =
            hyper_.learnRate / (1.0 + 0.1 * epoch); // decay
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.nextBounded(i)]);
        for (const std::size_t i : order) {
            const auto &x = train.features[i];
            const auto y = static_cast<std::size_t>(train.labels[i]);
            for (std::size_t cls = 0; cls < nc; ++cls) {
                const double target = cls == y ? 1.0 : -1.0;
                const double m = margin(cls, x) * target;
                auto &w = weights_[cls];
                // L2 shrinkage.
                for (std::size_t f = 0; f < nf; ++f)
                    w[f] -= lr * lambda * w[f];
                if (m < 1.0) {
                    for (std::size_t f = 0; f < nf; ++f)
                        w[f] += lr * target * x[f];
                    w[nf] += lr * target;
                }
            }
        }
    }
}

int
SvmClassifier::predict(const std::vector<double> &x) const
{
    int best = 0;
    double best_margin = -1e300;
    for (std::size_t cls = 0; cls < weights_.size(); ++cls) {
        const double m = margin(cls, x);
        if (m > best_margin) {
            best_margin = m;
            best = static_cast<int>(cls);
        }
    }
    return best;
}

std::unique_ptr<Classifier>
SvmClassifier::clone() const
{
    return std::make_unique<SvmClassifier>(hyper_);
}

std::string
SvmClassifier::describe() const
{
    return "svm(C=" + std::to_string(hyper_.c) +
           ",epochs=" + std::to_string(hyper_.epochs) + ")";
}

} // namespace proteus::ml
