/**
 * @file
 * Workload-characterization classifiers for the Fig. 7 comparison
 * (Wang et al.-style ML: features -> best-configuration class).
 *
 * Stands in for Weka's CART (decision tree), SMO (linear SVM) and
 * MLP (neural network); hyper-parameters are chosen by random search
 * with cross-validation, as in the paper (§6.3).
 */

#ifndef PROTEUS_ML_CLASSIFIER_HPP
#define PROTEUS_ML_CLASSIFIER_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace proteus::ml {

/** Labeled dataset: rows of features, class per row. */
struct Dataset
{
    std::vector<std::vector<double>> features;
    std::vector<int> labels;
    int numClasses = 0;

    std::size_t size() const { return features.size(); }
    std::size_t
    numFeatures() const
    {
        return features.empty() ? 0 : features.front().size();
    }
};

/** Per-feature z-score standardizer (fit on train, reused on test). */
class Standardizer
{
  public:
    void fit(const Dataset &data);
    std::vector<double> apply(const std::vector<double> &x) const;
    Dataset apply(const Dataset &data) const;

  private:
    std::vector<double> mean_, stddev_;
};

class Classifier
{
  public:
    virtual ~Classifier() = default;
    virtual void fit(const Dataset &train) = 0;
    virtual int predict(const std::vector<double> &x) const = 0;
    virtual std::unique_ptr<Classifier> clone() const = 0;
    virtual std::string describe() const = 0;
};

/** Fraction of correct predictions. */
double accuracy(const Classifier &model, const Dataset &test);

/** k-fold cross-validated accuracy of an untrained prototype. */
double cvAccuracy(const Classifier &prototype, const Dataset &data,
                  int folds, std::uint64_t seed);

/** Model family selector for the tuners. */
enum class ClassifierFamily : int
{
    kCart = 0,
    kSvm,
    kMlp,
};

std::string_view classifierFamilyName(ClassifierFamily family);

struct TunedClassifier
{
    std::unique_ptr<Classifier> model; //!< untrained prototype
    double cvAccuracy = 0;
    std::string description;
};

/** Random-search hyper-tuning within one family (paper: 100 combos). */
TunedClassifier tuneClassifier(ClassifierFamily family,
                               const Dataset &data, int trials,
                               std::uint64_t seed);

} // namespace proteus::ml

#endif // PROTEUS_ML_CLASSIFIER_HPP
