#include "tm/tl2.hpp"

namespace proteus::tm {

Tl2Tm::Tl2Tm(unsigned log2_orecs) : orecs_(log2_orecs)
{
}

void
Tl2Tm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    tx.startTs = clock_.now();
}

std::uint64_t
Tl2Tm::txRead(TxDesc &tx, const std::uint64_t *addr)
{
    // Read-own-writes first.
    if (!tx.writeSet.empty()) {
        if (const WriteEntry *we = tx.writeSet.find(addr))
            return we->value;
    }

    Orec &orec = orecs_.forAddr(addr);
    const OrecWord pre = orec.load();
    const std::uint64_t value =
        reinterpret_cast<const std::atomic<std::uint64_t> *>(addr)->load(
            std::memory_order_acquire);
    const OrecWord post = orec.load();

    if (pre != post || post.locked() || post.version() > tx.startTs)
        abortTx(tx, AbortCause::kConflict);

    ReadEntry re;
    re.addr = addr;
    re.orec = &orec;
    re.word = post;
    tx.readSet.push_back(re);
    return value;
}

void
Tl2Tm::txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    tx.writeSet.put(addr, value);
}

void
Tl2Tm::releaseWriteLocks(TxDesc &tx)
{
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseRestore(we.prevWord);
            we.holdsLock = false;
        }
    }
}

void
Tl2Tm::txCommit(TxDesc &tx)
{
    if (tx.writeSet.empty())
        return; // read-only: rv validation already proved consistency

    // Phase 1: lock the write set (bounded attempts, then abort).
    const auto tid = static_cast<std::uint64_t>(tx.tid);
    for (WriteEntry &we : tx.writeSet.entries()) {
        we.orec = &orecs_.forAddr(we.addr);
        const OrecWord seen = we.orec->load();
        // A duplicate stripe (two addresses hashing together) may
        // already be ours.
        if (seen.locked() && seen.owner() == tid) {
            we.holdsLock = false; // first entry with this stripe owns it
            continue;
        }
        if (seen.locked() || seen.version() > tx.startTs ||
            !we.orec->tryLock(seen, tid)) {
            abortTx(tx, AbortCause::kConflict);
        }
        we.prevWord = seen;
        we.holdsLock = true;
    }

    // Phase 2: tick the clock.
    const std::uint64_t wv = clock_.tick();

    // Phase 3: validate reads unless no one committed since rv.
    if (wv != tx.startTs + 1) {
        for (const ReadEntry &re : tx.readSet) {
            const OrecWord now = re.orec->load();
            const bool mine = now.locked() && now.owner() == tid;
            if (!mine && (now.locked() || now.version() > tx.startTs))
                abortTx(tx, AbortCause::kValidation);
        }
    }

    // Phase 4: write back and release at version wv.
    for (const WriteEntry &we : tx.writeSet.entries()) {
        reinterpret_cast<std::atomic<std::uint64_t> *>(we.addr)->store(
            we.value, std::memory_order_release);
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseToVersion(wv);
            we.holdsLock = false;
        }
    }
}

void
Tl2Tm::rollback(TxDesc &tx)
{
    releaseWriteLocks(tx);
}

void
Tl2Tm::reset()
{
    orecs_.reset();
    clock_.reset();
}

} // namespace proteus::tm
