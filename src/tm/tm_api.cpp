#include "tm/tm_api.hpp"

namespace proteus::tm {

std::string_view
abortCauseName(AbortCause cause)
{
    switch (cause) {
      case AbortCause::kNone: return "none";
      case AbortCause::kConflict: return "conflict";
      case AbortCause::kCapacity: return "capacity";
      case AbortCause::kExplicit: return "explicit";
      case AbortCause::kFallbackLock: return "fallback-lock";
      case AbortCause::kValidation: return "validation";
    }
    return "unknown";
}

std::string_view
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::kGlobalLock: return "gl";
      case BackendKind::kTl2: return "tl2";
      case BackendKind::kTinyStm: return "tiny";
      case BackendKind::kNorec: return "norec";
      case BackendKind::kSwissTm: return "swiss";
      case BackendKind::kSimHtm: return "htm";
      case BackendKind::kHybridNorec: return "hybrid";
      case BackendKind::kNumBackends: break;
    }
    return "invalid";
}

BackendKind
backendFromName(std::string_view name)
{
    for (int i = 0; i < static_cast<int>(BackendKind::kNumBackends); ++i) {
        const auto kind = static_cast<BackendKind>(i);
        if (backendName(kind) == name)
            return kind;
    }
    return BackendKind::kNumBackends;
}

std::string_view
capacityPolicyName(CapacityPolicy policy)
{
    switch (policy) {
      case CapacityPolicy::kGiveUp: return "giveup";
      case CapacityPolicy::kDecrease: return "decr";
      case CapacityPolicy::kHalve: return "halve";
      case CapacityPolicy::kNumPolicies: break;
    }
    return "invalid";
}

} // namespace proteus::tm
