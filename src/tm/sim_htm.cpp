#include "tm/sim_htm.hpp"

#include <cassert>
#include <thread>

namespace proteus::tm {

namespace {

/** Pause, yielding periodically so an oversubscribed lock/ownership
 *  holder can run (this host may have fewer cores than threads). */
struct SpinWaiter
{
    unsigned spins = 0;

    void
    pause()
    {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
        if ((++spins & 0x3f) == 0)
            std::this_thread::yield();
    }
};

void
cpuRelax()
{
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

std::uint64_t
loadWord(const std::uint64_t *addr)
{
    return reinterpret_cast<const std::atomic<std::uint64_t> *>(addr)->load(
        std::memory_order_acquire);
}

void
storeWord(std::uint64_t *addr, std::uint64_t value)
{
    reinterpret_cast<std::atomic<std::uint64_t> *>(addr)->store(
        value, std::memory_order_release);
}

} // namespace

bool
ReadSignature::add(std::size_t stripe)
{
    const std::uint64_t bit = bitOf(stripe);
    const std::uint64_t old =
        words_[wordOf(stripe)].fetch_or(bit, std::memory_order_seq_cst);
    return (old & bit) == 0;
}

bool
ReadSignature::mightContain(std::size_t stripe) const
{
    return (words_[wordOf(stripe)].load(std::memory_order_seq_cst) &
            bitOf(stripe)) != 0;
}

void
ReadSignature::clear()
{
    for (auto &w : words_)
        w.store(0, std::memory_order_seq_cst);
}

std::size_t
ReadSignature::wordOf(std::size_t stripe)
{
    return (stripe * 0x9e3779b97f4a7c15ull >> 32) % kWords;
}

std::uint64_t
ReadSignature::bitOf(std::size_t stripe)
{
    return std::uint64_t{1} << ((stripe * 0x9e3779b97f4a7c15ull >> 26) & 63);
}

SimHtm::SimHtm(SimHtmConfig config, unsigned log2_stripes)
    : config_(config), owners_(log2_stripes)
{
}

void
SimHtm::registerThread(TxDesc &tx)
{
    assert(tx.tid >= 0 && tx.tid < kMaxThreads);
    slots_[tx.tid].desc.store(&tx, std::memory_order_release);
}

void
SimHtm::deregisterThread(TxDesc &tx)
{
    slots_[tx.tid].desc.store(nullptr, std::memory_order_release);
}

void
SimHtm::checkDoomed(TxDesc &tx)
{
    if (tx.doomed->load(std::memory_order_seq_cst))
        abortTx(tx, AbortCause::kConflict);
}

void
SimHtm::doomAllActive(int except_tid)
{
    for (int t = 0; t < kMaxThreads; ++t) {
        if (t == except_tid)
            continue;
        if (TxDesc *d = slots_[t].desc.load(std::memory_order_acquire))
            d->doomed->store(true, std::memory_order_seq_cst);
    }
}

void
SimHtm::hwBegin(TxDesc &tx)
{
    // Lock-elision style begin: do not start speculating while the
    // fallback lock is held.
    while (fallbackLock_.lockedNow())
        cpuRelax();
    tx.seqSnapshot = fallbackGen_->load(std::memory_order_seq_cst);
    tx.inHtm = true;
    ThreadSlot &slot = slots_[tx.tid];
    slot.readLines = 0;
    slot.signature.clear();
}

void
SimHtm::beginFallback(TxDesc &tx)
{
    fallbackLock_.lock();
    fallbackGen_->fetch_add(1, std::memory_order_seq_cst);
    // Irrevocable writer with no ownership claims: every speculating
    // hardware tx must die (coherence would have killed them).
    doomAllActive(tx.tid);
    tx.inFallback = true;
}

void
SimHtm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    if (tx.htmBudgetLeft <= 0) {
        beginFallback(tx);
    } else {
        hwBegin(tx);
    }
}

std::uint64_t
SimHtm::hwRead(TxDesc &tx, const std::uint64_t *addr)
{
    if (!tx.writeSet.empty()) {
        if (const WriteEntry *we = tx.writeSet.find(addr))
            return we->value;
    }

    ThreadSlot &slot = slots_[tx.tid];
    const std::size_t stripe = stripeOf(addr);

    // Publish the read *before* checking ownership so a racing writer
    // either sees our signature bit (and dooms us) or is seen by us.
    if (slot.signature.add(stripe)) {
        if (++slot.readLines > config_.readCapacityLines)
            abortTx(tx, AbortCause::kCapacity);
    }

    Orec &owner = owners_.forAddr(addr);
    SpinWaiter waiter;
    for (;;) {
        const OrecWord w = owner.load(std::memory_order_seq_cst);
        if (!w.locked() || w.owner() == static_cast<std::uint64_t>(tx.tid))
            break;
        // Requester-wins: abort the owning writer, then wait for it to
        // notice and release (it may also be mid-commit, in which case
        // we will read its committed value: it serializes before us).
        if (TxDesc *victim =
                slots_[w.owner()].desc.load(std::memory_order_acquire)) {
            victim->doomed->store(true, std::memory_order_seq_cst);
        }
        checkDoomed(tx); // a deadlocked pair resolves by both dying
        waiter.pause();
    }

    const std::uint64_t value = loadWord(addr);
    // Post-read doom check closes the torn-snapshot window: any writer
    // whose write-back we can observe doomed us before writing.
    checkDoomed(tx);
    return value;
}

void
SimHtm::hwWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    Orec &owner = owners_.forAddr(addr);
    const auto tid = static_cast<std::uint64_t>(tx.tid);

    SpinWaiter waiter;
    for (;;) {
        const OrecWord w = owner.load(std::memory_order_seq_cst);
        if (w.locked()) {
            if (w.owner() == tid) {
                WriteEntry &we = tx.writeSet.put(addr, value);
                we.orec = &owner;
                checkDoomed(tx);
                return;
            }
            if (TxDesc *victim =
                    slots_[w.owner()].desc.load(std::memory_order_acquire)) {
                victim->doomed->store(true, std::memory_order_seq_cst);
            }
            checkDoomed(tx);
            waiter.pause();
            continue;
        }
        if (!owner.tryLock(w, tid))
            continue;

        WriteEntry &we = tx.writeSet.put(addr, value);
        we.orec = &owner;
        we.prevWord = w;
        we.holdsLock = true; // first claim of this stripe

        std::size_t claimed = 0;
        for (const WriteEntry &e : tx.writeSet.entries())
            claimed += e.holdsLock ? 1 : 0;
        if (claimed > config_.writeCapacityLines)
            abortTx(tx, AbortCause::kCapacity);

        // Doom every reader of this stripe (coherence invalidation).
        for (int t = 0; t < kMaxThreads; ++t) {
            if (t == tx.tid)
                continue;
            if (TxDesc *d = slots_[t].desc.load(std::memory_order_acquire)) {
                if (slots_[t].signature.mightContain(stripeOf(addr)))
                    d->doomed->store(true, std::memory_order_seq_cst);
            }
        }
        checkDoomed(tx);
        return;
    }
}

std::uint64_t
SimHtm::txRead(TxDesc &tx, const std::uint64_t *addr)
{
    // Atomic even in the irrevocable fallback: speculative readers
    // access the same words through loadWord, and mixing plain and
    // atomic accesses on one location is a (TSan-visible) data race.
    if (tx.inFallback)
        return loadWord(addr);
    return hwRead(tx, addr);
}

void
SimHtm::txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    if (tx.inFallback) {
        storeWord(addr, value);
        return;
    }
    hwWrite(tx, addr, value);
}

void
SimHtm::hwPreCommitChecks(TxDesc &tx)
{
    checkDoomed(tx);
    // Fallback-lock subscription: abort if it was (or is being) taken.
    if (fallbackLock_.lockedNow() ||
        fallbackGen_->load(std::memory_order_seq_cst) != tx.seqSnapshot) {
        abortTx(tx, AbortCause::kFallbackLock);
    }
}

void
SimHtm::hwWriteBackAndRelease(TxDesc &tx)
{
    for (const WriteEntry &we : tx.writeSet.entries()) {
        reinterpret_cast<std::atomic<std::uint64_t> *>(we.addr)->store(
            we.value, std::memory_order_release);
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseRestore(we.prevWord);
            we.holdsLock = false;
        }
    }
    slots_[tx.tid].signature.clear();
    tx.inHtm = false;
}

void
SimHtm::txCommit(TxDesc &tx)
{
    if (tx.inFallback) {
        tx.inFallback = false;
        fallbackLock_.unlock();
        return;
    }
    hwPreCommitChecks(tx);
    hwWriteBackAndRelease(tx);
}

void
SimHtm::rollback(TxDesc &tx)
{
    if (tx.inFallback) {
        tx.inFallback = false;
        fallbackLock_.unlock();
        return;
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseRestore(we.prevWord);
            we.holdsLock = false;
        }
    }
    slots_[tx.tid].signature.clear();
    tx.inHtm = false;
}

void
SimHtm::reset()
{
    owners_.reset();
    fallbackGen_->store(0, std::memory_order_relaxed);
    for (auto &slot : slots_) {
        slot.signature.clear();
        slot.readLines = 0;
    }
}

} // namespace proteus::tm
