/**
 * @file
 * SwissTM (Dragojevic/Guerraoui/Kapalka, PLDI'09) — simplified but
 * structurally faithful.
 *
 * Two lock words per stripe:
 *  - the *write lock* is acquired at encounter time, so write/write
 *    conflicts are detected eagerly (like TinySTM);
 *  - the *read lock* carries the committed version and is only taken
 *    during commit write-back, so read/write conflicts are detected
 *    lazily (like TL2) and readers stay invisible.
 *
 * The original's two-phase contention manager is approximated with
 * bounded spinning on write-lock conflicts before self-aborting;
 * timestamp extension is kept.
 */

#ifndef PROTEUS_TM_SWISSTM_HPP
#define PROTEUS_TM_SWISSTM_HPP

#include "tm/backend.hpp"
#include "tm/orec.hpp"

namespace proteus::tm {

class SwissTm : public TmBackend
{
  public:
    explicit SwissTm(unsigned log2_orecs = 20);

    BackendKind kind() const override { return BackendKind::kSwissTm; }

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;

  private:
    bool readSetIntact(TxDesc &tx) const;
    void extendOrAbort(TxDesc &tx);

    /** Spins a writer is allowed before self-aborting on a w-lock. */
    static constexpr unsigned kWriteLockSpins = 128;

    OrecTable rlocks_; //!< versions; locked only during write-back
    OrecTable wlocks_; //!< encounter-time write ownership
    GlobalClock clock_;
};

} // namespace proteus::tm

#endif // PROTEUS_TM_SWISSTM_HPP
