/**
 * @file
 * Ownership records (orecs), the global version clock, and the shared
 * lock-table used by the word-based STMs.
 *
 * An orec is a 64-bit versioned lock:
 *   - unlocked: (version << 1) | 0
 *   - locked:   (owner-thread-id << 1) | 1
 *
 * Versions are drawn from a global clock (TL2/TinySTM-style). All orec
 * state lives in backend-owned tables, never inside application memory,
 * which is the integration requirement PolyTM imposes on backends
 * (paper §4: metadata "in separate memory regions").
 */

#ifndef PROTEUS_TM_OREC_HPP
#define PROTEUS_TM_OREC_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"

namespace proteus::tm {

/** Word describing an orec state. */
struct OrecWord
{
    std::uint64_t raw = 0;

    static constexpr std::uint64_t kLockBit = 1;

    bool locked() const { return (raw & kLockBit) != 0; }
    std::uint64_t version() const { return raw >> 1; }
    std::uint64_t owner() const { return raw >> 1; }

    static OrecWord makeVersion(std::uint64_t version)
    {
        return OrecWord{version << 1};
    }

    static OrecWord makeLocked(std::uint64_t owner_tid)
    {
        return OrecWord{(owner_tid << 1) | kLockBit};
    }

    bool operator==(const OrecWord &other) const = default;
};

/** One versioned lock, alone on a cache line. */
struct alignas(kCacheLineSize) Orec
{
    std::atomic<std::uint64_t> word{0};

    OrecWord load(std::memory_order mo = std::memory_order_acquire) const
    {
        return OrecWord{word.load(mo)};
    }

    /** Try to move unlocked `expected` -> locked by `tid`. */
    bool
    tryLock(OrecWord expected, std::uint64_t tid)
    {
        std::uint64_t raw = expected.raw;
        return word.compare_exchange_strong(
            raw, OrecWord::makeLocked(tid).raw, std::memory_order_acq_rel);
    }

    /** Release a lock we own, installing a new version. */
    void
    releaseToVersion(std::uint64_t version)
    {
        word.store(OrecWord::makeVersion(version).raw,
                   std::memory_order_release);
    }

    /** Release a lock we own, restoring the pre-lock word. */
    void
    releaseRestore(OrecWord prev)
    {
        word.store(prev.raw, std::memory_order_release);
    }
};

/**
 * Fixed-size hash table of orecs indexed by address.
 *
 * The stripe count is a power of two; addresses map to stripes at
 * word granularity with a multiplicative hash, like TinySTM's
 * lock array.
 */
class OrecTable
{
  public:
    /** @param log2_size log2 of the number of stripes. */
    explicit OrecTable(unsigned log2_size = 20)
        : mask_((std::size_t{1} << log2_size) - 1),
          orecs_(std::size_t{1} << log2_size)
    {}

    Orec &forAddr(const void *addr)
    {
        return orecs_[indexOf(addr)];
    }

    std::size_t indexOf(const void *addr) const
    {
        auto bits = reinterpret_cast<std::uintptr_t>(addr) >> 3;
        bits *= 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>(bits >> 24) & mask_;
    }

    std::size_t size() const { return orecs_.size(); }

    /** Reset all stripes to version 0 (only while quiesced). */
    void
    reset()
    {
        for (auto &o : orecs_)
            o.word.store(0, std::memory_order_relaxed);
    }

  private:
    std::size_t mask_;
    std::vector<Orec> orecs_;
};

/** Global version clock shared by the timestamp-based STMs. */
class GlobalClock
{
  public:
    std::uint64_t now() const
    {
        return clock_->load(std::memory_order_acquire);
    }

    /** Atomically advance and return the new timestamp. */
    std::uint64_t tick()
    {
        return clock_->fetch_add(1, std::memory_order_acq_rel) + 1;
    }

    /** Reset to zero (only while quiesced). */
    void reset() { clock_->store(0, std::memory_order_relaxed); }

  private:
    PaddedAtomicU64 clock_{};
};

} // namespace proteus::tm

#endif // PROTEUS_TM_OREC_HPP
