/**
 * @file
 * Hybrid NOrec (Dalessandro et al., ASPLOS'11): best-effort hardware
 * transactions with a NOrec STM fallback, coordinated through NOrec's
 * global sequence lock.
 *
 * Mapping of the original's coordination onto the emulation:
 *  - hardware txs "subscribe" to the seqlock: they begin only when it
 *    is even, snapshot it, and abort if it moved by commit time;
 *  - a software (NOrec) commit dooms all in-flight hardware txs —
 *    the emulated analogue of the seqlock write invalidating their
 *    read sets via cache coherence;
 *  - a hardware commit acquires the seqlock (CAS even -> odd), writes
 *    back, and releases at +2, so software readers revalidate.
 *
 * Budget exhaustion falls back to the *software path*, not a global
 * lock, which is the defining feature of Hybrid TM.
 */

#ifndef PROTEUS_TM_HYBRID_NOREC_HPP
#define PROTEUS_TM_HYBRID_NOREC_HPP

#include "tm/norec.hpp"
#include "tm/sim_htm.hpp"

namespace proteus::tm {

class HybridNorecTm : public SimHtm
{
  public:
    explicit HybridNorecTm(SimHtmConfig config = {},
                           unsigned log2_stripes = 18);

    BackendKind kind() const override { return BackendKind::kHybridNorec; }

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;
    bool revocable(const TxDesc &) const override { return true; }

  private:
    NorecTm norec_;
};

} // namespace proteus::tm

#endif // PROTEUS_TM_HYBRID_NOREC_HPP
