#include "tm/tinystm.hpp"

namespace proteus::tm {

namespace {

std::uint64_t
loadWord(const std::uint64_t *addr)
{
    return reinterpret_cast<const std::atomic<std::uint64_t> *>(addr)->load(
        std::memory_order_acquire);
}

} // namespace

TinyStmTm::TinyStmTm(unsigned log2_orecs) : orecs_(log2_orecs)
{
}

void
TinyStmTm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    tx.startTs = clock_.now();
}

bool
TinyStmTm::readSetIntact(TxDesc &tx) const
{
    const auto tid = static_cast<std::uint64_t>(tx.tid);
    for (const ReadEntry &re : tx.readSet) {
        const OrecWord now = re.orec->load();
        if (now == re.word)
            continue;
        // Acceptable change: we locked the stripe after reading it,
        // and the pre-lock word matches what the read observed.
        if (now.locked() && now.owner() == tid) {
            bool matches_our_lock = false;
            for (const WriteEntry &we : tx.writeSet.entries()) {
                if (we.orec == re.orec && we.holdsLock &&
                    we.prevWord == re.word) {
                    matches_our_lock = true;
                    break;
                }
            }
            if (matches_our_lock)
                continue;
        }
        return false;
    }
    return true;
}

void
TinyStmTm::extendOrAbort(TxDesc &tx)
{
    const std::uint64_t new_ts = clock_.now();
    if (!readSetIntact(tx))
        abortTx(tx, AbortCause::kValidation);
    tx.startTs = new_ts;
}

std::uint64_t
TinyStmTm::txRead(TxDesc &tx, const std::uint64_t *addr)
{
    if (!tx.writeSet.empty()) {
        if (const WriteEntry *we = tx.writeSet.find(addr))
            return we->value;
    }

    Orec &orec = orecs_.forAddr(addr);
    const auto tid = static_cast<std::uint64_t>(tx.tid);

    for (;;) {
        const OrecWord pre = orec.load();
        if (pre.locked()) {
            if (pre.owner() == tid) {
                // Stripe locked by us for a *different* address:
                // memory is unmodified (redo log), safe to read.
                return loadWord(addr);
            }
            abortTx(tx, AbortCause::kConflict); // encounter-time conflict
        }
        const std::uint64_t value = loadWord(addr);
        const OrecWord post = orec.load();
        if (pre != post)
            continue; // raced with a committer; retry the read
        if (post.version() > tx.startTs) {
            extendOrAbort(tx);
            continue; // re-read under the extended snapshot
        }
        ReadEntry re;
        re.addr = addr;
        re.orec = &orec;
        re.word = post;
        tx.readSet.push_back(re);
        return value;
    }
}

void
TinyStmTm::txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    Orec &orec = orecs_.forAddr(addr);
    const auto tid = static_cast<std::uint64_t>(tx.tid);

    for (;;) {
        const OrecWord seen = orec.load();
        if (seen.locked()) {
            if (seen.owner() == tid) {
                tx.writeSet.put(addr, value).orec = &orec;
                return;
            }
            // Encounter-time conflict; suicide contention management.
            abortTx(tx, AbortCause::kConflict);
        }
        if (seen.version() > tx.startTs) {
            // Keep the own-lock invariant (pre-lock version <= rv) so
            // reads under our locks are snapshot-consistent.
            extendOrAbort(tx);
            continue;
        }
        if (!orec.tryLock(seen, tid))
            continue; // lost the race; re-examine
        WriteEntry &we = tx.writeSet.put(addr, value);
        we.orec = &orec;
        we.prevWord = seen;
        we.holdsLock = true;
        return;
    }
}

void
TinyStmTm::txCommit(TxDesc &tx)
{
    if (tx.writeSet.empty())
        return;

    const std::uint64_t wv = clock_.tick();
    if (wv != tx.startTs + 1 && !readSetIntact(tx))
        abortTx(tx, AbortCause::kValidation);

    for (const WriteEntry &we : tx.writeSet.entries()) {
        reinterpret_cast<std::atomic<std::uint64_t> *>(we.addr)->store(
            we.value, std::memory_order_release);
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseToVersion(wv);
            we.holdsLock = false;
        }
    }
}

void
TinyStmTm::rollback(TxDesc &tx)
{
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseRestore(we.prevWord);
            we.holdsLock = false;
        }
    }
}

void
TinyStmTm::reset()
{
    orecs_.reset();
    clock_.reset();
}

} // namespace proteus::tm
