/**
 * @file
 * TL2 (Transactional Locking II, Dice/Shalev/Shavit, DISC'06).
 *
 * Lazy (commit-time) locking, redo-log writes, global-version-clock
 * read validation:
 *  - begin: sample rv from the global clock;
 *  - read: post-validated against the covering orec (unlocked and
 *    version <= rv), logged for commit-time revalidation;
 *  - write: buffered in the redo log;
 *  - commit: lock the write set, tick the clock to get wv, validate
 *    the read set, write back, release orecs at version wv.
 */

#ifndef PROTEUS_TM_TL2_HPP
#define PROTEUS_TM_TL2_HPP

#include <memory>

#include "tm/backend.hpp"
#include "tm/orec.hpp"

namespace proteus::tm {

class Tl2Tm : public TmBackend
{
  public:
    /** @param log2_orecs log2 of the orec-table stripe count. */
    explicit Tl2Tm(unsigned log2_orecs = 20);

    BackendKind kind() const override { return BackendKind::kTl2; }

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;

  private:
    /** Release every write-set lock this attempt acquired. */
    void releaseWriteLocks(TxDesc &tx);

    OrecTable orecs_;
    GlobalClock clock_;
};

} // namespace proteus::tm

#endif // PROTEUS_TM_TL2_HPP
