#include "tm/swisstm.hpp"

#include <thread>

namespace proteus::tm {

namespace {

std::uint64_t
loadWord(const std::uint64_t *addr)
{
    return reinterpret_cast<const std::atomic<std::uint64_t> *>(addr)->load(
        std::memory_order_acquire);
}

void
cpuRelax()
{
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

SwissTm::SwissTm(unsigned log2_orecs)
    : rlocks_(log2_orecs), wlocks_(log2_orecs)
{
}

void
SwissTm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    tx.startTs = clock_.now();
}

bool
SwissTm::readSetIntact(TxDesc &tx) const
{
    for (const ReadEntry &re : tx.readSet) {
        const OrecWord now = re.orec->load();
        if (now != re.word)
            return false; // changed version, or mid-write-back
    }
    return true;
}

void
SwissTm::extendOrAbort(TxDesc &tx)
{
    const std::uint64_t new_ts = clock_.now();
    if (!readSetIntact(tx))
        abortTx(tx, AbortCause::kValidation);
    tx.startTs = new_ts;
}

std::uint64_t
SwissTm::txRead(TxDesc &tx, const std::uint64_t *addr)
{
    if (!tx.writeSet.empty()) {
        if (const WriteEntry *we = tx.writeSet.find(addr))
            return we->value;
    }

    Orec &rlock = rlocks_.forAddr(addr);
    unsigned spins = 0;
    for (;;) {
        const OrecWord pre = rlock.load();
        if (pre.locked()) {
            // A committer is writing this stripe back; wait it out
            // (write-back is short, but the committer may need the
            // CPU on an oversubscribed host).
            cpuRelax();
            if ((++spins & 0x3f) == 0)
                std::this_thread::yield();
            continue;
        }
        const std::uint64_t value = loadWord(addr);
        const OrecWord post = rlock.load();
        if (pre != post)
            continue;
        if (post.version() > tx.startTs) {
            extendOrAbort(tx);
            continue;
        }
        ReadEntry re;
        re.addr = addr;
        re.orec = &rlock;
        re.word = post;
        tx.readSet.push_back(re);
        return value;
    }
}

void
SwissTm::txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    Orec &wlock = wlocks_.forAddr(addr);
    const auto tid = static_cast<std::uint64_t>(tx.tid);

    unsigned spins = 0;
    for (;;) {
        const OrecWord seen = wlock.load();
        if (seen.locked()) {
            if (seen.owner() == tid) {
                WriteEntry &we = tx.writeSet.put(addr, value);
                we.orec = &rlocks_.forAddr(addr);
                we.wlockOrec = &wlock;
                return;
            }
            // Write/write conflict: bounded politeness, then suicide
            // (stands in for SwissTM's two-phase contention manager).
            if (++spins > kWriteLockSpins)
                abortTx(tx, AbortCause::kConflict);
            cpuRelax();
            continue;
        }
        if (!wlock.tryLock(seen, tid))
            continue;
        WriteEntry &we = tx.writeSet.put(addr, value);
        we.orec = &rlocks_.forAddr(addr);
        we.wlockOrec = &wlock;
        we.prevWord = seen; // pre-lock w-lock word (a version, unused)
        we.holdsWlock = true;
        return;
    }
}

void
SwissTm::txCommit(TxDesc &tx)
{
    if (tx.writeSet.empty())
        return;

    const auto tid = static_cast<std::uint64_t>(tx.tid);

    // Phase 1: lock the r-locks of the write set (blocks new readers
    // of those stripes for the duration of write-back).
    for (WriteEntry &we : tx.writeSet.entries()) {
        const OrecWord seen = we.orec->load();
        if (seen.locked() && seen.owner() == tid)
            continue; // stripe shared with an earlier entry
        // We hold the w-lock, so no *other* committer can be mid
        // write-back on this stripe; the r-lock must be unlocked.
        if (!we.orec->tryLock(seen, tid))
            abortTx(tx, AbortCause::kConflict);
        we.prevWord = seen; // now: pre-lock *r-lock* word for rollback
        we.holdsLock = true;
    }

    const std::uint64_t wv = clock_.tick();

    // Phase 2: validate invisible reads (lazy read/write detection).
    if (wv != tx.startTs + 1) {
        for (const ReadEntry &re : tx.readSet) {
            const OrecWord now = re.orec->load();
            if (now == re.word)
                continue;
            if (now.locked() && now.owner() == tid) {
                // We locked this stripe in phase 1; compare against
                // its pre-lock word.
                bool matches = false;
                for (const WriteEntry &we : tx.writeSet.entries()) {
                    if (we.orec == re.orec && we.holdsLock &&
                        we.prevWord == re.word) {
                        matches = true;
                        break;
                    }
                }
                if (matches)
                    continue;
            }
            abortTx(tx, AbortCause::kValidation);
        }
    }

    // Phase 3: write back, then publish version wv and drop both locks.
    for (const WriteEntry &we : tx.writeSet.entries()) {
        reinterpret_cast<std::atomic<std::uint64_t> *>(we.addr)->store(
            we.value, std::memory_order_release);
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseToVersion(wv);
            we.holdsLock = false;
        }
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsWlock) {
            we.wlockOrec->releaseRestore(OrecWord{0});
            we.holdsWlock = false;
        }
    }
}

void
SwissTm::rollback(TxDesc &tx)
{
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsLock) {
            we.orec->releaseRestore(we.prevWord);
            we.holdsLock = false;
        }
    }
    for (WriteEntry &we : tx.writeSet.entries()) {
        if (we.holdsWlock) {
            we.wlockOrec->releaseRestore(OrecWord{0});
            we.holdsWlock = false;
        }
    }
}

void
SwissTm::reset()
{
    rlocks_.reset();
    wlocks_.reset();
    clock_.reset();
}

} // namespace proteus::tm
