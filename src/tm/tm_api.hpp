/**
 * @file
 * Core types shared by every TM backend.
 *
 * All backends implement a word-based (64-bit) transactional interface.
 * Aborts are signalled by throwing TxAbort, which the PolyTM retry loop
 * catches; this is the C++-safe analogue of the setjmp/longjmp scheme
 * used by the C runtimes the paper wraps.
 */

#ifndef PROTEUS_TM_TM_API_HPP
#define PROTEUS_TM_TM_API_HPP

#include <cstdint>
#include <string_view>

namespace proteus::tm {

/** Upper bound on concurrently registered threads (paper's machines
 *  top out at 48; 64 keeps signature scans word-aligned). */
constexpr int kMaxThreads = 64;

/** Why a transaction aborted. Drives contention management. */
enum class AbortCause : std::uint8_t
{
    kNone = 0,
    /** Read-write or write-write conflict with a concurrent tx. */
    kConflict,
    /** Emulated-HTM read/write footprint exceeded hardware capacity. */
    kCapacity,
    /** Explicit user abort (tx.retry()). */
    kExplicit,
    /** HTM begin failed because the fallback lock was held. */
    kFallbackLock,
    /** Validation failed at commit time. */
    kValidation,
};

/** Human-readable abort-cause label (for stats dumps). */
std::string_view abortCauseName(AbortCause cause);

/**
 * Control-flow exception ending the current transaction attempt.
 *
 * Thrown only by backend code after the descriptor has been rolled
 * back to a state from which txBegin can be called again.
 */
struct TxAbort
{
    AbortCause cause = AbortCause::kConflict;
};

/** The TM algorithms PolyTM can switch between (paper §4). */
enum class BackendKind : std::uint8_t
{
    kGlobalLock = 0,
    kTl2,
    kTinyStm,
    kNorec,
    kSwissTm,
    kSimHtm,
    kHybridNorec,
    kNumBackends,
};

/** Stable lowercase name, e.g. "tl2"; used in configs and reports. */
std::string_view backendName(BackendKind kind);

/** Parse a backend name; returns kNumBackends on failure. */
BackendKind backendFromName(std::string_view name);

/**
 * How the emulated HTM shrinks its retry budget after a *capacity*
 * abort (paper §4.3 / Table 3: set to 0, decrease by 1, halve).
 */
enum class CapacityPolicy : std::uint8_t
{
    kGiveUp = 0,   //!< spend the whole budget: go to fallback now
    kDecrease,     //!< treat it like any abort: budget - 1
    kHalve,        //!< halve the remaining budget
    kNumPolicies,
};

/** Stable name for a capacity policy ("giveup", "decr", "halve"). */
std::string_view capacityPolicyName(CapacityPolicy policy);

/**
 * Contention-management knobs tunable without quiescence (paper §4.3).
 * Read with relaxed atomics at tx begin; any mix of values across
 * concurrent transactions is safe.
 */
struct ContentionConfig
{
    /** Initial HTM retry budget before falling back to the lock. */
    int htmBudget = 5;
    /** Budget policy on capacity aborts. */
    CapacityPolicy capacityPolicy = CapacityPolicy::kDecrease;
};

} // namespace proteus::tm

#endif // PROTEUS_TM_TM_API_HPP
