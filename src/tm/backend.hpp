/**
 * @file
 * Abstract TM backend interface.
 *
 * PolyTM dispatches every transactional operation through a per-thread
 * backend pointer (the moral equivalent of the function-pointer table
 * in the paper's §4.1). Backends own all their metadata; switching is
 * only legal while every thread is quiesced, after which reset() puts
 * the incoming backend into a pristine state.
 */

#ifndef PROTEUS_TM_BACKEND_HPP
#define PROTEUS_TM_BACKEND_HPP

#include <cstdint>

#include "tm/tm_api.hpp"
#include "tm/txdesc.hpp"

namespace proteus::tm {

/**
 * Interface implemented by every TM algorithm in PolyTM.
 *
 * Contract:
 *  - txBegin/txRead/txWrite/txCommit may throw TxAbort; when they do,
 *    the descriptor has already been rolled back (all locks released)
 *    and txBegin may be called again immediately.
 *  - userAbort() rolls back and throws (tx.retry() in the public API).
 *  - reset() is called only while the system is quiesced.
 */
class TmBackend
{
  public:
    virtual ~TmBackend() = default;

    /** Which algorithm this is. */
    virtual BackendKind kind() const = 0;

    /**
     * Called once when a thread (descriptor) joins / leaves the
     * system. Backends with per-thread visibility structures (the
     * emulated HTM's read signatures) hook these.
     */
    virtual void registerThread(TxDesc &) {}
    virtual void deregisterThread(TxDesc &) {}

    /** Begin a new transaction attempt for this thread. */
    virtual void txBegin(TxDesc &tx) = 0;

    /** Transactional 64-bit load. */
    virtual std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) = 0;

    /** Transactional 64-bit store. */
    virtual void
    txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value) = 0;

    /** Attempt to commit; throws TxAbort on validation failure. */
    virtual void txCommit(TxDesc &tx) = 0;

    /**
     * Release every resource the in-flight attempt of `tx` holds
     * (stripe locks, fallback lock, visibility entries). Must be
     * idempotent. Called on every abort path.
     */
    virtual void rollback(TxDesc &tx) = 0;

    /** Reset all global metadata; only called while quiesced. */
    virtual void reset() = 0;

    /**
     * Whether the current attempt can still abort. Irrevocable modes
     * (the HTM fallback holder) return false and the public API
     * rejects tx.retry() there.
     */
    virtual bool revocable(const TxDesc & /*tx*/) const { return true; }

    /** Roll back and raise TxAbort with the given cause. */
    [[noreturn]] void
    abortTx(TxDesc &tx, AbortCause cause)
    {
        rollback(tx);
        throw TxAbort{cause};
    }
};

/**
 * Bounded exponential backoff between attempts; jitter from the
 * descriptor's RNG. Used by the PolyTM retry loop, shared by tests.
 */
void backoffOnAbort(TxDesc &tx);

} // namespace proteus::tm

#endif // PROTEUS_TM_BACKEND_HPP
