#include "tm/global_lock.hpp"

#include <thread>

namespace proteus::tm {

void
SpinLock::lock()
{
    for (unsigned spins = 0; ; ++spins) {
        if (!flag_.load(std::memory_order_relaxed) &&
            !flag_.exchange(true, std::memory_order_acquire)) {
            return;
        }
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
        if ((spins & 0x3f) == 0x3f)
            std::this_thread::yield();
    }
}

bool
SpinLock::tryLock()
{
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
}

void
SpinLock::unlock()
{
    flag_.store(false, std::memory_order_release);
}

void
GlobalLockTm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    lock_.lock();
    tx.inFallback = true; // marks "holding the global lock"
}

std::uint64_t
GlobalLockTm::txRead(TxDesc &, const std::uint64_t *addr)
{
    return *addr;
}

void
GlobalLockTm::txWrite(TxDesc &, std::uint64_t *addr, std::uint64_t value)
{
    *addr = value;
}

void
GlobalLockTm::txCommit(TxDesc &tx)
{
    tx.inFallback = false;
    lock_.unlock();
}

void
GlobalLockTm::rollback(TxDesc &tx)
{
    // Only reachable via an (illegal) explicit abort; writes were in
    // place, so all we can do is release. The public API forbids
    // tx.retry() in irrevocable mode before getting here.
    if (tx.inFallback) {
        tx.inFallback = false;
        lock_.unlock();
    }
}

void
GlobalLockTm::reset()
{
}

} // namespace proteus::tm
