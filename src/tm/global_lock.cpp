#include "tm/global_lock.hpp"

#include <thread>

namespace proteus::tm {

void
SpinLock::lock()
{
    for (unsigned spins = 0; ; ++spins) {
        if (!flag_.load(std::memory_order_relaxed) &&
            !flag_.exchange(true, std::memory_order_acquire)) {
            return;
        }
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
        if ((spins & 0x3f) == 0x3f)
            std::this_thread::yield();
    }
}

bool
SpinLock::tryLock()
{
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
}

void
SpinLock::unlock()
{
    flag_.store(false, std::memory_order_release);
}

void
GlobalLockTm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    lock_.lock();
    tx.inFallback = true; // marks "holding the global lock"
}

std::uint64_t
GlobalLockTm::txRead(TxDesc &, const std::uint64_t *addr)
{
    return *addr;
}

void
GlobalLockTm::txWrite(TxDesc &tx, std::uint64_t *addr,
                      std::uint64_t value)
{
    // Undo log, first-write-wins: record the pre-image once per
    // address (the write set doubles as the undo log here — its
    // `value` field holds the OLD word, not the new one).
    if (tx.writeSet.find(addr) == nullptr)
        tx.writeSet.put(addr, *addr);
    *addr = value;
}

void
GlobalLockTm::txCommit(TxDesc &tx)
{
    tx.writeSet.clear();
    tx.inFallback = false;
    lock_.unlock();
}

void
GlobalLockTm::rollback(TxDesc &tx)
{
    // Restore pre-images newest-first (entries are insertion-ordered
    // and hold first-write pre-images, so any order restores the same
    // memory; reverse keeps the mental model simple), then release.
    if (tx.inFallback) {
        auto &entries = tx.writeSet.entries();
        for (std::size_t i = entries.size(); i-- > 0;)
            *entries[i].addr = entries[i].value;
        tx.writeSet.clear();
        tx.inFallback = false;
        lock_.unlock();
    }
}

void
GlobalLockTm::reset()
{
}

} // namespace proteus::tm
