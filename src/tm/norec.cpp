#include "tm/norec.hpp"

#include <thread>

namespace proteus::tm {

namespace {

std::uint64_t
loadWord(const std::uint64_t *addr)
{
    return reinterpret_cast<const std::atomic<std::uint64_t> *>(addr)->load(
        std::memory_order_acquire);
}

} // namespace

void
NorecTm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    // Wait until no writer is mid-commit, then snapshot.
    unsigned spins = 0;
    for (;;) {
        const std::uint64_t s = seq_->load(std::memory_order_acquire);
        if ((s & 1) == 0) {
            tx.seqSnapshot = s;
            return;
        }
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
        if ((++spins & 0x3f) == 0)
            std::this_thread::yield();
    }
}

std::uint64_t
NorecTm::validate(TxDesc &tx)
{
    for (;;) {
        std::uint64_t s = seq_->load(std::memory_order_acquire);
        unsigned spins = 0;
        while (s & 1) {
#if defined(__x86_64__)
            __builtin_ia32_pause();
#endif
            if ((++spins & 0x3f) == 0)
                std::this_thread::yield();
            s = seq_->load(std::memory_order_acquire);
        }
        bool ok = true;
        for (const ReadEntry &re : tx.readSet) {
            if (loadWord(re.addr) != re.value) {
                ok = false;
                break;
            }
        }
        if (!ok)
            abortTx(tx, AbortCause::kValidation);
        // The validation pass is only meaningful if seq did not move
        // while we scanned.
        if (seq_->load(std::memory_order_acquire) == s)
            return s;
    }
}

std::uint64_t
NorecTm::txRead(TxDesc &tx, const std::uint64_t *addr)
{
    if (!tx.writeSet.empty()) {
        if (const WriteEntry *we = tx.writeSet.find(addr))
            return we->value;
    }

    std::uint64_t value = loadWord(addr);
    // If a writer committed since our snapshot, re-validate by value
    // and move the snapshot forward (NOrec's incremental validation).
    while (seq_->load(std::memory_order_acquire) != tx.seqSnapshot) {
        tx.seqSnapshot = validate(tx);
        value = loadWord(addr);
    }

    ReadEntry re;
    re.addr = addr;
    re.value = value;
    tx.readSet.push_back(re);
    return value;
}

void
NorecTm::txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    tx.writeSet.put(addr, value);
}

void
NorecTm::txCommit(TxDesc &tx)
{
    if (tx.writeSet.empty())
        return; // read set is consistent with seqSnapshot

    // Acquire the sequence lock: CAS from our (even) snapshot to odd.
    std::uint64_t expected = tx.seqSnapshot;
    while (!seq_->compare_exchange_strong(expected, expected + 1,
                                          std::memory_order_acq_rel)) {
        // Someone committed since the snapshot: revalidate, which
        // either refreshes the snapshot or aborts.
        tx.seqSnapshot = validate(tx);
        expected = tx.seqSnapshot;
    }

    for (const WriteEntry &we : tx.writeSet.entries()) {
        reinterpret_cast<std::atomic<std::uint64_t> *>(we.addr)->store(
            we.value, std::memory_order_release);
    }
    seq_->store(tx.seqSnapshot + 2, std::memory_order_release);
}

void
NorecTm::rollback(TxDesc &)
{
    // Redo-log design: nothing to undo, no locks can be held here.
}

void
NorecTm::reset()
{
    seq_->store(0, std::memory_order_relaxed);
}

} // namespace proteus::tm
