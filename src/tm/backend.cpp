#include "tm/backend.hpp"

#include <thread>

namespace proteus::tm {

void
backoffOnAbort(TxDesc &tx)
{
    // Cap the exponent so the wait stays bounded (~8k spins max).
    const unsigned exponent = tx.consecutiveAborts < 13
        ? tx.consecutiveAborts : 13u;
    const std::uint64_t max_spins = std::uint64_t{1} << exponent;
    const std::uint64_t spins = tx.rng.nextBounded(max_spins) + 1;
    for (std::uint64_t i = 0; i < spins; ++i) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
    }
    // On a single-core host an oversubscribed conflicting thread only
    // progresses if we actually yield occasionally.
    if (tx.consecutiveAborts > 4)
        std::this_thread::yield();
}

} // namespace proteus::tm
