/**
 * @file
 * TinySTM (Felber/Fetzer/Riegel, PPoPP'08), write-back variant.
 *
 * Encounter-time locking for writes (conflicts surface early), lazy
 * redo-log write-back, and *timestamp extension*: when a read observes
 * a version newer than the transaction's snapshot, the whole read set
 * is revalidated word-by-word against the orec words observed at read
 * time; on success the snapshot slides forward instead of aborting.
 */

#ifndef PROTEUS_TM_TINYSTM_HPP
#define PROTEUS_TM_TINYSTM_HPP

#include "tm/backend.hpp"
#include "tm/orec.hpp"

namespace proteus::tm {

class TinyStmTm : public TmBackend
{
  public:
    explicit TinyStmTm(unsigned log2_orecs = 20);

    BackendKind kind() const override { return BackendKind::kTinyStm; }

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;

  private:
    /**
     * Revalidate the read set exactly (current orec word must equal
     * the word observed at read time, or be locked by us with that
     * word as the pre-lock state). Returns true on success.
     */
    bool readSetIntact(TxDesc &tx) const;

    /** Slide the snapshot forward or abort (timestamp extension). */
    void extendOrAbort(TxDesc &tx);

    OrecTable orecs_;
    GlobalClock clock_;
};

} // namespace proteus::tm

#endif // PROTEUS_TM_TINYSTM_HPP
