/**
 * @file
 * NOrec (Dalessandro/Spear/Scott, PPoPP'10).
 *
 * No ownership records: a single global sequence lock orders writer
 * commits, and readers validate *by value* whenever the sequence
 * number moves. Extremely low metadata cost; writer commits are
 * serialized, which is exactly the scalability cliff the paper's
 * Fig. 1 exploits (NOrec wins at low thread counts / read-heavy
 * workloads and collapses under many concurrent writers).
 */

#ifndef PROTEUS_TM_NOREC_HPP
#define PROTEUS_TM_NOREC_HPP

#include <atomic>

#include "common/cacheline.hpp"
#include "tm/backend.hpp"

namespace proteus::tm {

class NorecTm : public TmBackend
{
  public:
    BackendKind kind() const override { return BackendKind::kNorec; }

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;

    /** Current sequence-lock value (shared with HybridNorecTm). */
    std::uint64_t seqNow() const
    {
        return seq_->load(std::memory_order_acquire);
    }

  private:
    /**
     * Value-validate the read set; returns the (even) sequence number
     * the set is consistent with, or aborts.
     */
    std::uint64_t validate(TxDesc &tx);

    friend class HybridNorecTm;

    /** Even = unlocked; odd = a writer is committing. */
    PaddedAtomicU64 seq_{};
};

} // namespace proteus::tm

#endif // PROTEUS_TM_NOREC_HPP
