/**
 * @file
 * Single-global-lock TM: every transaction is serialized behind one
 * spinlock. The degenerate baseline (and the Sequential comparator of
 * Fig. 8 when run with one thread).
 *
 * Writes go in place but are undo-logged (the pre-image of each
 * address is recorded on first write), so an explicit abort —
 * tx.retry(), or a foreign exception unwinding through PolyTm::run —
 * restores memory and releases the lock instead of leaking a torn
 * state. That makes the backend *revocable*: the `AllBackends/*`
 * rollback semantics hold here too, and callers that wait by retrying
 * (the KV store's intent resolution) may do so under the global lock.
 * The undo log costs one hash probe per transactional write; reads
 * stay raw loads.
 */

#ifndef PROTEUS_TM_GLOBAL_LOCK_HPP
#define PROTEUS_TM_GLOBAL_LOCK_HPP

#include <atomic>

#include "common/cacheline.hpp"
#include "tm/backend.hpp"

namespace proteus::tm {

/** Test-and-test-and-set spinlock padded to a cache line. */
class alignas(kCacheLineSize) SpinLock
{
  public:
    void lock();
    bool tryLock();
    void unlock();
    bool lockedNow() const
    {
        return flag_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> flag_{false};
};

/** Global-lock backend; never conflicts, undo-logged in-place writes. */
class GlobalLockTm : public TmBackend
{
  public:
    BackendKind kind() const override { return BackendKind::kGlobalLock; }

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;

  private:
    SpinLock lock_;
};

} // namespace proteus::tm

#endif // PROTEUS_TM_GLOBAL_LOCK_HPP
