/**
 * @file
 * Per-thread transaction descriptor and read/write-set containers.
 *
 * One TxDesc exists per registered thread and is reused across
 * transactions (and across backend switches: it is a superset of the
 * state any backend needs). The write set is an open-addressing hash
 * map with generation-tagged slots so that clearing between attempts
 * is O(1) in the common case.
 */

#ifndef PROTEUS_TM_TXDESC_HPP
#define PROTEUS_TM_TXDESC_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "tm/orec.hpp"
#include "tm/tm_api.hpp"

namespace proteus::tm {

/** One buffered transactional write (redo-log entry). */
struct WriteEntry
{
    std::uint64_t *addr = nullptr;
    std::uint64_t value = 0;
    /** Orec covering addr; cached to avoid re-hashing at commit. */
    Orec *orec = nullptr;
    /** Orec word observed when this entry first locked the stripe. */
    OrecWord prevWord{};
    /** True once this tx holds the stripe lock (eager backends). */
    bool holdsLock = false;
    /** Second lock table entry (SwissTM write-lock). */
    Orec *wlockOrec = nullptr;
    /** True once this tx holds the SwissTM write-lock. */
    bool holdsWlock = false;
};

/**
 * Redo-log with O(1) lookup by address.
 *
 * Open-addressing; slots carry a generation tag, so clear() is a
 * counter bump. Grows by rehash when load factor exceeds 3/4.
 */
class WriteSet
{
  public:
    WriteSet();

    /** Number of buffered writes. */
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** Find the entry for addr, or nullptr. */
    WriteEntry *find(const std::uint64_t *addr);

    /**
     * Insert a new entry or update the buffered value of an existing
     * one. Returns the entry (new or old).
     */
    WriteEntry &put(std::uint64_t *addr, std::uint64_t value);

    /** All entries, insertion-ordered. */
    std::vector<WriteEntry> &entries() { return entries_; }
    const std::vector<WriteEntry> &entries() const { return entries_; }

    /** Drop all entries (O(1) amortized). */
    void clear();

  private:
    struct Slot
    {
        std::uint64_t generation = 0;
        std::uint32_t entryIndex = 0;
        const std::uint64_t *key = nullptr;
    };

    std::size_t probeStart(const std::uint64_t *addr) const;
    void grow();

    std::vector<WriteEntry> entries_;
    std::vector<Slot> slots_;
    std::uint64_t generation_ = 1;
    std::size_t slotMask_;
};

/** One read-set entry; backends use the fields they need. */
struct ReadEntry
{
    /** Address read (value-based validation: NOrec, SimHtm). */
    const std::uint64_t *addr = nullptr;
    /** Value observed (value-based validation). */
    std::uint64_t value = 0;
    /** Orec covering addr (version-based validation). */
    Orec *orec = nullptr;
    /** Orec word observed at read time (version-based validation). */
    OrecWord word{};
};

/**
 * Per-thread transaction descriptor.
 *
 * Lifetime: created at thread registration, destroyed at
 * deregistration; all fields are reset between attempts by the owning
 * backend. The `doomed` flag is the only field written by *other*
 * threads (emulated-HTM eager conflicts) and is therefore atomic and
 * padded.
 */
class TxDesc
{
  public:
    explicit TxDesc(int tid, std::uint64_t seed)
        : tid(tid), rng(seed)
    {}

    TxDesc(const TxDesc &) = delete;
    TxDesc &operator=(const TxDesc &) = delete;

    /** Registered thread id, dense from 0. */
    const int tid;

    /** Per-thread RNG (backoff jitter). */
    Rng rng;

    /** Read timestamp (rv) for timestamp-based backends. */
    std::uint64_t startTs = 0;
    /** NOrec/Hybrid sequence-lock snapshot. */
    std::uint64_t seqSnapshot = 0;

    WriteSet writeSet;
    std::vector<ReadEntry> readSet;

    /** True while inside an emulated hardware transaction. */
    bool inHtm = false;
    /** True while holding the HTM fallback lock (irrevocable). */
    bool inFallback = false;
    /** HTM retries left before falling back. */
    int htmBudgetLeft = 0;

    /** Set asynchronously by a conflicting emulated-HTM writer. */
    Padded<std::atomic<bool>> doomed{};

    /** Cause of the most recent abort of this thread's transaction. */
    AbortCause lastAbortCause = AbortCause::kNone;
    /** Aborts since the last commit (drives exponential backoff). */
    unsigned consecutiveAborts = 0;

    /** Reset per-attempt state; called by backends at txBegin. */
    void
    beginAttempt()
    {
        writeSet.clear();
        readSet.clear();
        inHtm = false;
        inFallback = false;
        doomed->store(false, std::memory_order_relaxed);
    }
};

} // namespace proteus::tm

#endif // PROTEUS_TM_TXDESC_HPP
