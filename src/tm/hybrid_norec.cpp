#include "tm/hybrid_norec.hpp"

#include <thread>

namespace proteus::tm {

namespace {

void
cpuRelax()
{
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

HybridNorecTm::HybridNorecTm(SimHtmConfig config, unsigned log2_stripes)
    : SimHtm(config, log2_stripes)
{
}

void
HybridNorecTm::txBegin(TxDesc &tx)
{
    tx.beginAttempt();
    if (tx.htmBudgetLeft <= 0) {
        // Software path (NOrec). inHtm stays false.
        norec_.txBegin(tx);
        return;
    }
    // Hardware path: subscribe to the seqlock (begin only when even).
    for (;;) {
        const std::uint64_t s = norec_.seqNow();
        if ((s & 1) == 0) {
            tx.seqSnapshot = s;
            break;
        }
        cpuRelax();
    }
    tx.inHtm = true;
    ThreadSlot &slot = slots_[tx.tid];
    slot.readLines = 0;
    slot.signature.clear();
}

std::uint64_t
HybridNorecTm::txRead(TxDesc &tx, const std::uint64_t *addr)
{
    if (tx.inHtm)
        return hwRead(tx, addr);
    return norec_.txRead(tx, addr);
}

void
HybridNorecTm::txWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value)
{
    if (tx.inHtm) {
        hwWrite(tx, addr, value);
        return;
    }
    norec_.txWrite(tx, addr, value);
}

void
HybridNorecTm::txCommit(TxDesc &tx)
{
    if (!tx.inHtm) {
        // Software commit: once the seqlock is ours, every speculating
        // hardware tx must die before we write back (their subscribed
        // seqlock moved). NOrec's own CAS loop acquires the lock; we
        // re-implement its commit here to insert the doom step.
        if (tx.writeSet.empty())
            return;
        std::uint64_t expected = tx.seqSnapshot;
        while (!norec_.seq_->compare_exchange_strong(
                   expected, expected + 1, std::memory_order_acq_rel)) {
            tx.seqSnapshot = norec_.validate(tx);
            expected = tx.seqSnapshot;
        }
        doomAllActive(tx.tid);
        for (const WriteEntry &we : tx.writeSet.entries()) {
            reinterpret_cast<std::atomic<std::uint64_t> *>(we.addr)->store(
                we.value, std::memory_order_release);
        }
        norec_.seq_->store(tx.seqSnapshot + 2, std::memory_order_release);
        return;
    }

    // Hardware commit.
    checkDoomed(tx);
    if (tx.writeSet.empty()) {
        // Read-only hw tx: consistent iff no sw/hw writer committed
        // since our snapshot (subscription check).
        if (norec_.seqNow() != tx.seqSnapshot)
            abortTx(tx, AbortCause::kValidation);
        slots_[tx.tid].signature.clear();
        tx.inHtm = false;
        return;
    }
    std::uint64_t expected = tx.seqSnapshot;
    if (!norec_.seq_->compare_exchange_strong(expected, expected + 1,
                                              std::memory_order_acq_rel)) {
        abortTx(tx, AbortCause::kValidation); // seq moved: subscription
    }
    hwWriteBackAndRelease(tx);
    norec_.seq_->store(tx.seqSnapshot + 2, std::memory_order_release);
}

void
HybridNorecTm::rollback(TxDesc &tx)
{
    if (tx.inHtm) {
        SimHtm::rollback(tx);
        return;
    }
    norec_.rollback(tx);
}

void
HybridNorecTm::reset()
{
    SimHtm::reset();
    norec_.reset();
}

} // namespace proteus::tm
