#include "tm/txdesc.hpp"

#include <cassert>

namespace proteus::tm {

namespace {

constexpr std::size_t kInitialSlots = 128; // power of two

std::size_t
hashAddr(const std::uint64_t *addr)
{
    auto bits = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    bits *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(bits >> 17);
}

} // namespace

WriteSet::WriteSet()
    : slots_(kInitialSlots), slotMask_(kInitialSlots - 1)
{
    entries_.reserve(64);
}

std::size_t
WriteSet::probeStart(const std::uint64_t *addr) const
{
    return hashAddr(addr) & slotMask_;
}

WriteEntry *
WriteSet::find(const std::uint64_t *addr)
{
    std::size_t i = probeStart(addr);
    for (;;) {
        Slot &slot = slots_[i];
        if (slot.generation != generation_)
            return nullptr; // empty slot: not present
        if (slot.key == addr)
            return &entries_[slot.entryIndex];
        i = (i + 1) & slotMask_;
    }
}

WriteEntry &
WriteSet::put(std::uint64_t *addr, std::uint64_t value)
{
    std::size_t i = probeStart(addr);
    for (;;) {
        Slot &slot = slots_[i];
        if (slot.generation != generation_) {
            // Empty: insert here.
            if ((entries_.size() + 1) * 4 > slots_.size() * 3) {
                grow();
                return put(addr, value);
            }
            slot.generation = generation_;
            slot.key = addr;
            slot.entryIndex = static_cast<std::uint32_t>(entries_.size());
            WriteEntry entry;
            entry.addr = addr;
            entry.value = value;
            entries_.push_back(entry);
            return entries_.back();
        }
        if (slot.key == addr) {
            entries_[slot.entryIndex].value = value;
            return entries_[slot.entryIndex];
        }
        i = (i + 1) & slotMask_;
    }
}

void
WriteSet::grow()
{
    std::vector<Slot> bigger(slots_.size() * 2);
    const std::size_t new_mask = bigger.size() - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
        std::size_t i = hashAddr(entries_[e].addr) & new_mask;
        while (bigger[i].generation == generation_)
            i = (i + 1) & new_mask;
        bigger[i].generation = generation_;
        bigger[i].key = entries_[e].addr;
        bigger[i].entryIndex = static_cast<std::uint32_t>(e);
    }
    slots_ = std::move(bigger);
    slotMask_ = new_mask;
}

void
WriteSet::clear()
{
    entries_.clear();
    ++generation_;
    if (generation_ == 0) {
        // Wrapped (after ~2^64 clears; unreachable in practice, but keep
        // the invariant airtight): wipe all tags.
        for (auto &slot : slots_)
            slot.generation = 0;
        generation_ = 1;
    }
}

} // namespace proteus::tm
