/**
 * @file
 * SimHtm: software emulation of a best-effort hardware TM (Intel TSX /
 * POWER8 class), the substitution for real HTM hardware (DESIGN.md §2).
 *
 * Faithfully emulated properties:
 *  - *best effort*: bounded read/write footprint; exceeding the
 *    emulated L1 capacity raises AbortCause::kCapacity;
 *  - *eager, requester-wins conflict detection*: accesses doom the
 *    conflicting transaction via an asynchronous `doomed` flag (the
 *    analogue of a coherence-message abort);
 *  - *no progress guarantee*: mutual dooming is possible; forward
 *    progress comes from the retry budget + fallback global lock, the
 *    exact mechanism the paper's contention-management dimensions tune;
 *  - *fallback-lock subscription*: hardware transactions cannot begin
 *    while the lock is held and abort if it was acquired mid-flight.
 *
 * Read visibility uses per-thread signatures (4096-bit Bloom filters
 * over stripe indices), the standard simulator technique (cf. Ruby
 * TM / LogTM-SE); false positives only cause spurious aborts, which
 * real signatures have too.
 */

#ifndef PROTEUS_TM_SIM_HTM_HPP
#define PROTEUS_TM_SIM_HTM_HPP

#include <array>
#include <atomic>

#include "common/cacheline.hpp"
#include "tm/backend.hpp"
#include "tm/global_lock.hpp"
#include "tm/orec.hpp"

namespace proteus::tm {

/** Emulated hardware capacity (in cache-line stripes). */
struct SimHtmConfig
{
    /** Max distinct lines a hardware tx may read (L1+L2 tracking). */
    std::size_t readCapacityLines = 4096;
    /** Max distinct lines a hardware tx may write (L1-bounded). */
    std::size_t writeCapacityLines = 448;
};

/** Per-thread Bloom signature of read stripes. */
class ReadSignature
{
  public:
    static constexpr std::size_t kWords = 64; // 4096 bits

    /** Set the bit for a stripe; returns true if newly set. */
    bool add(std::size_t stripe);

    /** Membership test (false positives possible). */
    bool mightContain(std::size_t stripe) const;

    void clear();

  private:
    static std::size_t wordOf(std::size_t stripe);
    static std::uint64_t bitOf(std::size_t stripe);

    std::array<std::atomic<std::uint64_t>, kWords> words_{};
};

class SimHtm : public TmBackend
{
  public:
    explicit SimHtm(SimHtmConfig config = {}, unsigned log2_stripes = 18);

    BackendKind kind() const override { return BackendKind::kSimHtm; }

    void registerThread(TxDesc &tx) override;
    void deregisterThread(TxDesc &tx) override;

    void txBegin(TxDesc &tx) override;
    std::uint64_t txRead(TxDesc &tx, const std::uint64_t *addr) override;
    void txWrite(TxDesc &tx, std::uint64_t *addr,
                 std::uint64_t value) override;
    void txCommit(TxDesc &tx) override;
    void rollback(TxDesc &tx) override;
    void reset() override;
    bool revocable(const TxDesc &tx) const override
    {
        return !tx.inFallback;
    }

    const SimHtmConfig &config() const { return config_; }

  protected:
    /** Begin irrevocably under the fallback lock, dooming hw txs. */
    void beginFallback(TxDesc &tx);

    /** Doom every registered thread currently in a hardware tx. */
    void doomAllActive(int except_tid);

    /** Abort if this tx was doomed by a conflicting access. */
    void checkDoomed(TxDesc &tx);

    /** Hardware-path pieces, shared with HybridNorecTm. */
    void hwBegin(TxDesc &tx);
    std::uint64_t hwRead(TxDesc &tx, const std::uint64_t *addr);
    void hwWrite(TxDesc &tx, std::uint64_t *addr, std::uint64_t value);
    /** Validate subscription+doom state; throws on failure. */
    void hwPreCommitChecks(TxDesc &tx);
    /** Write back and release ownership/signature. */
    void hwWriteBackAndRelease(TxDesc &tx);

    std::size_t stripeOf(const void *addr) const
    {
        return owners_.indexOf(addr);
    }

    SimHtmConfig config_;

    /** Stripe write-ownership table (locked == owned by tid). */
    OrecTable owners_;

    /** Per-registered-thread state. */
    struct ThreadSlot
    {
        std::atomic<TxDesc *> desc{nullptr};
        ReadSignature signature;
        /** Distinct stripes read by the in-flight hw tx. */
        std::size_t readLines = 0;
    };
    std::array<ThreadSlot, kMaxThreads> slots_;

    SpinLock fallbackLock_;
    /** Counts fallback acquisitions; hw commits check it moved not. */
    PaddedAtomicU64 fallbackGen_{};
};

} // namespace proteus::tm

#endif // PROTEUS_TM_SIM_HTM_HPP
