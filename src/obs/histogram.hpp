/**
 * @file
 * LogLinearHistogram: the repo's one log-linear bucketing /
 * percentile implementation.
 *
 * kSub linear sub-buckets per power-of-two nanosecond octave
 * (relative error <= 1/kSub), plus an exact max. The data type is
 * single-writer; merge() combines worker-local copies, and the
 * concurrent obs::Histogram metric (metric_registry.hpp) snapshots
 * into it, so the traffic driver, the metric registry and the
 * exporters all share this bucketing and these percentiles.
 */

#ifndef PROTEUS_OBS_HISTOGRAM_HPP
#define PROTEUS_OBS_HISTOGRAM_HPP

#include <array>
#include <cstdint>

namespace proteus::obs {

class LogLinearHistogram
{
  public:
    static constexpr int kSubBits = 2;
    static constexpr int kSub = 1 << kSubBits; // 4
    /** Highest reachable bucket: msb 63 -> octave 62, sub kSub-1. */
    static constexpr int kBuckets = 63 * kSub;

    void
    record(std::uint64_t nanos)
    {
        ++counts_[bucketOf(nanos)];
        ++count_;
        if (nanos > max_)
            max_ = nanos;
    }

    void
    merge(const LogLinearHistogram &other)
    {
        for (int b = 0; b < kBuckets; ++b)
            counts_[b] += other.counts_[b];
        count_ += other.count_;
        noteMax(other.max_);
    }

    /** Raw accumulation (used by concurrent-stripe snapshots). */
    void
    addBucketCount(int bucket, std::uint64_t n)
    {
        counts_[bucket] += n;
        count_ += n;
    }
    void
    noteMax(std::uint64_t nanos)
    {
        if (nanos > max_)
            max_ = nanos;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t maxNanos() const { return max_; }
    std::uint64_t bucketCount(int b) const { return counts_[b]; }

    /** Upper edge of the bucket holding the p-quantile (p in [0,1]). */
    std::uint64_t percentileNanos(double p) const;

    static int bucketOf(std::uint64_t nanos);
    static std::uint64_t bucketUpperNanos(int bucket);

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace proteus::obs

#endif // PROTEUS_OBS_HISTOGRAM_HPP
