#include "obs/metric_registry.hpp"

#include <stdexcept>

namespace proteus::obs {

void
Histogram::noteMax(Stripe &s, std::uint64_t nanos)
{
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (nanos > cur &&
           !s.max.compare_exchange_weak(cur, nanos,
                                        std::memory_order_relaxed)) {
    }
}

void
Histogram::mergeData(const LogLinearHistogram &data, std::size_t stripe)
{
    Stripe &s = stripes_[stripe & (kStripes - 1)];
    for (int b = 0; b < LogLinearHistogram::kBuckets; ++b) {
        const std::uint64_t n = data.bucketCount(b);
        if (n != 0)
            s.counts[b].fetch_add(n, std::memory_order_relaxed);
    }
    noteMax(s, data.maxNanos());
}

LogLinearHistogram
Histogram::snapshot() const
{
    LogLinearHistogram out;
    for (const Stripe &s : stripes_) {
        for (int b = 0; b < LogLinearHistogram::kBuckets; ++b) {
            const std::uint64_t n =
                s.counts[b].load(std::memory_order_relaxed);
            if (n != 0)
                out.addBucketCount(b, n);
        }
        out.noteMax(s.max.load(std::memory_order_relaxed));
    }
    return out;
}

MetricRegistry::Entry &
MetricRegistry::reserve(const std::string &name, MetricKind kind,
                        bool callback)
{
    std::lock_guard<std::mutex> lk(mutex_);
    for (const auto &entry : entries_) {
        if (entry->name != name)
            continue;
        if (entry->kind != kind ||
            static_cast<bool>(entry->fn) != callback) {
            throw std::invalid_argument(
                "MetricRegistry: '" + name +
                "' already registered with a different kind");
        }
        return *entry;
    }
    entries_.push_back(std::make_unique<Entry>());
    entries_.back()->name = name;
    entries_.back()->kind = kind;
    return *entries_.back();
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    Entry &entry = reserve(name, MetricKind::kCounter, false);
    if (!entry.counter)
        entry.counter = std::make_unique<Counter>();
    return *entry.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    Entry &entry = reserve(name, MetricKind::kGauge, false);
    if (!entry.gauge)
        entry.gauge = std::make_unique<Gauge>();
    return *entry.gauge;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    Entry &entry = reserve(name, MetricKind::kHistogram, false);
    if (!entry.histogram)
        entry.histogram = std::make_unique<Histogram>();
    return *entry.histogram;
}

void
MetricRegistry::counterFn(const std::string &name,
                          std::function<std::uint64_t()> fn)
{
    reserve(name, MetricKind::kCounter, true).fn = std::move(fn);
}

void
MetricRegistry::gaugeFn(const std::string &name,
                        std::function<std::uint64_t()> fn)
{
    reserve(name, MetricKind::kGauge, true).fn = std::move(fn);
}

TelemetrySnapshot
MetricRegistry::snapshot() const
{
    TelemetrySnapshot out;
    std::lock_guard<std::mutex> lk(mutex_);
    out.samples.reserve(entries_.size());
    for (const auto &entry : entries_) {
        MetricSample sample;
        sample.name = entry->name;
        sample.kind = entry->kind;
        if (entry->fn)
            sample.value = entry->fn();
        else if (entry->counter)
            sample.value = entry->counter->total();
        else if (entry->gauge)
            sample.value = entry->gauge->value();
        else if (entry->histogram)
            sample.hist = entry->histogram->snapshot();
        out.samples.push_back(std::move(sample));
    }
    return out;
}

} // namespace proteus::obs
