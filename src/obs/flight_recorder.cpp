#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <unistd.h>
#endif

namespace proteus::obs {

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::kNone:             return "none";
      case TraceKind::kTwoPhasePrepare:  return "2pc.prepare";
      case TraceKind::kTwoPhaseReserve:  return "2pc.reserve";
      case TraceKind::kTwoPhaseFlip:     return "2pc.flip";
      case TraceKind::kTwoPhaseFinalize: return "2pc.finalize";
      case TraceKind::kTwoPhaseAbort:    return "2pc.abort";
      case TraceKind::kSnapshotRetry:    return "snapshot.retry";
      case TraceKind::kSnapshotEscalate: return "snapshot.escalate";
      case TraceKind::kGrow:             return "shard.grow";
      case TraceKind::kCompact:          return "shard.compact";
      case TraceKind::kMigrateChunk:     return "shard.migrate_chunk";
      case TraceKind::kSweepChunk:       return "shard.sweep_chunk";
      case TraceKind::kArenaRetire:      return "arena.retire";
      case TraceKind::kArenaRecycle:     return "arena.recycle";
      case TraceKind::kRetune:           return "tuner.retune";
      case TraceKind::kWalAppend:        return "wal.append";
      case TraceKind::kWalFsync:         return "wal.fsync";
      case TraceKind::kCkptBegin:        return "ckpt.begin";
      case TraceKind::kCkptEnd:          return "ckpt.end";
      case TraceKind::kRecoverReplay:    return "recover.replay";
      case TraceKind::kWalError:         return "wal.error";
      case TraceKind::kHealthTransition: return "health.transition";
    }
    return "unknown";
}

std::string
TraceEvent::format() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "[seq %" PRIu64 "] shard %d %s a=%" PRIu64
                  " b=%" PRIu64,
                  seq, static_cast<int>(shard), traceKindName(kind), a,
                  b);
    return buf;
}

FlightRecorder::FlightRecorder(bool enabled)
    : enabled_(enabled), rings_(std::make_unique<Ring[]>(kRings))
{
}

std::size_t
FlightRecorder::threadRingIndex()
{
    static std::atomic<std::size_t> nextOrdinal{0};
    thread_local const std::size_t ordinal =
        nextOrdinal.fetch_add(1, std::memory_order_relaxed);
    return ordinal & (kRings - 1);
}

void
FlightRecorder::armCrash(TraceKind kind, std::uint64_t nth)
{
    crashLeft_.store(nth, std::memory_order_relaxed);
    crashKind_.store(static_cast<std::uint16_t>(kind),
                     std::memory_order_relaxed);
}

void
FlightRecorder::recordSlow(TraceKind kind, std::int32_t shard,
                           std::uint64_t seq, std::uint64_t a,
                           std::uint64_t b)
{
    // Fault injection for the crash-recovery hunter: die by SIGKILL
    // (no atexit, no flush — the same as a power-yank for the process)
    // at the armed trace point.
    if (crashKind_.load(std::memory_order_relaxed) ==
            static_cast<std::uint16_t>(kind) &&
        kind != TraceKind::kNone &&
        crashLeft_.fetch_sub(1, std::memory_order_relaxed) == 1) {
#if defined(__unix__) || defined(__APPLE__)
        ::kill(::getpid(), SIGKILL);
#else
        std::abort();
#endif
    }
    Ring &ring = rings_[threadRingIndex()];
    const std::uint64_t idx =
        ring.head.fetch_add(1, std::memory_order_relaxed) &
        (kSlotsPerRing - 1);
    Slot &slot = ring.slots[idx];
    const std::uint64_t order =
        order_.fetch_add(1, std::memory_order_relaxed);
    // Invalidate first so a concurrent reader that raced past the old
    // marker re-checks and drops the torn slot.
    slot.order.store(0, std::memory_order_release);
    slot.kindShard.store(
        (static_cast<std::uint64_t>(static_cast<std::uint16_t>(kind))
         << 32) |
            static_cast<std::uint32_t>(shard),
        std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    slot.order.store(order, std::memory_order_release);
}

std::vector<TraceEvent>
FlightRecorder::dumpRecent(std::size_t maxEvents) const
{
    std::vector<TraceEvent> out;
    for (std::size_t r = 0; r < kRings; ++r) {
        const Ring &ring = rings_[r];
        for (const Slot &slot : ring.slots) {
            const std::uint64_t order =
                slot.order.load(std::memory_order_acquire);
            if (order == 0)
                continue;
            TraceEvent ev;
            const std::uint64_t ks =
                slot.kindShard.load(std::memory_order_relaxed);
            ev.kind = static_cast<TraceKind>(
                static_cast<std::uint16_t>(ks >> 32));
            ev.shard = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(ks));
            ev.seq = slot.seq.load(std::memory_order_relaxed);
            ev.a = slot.a.load(std::memory_order_relaxed);
            ev.b = slot.b.load(std::memory_order_relaxed);
            ev.order = order;
            // Re-check the marker: an overwrite in flight zeroes it
            // (or replaces it) before touching the payload words.
            if (slot.order.load(std::memory_order_acquire) != order)
                continue;
            out.push_back(ev);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &lhs, const TraceEvent &rhs) {
                  if (lhs.seq != rhs.seq)
                      return lhs.seq < rhs.seq;
                  return lhs.order < rhs.order;
              });
    if (maxEvents != 0 && out.size() > maxEvents)
        out.erase(out.begin(),
                  out.end() - static_cast<std::ptrdiff_t>(maxEvents));
    return out;
}

std::string
FlightRecorder::formatRecent(std::size_t maxEvents) const
{
    std::string text;
    for (const TraceEvent &ev : dumpRecent(maxEvents)) {
        text += ev.format();
        text += '\n';
    }
    return text;
}

} // namespace proteus::obs
