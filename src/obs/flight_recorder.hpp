/**
 * @file
 * FlightRecorder: lock-free per-thread rings of trace events for
 * post-hoc debugging of concurrent store internals.
 *
 * Each thread (by process-wide ordinal) records into one of kRings
 * fixed-size rings, so recording never blocks and never contends with
 * other threads' rings. An event is five u64 words — kind+shard, the
 * store-wide commitSeq it was stamped with, two kind-specific
 * payloads, and an order marker drawn from one global relaxed counter.
 * The marker word is written LAST with release order and is nonzero
 * for a valid slot, so a reader either sees a fully-written event or
 * skips the slot; all slot accesses are atomic, keeping concurrent
 * dump-while-recording TSan-clean.
 *
 * dumpRecent() walks every ring and merges the surviving events in
 * (commitSeq, order) order — the order marker breaks ties between
 * events stamped with the same commitSeq (e.g. several prepares
 * racing before one reserve). Dumps taken while recording continues
 * are best-effort: a slot overwritten mid-read is detected via the
 * marker and dropped, and the oldest events in a busy ring may
 * already have been recycled. That trade — bounded memory, zero
 * hot-path coordination — is the point of a flight recorder.
 */

#ifndef PROTEUS_OBS_FLIGHT_RECORDER_HPP
#define PROTEUS_OBS_FLIGHT_RECORDER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cacheline.hpp"

namespace proteus::obs {

enum class TraceKind : std::uint16_t
{
    kNone = 0,
    // 2PC phases (multiOpTwoPhaseWrite).
    kTwoPhasePrepare,  // a = shards touched, b = ops
    kTwoPhaseReserve,  // seq = commitSeq reserved
    kTwoPhaseFlip,     // record flipped to committed at seq
    kTwoPhaseFinalize, // a = intents finalized
    kTwoPhaseAbort,    // a = abort cause, b = shards prepared
    // Snapshot-epoch read path.
    kSnapshotRetry,    // a = retry round
    kSnapshotEscalate, // a = rounds burned before escalating
    // Shard maintenance.
    kGrow,             // a = old capacity, b = new capacity
    kCompact,          // a = capacity
    kMigrateChunk,     // a = chunk index, b = entries moved
    kSweepChunk,       // a = chunk index, b = entries expired
    // Value arena reclamation.
    kArenaRetire,      // a = blobs retired, b = bytes
    kArenaRecycle,     // a = blobs recycled, b = bytes
    // Auto-tuner decisions.
    kRetune,           // a = (oldConfig << 32) | newConfig, b = KPI bits
    // Durability (WAL / checkpoint / recovery).
    kWalAppend,        // a = record LSN, b = frame bytes
    kWalFsync,         // a = bytes durable, b = fdatasync nanos
    kCkptBegin,        // a = barrier LSN
    kCkptEnd,          // a = live entries captured, b = chunks walked
    kRecoverReplay,    // a = records replayed, b = ops applied
    // Failure ladder (fault injection / degraded operation).
    kWalError,         // a = WalError code, b = bytes reported lost
    kHealthTransition, // a = from Health state, b = to Health state
};

/** Human-readable name for a trace kind ("2pc.prepare", ...). */
const char *traceKindName(TraceKind kind);

struct TraceEvent
{
    TraceKind kind = TraceKind::kNone;
    /** Shard the event is attributed to (-1 = store-wide). */
    std::int32_t shard = -1;
    /** Store-wide commitSeq observed when the event was recorded. */
    std::uint64_t seq = 0;
    /** Kind-specific payloads (see TraceKind comments). */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    /** Global record order (tiebreak within one seq). */
    std::uint64_t order = 0;

    /** One-line rendering: "[seq 42] shard 3 2pc.flip a=.. b=..". */
    std::string format() const;
};

class FlightRecorder
{
  public:
    static constexpr std::size_t kRings = 64;
    static constexpr std::size_t kSlotsPerRing = 1024;

    explicit FlightRecorder(bool enabled = true);
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Record one event into the calling thread's ring. No-op (one
     *  relaxed load) when disabled. */
    void
    record(TraceKind kind, std::int32_t shard, std::uint64_t seq,
           std::uint64_t a = 0, std::uint64_t b = 0)
    {
        if (!enabled())
            return;
        recordSlow(kind, shard, seq, a, b);
    }

    /**
     * Merge every ring's surviving events, sorted by (seq, order),
     * keeping only the most recent `maxEvents` (0 = all). Safe to
     * call while other threads record (best-effort, see file
     * comment).
     */
    std::vector<TraceEvent> dumpRecent(std::size_t maxEvents = 0) const;

    /** dumpRecent() rendered one event per line. */
    std::string formatRecent(std::size_t maxEvents = 0) const;

    /**
     * Crash hunter hook: SIGKILL the process at the `nth` (1-based)
     * subsequently recorded event of `kind`. Turns every trace point
     * into a fault-injection site so the recovery test can die at
     * randomized places mid-protocol. Pass kNone to disarm.
     */
    void armCrash(TraceKind kind, std::uint64_t nth);

  private:
    struct Slot
    {
        /** Order marker: 0 = empty, written last with release. */
        std::atomic<std::uint64_t> order{0};
        std::atomic<std::uint64_t> kindShard{0};
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> a{0};
        std::atomic<std::uint64_t> b{0};
    };

    struct alignas(kCacheLineSize) Ring
    {
        /** Next slot index; only the owning thread(s) advance it. */
        std::atomic<std::uint64_t> head{0};
        Slot slots[kSlotsPerRing];
    };

    void recordSlow(TraceKind kind, std::int32_t shard,
                    std::uint64_t seq, std::uint64_t a,
                    std::uint64_t b);

    static std::size_t threadRingIndex();

    std::atomic<bool> enabled_;
    /** Global relaxed order counter (starts at 1 so markers != 0). */
    std::atomic<std::uint64_t> order_{1};
    /** armCrash state: kind to die at + remaining matching events. */
    std::atomic<std::uint16_t> crashKind_{0};
    std::atomic<std::uint64_t> crashLeft_{0};
    std::unique_ptr<Ring[]> rings_;
};

} // namespace proteus::obs

#endif // PROTEUS_OBS_FLIGHT_RECORDER_HPP
