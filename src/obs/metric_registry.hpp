/**
 * @file
 * MetricRegistry: named counters / gauges / log-linear histograms
 * behind one export walk.
 *
 * Instruments are registered once (at subsystem construction) and the
 * returned handles are stable for the registry's lifetime, so the hot
 * path never takes the registry lock — recording is a single relaxed
 * atomic add on a cache-line-padded stripe (the same trick the
 * snapshot counter stripes in kvstore.hpp use):
 *
 *  - Counter: monotonic; kStripes padded cells, the caller picks the
 *    stripe (shard index, worker index) so concurrent writers of
 *    disjoint stripes never share a line. total() sums the stripes.
 *  - Gauge: last-write-wins set()/add(); one atomic (gauges are
 *    low-frequency by construction).
 *  - Histogram: concurrent log-linear histogram — kStripes padded
 *    bucket arrays, relaxed adds; snapshot() merges the stripes into
 *    a LogLinearHistogram. mergeData() folds a single-writer
 *    LogLinearHistogram in (worker-exit publication).
 *
 * Subsystems whose counters already live elsewhere (per-thread TM
 * profiles, the per-shard arena atomics) bridge into the same walk
 * with counterFn()/gaugeFn(): a callback sampled once per snapshot.
 * Either way every metric is exported by the one snapshot() pass, in
 * registration order.
 */

#ifndef PROTEUS_OBS_METRIC_REGISTRY_HPP
#define PROTEUS_OBS_METRIC_REGISTRY_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"

namespace proteus::obs {

class Counter
{
  public:
    static constexpr std::size_t kStripes = 8;

    /** Relaxed add on the (masked) stripe — the whole hot path. */
    void
    add(std::uint64_t n = 1, std::size_t stripe = 0)
    {
        stripes_[stripe & (kStripes - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const PaddedAtomicU64 &stripe : stripes_)
            sum += stripe.value.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    PaddedAtomicU64 stripes_[kStripes];
};

class Gauge
{
  public:
    void
    set(std::uint64_t v)
    {
        value_.value.store(v, std::memory_order_relaxed);
    }
    void
    add(std::int64_t d)
    {
        value_.value.fetch_add(static_cast<std::uint64_t>(d),
                               std::memory_order_relaxed);
    }
    std::uint64_t
    value() const
    {
        return value_.value.load(std::memory_order_relaxed);
    }

  private:
    PaddedAtomicU64 value_;
};

class Histogram
{
  public:
    static constexpr std::size_t kStripes = 4;

    void
    record(std::uint64_t nanos, std::size_t stripe = 0)
    {
        Stripe &s = stripes_[stripe & (kStripes - 1)];
        s.counts[LogLinearHistogram::bucketOf(nanos)].fetch_add(
            1, std::memory_order_relaxed);
        noteMax(s, nanos);
    }

    /** Fold a single-writer histogram in (atomic per bucket, so
     *  concurrent merges of worker-local copies stay exact). */
    void mergeData(const LogLinearHistogram &data,
                   std::size_t stripe = 0);

    /** Merge every stripe into one data-type histogram. */
    LogLinearHistogram snapshot() const;

  private:
    struct alignas(kCacheLineSize) Stripe
    {
        std::array<std::atomic<std::uint64_t>,
                   LogLinearHistogram::kBuckets>
            counts{};
        std::atomic<std::uint64_t> max{0};
    };

    static void noteMax(Stripe &s, std::uint64_t nanos);

    Stripe stripes_[kStripes];
};

class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Register-or-get. Registration takes a lock; the returned
     * reference is stable until the registry dies, so callers cache
     * it at construction and record lock-free afterwards. Throws
     * std::invalid_argument when the name is already registered with
     * a different kind (or as a callback).
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Bridge an external monotonic counter / point-in-time gauge
     *  into the export walk; `fn` is sampled once per snapshot(). */
    void counterFn(const std::string &name,
                   std::function<std::uint64_t()> fn);
    void gaugeFn(const std::string &name,
                 std::function<std::uint64_t()> fn);

    /** One pass over every metric, in registration order. */
    TelemetrySnapshot snapshot() const;

  private:
    struct Entry
    {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
        std::function<std::uint64_t()> fn;
    };

    Entry &reserve(const std::string &name, MetricKind kind,
                   bool callback);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Entry>> entries_;
};

} // namespace proteus::obs

#endif // PROTEUS_OBS_METRIC_REGISTRY_HPP
