#include "obs/histogram.hpp"

#include <bit>

namespace proteus::obs {

int
LogLinearHistogram::bucketOf(std::uint64_t nanos)
{
    if (nanos < kSub)
        return static_cast<int>(nanos); // exact tiny values
    const int msb = 63 - std::countl_zero(nanos);
    const int octave = msb - kSubBits + 1;
    const int sub =
        static_cast<int>((nanos >> (msb - kSubBits)) & (kSub - 1));
    // octave <= 62, so the result is always < kBuckets.
    return octave * kSub + sub;
}

std::uint64_t
LogLinearHistogram::bucketUpperNanos(int bucket)
{
    if (bucket < kSub)
        return static_cast<std::uint64_t>(bucket);
    const int octave = bucket / kSub;
    const int sub = bucket % kSub;
    const int msb = octave + kSubBits - 1;
    const std::uint64_t step = std::uint64_t{1} << (msb - kSubBits);
    return (std::uint64_t{1} << msb) +
           static_cast<std::uint64_t>(sub + 1) * step - 1;
}

std::uint64_t
LogLinearHistogram::percentileNanos(double p) const
{
    if (count_ == 0)
        return 0;
    if (p < 0)
        p = 0;
    if (p > 1)
        p = 1;
    const auto rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += counts_[b];
        if (seen > rank)
            return bucketUpperNanos(b) < max_ ? bucketUpperNanos(b)
                                              : max_;
    }
    return max_;
}

} // namespace proteus::obs
