#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace proteus::obs {

namespace {

void
appendf(std::string *out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (n > 0)
        out->append(buf, static_cast<std::size_t>(
                             n < static_cast<int>(sizeof buf)
                                 ? n
                                 : static_cast<int>(sizeof buf) - 1));
}

} // namespace

const MetricSample *
TelemetrySnapshot::find(std::string_view name) const
{
    for (const MetricSample &sample : samples) {
        if (sample.name == name)
            return &sample;
    }
    return nullptr;
}

std::uint64_t
TelemetrySnapshot::value(std::string_view name) const
{
    const MetricSample *sample = find(name);
    return sample ? sample->value : 0;
}

std::string
TelemetrySnapshot::toJson() const
{
    std::string out;
    out.reserve(64 * (samples.size() + 2));
    appendf(&out, "{\n  \"commit_seq\": %" PRIu64 ",\n  \"metrics\": {",
            commitSeq);
    bool first = true;
    for (const MetricSample &sample : samples) {
        appendf(&out, "%s\n    \"%s\": ", first ? "" : ",",
                sample.name.c_str());
        first = false;
        if (sample.kind == MetricKind::kHistogram) {
            appendf(&out,
                    "{\"count\": %" PRIu64 ", \"p50_ns\": %" PRIu64
                    ", \"p95_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                    ", \"max_ns\": %" PRIu64 "}",
                    sample.hist.count(),
                    sample.hist.percentileNanos(0.50),
                    sample.hist.percentileNanos(0.95),
                    sample.hist.percentileNanos(0.99),
                    sample.hist.maxNanos());
        } else {
            appendf(&out, "%" PRIu64, sample.value);
        }
    }
    out.append("\n  }\n}\n");
    return out;
}

std::string
TelemetrySnapshot::toPrometheus(std::string_view prefix) const
{
    const std::string p(prefix);
    std::string out;
    out.reserve(96 * (samples.size() + 1));
    appendf(&out,
            "# TYPE %scommit_seq gauge\n%scommit_seq %" PRIu64 "\n",
            p.c_str(), p.c_str(), commitSeq);
    for (const MetricSample &sample : samples) {
        const std::string name = p + sample.name;
        switch (sample.kind) {
          case MetricKind::kCounter:
            appendf(&out,
                    "# TYPE %s counter\n%s %" PRIu64 "\n",
                    name.c_str(), name.c_str(), sample.value);
            break;
          case MetricKind::kGauge:
            appendf(&out, "# TYPE %s gauge\n%s %" PRIu64 "\n",
                    name.c_str(), name.c_str(), sample.value);
            break;
          case MetricKind::kHistogram:
            appendf(&out, "# TYPE %s summary\n", name.c_str());
            for (const double q : {0.5, 0.95, 0.99}) {
                appendf(&out,
                        "%s{quantile=\"%.2g\"} %" PRIu64 "\n",
                        name.c_str(), q,
                        sample.hist.percentileNanos(q));
            }
            appendf(&out, "%s_count %" PRIu64 "\n", name.c_str(),
                    sample.hist.count());
            break;
        }
    }
    return out;
}

} // namespace proteus::obs
