/**
 * @file
 * TelemetrySnapshot: one consistent walk of a MetricRegistry, plus
 * the two export formats produced from it.
 *
 * A snapshot is taken in ONE pass over the registry (every stripe of
 * every metric read once, in registration order), so the JSON and the
 * Prometheus dump of the same snapshot always agree with each other.
 * The pass itself is a *weak* snapshot with respect to concurrent
 * writers — counters keep counting while the walk runs, so two
 * metrics bumped by the same operation may differ by in-flight ops —
 * but every exported value is a real value the counter held during
 * the walk, and exporting both formats from one snapshot never pays
 * the walk twice.
 *
 * Formats:
 *  - toJson(): {"commit_seq": N, "metrics": {...}} — counters/gauges
 *    as numbers, histograms as {count, p50_ns, p95_ns, p99_ns,
 *    max_ns} objects. A superset of the store-state fields
 *    BENCH_kvstore.json reports.
 *  - toPrometheus(): text exposition format — counters/gauges as
 *    "# TYPE" + value lines, histograms as summaries (quantile
 *    labels + _count).
 */

#ifndef PROTEUS_OBS_EXPORT_HPP
#define PROTEUS_OBS_EXPORT_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"

namespace proteus::obs {

enum class MetricKind : std::uint8_t
{
    kCounter = 0,
    kGauge,
    kHistogram,
};

struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /** Counter/gauge value (unused for histograms). */
    std::uint64_t value = 0;
    /** Merged histogram data (kHistogram only). */
    LogLinearHistogram hist{};
};

struct TelemetrySnapshot
{
    /** Store-wide commit sequence at the walk (0 when not attached). */
    std::uint64_t commitSeq = 0;
    /** All metrics, in registration order. */
    std::vector<MetricSample> samples;

    const MetricSample *find(std::string_view name) const;
    /** Counter/gauge value by name; 0 when absent. */
    std::uint64_t value(std::string_view name) const;

    std::string toJson() const;
    /** `prefix` is prepended to every metric name ("proteus_"). */
    std::string toPrometheus(std::string_view prefix = "proteus_") const;
};

} // namespace proteus::obs

#endif // PROTEUS_OBS_EXPORT_HPP
