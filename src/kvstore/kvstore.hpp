/**
 * @file
 * ProteusKV: a sharded transactional key-value store on PolyTM.
 *
 * Keys are hash-partitioned over N shards; each shard is a Shard
 * (open-addressing table + private PolyTM instance) so every shard can
 * be tuned — backend, parallelism degree, contention knobs — fully
 * independently by its own ProteusRuntime (see kv_tunable.hpp).
 *
 * Concurrency design. Single-key operations are plain per-shard TM
 * transactions. Cross-shard atomicity cannot come from TM alone
 * (shards are separate PolyTM universes), so a writing multi-key
 * transaction commits through one of two protocols, selected by
 * KvStoreOptions::commitMode:
 *
 *  - kTwoPhase (default): a 2PC-style commit *over* the TM layer.
 *    Per touched shard (ascending shard order — no deadlock), one
 *    short *prepare* transaction validates the shard's reads and
 *    publishes per-slot write intents pointing at a shared commit
 *    record; the commit point then (1) reserves the store-wide commit
 *    sequence and stamps it into the record, (2) bumps every touched
 *    shard's sequence in the padded epoch vector, and (3) flips the
 *    record PENDING → COMMITTED with one atomic store; *finalize*
 *    transactions fold the intents into the live slot words.
 *    Single-key traffic keeps flowing the whole time: a reader that
 *    hits an intent resolves it against the commit record without
 *    blocking (pre-image while PENDING, post-image once COMMITTED),
 *    and a writer folds finished intents itself, waiting only out the
 *    short PENDING window of its exact slot.
 *
 *    Read-only multiOps and scans take a *snapshot-epoch* read: they
 *    sample the touched shards' sequences and then the store-wide
 *    commit sequence once, execute validation-free against that
 *    timestamp — an intent's commit is included iff its record
 *    sequence is within the snapshot, so resolving an in-flight 2PC
 *    never forces a retry round — and re-check the touched shards'
 *    sequences at the end. A round repeats only when a cross-shard
 *    commit actually flipped on a touched shard inside it (ordering
 *    (1)-(3) above guarantees a straddling round either sees the
 *    commit's sequence stamp or fails the trailing check, so a torn
 *    pre/post mix can never validate); on a write-free workload every
 *    round settles first try with zero retries and zero waits
 *    (snapshotReadStats() exposes the counters). Liveness under a
 *    sustained cross-shard commit storm on exactly the touched
 *    shards is probabilistic, not hard-bounded: after
 *    kSnapshotBackoffRounds failed rounds the reader sleeps with
 *    capped exponential backoff (counted as an escalation), which
 *    converges unless commits land inside *every* round
 *    indefinitely — the deliberate trade for deleting the old
 *    exclusive-latch escalation and the shared-latch cost it imposed
 *    on every writer. Since no latches are
 *    held anywhere on this path, the per-shard tuners see real TM
 *    aborts — the contention signal the recommender needs — instead
 *    of latch convoys. Reads mixed into a *writing* multiOp keep the
 *    wait-out-the-intent fallback (prepareGetTx) — they must observe
 *    the values their own commit builds on.
 *
 *  - kLatch (legacy, kept for A/B measurement): a per-shard
 *    reader/writer latch above TM. Single-key ops and batches take
 *    their shard's latch shared; a writing multiOp takes every
 *    touched shard's latch exclusive in ascending shard order and
 *    applies each shard's portion as one TM transaction, freezing all
 *    other traffic on those shards for the whole composite.
 *
 * Latches/2PC vs the ThreadGate: the per-shard tuner may disable a
 * worker thread (parallelism degree), which parks it inside PolyTM. A
 * parked thread must never strand a resource other operations wait on
 * — an exclusive latch (kLatch) or a PENDING intent (kTwoPhase). Two
 * mechanisms guarantee it: latched single-key/batch paths use
 * PolyTm::tryRun (never parks; on refusal the latch is released
 * before waitRunnable), and a multiOp pins its tokens for the
 * latched / prepare-to-finalize span (the paper's §4.2 escape hatch),
 * making any gate pause bounded by an in-flight algorithm switch. In
 * kTwoPhase mode single-key ops hold nothing across a park, so they
 * use the plain blocking path with no latch at all.
 *
 * Batching. A Batch stages operations and flushes them grouped by
 * shard, one TM transaction per shard group — amortizing latch and
 * begin/commit costs. Batches are atomic per shard, not across shards.
 */

#ifndef PROTEUS_KVSTORE_KVSTORE_HPP
#define PROTEUS_KVSTORE_KVSTORE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cacheline.hpp"
#include "kvstore/commit_record.hpp"
#include "kvstore/shard.hpp"
#include "kvstore/wal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metric_registry.hpp"

namespace proteus::kvstore {

/** How writing multiOps achieve cross-shard atomicity. */
enum class CommitMode : int
{
    /** Whole-shard exclusive latches (legacy A/B baseline). */
    kLatch = 0,
    /** Non-blocking 2PC over the TM layer (write intents). */
    kTwoPhase,
};

/**
 * Store-wide health. Transitions are monotonic (a store never
 * un-degrades — reopen it to recover) and observable: each one emits
 * a `health.transition` flight-recorder event and bumps the
 * `health_transitions` counter; the current state is exported as the
 * `health_state` gauge.
 *
 *  - kHealthy: full service.
 *  - kDegradedReadOnly: the durability plane cannot accept new
 *    writes (disk full, unrescuable sync loss, ...). Writes fail
 *    fast with KvStatus::kReadOnly *before* touching memory;
 *    reads/scans/snapshots keep serving, recovery state is intact.
 *  - kFailed: a hard I/O error left a shard's log unusable; the
 *    in-memory store still serves reads but its durability claims
 *    are void. Operators should restart (recovery replays the acked
 *    prefix).
 */
enum class Health : std::uint8_t
{
    kHealthy = 0,
    kDegradedReadOnly = 1,
    kFailed = 2,
};

/** "healthy" / "degraded_readonly" / "failed". */
const char *healthName(Health h);

/** Why a write was not acknowledged. */
enum class KvStatus : std::uint8_t
{
    kOk = 0,
    kNotFound,  ///< del: key absent (the op itself is fine)
    kNoSpace,   ///< table growth capped and the insert cannot fit
    kNoMemory,  ///< value arena exhausted (wide-value allocation)
    kReadOnly,  ///< store degraded: write rejected before any effect
    kWalError,  ///< WAL/checkpoint I/O failed mid-op: NOT acked; the
                ///< in-memory effect may or may not survive recovery
};

/** "ok" / "not_found" / "no_space" / ... */
const char *kvStatusName(KvStatus s);

/**
 * Result of a write operation. Converts to bool exactly like the old
 * `bool` returns did (true == acknowledged success), so existing call
 * sites keep compiling; callers that care *why* a write failed read
 * `status`.
 */
struct KvResult
{
    KvStatus status = KvStatus::kOk;

    KvResult() = default;
    KvResult(KvStatus s) : status(s) {}
    operator bool() const { return status == KvStatus::kOk; }
};

struct KvStoreOptions
{
    int numShards = 4;
    /** log2 of the *initial* slot count per shard. */
    unsigned log2SlotsPerShard = 14;
    /**
     * Growth cap per shard: tables double online until
     * 2^maxLog2SlotsPerShard slots. 0 = unbounded; equal to
     * log2SlotsPerShard pins the seed's fixed capacity, restoring
     * table-full failures for the capacity-planning tests.
     */
    unsigned maxLog2SlotsPerShard = 0;
    /** Consumed-slot percentage that triggers a proactive grow. */
    unsigned growLoadPercent = 70;
    /** TTL attached to puts that do not carry their own (0 = none). */
    std::uint64_t defaultTtlNanos = 0;
    /** Initial TM configuration applied to every shard. */
    polytm::TmConfig initial{};
    /** Cross-shard commit protocol (see file comment). */
    CommitMode commitMode = CommitMode::kTwoPhase;
    /**
     * Gates flight-recorder trace capture (2PC phases, retries,
     * maintenance, retunes). The metric-registry counters stay on
     * either way — they replaced the seed's stats counters at the
     * same relaxed-add cost, and the old accessors read through them.
     * Off is the baseline leg of the bench's instrumentation A/B.
     */
    bool telemetry = true;
    /**
     * Durability level (see wal.hpp). Anything but kOff requires
     * walDir and CommitMode::kTwoPhase (the latch protocol logs no
     * 2PC outcome records, so a crash could tear a cross-shard
     * composite). Construction replays whatever the directory holds
     * (crash recovery) before serving.
     */
    Durability durability = Durability::kOff;
    /** WAL directory (created if missing). */
    std::string walDir;
    /** Append-buffer spill threshold per shard log — the group-commit
     *  batch window in bytes. */
    std::size_t walFlushBytes = 1 << 16;
    /** Slots per checkpoint-walker transaction (bounded chunks, same
     *  pattern as the migration walker). */
    unsigned checkpointChunkSlots = 256;
};

/** One operation of a multi-key transaction or a batch. */
struct KvOp
{
    enum class Kind : std::uint8_t
    {
        kGet = 0,
        kPut,
        kDel,
        kAdd, //!< value += (int64)value-field; creates absent keys
        kPutBytes, //!< store `bytes` (wide value; value is scratch)
        kGetBytes, //!< read into `bytes`
    };

    Kind kind = Kind::kGet;
    std::uint64_t key = 0;
    std::uint64_t value = 0; //!< put payload / add delta; get result
    bool ok = false;         //!< outcome (found / applied)
    /** kPutBytes payload / kGetBytes result. */
    std::string bytes{};
    /** Relative TTL for kPut/kPutBytes (0 = store default). */
    std::uint64_t ttlNanos = 0;
};

class KvStore
{
  public:
    explicit KvStore(KvStoreOptions options = {});
    /** Tears the retired-context lists down iteratively (the chained
     *  unique_ptrs would otherwise recurse once per context). */
    ~KvStore();

    int numShards() const { return static_cast<int>(shards_.size()); }
    CommitMode commitMode() const { return commitMode_; }
    std::size_t shardOf(std::uint64_t key) const;
    Shard &shard(std::size_t i) { return *shards_[i]; }
    const Shard &shard(std::size_t i) const { return *shards_[i]; }

    /**
     * Per-thread handle holding one registered ThreadToken per shard.
     * Open/close from the owning thread; a session must not be shared
     * across threads.
     */
    class Session
    {
      public:
        Session() = default;
        Session(Session &&) = default;
        /** Move-assign swaps the displaced resources into `other` so
         *  they are released properly (tokens deregistered, commit
         *  context parked — never freed) when `other` dies. */
        Session &
        operator=(Session &&other) noexcept
        {
            if (this != &other) {
                std::swap(store_, other.store_);
                ctx_.swap(other.ctx_);
                tokens_.swap(other.tokens_);
                scratch_ = std::move(other.scratch_);
                slices_ = std::move(other.slices_);
                intents_ = std::move(other.intents_);
                intentRanges_ = std::move(other.intentRanges_);
                undo_ = std::move(other.undo_);
                undoRanges_ = std::move(other.undoRanges_);
                seqSnapshot_ = std::move(other.seqSnapshot_);
                reclaim_ = std::move(other.reclaim_);
                newBlobs_ = std::move(other.newBlobs_);
                retryOps_ = std::move(other.retryOps_);
                arenaCaches_.swap(other.arenaCaches_);
                ownerLimbos_.swap(other.ownerLimbos_);
                walOps_ = std::move(other.walOps_);
                walOpRanges_ = std::move(other.walOpRanges_);
                walLsns_ = std::move(other.walLsns_);
                walBatchEnds_ = std::move(other.walBatchEnds_);
                walStatus_ = other.walStatus_;
            }
            return *this;
        }
        /**
         * A session destroyed without closeSession() (e.g. stack
         * unwinding) deregisters its shard tokens and parks its
         * commit context back at the store — destroying the context
         * would free intent memory a concurrent reader may still
         * dereference. Sessions must not outlive the store (their
         * tokens already reference its shards).
         */
        ~Session();

        /** This session's registered token on shard `i` — for callers
         *  driving Shard maintenance or *Tx primitives directly. */
        polytm::ThreadToken &token(std::size_t i) { return tokens_[i]; }

        /** One contiguous run of grouped ops on one shard
         *  (implementation detail of multiOp/applyBatch). */
        struct ShardSlice
        {
            std::uint32_t shard;
            std::uint32_t begin;
            std::uint32_t end;
        };

        /** One grouped op: home shard, the op, and the absolute TTL
         *  deadline its write carries (0 = none). */
        struct TaggedOp
        {
            std::uint32_t shard;
            KvOp *op;
            std::uint64_t expiry;
        };

        /** Pre-image of one applied write (compensation log for
         *  all-or-nothing table-full abort). */
        struct Undo
        {
            std::uint64_t key;
            SlotImage pre;
        };

      private:
        friend class KvStore;

        KvStore *store_ = nullptr;
        std::vector<polytm::ThreadToken> tokens_;
        /** Reusable multiOp/batch grouping scratch (hot path stays
         *  allocation-free in steady state): ops tagged with their
         *  home shard, and the contiguous per-shard slices. */
        std::vector<TaggedOp> scratch_;
        std::vector<ShardSlice> slices_;
        /** 2PC state: commit record + intent arena (lazily created,
         *  retired — not freed — on close; see commit_record.hpp),
         *  the intents prepared by the current multiOp, and their
         *  per-slice [begin, end) ranges. */
        std::unique_ptr<CommitContext> ctx_;
        std::vector<WriteIntent *> intents_;
        std::vector<std::pair<std::uint32_t, std::uint32_t>>
            intentRanges_;
        /** Compensation log (latch mode + single-shard fast path) and
         *  per-slice ranges. */
        std::vector<Undo> undo_;
        std::vector<std::pair<std::uint32_t, std::uint32_t>>
            undoRanges_;
        /** Per-round shard-sequence snapshot (2PC read validation). */
        std::vector<std::uint64_t> seqSnapshot_;
        /**
         * Displaced blob handles of the current multiOp, tagged with
         * their home shard; freed into the shard arenas only once the
         * composite committed (a failed attempt's pre-images stay
         * live). Appended per slice only after that slice's
         * transaction ran, so retried attempts never double-capture.
         */
        std::vector<std::pair<std::uint32_t, std::uint64_t>> reclaim_;
        /** Blobs allocated up-front for kPutBytes ops; freed only when
         *  the whole multiOp ultimately fails (never published). */
        std::vector<std::pair<std::uint32_t, std::uint64_t>> newBlobs_;
        /** applyBatch grow-retry scratch (space-failed ops only). */
        std::vector<TaggedOp> retryOps_;
        /** Per-shard free-blob magazines (one ValueArena::Cache per
         *  shard): wide-value allocation stays off the shared arena
         *  lists in steady state. Flushed back on close. */
        std::vector<ValueArena::Cache> arenaCaches_;
        /** Per-shard owner limbos: displaced blob handles park here
         *  and the session recycles them itself once reader epochs
         *  quiesce (ValueArena::retireOwned) — the shared limbo lock
         *  leaves the displace hot path entirely. Spilled to the
         *  shared limbo on close. */
        std::vector<ValueArena::OwnerLimbo> ownerLimbos_;
        /** WAL capture scratch (durable stores only): post-image ops
         *  recorded inside the current transaction bodies, their
         *  per-slice [begin, end) ranges, and each slice's LSN. */
        std::vector<wal::WalOp> walOps_;
        std::vector<std::pair<std::uint32_t, std::uint32_t>>
            walOpRanges_;
        std::vector<std::uint64_t> walLsns_;
        /** applyBatch scratch: per-shard highest WAL append end of
         *  the current batch — the batch rides ONE barrier per
         *  touched shard instead of one per slice. */
        std::vector<std::uint64_t> walBatchEnds_;
        /** First WAL failure observed by the current multiOp (reset
         *  per op; reported as the op's KvResult). */
        KvStatus walStatus_ = KvStatus::kOk;
    };

    Session openSession();
    void closeSession(Session &session);

    /**
     * Single-key operations (one TM transaction on the home shard).
     * put/putBytes grow the shard online instead of failing on a full
     * table; they fail with kNoSpace only when growth is capped
     * (maxLog2SlotsPerShard) and the table stays full. On a degraded
     * store writes fail fast with kReadOnly before any effect; a WAL
     * error mid-op yields kWalError (not acked — the in-memory
     * effect may or may not survive recovery). ttl_nanos is a
     * relative expiry (0 = the store's defaultTtlNanos).
     */
    bool get(Session &session, std::uint64_t key,
             std::uint64_t *value = nullptr);
    KvResult put(Session &session, std::uint64_t key,
                 std::uint64_t value, std::uint64_t ttl_nanos = 0);
    /** kNotFound when the key was absent (compares false, matching
     *  the old bool contract). */
    KvResult del(Session &session, std::uint64_t key);
    /** Wide values: arbitrary byte strings (inline up to 7 bytes,
     *  blob-backed beyond; see value_arena.hpp for the contract). */
    KvResult putBytes(Session &session, std::uint64_t key,
                      const void *data, std::size_t len,
                      std::uint64_t ttl_nanos = 0);
    bool getBytes(Session &session, std::uint64_t key, std::string *out);
    std::size_t scan(Session &session, std::uint64_t start_key,
                     std::size_t limit,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>
                         *out = nullptr);
    /** Byte-decoding scan (numeric values yield their 8 raw bytes). */
    std::size_t scanEntries(Session &session, std::uint64_t start_key,
                            std::size_t limit,
                            std::vector<Shard::ScanEntry> *out);

    /**
     * Multi-key transaction. Results land in each op's ok/value/bytes
     * fields. A put/add that runs out of table space aborts the
     * composite with **no effect** — all-or-nothing in both commit
     * modes (2PC aborts the commit record before anything is visible;
     * latch mode rolls already-applied shards back through a
     * compensation log while still holding every latch) — after which
     * the store grows the full shard online and retries the whole
     * composite transparently. Returns false only when growth is
     * capped (maxLog2SlotsPerShard) and the insert still cannot fit;
     * the ops' result fields are unspecified after a false return.
     *
     * Atomicity contract. A *writing* multiOp is atomic to every
     * observer in both modes: under kLatch it holds its shards
     * exclusively; under kTwoPhase its writes become visible together
     * at the commit-record flip, and any observer that catches the
     * finalize in progress reads through the committed intents. A
     * *read-only* multiOp observes a consistent cross-shard snapshot
     * with respect to writing multiOps (kLatch: shared latches;
     * kTwoPhase: the snapshot-epoch read — in-flight intents resolve
     * against the sampled commit sequence, and the round repeats only
     * if a cross-shard commit flipped on a *touched* shard inside
     * it). In neither mode is it a
     * serializable snapshot against independent *single-key* writers:
     * another session's two sequential puts to different shards may
     * be observed out of program order. Under kTwoPhase, reads mixed
     * into a *writing* multiOp are exact for keys the composite also
     * writes (read-your-writes) and per-shard consistent otherwise,
     * but do not form a global snapshot.
     */
    KvResult multiOp(Session &session, std::vector<KvOp> &ops);

    /** Staged operations, flushed grouped by shard. */
    class Batch
    {
      public:
        void
        get(std::uint64_t key)
        {
            ops_.push_back({KvOp::Kind::kGet, key, 0, false});
        }
        void
        put(std::uint64_t key, std::uint64_t value)
        {
            ops_.push_back({KvOp::Kind::kPut, key, value, false});
        }
        void
        del(std::uint64_t key)
        {
            ops_.push_back({KvOp::Kind::kDel, key, 0, false});
        }
        void
        putBytes(std::uint64_t key, std::string bytes,
                 std::uint64_t ttl_nanos = 0)
        {
            ops_.push_back({KvOp::Kind::kPutBytes, key, 0, false,
                            std::move(bytes), ttl_nanos});
        }
        void
        getBytes(std::uint64_t key)
        {
            ops_.push_back({KvOp::Kind::kGetBytes, key, 0, false});
        }

        std::size_t size() const { return ops_.size(); }
        const std::vector<KvOp> &ops() const { return ops_; }
        void clear() { ops_.clear(); }

      private:
        friend class KvStore;
        std::vector<KvOp> ops_;
    };

    /**
     * Apply a batch: one TM transaction per touched shard (atomic per
     * shard only). Results are readable through `batch.ops()` until
     * the next clear(). A put that finds its shard full commits the
     * fitting prefix, grows the shard and retries only the
     * space-failed ops (they wrote nothing, so the retry is exact).
     * Returns false only when growth is capped and an insert still
     * cannot fit. This is also the loop that drives background
     * maintenance: each flushed shard advances its migration /
     * TTL-sweep walker afterwards.
     */
    KvResult applyBatch(Session &session, Batch &batch);

    /**
     * Sum of per-shard PolyTM stats. This is a *weak* snapshot: each
     * shard's per-thread profiles are sampled in turn while commits
     * continue, so totals from different shards (or commits vs
     * aborts) may differ by operations in flight during the walk —
     * every value is real, but the sum is not a single point in time.
     * The same holds for telemetry(): one pass, weak per metric.
     * Quiesce the store first when exact cross-counter invariants
     * are needed (the tests do).
     */
    polytm::PolyStats totalStats() const;

    /**
     * Store-wide commit sequence: the read timestamp snapshot reads
     * sample, reserved by every cross-shard 2PC at its commit point
     * (so it counts commits that reached the commit point, including
     * the handful that are mid-flip). Monotonic.
     */
    std::uint64_t commitSequence() const
    {
        return commitSeq_.load(std::memory_order_acquire);
    }

    /** Snapshot-epoch read-path telemetry (all monotonic). On a
     *  write-free workload retries, pendingWaits and escalations must
     *  all stay zero — the new-test + CI gate for the validation-free
     *  read path. */
    struct SnapshotReadStats
    {
        /** Snapshot read rounds completed (multiOp reads + scans). */
        std::uint64_t rounds = 0;
        /** Rounds repeated because a cross-shard commit flipped on a
         *  touched shard inside them (trailing sequence mismatch). */
        std::uint64_t retries = 0;
        /** In-flight commit verdicts briefly waited out (the commit
         *  had reserved a sequence inside the reader's snapshot). */
        std::uint64_t pendingWaits = 0;
        /** Reads that exhausted the yield budget and entered the
         *  sleeping-backoff regime (sustained commit storm on exactly
         *  the touched shards). */
        std::uint64_t escalations = 0;
    };
    SnapshotReadStats snapshotReadStats() const;

    /** The store's instrument registry. External publishers (e.g.
     *  the traffic driver) register their own metrics here so one
     *  telemetry() walk exports everything. */
    obs::MetricRegistry &metrics() { return metrics_; }
    /** Trace-event rings: 2PC phases, snapshot retries/escalations,
     *  shard maintenance, arena reclamation, retune decisions. */
    obs::FlightRecorder &flightRecorder() { return recorder_; }
    const obs::FlightRecorder &flightRecorder() const
    {
        return recorder_;
    }

    /**
     * One-pass walk of every registered metric — the native striped
     * counters/histograms plus the bridged TM / arena / shard stats —
     * stamped with the store-wide commit sequence. Weak-snapshot
     * semantics (see totalStats()); render with toJson() /
     * toPrometheus().
     */
    obs::TelemetrySnapshot telemetry() const;

    /** Record an auto-tuner decision: trace event + retune counter.
     *  `packedConfigs` is (oldConfig << 32) | newConfig; `kpiBits`
     *  the bit-cast KPI that triggered it. */
    void noteRetune(int shard, std::uint64_t packedConfigs,
                    std::uint64_t kpiBits);

    /** Unpark every shard's disabled workers (shutdown path). */
    void resumeAllForShutdown();

    /** True when the store runs with a WAL (durability != kOff). */
    bool durable() const { return !wals_.empty(); }

    /** Current health (see Health). Monotonic; reads stay served in
     *  every state. */
    Health
    health() const
    {
        return static_cast<Health>(
            health_.load(std::memory_order_acquire));
    }

    /**
     * Checkpoint every shard: rotate its log segment, capture a
     * barrier LSN, walk the table in bounded transactional chunks
     * (writers never stall — racing writes land after the barrier and
     * replay over the image), write the image atomically, and delete
     * the log generations older than the *previous* checkpoint (the
     * previous generation is retained so recovery can fall back to it
     * if the newest image is corrupt). Safe to call on a live store;
     * concurrent checkpoint() calls serialize. Returns false when any
     * shard's checkpoint failed — the store keeps serving from the
     * old checkpoints and skips truncation, degrading only when the
     * failure was lack of space.
     */
    bool checkpoint(Session &session);

    /** Flush (and, under kFsyncGroup, fsync) every shard's append
     *  buffer — the graceful-shutdown final barrier. No-op when not
     *  durable. */
    void flushWal();

    /** What construction-time recovery replayed (zeroes for a fresh
     *  directory or a non-durable store). */
    struct RecoveryInfo
    {
        std::uint64_t checkpointEntries = 0;
        std::uint64_t replayedRecords = 0;
        std::uint64_t replayedOps = 0;
        std::uint64_t inDoubtAborted = 0;
        std::uint64_t tornBytes = 0;
    };
    const RecoveryInfo &recoveryInfo() const { return recoveryInfo_; }

  private:
    /**
     * Run `body` as one transaction on shard `s`. kTwoPhase: plain
     * blocking run — the body holds no external resource, so parking
     * is harmless. kLatch: under the shard's shared latch, without
     * ever holding the latch while parked (tryRun refusals release
     * the latch, wait for admission, retry).
     */
    template <typename F>
    void
    runOnShard(Session &session, std::size_t s, F &&body)
    {
        polytm::PolyTm &poly = shards_[s]->poly();
        if (commitMode_ == CommitMode::kTwoPhase) {
            poly.run(session.tokens_[s], body);
            return;
        }
        for (;;) {
            {
                std::shared_lock<std::shared_mutex> lk(*latches_[s]);
                if (poly.tryRun(session.tokens_[s], body))
                    return;
            }
            poly.waitRunnable(session.tokens_[s]);
        }
    }

    /** Writing-path verdicts: committed; table-full with the shard
     *  already grown (caller re-runs the whole composite); or a hard
     *  failure (growth capped). */
    enum class OpStatus
    {
        kDone,
        kRetryAfterGrow,
        kFailed,
    };

    /** Yield-only retry budget before a snapshot read backs off with
     *  sleeps (counted as an escalation in SnapshotReadStats). */
    static constexpr int kSnapshotBackoffRounds = 64;

    /** Per-round backoff shared by the snapshot read paths. */
    void snapshotRetryPause(int round);

    /**
     * Run a single-shard snapshot-epoch read: sample the shard's
     * commit sequence and the store-wide read timestamp, run `body`
     * (it receives the transaction and the ReadView) validation-free,
     * and re-check the shard sequence — repeating only when a
     * cross-shard commit actually flipped on this shard mid-round.
     * (Latch mode bumps no sequences, so its rounds settle on the
     * first try; the shared latch inside runOnShard is its ordering.)
     */
    template <typename F>
    void
    runReadSnapshot(Session &session, std::size_t s, F &&body)
    {
        std::atomic<std::uint64_t> &seq = shardSeqs_[s].value;
        for (int round = 0;; ++round) {
            const std::uint64_t s0 =
                seq.load(std::memory_order_acquire);
            // The read timestamp is sampled AFTER the shard sequence:
            // a commit whose bump this round straddles is then
            // guaranteed to have reserved its (visible) sequence
            // within our snapshot — see the file comment.
            const ReadView view{ReadView::Mode::kSnapshot,
                                commitSeq_.load(
                                    std::memory_order_acquire)};
            runOnShard(session, s, [&](polytm::Tx &tx) {
                body(tx, view);
            });
            snapRounds_.add(1, s);
            if (seq.load(std::memory_order_acquire) == s0)
                return;
            snapRetries_.add(1, s);
            recorder_.record(obs::TraceKind::kSnapshotRetry,
                             static_cast<std::int32_t>(s), view.seq,
                             static_cast<std::uint64_t>(round));
            snapshotRetryPause(round);
        }
    }

    /** All ops on one shard: one TM transaction is already atomic, so
     *  the cross-shard protocol (either one) is skipped entirely. */
    OpStatus multiOpSingleShard(Session &session, bool writes);
    OpStatus multiOpTwoPhaseWrite(Session &session);
    void multiOpTwoPhaseRead(Session &session);
    OpStatus multiOpLatched(Session &session, bool writes);

    /** Free / keep the blobs staged for this multiOp's kPutBytes ops
     *  (kept on success — they are live table values now). */
    void releaseStagedBlobs(Session &session, bool committed);
    /** Retire the displaced pre-image blobs after a committed op. */
    void freeReclaimed(Session &session);

    /** Park displaced (committed-visible) blob handles in the
     *  session's per-shard owner limbo; the session drains its own
     *  ring once quiescence is proven (ValueArena::retireOwned). */
    void retireDisplaced(Session &session, std::uint32_t shard,
                         const std::vector<std::uint64_t> &refs);
    /** Hand every owner-limbo entry to the shared arena limbos
     *  (session close / destruction). */
    void spillOwnerLimbos(Session &session);

    KvStoreOptions options_;
    CommitMode commitMode_ = CommitMode::kTwoPhase;
    /**
     * Observability plane. Declared before shards_ (destroyed after
     * them): the shards hold raw pointers into the recorder, and the
     * registry's bridge callbacks read shard state during telemetry().
     * Counter handles are resolved once here; the hot paths record
     * through the references with a single relaxed add, striped by
     * shard (or worker) exactly like the seed's stripe arrays.
     */
    obs::MetricRegistry metrics_;
    obs::FlightRecorder recorder_;
    obs::Counter &snapRounds_;
    obs::Counter &snapRetries_;
    obs::Counter &snapEscalations_;
    obs::Counter &twoPhaseCommits_;
    obs::Counter &twoPhaseAborts_;
    obs::Counter &retunes_;
    obs::Counter &walAppends_;
    obs::Counter &walFsyncs_;
    obs::Counter &walBytes_;
    obs::Counter &walCkptChunks_;
    obs::Counter &walErrors_;
    obs::Counter &walRescues_;
    obs::Counter &walCkptFailures_;
    obs::Counter &writesRejected_;
    obs::Counter &healthTransitions_;
    obs::Histogram &walFsyncNanos_;
    std::vector<std::unique_ptr<Shard>> shards_;
    /** kLatch-mode ordering only; the 2PC paths never touch these. */
    std::vector<std::unique_ptr<std::shared_mutex>> latches_;
    /** Store-wide commit sequence: reserved (fetch_add) by every 2PC
     *  at its commit point *before* the per-shard bumps and the
     *  status flip; snapshot reads sample it as their timestamp. */
    std::atomic<std::uint64_t> commitSeq_{0};
    /**
     * The snapshot-epoch vector: per-shard commit sequences on
     * private cache lines, bumped for every *touched* shard between
     * the sequence reservation and the commit flip. Read-only rounds
     * sample the shards they actually read and re-check them at the
     * end, so commits to unrelated shards never force a retry.
     */
    std::unique_ptr<PaddedAtomicU64[]> shardSeqs_;
    /**
     * Durability plane (empty when durability == kOff). wals_[s] is
     * shard s's log; walGen_[s] the generation its active segment and
     * next checkpoint carry. walTxnId_ names cross-shard 2PC
     * transactions in prepare/outcome records (monotonic, seeded past
     * recovery's max).
     */
    std::vector<std::unique_ptr<wal::ShardWal>> wals_;
    std::vector<std::uint64_t> walGen_;
    std::atomic<std::uint64_t> walTxnId_{0};
    /** Serializes checkpoint() callers (rotation + gen bookkeeping)
     *  and the sync-loss rescue rotation in onWalError. */
    std::mutex walCkptMutex_;
    RecoveryInfo recoveryInfo_;
    /** Monotonic health ladder (see Health); raised by raiseHealth. */
    std::atomic<std::uint8_t> health_{0};

    /** One shard's checkpoint (see checkpoint()); false on failure. */
    bool checkpointShard(Session &session, std::size_t s);

    /** Log one single-key mutation as a kBatch record and ride the
     *  group-commit barrier (ack-after-durable). Returns the status
     *  the caller must report (kOk = acked durable). */
    KvStatus logSingleOp(std::size_t s, std::uint64_t lsn,
                         wal::WalOp op);

    /** Raise health monotonically (never lowers); emits the
     *  health.transition event + counter on an actual change. */
    void raiseHealth(Health target, int shard);

    /**
     * Central failure-ladder policy for a shard's WAL error:
     * kNoSpace degrades the store read-only; kSyncLoss attempts the
     * one-shot fresh-generation rescue (staying healthy on success,
     * degrading otherwise); kIo fails the store. Returns the
     * KvStatus the failed operation must report (never kOk).
     */
    KvStatus onWalError(std::size_t s, wal::WalError err);
    /** onWalError body for callers already holding walCkptMutex_
     *  (checkpointShard runs the whole shard loop under it). */
    KvStatus onWalErrorLocked(std::size_t s, wal::WalError err);

    /** onWalError for a kBatch record whose memory effects are
     *  already committed (and so cannot be unwound). If the record
     *  never entered the log (res.end == 0: the append failed fast
     *  against a sticky error) and the ladder's rescue left the
     *  shard's log accepting again, re-appends it there — later
     *  commits on the fresh generation embed these post-images, and
     *  recovery (LSN-ordered replay) must see the whole batch or a
     *  later writer of one of its keys would resurrect it half-
     *  applied. The op stays un-acked either way. */
    KvStatus committedBatchWalError(std::size_t s, wal::Record &rec,
                                    const wal::AppendResult &res);

    /** Write-path admission gate: kOk to proceed, kReadOnly once the
     *  store is degraded/failed (checked before any memory effect). */
    KvStatus
    admitWrite()
    {
        if (health() == Health::kHealthy) [[likely]]
            return KvStatus::kOk;
        writesRejected_.add(1, 0);
        return KvStatus::kReadOnly;
    }

    /** Park a clean commit context for reuse (see ctxPool_). */
    void retireContext(std::unique_ptr<CommitContext> ctx) noexcept;

    std::mutex ctxMutex_;
    /**
     * Retired commit contexts, kept alive until store destruction so
     * stale intent pointers in concurrent readers never dangle.
     * Cleanly closed sessions park theirs in the reuse pool
     * (`ctxPool_`; epoch tagging makes reuse by a new session safe);
     * only contexts poisoned by a mid-protocol exception — which may
     * still own uncleared intents — land in the permanent
     * `graveyard_`. Both are intrusive lists (CommitContext::next):
     * parking must stay allocation-free and noexcept because it runs
     * on bad_alloc unwind paths and in ~Session.
     */
    std::unique_ptr<CommitContext> graveyard_;
    std::unique_ptr<CommitContext> ctxPool_;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_KVSTORE_HPP
