/**
 * @file
 * ProteusKV: a sharded transactional key-value store on PolyTM.
 *
 * Keys are hash-partitioned over N shards; each shard is a Shard
 * (open-addressing table + private PolyTM instance) so every shard can
 * be tuned — backend, parallelism degree, contention knobs — fully
 * independently by its own ProteusRuntime (see kv_tunable.hpp).
 *
 * Concurrency design. Single-key operations are plain per-shard TM
 * transactions. Cross-shard atomicity cannot come from TM alone
 * (shards are separate PolyTM universes), so the store layers a
 * per-shard reader/writer latch on top:
 *  - single-key ops and single-shard batches take the shard latch
 *    shared (they still conflict-check each other through TM);
 *  - a multi-key transaction takes the latches of every shard it
 *    touches — exclusive when it writes, shared when read-only — in
 *    ascending shard order (global order => no deadlock), then applies
 *    each shard's portion as one TM transaction per shard.
 * While a writing multiOp holds its exclusive latches no other
 * operation can observe those shards, so the composite commit is
 * atomic to all observers.
 *
 * Latches vs the ThreadGate: the per-shard tuner may disable a worker
 * thread (parallelism degree), which parks it inside PolyTM. A parked
 * thread must never hold a shard latch, or a writing multiOp blocks
 * until some future reconfigure — possibly forever. Two mechanisms
 * guarantee it: latched single-key/batch paths use PolyTm::tryRun
 * (never parks; on refusal the latch is released before
 * waitRunnable), and multiOp pins its tokens for the latched span
 * (the paper's §4.2 escape hatch), making any gate pause bounded by
 * an in-flight algorithm switch.
 *
 * Batching. A Batch stages operations and flushes them grouped by
 * shard, one TM transaction per shard group — amortizing latch and
 * begin/commit costs. Batches are atomic per shard, not across shards.
 */

#ifndef PROTEUS_KVSTORE_KVSTORE_HPP
#define PROTEUS_KVSTORE_KVSTORE_HPP

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "kvstore/shard.hpp"

namespace proteus::kvstore {

struct KvStoreOptions
{
    int numShards = 4;
    /** log2 slot count per shard. */
    unsigned log2SlotsPerShard = 14;
    /** Initial TM configuration applied to every shard. */
    polytm::TmConfig initial{};
};

/** One operation of a multi-key transaction or a batch. */
struct KvOp
{
    enum class Kind : std::uint8_t
    {
        kGet = 0,
        kPut,
        kDel,
        kAdd, //!< value += (int64)value-field; creates absent keys
    };

    Kind kind = Kind::kGet;
    std::uint64_t key = 0;
    std::uint64_t value = 0; //!< put payload / add delta; get result
    bool ok = false;         //!< outcome (found / applied)
};

class KvStore
{
  public:
    explicit KvStore(KvStoreOptions options = {});

    int numShards() const { return static_cast<int>(shards_.size()); }
    std::size_t shardOf(std::uint64_t key) const;
    Shard &shard(std::size_t i) { return *shards_[i]; }
    const Shard &shard(std::size_t i) const { return *shards_[i]; }

    /**
     * Per-thread handle holding one registered ThreadToken per shard.
     * Open/close from the owning thread; a session must not be shared
     * across threads.
     */
    class Session
    {
      public:
        Session() = default;
        Session(Session &&) = default;
        Session &operator=(Session &&) = default;

        /** One contiguous run of grouped ops on one shard
         *  (implementation detail of multiOp/applyBatch). */
        struct ShardSlice
        {
            std::uint32_t shard;
            std::uint32_t begin;
            std::uint32_t end;
        };

      private:
        friend class KvStore;
        std::vector<polytm::ThreadToken> tokens_;
        /** Reusable multiOp/batch grouping scratch (hot path stays
         *  allocation-free in steady state): ops tagged with their
         *  home shard, and the contiguous per-shard slices. */
        std::vector<std::pair<std::uint32_t, KvOp *>> scratch_;
        std::vector<ShardSlice> slices_;
    };

    Session openSession();
    void closeSession(Session &session);

    /** Single-key operations (one TM transaction on the home shard). */
    bool get(Session &session, std::uint64_t key,
             std::uint64_t *value = nullptr);
    bool put(Session &session, std::uint64_t key, std::uint64_t value);
    bool del(Session &session, std::uint64_t key);
    std::size_t scan(Session &session, std::uint64_t start_key,
                     std::size_t limit,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>
                         *out = nullptr);

    /**
     * Multi-key transaction. Results land in each op's ok/value
     * fields. Returns false iff a put/add ran out of table space
     * mid-commit (the shard-local prefix stays applied; a full table
     * is a capacity-planning bug, not a recoverable state).
     *
     * Atomicity contract: a *writing* multiOp holds its shards
     * exclusively, so no other store operation can observe it
     * half-committed. A *read-only* multiOp takes shared latches: it
     * can never see a torn writing multiOp, but it is not a
     * serializable snapshot against independent single-key writers —
     * another session's two sequential puts to different shards may
     * be observed out of program order. Callers needing a full
     * snapshot against single-key traffic too must include a write
     * (or see ROADMAP: 2PC-style commit).
     */
    bool multiOp(Session &session, std::vector<KvOp> &ops);

    /** Staged operations, flushed grouped by shard. */
    class Batch
    {
      public:
        void
        get(std::uint64_t key)
        {
            ops_.push_back({KvOp::Kind::kGet, key, 0, false});
        }
        void
        put(std::uint64_t key, std::uint64_t value)
        {
            ops_.push_back({KvOp::Kind::kPut, key, value, false});
        }
        void
        del(std::uint64_t key)
        {
            ops_.push_back({KvOp::Kind::kDel, key, 0, false});
        }

        std::size_t size() const { return ops_.size(); }
        const std::vector<KvOp> &ops() const { return ops_; }
        void clear() { ops_.clear(); }

      private:
        friend class KvStore;
        std::vector<KvOp> ops_;
    };

    /**
     * Apply a batch: one TM transaction per touched shard (atomic per
     * shard only). Results are readable through `batch.ops()` until
     * the next clear(). Returns false on table-full.
     */
    bool applyBatch(Session &session, Batch &batch);

    /** Sum of per-shard PolyTM stats. */
    polytm::PolyStats totalStats() const;

    /** Unpark every shard's disabled workers (shutdown path). */
    void resumeAllForShutdown();

  private:
    /**
     * Run `body` as one transaction on shard `s` under its shared
     * latch, without ever holding the latch while parked: tryRun
     * refusals release the latch, wait for admission, retry.
     */
    template <typename F>
    void
    runOnShard(Session &session, std::size_t s, F &&body)
    {
        polytm::PolyTm &poly = shards_[s]->poly();
        for (;;) {
            {
                std::shared_lock<std::shared_mutex> lk(*latches_[s]);
                if (poly.tryRun(session.tokens_[s], body))
                    return;
            }
            poly.waitRunnable(session.tokens_[s]);
        }
    }

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<std::shared_mutex>> latches_;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_KVSTORE_HPP
