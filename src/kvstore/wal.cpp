#include "kvstore/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "common/fault.hpp"

namespace proteus::kvstore::wal {

namespace fs = std::filesystem;

namespace {

/** Frames larger than this are treated as corruption, not data. */
constexpr std::uint32_t kMaxFrameLen = 1u << 28;
constexpr std::uint32_t kMetaMagic = 0x50574d31; // "PWM1"
constexpr std::uint64_t kCkptVersion = 1;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    // CRC32C (Castagnoli) reflected polynomial.
    constexpr std::uint32_t kPoly = 0x82f63b78u;
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
        table[i] = crc;
    }
    return table;
}

void
putU8(std::string *out, std::uint8_t v)
{
    out->push_back(static_cast<char>(v));
}

void
putU32(std::string *out, std::uint32_t v)
{
    char b[4];
    std::memcpy(b, &v, 4);
    out->append(b, 4);
}

void
putU64(std::string *out, std::uint64_t v)
{
    char b[8];
    std::memcpy(b, &v, 8);
    out->append(b, 8);
}

/** Bounds-checked little cursor over a decoded payload. */
struct Cursor {
    const char *p;
    std::size_t left;

    bool
    u8(std::uint8_t *v)
    {
        if (left < 1)
            return false;
        *v = static_cast<std::uint8_t>(*p);
        ++p;
        --left;
        return true;
    }
    bool
    u32(std::uint32_t *v)
    {
        if (left < 4)
            return false;
        std::memcpy(v, p, 4);
        p += 4;
        left -= 4;
        return true;
    }
    bool
    u64(std::uint64_t *v)
    {
        if (left < 8)
            return false;
        std::memcpy(v, p, 8);
        p += 8;
        left -= 8;
        return true;
    }
    bool
    blob(std::string *v, std::size_t n)
    {
        if (left < n)
            return false;
        v->assign(p, n);
        p += n;
        left -= n;
        return true;
    }
};

void
encodeOp(const WalOp &op, std::string *out)
{
    putU8(out, static_cast<std::uint8_t>(op.kind));
    putU64(out, op.key);
    switch (op.kind) {
        case WalOp::Kind::kPut:
            putU64(out, op.value);
            putU64(out, op.expiry);
            break;
        case WalOp::Kind::kPutBytes:
            putU64(out, op.expiry);
            putU32(out, static_cast<std::uint32_t>(op.bytes.size()));
            out->append(op.bytes);
            break;
        case WalOp::Kind::kDel:
            break;
    }
}

bool
decodeOp(Cursor *c, WalOp *op)
{
    std::uint8_t kind = 0;
    if (!c->u8(&kind) || kind > 2 || !c->u64(&op->key))
        return false;
    op->kind = static_cast<WalOp::Kind>(kind);
    switch (op->kind) {
        case WalOp::Kind::kPut:
            return c->u64(&op->value) && c->u64(&op->expiry);
        case WalOp::Kind::kPutBytes: {
            std::uint32_t n = 0;
            return c->u64(&op->expiry) && c->u32(&n) &&
                   n <= kMaxFrameLen && c->blob(&op->bytes, n);
        }
        case WalOp::Kind::kDel:
            return true;
    }
    return false;
}

void
encodeOps(const std::vector<WalOp> &ops, std::string *out)
{
    putU32(out, static_cast<std::uint32_t>(ops.size()));
    for (const WalOp &op : ops)
        encodeOp(op, out);
}

bool
decodeOps(Cursor *c, std::vector<WalOp> *ops)
{
    std::uint32_t n = 0;
    if (!c->u32(&n) || n > kMaxFrameLen)
        return false;
    ops->clear();
    ops->reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        WalOp op;
        if (!decodeOp(c, &op))
            return false;
        ops->push_back(std::move(op));
    }
    return true;
}

/** Map a write()-path errno onto the ladder. EINTR/EAGAIN never
 *  reach this (retried by the caller). */
WalError
classifyWriteErrno(int err)
{
    if (err == ENOSPC || err == EDQUOT)
        return WalError::kNoSpace;
    return WalError::kIo;
}

void
logWalError(const char *what, const std::string &path, WalError werr,
            int err)
{
    std::fprintf(stderr,
                 "proteus wal: %s failed on %s (errno %d, class %s); "
                 "withholding acks and reporting to the store's "
                 "health ladder\n",
                 what, path.c_str(), err, walErrorName(werr));
}

/** Non-throwing O_APPEND open, fault-armable as "wal.open". Returns
 *  -1 with errno set on failure. */
int
openAppendFd(const std::string &path)
{
    static fault::FaultPoint fpOpen("wal.open");
    if (int e = fpOpen.fire()) {
        errno = e;
        return -1;
    }
    return ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
}

/** Throwing variant for construction time, where failing to open the
 *  very first segment should fail store construction cleanly. */
int
openAppend(const std::string &path)
{
    const int fd = openAppendFd(path);
    if (fd < 0)
        throw std::runtime_error("wal: cannot open " + path);
    return fd;
}

bool
readWholeFile(const std::string &path, std::string *out)
{
    static fault::FaultPoint fpRead("wal.read");
    if (fpRead.fire())
        return false;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    out->clear();
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out->append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

void
fsyncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

} // namespace

const char *
walErrorName(WalError err)
{
    switch (err) {
      case WalError::kOk:       return "ok";
      case WalError::kNoSpace:  return "nospace";
      case WalError::kSyncLoss: return "syncloss";
      case WalError::kIo:       return "io";
    }
    return "unknown";
}

std::uint32_t
crc32c(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> kTable =
        makeCrcTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~0u;
    for (std::size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xffu];
    return ~crc;
}

void
encodeRecord(const Record &rec, std::string *out)
{
    std::string payload;
    putU8(&payload, static_cast<std::uint8_t>(rec.type));
    switch (rec.type) {
        case RecordType::kBatch:
            putU64(&payload, rec.lsn);
            encodeOps(rec.ops, &payload);
            break;
        case RecordType::kTxnPrepare:
            putU64(&payload, rec.txid);
            putU64(&payload, rec.lsn);
            encodeOps(rec.ops, &payload);
            break;
        case RecordType::kTxnOutcome:
            putU64(&payload, rec.txid);
            putU64(&payload, rec.commitSeq);
            putU8(&payload, rec.committed ? 1 : 0);
            break;
        case RecordType::kCkptHeader:
            putU64(&payload, rec.barrierLsn);
            putU64(&payload, kCkptVersion);
            break;
        case RecordType::kCkptFooter:
            putU64(&payload, rec.entryCount);
            break;
    }
    putU32(out, crc32c(payload.data(), payload.size()));
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out->append(payload);
}

std::size_t
decodeRecord(const char *data, std::size_t len, Record *out)
{
    if (len < 8)
        return 0;
    std::uint32_t crc = 0;
    std::uint32_t plen = 0;
    std::memcpy(&crc, data, 4);
    std::memcpy(&plen, data + 4, 4);
    if (plen == 0 || plen > kMaxFrameLen || len < 8 + plen)
        return 0;
    const char *payload = data + 8;
    if (crc32c(payload, plen) != crc)
        return 0;

    Cursor c{payload, plen};
    std::uint8_t type = 0;
    if (!c.u8(&type) || type < 1 || type > 5)
        return 0;
    out->type = static_cast<RecordType>(type);
    out->ops.clear();
    bool ok = false;
    switch (out->type) {
        case RecordType::kBatch:
            ok = c.u64(&out->lsn) && decodeOps(&c, &out->ops);
            break;
        case RecordType::kTxnPrepare:
            ok = c.u64(&out->txid) && c.u64(&out->lsn) &&
                 decodeOps(&c, &out->ops);
            break;
        case RecordType::kTxnOutcome: {
            std::uint8_t committed = 0;
            ok = c.u64(&out->txid) && c.u64(&out->commitSeq) &&
                 c.u8(&committed);
            out->committed = committed != 0;
            break;
        }
        case RecordType::kCkptHeader: {
            std::uint64_t version = 0;
            ok = c.u64(&out->barrierLsn) && c.u64(&version) &&
                 version == kCkptVersion;
            break;
        }
        case RecordType::kCkptFooter:
            ok = c.u64(&out->entryCount);
            break;
    }
    if (!ok || c.left != 0)
        return 0;
    return 8 + plen;
}

std::string
segmentFileName(int shard, std::uint64_t gen)
{
    return "wal-" + std::to_string(shard) + "-" +
           std::to_string(gen) + ".log";
}

std::string
checkpointFileName(int shard, std::uint64_t gen)
{
    return "ckpt-" + std::to_string(shard) + "-" +
           std::to_string(gen) + ".dat";
}

void
writeMeta(const std::string &dir, int numShards)
{
    std::string body;
    putU32(&body, kMetaMagic);
    putU32(&body, static_cast<std::uint32_t>(numShards));
    putU32(&body, crc32c(body.data(), body.size()));

    const std::string tmp = dir + "/meta.tmp";
    const int fd =
        ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        throw std::runtime_error("wal: cannot write " + tmp);
    if (::write(fd, body.data(), body.size()) !=
        static_cast<ssize_t>(body.size())) {
        ::close(fd);
        throw std::runtime_error("wal: short write on " + tmp);
    }
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), (dir + "/meta").c_str()) != 0)
        throw std::runtime_error("wal: cannot install " + dir +
                                 "/meta");
    fsyncDir(dir);
}

bool
readMeta(const std::string &dir, int *numShards)
{
    std::string body;
    if (!readWholeFile(dir + "/meta", &body) || body.size() != 12)
        return false;
    std::uint32_t magic = 0;
    std::uint32_t shards = 0;
    std::uint32_t crc = 0;
    std::memcpy(&magic, body.data(), 4);
    std::memcpy(&shards, body.data() + 4, 4);
    std::memcpy(&crc, body.data() + 8, 4);
    if (magic != kMetaMagic || crc32c(body.data(), 8) != crc)
        return false;
    *numShards = static_cast<int>(shards);
    return true;
}

namespace {

/** Parses "wal-<s>-<gen>.log" / "ckpt-<s>-<gen>.dat"; returns true
 *  and fills gen (and whether it is a checkpoint) when the name
 *  belongs to `shard`. */
bool
parseShardFile(const std::string &name, int shard, std::uint64_t *gen,
               bool *isCkpt = nullptr)
{
    const std::string walPrefix =
        "wal-" + std::to_string(shard) + "-";
    const std::string ckptPrefix =
        "ckpt-" + std::to_string(shard) + "-";
    std::string digits;
    if (name.rfind(walPrefix, 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".log") == 0) {
        digits = name.substr(walPrefix.size(),
                             name.size() - walPrefix.size() - 4);
        if (isCkpt)
            *isCkpt = false;
    } else if (name.rfind(ckptPrefix, 0) == 0 && name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".dat") == 0) {
        digits = name.substr(ckptPrefix.size(),
                             name.size() - ckptPrefix.size() - 4);
        if (isCkpt)
            *isCkpt = true;
    } else
        return false;
    if (digits.empty())
        return false;
    std::uint64_t g = 0;
    for (const char ch : digits) {
        if (ch < '0' || ch > '9')
            return false;
        g = g * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    *gen = g;
    return true;
}

} // namespace

namespace {

std::vector<std::uint64_t>
listByKind(const std::string &dir, int shard, bool wantCkpt)
{
    std::vector<std::uint64_t> gens;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::uint64_t gen = 0;
        bool isCkpt = false;
        if (parseShardFile(entry.path().filename().string(), shard,
                           &gen, &isCkpt) &&
            isCkpt == wantCkpt)
            gens.push_back(gen);
    }
    std::sort(gens.begin(), gens.end());
    return gens;
}

} // namespace

std::vector<std::uint64_t>
listSegments(const std::string &dir, int shard)
{
    return listByKind(dir, shard, false);
}

std::vector<std::uint64_t>
listCheckpoints(const std::string &dir, int shard)
{
    return listByKind(dir, shard, true);
}

bool
readFile(const std::string &path, std::string *out)
{
    return readWholeFile(path, out);
}

std::uint64_t
maxGeneration(const std::string &dir, int shard)
{
    std::uint64_t max_gen = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::uint64_t gen = 0;
        if (parseShardFile(entry.path().filename().string(), shard,
                           &gen) &&
            gen > max_gen)
            max_gen = gen;
    }
    return max_gen;
}

void
deleteObsolete(const std::string &dir, int shard,
               std::uint64_t keepGen)
{
    std::error_code ec;
    std::vector<fs::path> victims;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        std::uint64_t gen = 0;
        if (parseShardFile(entry.path().filename().string(), shard,
                           &gen) &&
            gen < keepGen)
            victims.push_back(entry.path());
    }
    for (const auto &victim : victims)
        fs::remove(victim, ec);
}

WalError
writeCheckpoint(const std::string &path, const CheckpointImage &image)
{
    std::string body;
    Record header;
    header.type = RecordType::kCkptHeader;
    header.barrierLsn = image.barrierLsn;
    encodeRecord(header, &body);

    // Entries in bounded groups so no single frame balloons.
    constexpr std::size_t kGroup = 512;
    for (std::size_t i = 0; i < image.entries.size(); i += kGroup) {
        Record group;
        group.type = RecordType::kBatch;
        const std::size_t end =
            std::min(image.entries.size(), i + kGroup);
        group.ops.assign(image.entries.begin() +
                             static_cast<std::ptrdiff_t>(i),
                         image.entries.begin() +
                             static_cast<std::ptrdiff_t>(end));
        encodeRecord(group, &body);
    }

    Record footer;
    footer.type = RecordType::kCkptFooter;
    footer.entryCount = image.entries.size();
    encodeRecord(footer, &body);

    static fault::FaultPoint fpWrite("ckpt.write");
    static fault::FaultPoint fpFsync("ckpt.fsync");
    static fault::FaultPoint fpRename("ckpt.rename");

    const std::string tmp = path + ".tmp";
    int fd = -1;
    if (int e = fpWrite.fire())
        errno = e;
    else
        fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) {
        const WalError werr = classifyWriteErrno(errno);
        logWalError("checkpoint open", tmp, werr, errno);
        return werr;
    }
    std::size_t done = 0;
    while (done < body.size()) {
        ssize_t n = -1;
        if (int e = fpWrite.fire())
            errno = e;
        else
            n = ::write(fd, body.data() + done, body.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const WalError werr = classifyWriteErrno(errno);
            logWalError("checkpoint write", tmp, werr, errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return werr;
        }
        done += static_cast<std::size_t>(n);
    }
    int syncRc = 0;
    if (int e = fpFsync.fire()) {
        errno = e;
        syncRc = -1;
    } else {
        syncRc = ::fsync(fd);
    }
    if (syncRc != 0) {
        // The tmp file's durability is indeterminate; discard it and
        // let the caller keep relying on the previous checkpoint.
        logWalError("checkpoint fsync", tmp, WalError::kSyncLoss,
                    errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return WalError::kSyncLoss;
    }
    ::close(fd);
    int renameRc = -1;
    if (int e = fpRename.fire())
        errno = e;
    else
        renameRc = ::rename(tmp.c_str(), path.c_str());
    if (renameRc != 0) {
        const WalError werr = classifyWriteErrno(errno);
        logWalError("checkpoint rename", path, werr, errno);
        ::unlink(tmp.c_str());
        return werr;
    }
    fsyncDir(fs::path(path).parent_path().string());
    return WalError::kOk;
}

bool
readCheckpoint(const std::string &path, CheckpointImage *image)
{
    std::string body;
    if (!readWholeFile(path, &body))
        return false;
    image->barrierLsn = 0;
    image->entries.clear();

    std::size_t off = 0;
    bool sawHeader = false;
    bool sawFooter = false;
    std::uint64_t footerCount = 0;
    Record rec;
    while (off < body.size()) {
        const std::size_t n =
            decodeRecord(body.data() + off, body.size() - off, &rec);
        if (n == 0)
            return false; // checkpoints must be whole, never torn
        off += n;
        if (!sawHeader) {
            if (rec.type != RecordType::kCkptHeader)
                return false;
            image->barrierLsn = rec.barrierLsn;
            sawHeader = true;
        } else if (rec.type == RecordType::kBatch) {
            if (sawFooter)
                return false;
            for (WalOp &op : rec.ops)
                image->entries.push_back(std::move(op));
        } else if (rec.type == RecordType::kCkptFooter) {
            sawFooter = true;
            footerCount = rec.entryCount;
        } else {
            return false;
        }
    }
    return sawHeader && sawFooter &&
           footerCount == image->entries.size();
}

ShardWal::ShardWal(std::string path, Durability mode,
                   std::size_t flushBytes, const WalObs &obs)
    : path_(std::move(path)), mode_(mode),
      flushBytes_(flushBytes == 0 ? 1 : flushBytes), obs_(obs),
      fd_(openAppend(path_))
{
}

ShardWal::~ShardWal()
{
    // Best-effort: a sticky-failed log has nothing more to persist
    // (flushAll fails fast without touching the poisoned fd).
    flushAll(mode_ == Durability::kFsyncGroup);
    if (fd_ >= 0)
        ::close(fd_);
}

AppendResult
ShardWal::append(const Record &rec)
{
    // Fail fast once sticky-failed: buffering past a dead fd would
    // only grow the lost range.
    const WalError sticky = status();
    if (sticky != WalError::kOk)
        return {sticky, 0};

    std::uint64_t end;
    std::size_t buffered;
    std::size_t frame;
    {
        std::lock_guard<std::mutex> lk(appendMutex_);
        const std::size_t before = buf_.size();
        encodeRecord(rec, &buf_);
        frame = buf_.size() - before;
        endOffset_ += frame;
        end = endOffset_;
        buffered = buf_.size();
    }
    if (obs_.appends != nullptr)
        obs_.appends->add(1, obs_.shard);
    if (obs_.bytes != nullptr)
        obs_.bytes->add(frame, obs_.shard);
    if (obs_.recorder != nullptr)
        obs_.recorder->record(obs::TraceKind::kWalAppend, obs_.shard,
                              0, rec.lsn, frame);
    // Keep the append buffer bounded: spill (write, no fsync) once it
    // crosses the flush threshold.
    if (buffered >= flushBytes_)
        return {flushTo(end, false, true), end};
    return {WalError::kOk, end};
}

WalError
ShardWal::barrier(std::uint64_t upTo)
{
    return flushTo(upTo, mode_ == Durability::kFsyncGroup, false);
}

AppendResult
ShardWal::appendAndBarrier(const Record &rec)
{
    AppendResult res = append(rec);
    if (res.err != WalError::kOk)
        return res;
    res.err = barrier(res.end);
    return res;
}

WalError
ShardWal::flushAll(bool alsoFsync)
{
    std::uint64_t end;
    {
        std::lock_guard<std::mutex> lk(appendMutex_);
        end = endOffset_;
    }
    return flushTo(end, alsoFsync, false);
}

WalError
ShardWal::rotate(const std::string &newPath)
{
    static fault::FaultPoint fpRotFsync("wal.rotate.fsync");

    std::unique_lock<std::mutex> lk(flushMutex_);
    while (flushing_)
        flushCv_.wait(lk);
    if (err_ != WalError::kOk)
        return err_; // a poisoned segment cannot be checkpoint-rotated
    std::string local;
    std::uint64_t end;
    {
        std::lock_guard<std::mutex> alk(appendMutex_);
        local.swap(buf_);
        end = endOffset_;
    }
    std::size_t written = 0;
    if (!local.empty()) {
        const WalError werr =
            writeAll(local.data(), local.size(), &written, false);
        if (werr != WalError::kOk) {
            const std::uint64_t writtenEnd =
                end - (local.size() - written);
            if (writtenEnd > flushedOffset_)
                flushedOffset_ = writtenEnd;
            logWalError("rotate write", path_, werr, errno);
            poisonLocked(werr, end - flushedOffset_);
            flushCv_.notify_all();
            return werr;
        }
    }
    // The old segment is about to be superseded by a checkpoint; make
    // it complete on disk before switching files.
    int rc = 0;
    if (int e = fpRotFsync.fire()) {
        errno = e;
        rc = -1;
    } else {
        rc = ::fdatasync(fd_);
    }
    if (rc != 0) {
        if (end > flushedOffset_)
            flushedOffset_ = end;
        logWalError("rotate fdatasync", path_, WalError::kSyncLoss,
                    errno);
        poisonLocked(WalError::kSyncLoss,
                     flushedOffset_ - syncedOffset_);
        flushCv_.notify_all();
        return WalError::kSyncLoss;
    }
    // Open the successor before closing the old fd so a failed open
    // leaves the log fully intact on the old segment.
    const int newFd = openAppendFd(newPath);
    if (newFd < 0) {
        if (end > flushedOffset_)
            flushedOffset_ = end;
        syncedOffset_ = flushedOffset_;
        const WalError werr = classifyWriteErrno(errno);
        logWalError("rotate open", newPath, werr, errno);
        flushCv_.notify_all();
        return werr;
    }
    ::close(fd_);
    fd_ = newFd;
    path_ = newPath;
    flushedOffset_ = end;
    syncedOffset_ = end;
    flushCv_.notify_all();
    return WalError::kOk;
}

WalError
ShardWal::rotateFresh(const std::string &newPath)
{
    std::unique_lock<std::mutex> lk(flushMutex_);
    while (flushing_)
        flushCv_.wait(lk);
    if (err_ == WalError::kOk)
        return WalError::kOk; // raced another rescuer; nothing to do
    if (err_ != WalError::kSyncLoss || rescued_)
        return err_; // only sync loss is rescuable, and only once
    const int newFd = openAppendFd(newPath);
    if (newFd < 0) {
        logWalError("rescue open", newPath, WalError::kIo, errno);
        return WalError::kIo;
    }
    ::close(fd_);
    fd_ = newFd;
    path_ = newPath;
    // Records still buffered (never written to the poisoned fd) carry
    // over: the new segment starts at endOffset_ - buf_.size(), which
    // equals the poisoned segment's written end — appends failed fast
    // while sticky, so nothing else advanced endOffset_.
    {
        std::lock_guard<std::mutex> alk(appendMutex_);
        flushedOffset_ = endOffset_ - buf_.size();
    }
    // syncedOffset_ stays below the poisoned range; barriers inside
    // (syncLostLo_, syncLostHi_] keep failing via the range check.
    rescued_ = true;
    err_ = WalError::kOk;
    stickyErr_.store(0, std::memory_order_relaxed);
    flushCv_.notify_all();
    return WalError::kOk;
}

bool
ShardWal::canRescue() const
{
    std::lock_guard<std::mutex> lk(
        const_cast<std::mutex &>(flushMutex_));
    return err_ == WalError::kSyncLoss && !rescued_;
}

/** Record a hard failure (sticky until rescue). Caller holds
 *  flushMutex_. */
void
ShardWal::poisonLocked(WalError err, std::uint64_t lost)
{
    if (err_ == WalError::kOk) {
        // Only sync loss needs the permanent range: a failed write's
        // un-acked bytes are covered by the sticky error itself (no
        // rescue exists for it), with the correct error class.
        if (err == WalError::kSyncLoss && !everPoisoned_) {
            everPoisoned_ = true;
            syncLostLo_ = syncedOffset_;
            syncLostHi_ = flushedOffset_;
        }
        lostBytes_.fetch_add(lost, std::memory_order_relaxed);
    }
    err_ = err;
    stickyErr_.store(static_cast<std::uint8_t>(err),
                     std::memory_order_relaxed);
    if (obs_.recorder != nullptr)
        obs_.recorder->record(obs::TraceKind::kWalError, obs_.shard,
                              0, static_cast<std::uint64_t>(err),
                              lost);
}

WalError
ShardWal::flushTo(std::uint64_t upTo, bool wantSync, bool spill)
{
    static fault::FaultPoint fpFsync("wal.fsync");

    std::unique_lock<std::mutex> lk(flushMutex_);
    for (;;) {
        // A barrier ending inside the poisoned sync range can never
        // be satisfied — those bytes sit on an abandoned segment
        // whose fdatasync failed (fsyncgate: durability is
        // indeterminate and must not be re-asserted).
        if (wantSync && everPoisoned_ && upTo > syncLostLo_ &&
            upTo <= syncLostHi_)
            return WalError::kSyncLoss;
        const bool covered =
            flushedOffset_ >= upTo &&
            (!wantSync || syncedOffset_ >= upTo);
        if (covered)
            return WalError::kOk;
        // Sticky failure: no leader will make progress (this is also
        // how a follower observes its failed leader — the leader
        // records the error before waking us).
        if (err_ != WalError::kOk)
            return err_;
        if (!flushing_)
            break;
        flushCv_.wait(lk);
    }
    // Leader: everyone buffered before us rides this flush.
    flushing_ = true;
    std::string local;
    std::uint64_t grabbedEnd;
    {
        std::lock_guard<std::mutex> alk(appendMutex_);
        local.swap(buf_);
        grabbedEnd = endOffset_;
    }
    lk.unlock();

    WalError werr = WalError::kOk;
    std::size_t written = 0;
    if (!local.empty())
        werr = writeAll(local.data(), local.size(), &written, spill);
    const int writeErrno = errno;

    WalError serr = WalError::kOk;
    std::uint64_t syncNanos = 0;
    if (werr == WalError::kOk && wantSync) {
        const auto t0 = std::chrono::steady_clock::now();
        int rc = 0;
        if (int e = fpFsync.fire()) {
            errno = e;
            rc = -1;
        } else {
            rc = ::fdatasync(fd_);
        }
        if (rc != 0) {
            serr = WalError::kSyncLoss;
        } else {
            syncNanos = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            if (obs_.fsyncs != nullptr)
                obs_.fsyncs->add(1, obs_.shard);
            if (obs_.fsyncNanos != nullptr)
                obs_.fsyncNanos->record(syncNanos, obs_.shard);
            if (obs_.recorder != nullptr)
                obs_.recorder->record(obs::TraceKind::kWalFsync,
                                      obs_.shard, 0, grabbedEnd,
                                      syncNanos);
        }
    }
    const int syncErrno = errno;

    lk.lock();
    // Advance by what actually reached the fd, even on failure.
    const std::uint64_t writtenEnd =
        grabbedEnd - (local.size() - written);
    if (writtenEnd > flushedOffset_)
        flushedOffset_ = writtenEnd;
    if (werr != WalError::kOk) {
        // Bytes pulled from the buffer but never written are gone
        // from memory: report them lost and stick.
        logWalError(spill ? "spill write" : "append write", path_,
                    werr, writeErrno);
        poisonLocked(werr, grabbedEnd - flushedOffset_);
    } else if (serr != WalError::kOk) {
        // fsyncgate: everything written since the last good sync is
        // of indeterminate durability. Never fsync this fd again.
        logWalError("fdatasync", path_, serr, syncErrno);
        poisonLocked(serr, flushedOffset_ - syncedOffset_);
    } else if (wantSync && flushedOffset_ > syncedOffset_) {
        syncedOffset_ = flushedOffset_;
    }
    flushing_ = false;
    flushCv_.notify_all();
    if (werr != WalError::kOk)
        return werr;
    if (serr != WalError::kOk)
        return serr;
    return WalError::kOk;
}

/**
 * Write the whole span, retrying EINTR indefinitely and EAGAIN a
 * bounded number of times with exponential backoff. `*written`
 * reports bytes that reached the fd regardless of outcome. errno is
 * left at the failing error. Fault points: wal.append.write /
 * wal.spill.write fail the syscall outright; wal.append.short_write
 * pushes `arg` real bytes first so the frame is genuinely torn on
 * disk.
 */
WalError
ShardWal::writeAll(const char *data, std::size_t len,
                   std::size_t *written, bool spill)
{
    static fault::FaultPoint fpAppend("wal.append.write");
    static fault::FaultPoint fpSpill("wal.spill.write");
    static fault::FaultPoint fpShort("wal.append.short_write");
    fault::FaultPoint &fp = spill ? fpSpill : fpAppend;

    *written = 0;
    int transientLeft = 8;
    int backoffUs = 50;
    while (*written < len) {
        int injected = fp.fire();
        if (injected == 0) {
            if (int e = fpShort.fire()) {
                std::size_t cap = std::min<std::size_t>(
                    fpShort.arg(), len - *written);
                while (cap > 0) {
                    const ssize_t w =
                        ::write(fd_, data + *written, cap);
                    if (w < 0) {
                        if (errno == EINTR)
                            continue;
                        break;
                    }
                    *written += static_cast<std::size_t>(w);
                    cap -= static_cast<std::size_t>(w);
                }
                injected = e;
            }
        }
        ssize_t n = -1;
        if (injected != 0)
            errno = injected;
        else
            n = ::write(fd_, data + *written, len - *written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN && transientLeft-- > 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(backoffUs));
                backoffUs = std::min(backoffUs * 2, 2000);
                continue;
            }
            return classifyWriteErrno(errno);
        }
        *written += static_cast<std::size_t>(n);
    }
    return WalError::kOk;
}

} // namespace proteus::kvstore::wal
