#include "kvstore/commit_record.hpp"

namespace proteus::kvstore {

WriteIntent *
IntentArena::alloc()
{
    const std::size_t chunk = used_ / kChunk;
    const std::size_t offset = used_ % kChunk;
    if (chunk == chunks_.size())
        chunks_.push_back(std::make_unique<WriteIntent[]>(kChunk));
    ++used_;
    return &chunks_[chunk][offset];
}

} // namespace proteus::kvstore
