/**
 * @file
 * KvTunable: ProteusKV's bridge into the RecTM closed loop.
 *
 * ShardTunable adapts one live Shard to rectm::TunableSystem: the
 * configuration space is an explicit TmConfig menu, applyConfig is a
 * live PolyTM reconfiguration, and measureKpi sleeps one monitor
 * period and reads the shard's commit rate through polytm::KpiMeter.
 *
 * KvAutoTuner owns one ShardTunable + ProteusRuntime per shard and
 * drives them concurrently through rectm::RuntimeGroup, so every
 * shard's backend/parallelism converges to its own traffic — the
 * paper's single-instance loop, multiplied across a sharded service.
 */

#ifndef PROTEUS_KVSTORE_KV_TUNABLE_HPP
#define PROTEUS_KVSTORE_KV_TUNABLE_HPP

#include <memory>
#include <vector>

#include "kvstore/kvstore.hpp"
#include "polytm/kpi.hpp"
#include "rectm/proteus_runtime.hpp"

namespace proteus::kvstore {

struct KvTunableOptions
{
    /** Per-shard configuration menu (the tuning space's columns). */
    std::vector<polytm::TmConfig> menu;
    /** Monitor period: how long measureKpi observes the shard. */
    double periodSeconds = 0.02;

    /** A compact default menu: every STM at 1/2/4 threads + HTM. */
    static std::vector<polytm::TmConfig> defaultMenu();
};

class ShardTunable : public rectm::TunableSystem
{
  public:
    /**
     * @param store when given (with the shard's index), every live
     *        reconfiguration is reported through
     *        KvStore::noteRetune() so the decision lands in the
     *        store's metric registry and flight recorder.
     */
    ShardTunable(Shard &shard, KvTunableOptions options,
                 KvStore *store = nullptr, int shard_index = -1);

    std::size_t numConfigs() const override { return menu_.size(); }
    void applyConfig(std::size_t c) override;
    double measureKpi() override;

    const polytm::TmConfig &configAt(std::size_t c) const
    {
        return menu_[c];
    }
    std::size_t appliedConfig() const { return applied_; }
    int reconfigurations() const { return reconfigurations_; }

  private:
    Shard *shard_;
    std::vector<polytm::TmConfig> menu_;
    double periodSeconds_;
    polytm::KpiMeter meter_;
    /** Telemetry sink for retune decisions (may be null). */
    KvStore *store_ = nullptr;
    int shardIndex_ = -1;
    std::size_t applied_ = 0;
    int reconfigurations_ = 0;
    /** Last KPI observed before the current decision (commits/sec). */
    double lastKpi_ = 0;
};

class KvAutoTuner
{
  public:
    /**
     * @param engine trained RecTM engine whose column space matches
     *        options.menu (shared read-only by all shard runtimes)
     */
    KvAutoTuner(KvStore &store, const rectm::RecTmEngine &engine,
                KvTunableOptions options,
                rectm::RuntimeOptions runtime_options = {});

    /**
     * Tune all shards concurrently for `total_periods` monitor
     * periods; returns per-shard period records.
     *
     * `before_period(shard, period)` runs on that shard's controller
     * thread before each period; it must be thread-safe across
     * shards. A service can throw from it to cancel the run early
     * (graceful shutdown) — the exception is rethrown here after all
     * controllers stop.
     */
    std::vector<std::vector<rectm::PeriodRecord>>
    run(int total_periods,
        const std::function<void(std::size_t, int)> &before_period =
            nullptr);

    int episodes(std::size_t shard) const
    {
        return runtimes_[shard]->episodes();
    }
    const ShardTunable &tunable(std::size_t shard) const
    {
        return *tunables_[shard];
    }

  private:
    std::vector<std::unique_ptr<ShardTunable>> tunables_;
    std::vector<std::unique_ptr<rectm::ProteusRuntime>> runtimes_;
    rectm::RuntimeGroup group_;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_KV_TUNABLE_HPP
