#include "kvstore/traffic.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/timing.hpp"

namespace proteus::kvstore {

TrafficMix
TrafficMix::preset(MixKind kind)
{
    TrafficMix mix;
    switch (kind) {
      case MixKind::kReadHeavy:
        break; // defaults are YCSB-B
      case MixKind::kBalanced:
        mix.getRatio = 0.5;
        mix.putRatio = 0.5;
        mix.zipfTheta = 0.8;
        break;
      case MixKind::kScanHeavy:
        mix.getRatio = 0;
        mix.putRatio = 0.05;
        mix.scanRatio = 0.95;
        break;
      case MixKind::kWriteHeavy:
        mix.getRatio = 0.10;
        mix.putRatio = 0.85;
        mix.delRatio = 0.05;
        mix.zipfTheta = 0.95;
        mix.keySpace = 1 << 8;
        break;
      case MixKind::kHotspot:
        mix.keySpace = 1 << 6;
        mix.zipfTheta = 0.99;
        break;
      case MixKind::kMixedCross:
        // The commit-protocol A/B scenario: mostly single-key reads
        // with some puts, and every tenth op a cross-shard transfer
        // that exercises the multi-key commit path.
        mix.getRatio = 0.80;
        mix.putRatio = 0.20;
        mix.multiRatio = 0.10;
        break;
      case MixKind::kCache:
        // Cache-style traffic: Zipf-skewed gets over a modest key
        // space, wide values (~128 B, blob-backed), and a short TTL
        // so the cold tail keeps expiring — hit rate settles well
        // below 1 and the TTL sweep / lazy expiry paths stay hot.
        mix.getRatio = 0.85;
        mix.putRatio = 0.15;
        mix.zipfTheta = 0.9;
        mix.keySpace = std::uint64_t{1} << 12;
        mix.ttlNanos = 50ull * 1000 * 1000; // 50 ms
        mix.valueBytes = 128;
        break;
    }
    return mix;
}

TrafficDriver::TrafficDriver(KvStore &store, TrafficOptions options)
    : store_(&store), options_(std::move(options)),
      opsCompleted_(store.metrics().counter("traffic_ops")),
      multiOpsCompleted_(store.metrics().counter("traffic_multi_ops")),
      getAttempts_(store.metrics().counter("traffic_get_attempts")),
      getHits_(store.metrics().counter("traffic_get_hits"))
{
    if (options_.phases.empty())
        throw std::invalid_argument(
            "TrafficDriver: at least one phase mix is required");
    if (options_.threads <= 0)
        throw std::invalid_argument(
            "TrafficDriver: threads must be >= 1");
    if (options_.threads > tm::kMaxThreads)
        throw std::invalid_argument(
            "TrafficDriver: threads exceeds tm::kMaxThreads (" +
            std::to_string(tm::kMaxThreads) +
            " registration slots per shard)");
    phaseLatency_.resize(options_.phases.size());
    phaseMaxBacklog_.resize(options_.phases.size(), 0);
    phaseHistMetrics_.reserve(options_.phases.size());
    for (std::size_t p = 0; p < options_.phases.size(); ++p) {
        phaseHistMetrics_.push_back(&store.metrics().histogram(
            "traffic_latency_phase" + std::to_string(p)));
        phaseWriteRejected_.push_back(&store.metrics().counter(
            "traffic_write_rejected_phase" + std::to_string(p)));
    }
}

std::uint64_t
TrafficDriver::writesRejected(std::size_t phase) const
{
    if (phase >= phaseWriteRejected_.size())
        throw std::out_of_range("TrafficDriver: unknown phase");
    return phaseWriteRejected_[phase]->total();
}

std::uint64_t
TrafficDriver::writesRejected() const
{
    std::uint64_t total = 0;
    for (const obs::Counter *counter : phaseWriteRejected_)
        total += counter->total();
    return total;
}

TrafficDriver::~TrafficDriver()
{
    stop();
}

void
TrafficDriver::preload(std::uint64_t count)
{
    KvStore::Session session = store_->openSession();
    KvStore::Batch batch;
    KvResult status;
    for (std::uint64_t key = 0; key < count && status; ++key) {
        batch.put(key, key * 2654435761ull + 1);
        if (batch.size() >= 256) {
            status = store_->applyBatch(session, batch);
            batch.clear();
        }
    }
    if (status && batch.size() > 0)
        status = store_->applyBatch(session, batch);
    store_->closeSession(session);
    if (!status) {
        // A partial preload would be silently measured as workload
        // behaviour (get misses); mis-sizing or a degraded store must
        // fail fast, with the real cause in the message.
        throw std::runtime_error(
            std::string("TrafficDriver::preload failed: ") +
            kvStatusName(status.status));
    }
}

void
TrafficDriver::start()
{
    if (running_)
        return;
    stop_.store(false, std::memory_order_relaxed);
    activeWorkers_.store(0, std::memory_order_relaxed);
    running_ = true;
    // Count spawned workers as we go: presetting the full count would
    // make stop()'s drain loop wait forever after a partial spawn
    // failure (std::system_error from std::thread under a pthread
    // limit) — only spawned workers ever decrement.
    for (int t = 0; t < options_.threads; ++t) {
        workers_.emplace_back([this, t] { workerLoop(t); });
        activeWorkers_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
TrafficDriver::setPhase(std::size_t phase)
{
    if (phase >= options_.phases.size())
        throw std::out_of_range("TrafficDriver: unknown phase");
    phase_.store(phase, std::memory_order_relaxed);
}

void
TrafficDriver::stop()
{
    if (!running_)
        return;
    stop_.store(true, std::memory_order_relaxed);
    // Workers parked by a low parallelism degree can only observe the
    // stop flag once re-enabled — and a still-running tuner can
    // re-park them right after a one-shot resume. Keep resuming until
    // every worker has actually drained, so stop() is safe regardless
    // of whether the tuner was shut down first.
    while (activeWorkers_.load(std::memory_order_acquire) > 0) {
        store_->resumeAllForShutdown();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
    running_ = false;
}

PhaseLatency
TrafficDriver::latency(std::size_t phase) const
{
    if (phase >= phaseLatency_.size())
        throw std::out_of_range("TrafficDriver: unknown phase");
    std::lock_guard<std::mutex> lk(latencyMutex_);
    const LatencyHistogram &hist = phaseLatency_[phase];
    PhaseLatency out;
    out.count = hist.count();
    out.p50 = hist.percentileNanos(0.50);
    out.p95 = hist.percentileNanos(0.95);
    out.p99 = hist.percentileNanos(0.99);
    out.max = hist.maxNanos();
    out.maxBacklogNanos = phaseMaxBacklog_[phase];
    return out;
}

void
TrafficDriver::workerLoop(int worker_idx)
{
    // The decrement must happen on every exit path (including a
    // throwing openSession) or stop()'s drain loop spins forever.
    struct Departure
    {
        std::atomic<int> *count;
        ~Departure() { count->fetch_sub(1, std::memory_order_release); }
    } departure{&activeWorkers_};

    try {
        workerBody(worker_idx);
    } catch (const std::exception &e) {
        // A worker dying (slot exhaustion, store capacity) must not
        // std::terminate the whole process from the thread entry.
        std::fprintf(stderr, "TrafficDriver worker %d died: %s\n",
                     worker_idx, e.what());
    }
}

void
TrafficDriver::workerBody(int worker_idx)
{
    KvStore::Session session = store_->openSession();
    Rng rng(options_.seed + 0x9e37ull * static_cast<unsigned>(worker_idx));
    std::vector<KvOp> multi_ops;
    std::string bytes_buf;
    const auto fill_payload = [&](std::uint64_t key, std::size_t len) {
        bytes_buf.resize(len);
        for (std::size_t i = 0; i < len; ++i)
            bytes_buf[i] = static_cast<char>((key * 131 + i * 7) & 0xff);
    };

    // Worker-local latency state, merged into the driver on exit so
    // the hot loop never touches shared cache lines for profiling.
    std::vector<LatencyHistogram> local_latency(
        options_.phases.size());
    std::vector<std::uint64_t> local_backlog(options_.phases.size(),
                                             0);
    const auto merge_out = [&] {
        {
            std::lock_guard<std::mutex> lk(latencyMutex_);
            for (std::size_t p = 0; p < local_latency.size(); ++p) {
                phaseLatency_[p].merge(local_latency[p]);
                if (local_backlog[p] > phaseMaxBacklog_[p])
                    phaseMaxBacklog_[p] = local_backlog[p];
            }
        }
        // Also publish into the registry's concurrent histograms so
        // telemetry() exports per-phase latency without a driver handle.
        for (std::size_t p = 0; p < local_latency.size(); ++p)
            phaseHistMetrics_[p]->mergeData(
                local_latency[p], static_cast<unsigned>(worker_idx));
    };

    const double target = options_.targetOpsPerSecPerThread;
    const std::uint64_t pace_nanos =
        target > 0 ? static_cast<std::uint64_t>(1e9 / target) : 0;
    std::uint64_t next_deadline = nowNanos();

    while (!stop_.load(std::memory_order_relaxed)) {
        const std::size_t phase =
            phase_.load(std::memory_order_relaxed);
        const TrafficMix &mix = options_.phases[phase];

        const std::uint64_t key =
            mix.zipfTheta > 0 ? rng.zipf(mix.keySpace, mix.zipfTheta)
                              : rng.nextBounded(mix.keySpace);

        // A store that has degraded to read-only (or lost its WAL)
        // rejects writes; that is measured workload behaviour, not a
        // driver bug — count it per phase and keep issuing ops.
        const auto note_write = [&](const KvResult &result) {
            if (!result && (result.status == KvStatus::kReadOnly ||
                            result.status == KvStatus::kWalError ||
                            result.status == KvStatus::kNoMemory))
                phaseWriteRejected_[phase]->add(
                    1, static_cast<unsigned>(worker_idx));
        };

        const std::uint64_t op_start = nowNanos();
        bool was_multi = false;
        if (mix.multiRatio > 0 && rng.bernoulli(mix.multiRatio)) {
            // Small cross-shard transfer: the multi-key path.
            const std::uint64_t other = rng.nextBounded(mix.keySpace);
            multi_ops.clear();
            multi_ops.push_back(
                {KvOp::Kind::kAdd, key,
                 static_cast<std::uint64_t>(std::int64_t{-1}), false});
            multi_ops.push_back({KvOp::Kind::kAdd, other, 1, false});
            note_write(store_->multiOp(session, multi_ops));
            was_multi = true;
        } else {
            const double draw = rng.nextDouble();
            const double put_edge = mix.getRatio + mix.putRatio;
            const double del_edge = put_edge + mix.delRatio;
            const auto do_get = [&] {
                const bool hit =
                    mix.valueBytes > 0
                        ? store_->getBytes(session, key, &bytes_buf)
                        : store_->get(session, key);
                getAttempts_.add(
                    1, static_cast<unsigned>(worker_idx));
                if (hit)
                    getHits_.add(1,
                                 static_cast<unsigned>(worker_idx));
            };
            if (draw < mix.getRatio) {
                do_get();
            } else if (draw < put_edge) {
                if (mix.valueBytes > 0) {
                    // Sizes spread around the target so the arena's
                    // size classes and the inline path both see load.
                    const std::size_t len =
                        mix.valueBytes / 2 +
                        static_cast<std::size_t>(
                            rng.nextBounded(mix.valueBytes));
                    fill_payload(key, len);
                    note_write(store_->putBytes(
                        session, key, bytes_buf.data(),
                        bytes_buf.size(), mix.ttlNanos));
                } else {
                    note_write(store_->put(session, key, key ^ 0xbeef,
                                           mix.ttlNanos));
                }
            } else if (draw < del_edge) {
                note_write(store_->del(session, key));
            } else if (draw < del_edge + mix.scanRatio) {
                store_->scan(session, key, mix.scanLen);
            } else {
                // Ratios not summing to 1 fall back to the cheapest op.
                do_get();
            }
        }
        const std::uint64_t op_end = nowNanos();
        local_latency[phase].record(op_end - op_start);
        // Total before the multi counter: singleKeyOpsCompleted()
        // computes total - multi, and the other order could let a
        // sampler see multi > total (unsigned wrap).
        opsCompleted_.add(1, static_cast<unsigned>(worker_idx));
        if (was_multi)
            multiOpsCompleted_.add(
                1, static_cast<unsigned>(worker_idx));

        if (pace_nanos > 0) {
            // Open loop: absolute deadlines; never re-anchor on the
            // completion time, so a slow configuration builds backlog
            // instead of silently shedding load.
            next_deadline += pace_nanos;
            if (op_end < next_deadline) {
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(next_deadline - op_end));
            } else if (op_end - next_deadline > local_backlog[phase]) {
                local_backlog[phase] = op_end - next_deadline;
            }
        }
    }
    store_->closeSession(session);
    merge_out();
}

} // namespace proteus::kvstore
