/**
 * @file
 * Cross-shard commit machinery for ProteusKV's 2PC-over-TM protocol.
 *
 * A writing multiOp cannot get cross-shard atomicity from TM alone
 * (shards are separate PolyTM universes), so it commits in two phases:
 *
 *  1. *prepare* — one TM transaction per touched shard validates the
 *     reads and publishes a per-slot WriteIntent (the slot's intent
 *     word becomes a pointer to the intent, installed transactionally,
 *     so it appears atomically with the rest of the shard's prepare);
 *  2. *commit point* — one atomic store flips the shared CommitRecord
 *     from kPending to kCommitted (or kAborted on validation/capacity
 *     failure);
 *  3. *finalize* — one TM transaction per shard folds each intent into
 *     the real slot words and clears the intent pointer.
 *
 * Any other operation that encounters an intent resolves it by reading
 * the commit record — use the pre-image while kPending, the intent's
 * post-image once kCommitted, discard on kAborted — so single-key
 * traffic keeps flowing through a multi-key commit instead of parking
 * behind a whole-shard latch.
 *
 * Memory lifetime. Intent pointers are loaded inside reader
 * transactions that may dereference them *after* the owner finalized
 * and moved on (the reader will fail TM validation at commit because
 * the intent word changed, but it must not touch freed memory
 * mid-transaction). Therefore intents live in an IntentArena with
 * stable addresses that is recycled, never shrunk, and a session's
 * CommitContext is retired to the store's graveyard instead of freed
 * when the session closes. Reader-visible fields are atomics so
 * recycling can race stale readers without undefined behaviour; the
 * TM read-set validation is what rejects any value computed from a
 * recycled intent.
 */

#ifndef PROTEUS_KVSTORE_COMMIT_RECORD_HPP
#define PROTEUS_KVSTORE_COMMIT_RECORD_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace proteus::kvstore {

struct ShardTable;

/**
 * Shared fate word of one cross-shard commit: (epoch << 2) | state.
 *
 * The epoch increments every time the owning session re-arms the
 * record for its next multiOp. Resolvers only trust a status whose
 * epoch matches the tag carried in the intent word they loaded (see
 * packIntentWord): a record recycled underneath a slow reader then
 * reads as a different epoch — never as a stale COMMITTED verdict
 * applied to the wrong generation's payload.
 */
struct CommitRecord
{
    static constexpr std::uint64_t kPending = 0;
    static constexpr std::uint64_t kCommitted = 1;
    static constexpr std::uint64_t kAborted = 2;

    std::atomic<std::uint64_t> status{kPending};

    /**
     * (global commit sequence << 16) | (epoch & 0xffff) — the commit
     * timestamp of this record's current generation, stored by the
     * owner at its commit point *after* reserving the store-wide
     * sequence and *before* bumping any per-shard sequence or
     * flipping the status. Snapshot readers compare seqOf() against
     * their sampled read timestamp to include or exclude an in-flight
     * commit without retrying (shard.cpp::resolveSlotLiveTx). A tag
     * that does not match the intent's epoch means the sequence of
     * this generation is not assigned yet (the word still belongs to
     * a previous multiOp) — the commit, if it ever flips, is then
     * guaranteed to be ordered after the reader's snapshot.
     */
    std::atomic<std::uint64_t> commitSeq{0};

    static std::uint64_t stateOf(std::uint64_t word) { return word & 3; }
    static std::uint64_t epochOf(std::uint64_t word) { return word >> 2; }

    static std::uint64_t seqOf(std::uint64_t word) { return word >> 16; }
    static std::uint64_t seqEpochTag(std::uint64_t word)
    {
        return word & 0xffff;
    }
    static std::uint64_t
    packSeq(std::uint64_t seq, std::uint64_t epoch)
    {
        return (seq << 16) | (epoch & 0xffff);
    }
};

/**
 * One prepared write to one slot. Published by storing this object's
 * address into the slot's intent word inside the prepare transaction.
 *
 * `record`, `newState`, `newValue` and `newExpiry` are read by
 * concurrent resolvers (possibly after the entry was recycled — see
 * file comment); `table` and `slot` are touched only by the owning
 * thread (finalize/abort must address the table the intent was
 * installed in, which may have become the *old* table if a resize
 * started mid-commit).
 */
struct WriteIntent
{
    std::atomic<CommitRecord *> record{nullptr};
    /** Post-image slot state: kFull, kFullRef or kTombstone. */
    std::atomic<std::uint64_t> newState{0};
    std::atomic<std::uint64_t> newValue{0};
    /** Post-image TTL deadline (0 = none). */
    std::atomic<std::uint64_t> newExpiry{0};

    ShardTable *table = nullptr;
    std::uint64_t slot = 0;
    /** Owner-only (like table/slot): the pending insert claimed a
     *  tombstone, not an empty slot — finalize must then neither
     *  count the slot as newly consumed nor, on a delete, as a newly
     *  minted tombstone. */
    bool claimedTombstone = false;
};

/**
 * A slot's intent word carries the owning record's epoch in its top
 * 16 bits next to the entry pointer (user-space heap pointers fit in
 * 48 bits on every platform this builds for). Two consequences:
 * value-validating backends (NOrec) distinguish a recycled
 * same-address intent from the original — the republished word
 * differs — and resolvers can check that the status they read belongs
 * to the same generation as the intent they hold. (The tag wraps at
 * 2^16; a wrap-collision would additionally need the reader to miss
 * 65536 commit-sequence bumps, which the snapshot validation in
 * KvStore catches.)
 */
constexpr unsigned kIntentEpochShift = 48;
constexpr std::uint64_t kIntentPtrMask =
    (std::uint64_t{1} << kIntentEpochShift) - 1;

inline std::uint64_t
packIntentWord(const WriteIntent *intent, std::uint64_t epoch)
{
    return reinterpret_cast<std::uint64_t>(intent) |
           (epoch << kIntentEpochShift);
}

inline WriteIntent *
intentOf(std::uint64_t word)
{
    return reinterpret_cast<WriteIntent *>(word & kIntentPtrMask);
}

inline std::uint64_t
intentEpochTag(std::uint64_t word)
{
    return word >> kIntentEpochShift;
}

/**
 * Bump allocator of WriteIntents with stable addresses. rewindTo()
 * lets a retried prepare transaction reuse the entries of its aborted
 * attempt; memory is only released on destruction.
 */
class IntentArena
{
  public:
    WriteIntent *alloc();

    std::size_t mark() const { return used_; }
    void rewindTo(std::size_t mark) { used_ = mark; }
    void reset() { used_ = 0; }

  private:
    static constexpr std::size_t kChunk = 64;
    std::vector<std::unique_ptr<WriteIntent[]>> chunks_;
    std::size_t used_ = 0;
};

/**
 * Per-session 2PC state: one commit record (recycled across the
 * session's multiOps — legal because every intent of the previous
 * multiOp is cleared before the record's status is re-armed) plus the
 * intent arena. Retired to the store's pool/graveyard on session
 * close; `next` chains retired contexts intrusively so parking one is
 * a noexcept pointer swap — the retirement paths run under memory
 * pressure (bad_alloc handling) and must not themselves allocate.
 */
struct CommitContext
{
    CommitRecord record;
    IntentArena arena;
    std::unique_ptr<CommitContext> next;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_COMMIT_RECORD_HPP
