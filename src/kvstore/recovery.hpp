/**
 * @file
 * Crash recovery: rebuild freshly constructed (empty) shards from a
 * WAL directory — checkpoint images first, then surviving log
 * records in per-shard LSN order.
 *
 * Contract (see wal.hpp for the formats):
 *  - each shard's latest *valid* checkpoint is applied, then every
 *    record with lsn > the checkpoint's barrier LSN, sorted by LSN
 *    (records are post-images, so re-applying ones the image already
 *    covers is harmless);
 *  - a torn segment tail (first bad CRC / bounds) ends that segment's
 *    replay — the store recovers to a consistent prefix;
 *  - 2PC prepares are resolved by the outcome records collected from
 *    ALL shards' logs: committed → applied, aborted → dropped, no
 *    outcome anywhere → in-doubt → aborted (such a transaction was
 *    never acknowledged, since acks happen only after the outcome is
 *    durable on every participant).
 */

#ifndef PROTEUS_KVSTORE_RECOVERY_HPP
#define PROTEUS_KVSTORE_RECOVERY_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kvstore/shard.hpp"
#include "obs/flight_recorder.hpp"

namespace proteus::kvstore::recovery {

struct RecoveryStats {
    std::uint64_t checkpointEntries = 0;
    std::uint64_t replayedRecords = 0;
    std::uint64_t replayedOps = 0;
    /** Prepare records dropped because no outcome was ever logged. */
    std::uint64_t inDoubtAborted = 0;
    /** Bytes discarded at torn segment tails. */
    std::uint64_t tornBytes = 0;
    /** Highest commitSeq seen in any outcome record (the store seeds
     *  its commit sequence past this). */
    std::uint64_t maxCommitSeq = 0;
    /** Highest 2PC txid seen (the store seeds its txid counter). */
    std::uint64_t maxTxnId = 0;
    /** Per-shard max LSN (each shard's ticket is seeded to this). */
    std::vector<std::uint64_t> maxLsn;
};

/**
 * Replay `dir` into `shards` (which must be freshly constructed and
 * quiesced — recovery registers its own worker tokens). Also seeds
 * each shard's WAL ticket. Throws std::runtime_error if a shard
 * cannot absorb its own replayed data (capacity cap).
 */
RecoveryStats recover(const std::string &dir,
                      std::vector<std::unique_ptr<Shard>> &shards,
                      obs::FlightRecorder *recorder);

} // namespace proteus::kvstore::recovery

#endif // PROTEUS_KVSTORE_RECOVERY_HPP
