#include "kvstore/shard.hpp"

#include <stdexcept>
#include <string>
#include <thread>

namespace proteus::kvstore {

namespace {

/** SplitMix64 finalizer: slot spread for adversarial key patterns. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

namespace {

unsigned
checkedLog2(unsigned log2_value, const char *what)
{
    // >= 32 is either a config typo or would shift into UB territory;
    // fail loudly like the rest of the subsystem's range checks.
    if (log2_value == 0 || log2_value >= 32) {
        throw std::invalid_argument(std::string("Shard: ") + what +
                                    " must be in [1, 31]");
    }
    return log2_value;
}

} // namespace

Shard::Shard(ShardOptions options)
    : poly_(options.initial, {},
            checkedLog2(options.log2Orecs, "log2Orecs")),
      slots_(std::size_t{1}
             << checkedLog2(options.log2Slots, "log2Slots")),
      mask_(slots_ - 1), state_(slots_, kEmpty), keys_(slots_, 0),
      values_(slots_, 0), intents_(slots_, 0)
{
}

std::size_t
Shard::homeSlot(std::uint64_t key) const
{
    return static_cast<std::size_t>(mix64(key)) & mask_;
}

std::size_t
Shard::probe(polytm::Tx &tx, std::uint64_t key, bool *found)
{
    *found = false;
    std::size_t insert_at = slots_; // first tombstone seen, if any
    std::size_t slot = homeSlot(key);
    for (std::size_t step = 0; step < slots_; ++step) {
        const std::uint64_t state = tx.readWord(&state_[slot]);
        if (state == kEmpty)
            return insert_at < slots_ ? insert_at : slot;
        if (state == kTombstone) {
            if (insert_at == slots_)
                insert_at = slot;
        } else if (tx.readWord(&keys_[slot]) == key) {
            // kFull or kPendingInsert: both carry a valid key word.
            *found = true;
            return slot;
        }
        slot = (slot + 1) & mask_;
    }
    return insert_at; // slots_ when the table has no reusable slot
}

bool
Shard::resolveSlotLiveTx(polytm::Tx &tx, std::size_t slot,
                         std::uint64_t *value, bool *unstable)
{
    const std::uint64_t word = tx.readWord(&intents_[slot]);
    const std::uint64_t state = tx.readWord(&state_[slot]);
    if (word == 0) {
        if (state != kFull)
            return false;
        if (value)
            *value = tx.readWord(&values_[slot]);
        return true;
    }
    WriteIntent *intent = intentOf(word);
    CommitRecord *record =
        intent->record.load(std::memory_order_acquire);
    // Payload fields must be read before the status word: fields of
    // epoch E freeze before E's flip and are only rewritten after the
    // next re-arm, so a status that still reads (E, kCommitted) at a
    // later point proves the earlier field loads saw epoch E's frozen
    // payload.
    const std::uint64_t new_state =
        intent->newState.load(std::memory_order_relaxed);
    const std::uint64_t new_value =
        intent->newValue.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t status =
        record ? record->status.load(std::memory_order_acquire) : 0;
    const bool same_epoch =
        record && (CommitRecord::epochOf(status) & 0xffff) ==
                      intentEpochTag(word);
    if (same_epoch &&
        CommitRecord::stateOf(status) == CommitRecord::kCommitted) {
        // Post-image wins from the commit point on, even before the
        // owner's finalize folds it into the slot words.
        if (new_state != kFull)
            return false;
        if (value)
            *value = new_value;
        return true;
    }
    if (unstable && same_epoch &&
        CommitRecord::stateOf(status) == CommitRecord::kPending)
        *unstable = true;
    // Pending or aborted: the pre-image is the live state. An epoch
    // mismatch means the intent was recycled underneath us; the
    // republished word differs (epoch tag), so this transaction's
    // read-set validation rejects the commit and the retry sees the
    // slot's real state — pre-image junk never escapes.
    if (state != kFull)
        return false;
    if (value)
        *value = tx.readWord(&values_[slot]);
    return true;
}

void
Shard::resolveForeignIntentTx(polytm::Tx &tx, std::size_t slot,
                              std::uint64_t word)
{
    WriteIntent *intent = intentOf(word);
    CommitRecord *record =
        intent->record.load(std::memory_order_acquire);
    const auto read_payload = [&](std::uint64_t *new_state,
                                  std::uint64_t *new_value) {
        // Fields before status, as in resolveSlotLiveTx: a matching
        // (epoch, kCommitted) status read afterwards proves the
        // fields belonged to that frozen generation.
        *new_state = intent->newState.load(std::memory_order_relaxed);
        *new_value = intent->newValue.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        return record->status.load(std::memory_order_acquire);
    };
    std::uint64_t new_state = 0;
    std::uint64_t new_value = 0;
    std::uint64_t status =
        record ? read_payload(&new_state, &new_value) : 0;
    const auto same_epoch = [&](std::uint64_t s) {
        return record && (CommitRecord::epochOf(s) & 0xffff) ==
                             intentEpochTag(word);
    };
    while (same_epoch(status) &&
           CommitRecord::stateOf(status) == CommitRecord::kPending) {
        if (tx.revocable()) {
            // Drop all TM resources and come back with backoff; the
            // owner needs this slot's universe only to finalize, and
            // the commit flip we are waiting for is a plain store.
            tx.retry();
        }
        // Irrevocable (global lock / HTM fallback): wait in place.
        // Safe because the flip needs no TM resources, and the owner
        // only ever waits on *higher-numbered* shards (prepare is
        // shard-ordered), so wait chains cannot cycle.
        std::this_thread::yield();
        status = read_payload(&new_state, &new_value);
    }
    if (same_epoch(status) &&
        CommitRecord::stateOf(status) == CommitRecord::kCommitted) {
        tx.writeWord(&state_[slot], new_state);
        if (new_state == kFull)
            tx.writeWord(&values_[slot], new_value);
    } else if (tx.readWord(&state_[slot]) == kPendingInsert) {
        // Aborted (or recycled-underneath-us — then this transaction
        // fails validation on the changed intent word and the writes
        // roll back): tombstone, never back to empty — concurrent
        // probe chains may already run past this slot.
        tx.writeWord(&state_[slot], kTombstone);
    }
    tx.writeWord(&intents_[slot], 0);
}

std::size_t
Shard::writeLookup(polytm::Tx &tx, CommitRecord *record,
                   std::uint64_t key, bool *found, WriteIntent **own)
{
    if (own)
        *own = nullptr;
    const std::size_t slot = probe(tx, key, found);
    if (!*found)
        return slot; // empty/tombstone insert point (no intent), or full
    for (;;) {
        const std::uint64_t word = tx.readWord(&intents_[slot]);
        if (word == 0)
            break;
        WriteIntent *intent = intentOf(word);
        if (record &&
            intent->record.load(std::memory_order_relaxed) == record) {
            // Ours — necessarily the current epoch: every intent of
            // the previous multiOp was cleared before re-arming.
            // (`own` is only optional for record==nullptr callers.)
            *own = intent;
            return slot;
        }
        resolveForeignIntentTx(tx, slot, word);
    }
    *found = tx.readWord(&state_[slot]) == kFull;
    return slot;
}

bool
Shard::getTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t *value)
{
    return snapshotGetTx(tx, key, value, nullptr);
}

bool
Shard::snapshotGetTx(polytm::Tx &tx, std::uint64_t key,
                     std::uint64_t *value, bool *unstable)
{
    bool found = false;
    const std::size_t slot = probe(tx, key, &found);
    if (!found)
        return false;
    return resolveSlotLiveTx(tx, slot, value, unstable);
}

bool
Shard::getForUpdateTx(polytm::Tx &tx, std::uint64_t key,
                      std::uint64_t *value)
{
    bool found = false;
    const std::size_t slot =
        writeLookup(tx, nullptr, key, &found, nullptr);
    if (!found)
        return false;
    if (value)
        *value = tx.readWord(&values_[slot]);
    return true;
}

bool
Shard::putTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t value,
             bool *existed, std::uint64_t *old_value)
{
    bool found = false;
    const std::size_t slot =
        writeLookup(tx, nullptr, key, &found, nullptr);
    if (existed)
        *existed = found;
    if (found) {
        if (old_value)
            *old_value = tx.readWord(&values_[slot]);
        tx.writeWord(&values_[slot], value);
        return true;
    }
    if (slot == slots_)
        return false; // full
    tx.writeWord(&state_[slot], kFull);
    tx.writeWord(&keys_[slot], key);
    tx.writeWord(&values_[slot], value);
    return true;
}

bool
Shard::delTx(polytm::Tx &tx, std::uint64_t key,
             std::uint64_t *old_value)
{
    bool found = false;
    const std::size_t slot =
        writeLookup(tx, nullptr, key, &found, nullptr);
    if (!found)
        return false;
    if (old_value)
        *old_value = tx.readWord(&values_[slot]);
    tx.writeWord(&state_[slot], kTombstone);
    return true;
}

bool
Shard::addTx(polytm::Tx &tx, std::uint64_t key, std::int64_t delta,
             bool *existed, std::uint64_t *old_value)
{
    // One lookup for the read-modify-write (the transfer hot path),
    // not a getTx+putTx pair walking the chain twice.
    bool found = false;
    const std::size_t slot =
        writeLookup(tx, nullptr, key, &found, nullptr);
    if (existed)
        *existed = found;
    if (found) {
        const std::uint64_t current = tx.readWord(&values_[slot]);
        if (old_value)
            *old_value = current;
        tx.writeWord(&values_[slot],
                     current + static_cast<std::uint64_t>(delta));
        return true;
    }
    if (slot == slots_)
        return false; // full
    tx.writeWord(&state_[slot], kFull);
    tx.writeWord(&keys_[slot], key);
    tx.writeWord(&values_[slot], static_cast<std::uint64_t>(delta));
    return true;
}

WriteIntent *
Shard::installIntent(polytm::Tx &tx, CommitRecord *record,
                     IntentArena &arena, std::vector<WriteIntent *> &out,
                     std::size_t slot, std::uint64_t new_state,
                     std::uint64_t new_value)
{
    WriteIntent *intent = arena.alloc();
    intent->record.store(record, std::memory_order_relaxed);
    intent->newState.store(new_state, std::memory_order_relaxed);
    intent->newValue.store(new_value, std::memory_order_relaxed);
    intent->slot = slot;
    // The transactional store publishes the intent atomically with the
    // rest of this shard's prepare at commit time (release), so the
    // relaxed field stores above are visible to any resolver that
    // acquires the pointer. The published word carries the record's
    // current epoch so resolvers can reject recycled generations.
    const std::uint64_t epoch = CommitRecord::epochOf(
        record->status.load(std::memory_order_relaxed));
    tx.writeWord(&intents_[slot],
                 packIntentWord(intent, epoch & 0xffff));
    out.push_back(intent);
    return intent;
}

bool
Shard::preparePutTx(polytm::Tx &tx, CommitRecord *record,
                    IntentArena &arena, std::vector<WriteIntent *> &out,
                    std::uint64_t key, std::uint64_t value, bool *applied)
{
    bool found = false;
    WriteIntent *own = nullptr;
    const std::size_t slot = writeLookup(tx, record, key, &found, &own);
    if (own) {
        own->newState.store(kFull, std::memory_order_relaxed);
        own->newValue.store(value, std::memory_order_relaxed);
        *applied = true;
        return true;
    }
    if (found) {
        installIntent(tx, record, arena, out, slot, kFull, value);
        *applied = true;
        return true;
    }
    if (slot == slots_) {
        *applied = false;
        return false; // full: caller aborts the whole commit
    }
    tx.writeWord(&state_[slot], kPendingInsert);
    tx.writeWord(&keys_[slot], key);
    installIntent(tx, record, arena, out, slot, kFull, value);
    *applied = true;
    return true;
}

void
Shard::prepareDelTx(polytm::Tx &tx, CommitRecord *record,
                    IntentArena &arena, std::vector<WriteIntent *> &out,
                    std::uint64_t key, bool *applied)
{
    bool found = false;
    WriteIntent *own = nullptr;
    const std::size_t slot = writeLookup(tx, record, key, &found, &own);
    if (own) {
        *applied =
            own->newState.load(std::memory_order_relaxed) == kFull;
        own->newState.store(kTombstone, std::memory_order_relaxed);
        return;
    }
    if (!found) {
        *applied = false; // absent (or full table with no match)
        return;
    }
    installIntent(tx, record, arena, out, slot, kTombstone, 0);
    *applied = true;
}

bool
Shard::prepareAddTx(polytm::Tx &tx, CommitRecord *record,
                    IntentArena &arena, std::vector<WriteIntent *> &out,
                    std::uint64_t key, std::int64_t delta, bool *applied)
{
    const auto unsigned_delta = static_cast<std::uint64_t>(delta);
    bool found = false;
    WriteIntent *own = nullptr;
    const std::size_t slot = writeLookup(tx, record, key, &found, &own);
    if (own) {
        if (own->newState.load(std::memory_order_relaxed) == kFull) {
            own->newValue.store(
                own->newValue.load(std::memory_order_relaxed) +
                    unsigned_delta,
                std::memory_order_relaxed);
        } else { // deleted earlier in this multiOp: recreate at delta
            own->newState.store(kFull, std::memory_order_relaxed);
            own->newValue.store(unsigned_delta,
                                std::memory_order_relaxed);
        }
        *applied = true;
        return true;
    }
    if (found) {
        const std::uint64_t current = tx.readWord(&values_[slot]);
        installIntent(tx, record, arena, out, slot, kFull,
                      current + unsigned_delta);
        *applied = true;
        return true;
    }
    if (slot == slots_) {
        *applied = false;
        return false; // full: caller aborts the whole commit
    }
    tx.writeWord(&state_[slot], kPendingInsert);
    tx.writeWord(&keys_[slot], key);
    installIntent(tx, record, arena, out, slot, kFull, unsigned_delta);
    *applied = true;
    return true;
}

bool
Shard::prepareGetTx(polytm::Tx &tx, CommitRecord *record,
                    std::uint64_t key, std::uint64_t *value)
{
    // Reads inside a *writing* composite resolve foreign intents the
    // way the write primitives do — waiting out PENDING ones — rather
    // than taking the non-blocking pre-image. Otherwise an
    // irrevocable backend could report a pre-image here and then fold
    // the foreign post-image under a later write of the same key in
    // the same transaction (no retry re-runs the read), leaving the
    // composite's own outputs unserializable.
    bool found = false;
    WriteIntent *own = nullptr;
    const std::size_t slot = writeLookup(tx, record, key, &found, &own);
    if (own) {
        // Read-your-writes within the composite.
        if (own->newState.load(std::memory_order_relaxed) != kFull)
            return false;
        if (value)
            *value = own->newValue.load(std::memory_order_relaxed);
        return true;
    }
    if (!found)
        return false;
    if (value)
        *value = tx.readWord(&values_[slot]);
    return true;
}

void
Shard::finalizeIntentTx(polytm::Tx &tx, WriteIntent *intent)
{
    const std::size_t slot = static_cast<std::size_t>(intent->slot);
    const std::uint64_t word = tx.readWord(&intents_[slot]);
    if (intentOf(word) != intent)
        return; // a helping writer already folded it
    const std::uint64_t new_state =
        intent->newState.load(std::memory_order_relaxed);
    tx.writeWord(&state_[slot], new_state);
    if (new_state == kFull) {
        tx.writeWord(&values_[slot],
                     intent->newValue.load(std::memory_order_relaxed));
    }
    tx.writeWord(&intents_[slot], 0);
}

void
Shard::abortIntentTx(polytm::Tx &tx, WriteIntent *intent)
{
    const std::size_t slot = static_cast<std::size_t>(intent->slot);
    const std::uint64_t word = tx.readWord(&intents_[slot]);
    if (intentOf(word) != intent)
        return; // a helping writer already discarded it
    if (tx.readWord(&state_[slot]) == kPendingInsert)
        tx.writeWord(&state_[slot], kTombstone);
    tx.writeWord(&intents_[slot], 0);
}

bool
Shard::get(polytm::ThreadToken &token, std::uint64_t key,
           std::uint64_t *value)
{
    bool ok = false;
    poly_.run(token,
              [&](polytm::Tx &tx) { ok = getTx(tx, key, value); });
    return ok;
}

bool
Shard::put(polytm::ThreadToken &token, std::uint64_t key,
           std::uint64_t value)
{
    bool ok = false;
    poly_.run(token,
              [&](polytm::Tx &tx) { ok = putTx(tx, key, value); });
    return ok;
}

bool
Shard::del(polytm::ThreadToken &token, std::uint64_t key)
{
    bool ok = false;
    poly_.run(token, [&](polytm::Tx &tx) { ok = delTx(tx, key); });
    return ok;
}

std::size_t
Shard::scanTx(polytm::Tx &tx, std::uint64_t start_key, std::size_t limit,
              std::vector<std::pair<std::uint64_t, std::uint64_t>> *out,
              bool *unstable)
{
    std::size_t count = 0;
    if (out)
        out->clear();
    if (unstable)
        *unstable = false; // retried attempts restart
    std::size_t slot = homeSlot(start_key);
    for (std::size_t step = 0; step < slots_ && count < limit; ++step) {
        const std::uint64_t state = tx.readWord(&state_[slot]);
        if (state == kFull || state == kPendingInsert) {
            std::uint64_t value = 0;
            if (resolveSlotLiveTx(tx, slot, &value, unstable)) {
                if (out) {
                    out->emplace_back(tx.readWord(&keys_[slot]), value);
                }
                ++count;
            }
        }
        slot = (slot + 1) & mask_;
    }
    return count;
}

std::size_t
Shard::scan(polytm::ThreadToken &token, std::uint64_t start_key,
            std::size_t limit,
            std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    // A scan covering two slots of one cross-shard composite could
    // otherwise mix its pre- and post-images when the commit record
    // flips mid-scan (the flip is a plain store, invisible to TM
    // validation) — retry while any slot resolved a PENDING intent.
    std::size_t count = 0;
    for (;;) {
        bool unstable = false;
        poly_.run(token, [&](polytm::Tx &tx) {
            // Retried attempts restart the collection inside scanTx.
            count = scanTx(tx, start_key, limit, out, &unstable);
        });
        if (!unstable)
            return count;
        std::this_thread::yield();
    }
}

std::size_t
Shard::sizeQuiesced() const
{
    std::size_t n = 0;
    for (const std::uint64_t state : state_)
        n += state == kFull ? 1 : 0;
    return n;
}

} // namespace proteus::kvstore
