#include "kvstore/shard.hpp"

#include <stdexcept>
#include <string>

namespace proteus::kvstore {

namespace {

/** SplitMix64 finalizer: slot spread for adversarial key patterns. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

namespace {

unsigned
checkedLog2(unsigned log2_value, const char *what)
{
    // >= 32 is either a config typo or would shift into UB territory;
    // fail loudly like the rest of the subsystem's range checks.
    if (log2_value == 0 || log2_value >= 32) {
        throw std::invalid_argument(std::string("Shard: ") + what +
                                    " must be in [1, 31]");
    }
    return log2_value;
}

} // namespace

Shard::Shard(ShardOptions options)
    : poly_(options.initial, {},
            checkedLog2(options.log2Orecs, "log2Orecs")),
      slots_(std::size_t{1}
             << checkedLog2(options.log2Slots, "log2Slots")),
      mask_(slots_ - 1), state_(slots_, kEmpty), keys_(slots_, 0),
      values_(slots_, 0)
{
}

std::size_t
Shard::homeSlot(std::uint64_t key) const
{
    return static_cast<std::size_t>(mix64(key)) & mask_;
}

std::size_t
Shard::probe(polytm::Tx &tx, std::uint64_t key, bool *found)
{
    *found = false;
    std::size_t insert_at = slots_; // first tombstone seen, if any
    std::size_t slot = homeSlot(key);
    for (std::size_t step = 0; step < slots_; ++step) {
        const std::uint64_t state = tx.readWord(&state_[slot]);
        if (state == kEmpty)
            return insert_at < slots_ ? insert_at : slot;
        if (state == kTombstone) {
            if (insert_at == slots_)
                insert_at = slot;
        } else if (tx.readWord(&keys_[slot]) == key) {
            *found = true;
            return slot;
        }
        slot = (slot + 1) & mask_;
    }
    return insert_at; // slots_ when the table has no reusable slot
}

bool
Shard::getTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t *value)
{
    bool found = false;
    const std::size_t slot = probe(tx, key, &found);
    if (!found)
        return false;
    if (value)
        *value = tx.readWord(&values_[slot]);
    return true;
}

bool
Shard::putTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t value)
{
    bool found = false;
    const std::size_t slot = probe(tx, key, &found);
    if (found) {
        tx.writeWord(&values_[slot], value);
        return true;
    }
    if (slot == slots_)
        return false; // full
    tx.writeWord(&state_[slot], kFull);
    tx.writeWord(&keys_[slot], key);
    tx.writeWord(&values_[slot], value);
    return true;
}

bool
Shard::delTx(polytm::Tx &tx, std::uint64_t key)
{
    bool found = false;
    const std::size_t slot = probe(tx, key, &found);
    if (!found)
        return false;
    tx.writeWord(&state_[slot], kTombstone);
    return true;
}

bool
Shard::addTx(polytm::Tx &tx, std::uint64_t key, std::int64_t delta)
{
    // One probe for the read-modify-write (the transfer hot path),
    // not a getTx+putTx pair walking the chain twice.
    bool found = false;
    const std::size_t slot = probe(tx, key, &found);
    if (found) {
        const std::uint64_t current = tx.readWord(&values_[slot]);
        tx.writeWord(&values_[slot],
                     current + static_cast<std::uint64_t>(delta));
        return true;
    }
    if (slot == slots_)
        return false; // full
    tx.writeWord(&state_[slot], kFull);
    tx.writeWord(&keys_[slot], key);
    tx.writeWord(&values_[slot], static_cast<std::uint64_t>(delta));
    return true;
}

bool
Shard::get(polytm::ThreadToken &token, std::uint64_t key,
           std::uint64_t *value)
{
    bool ok = false;
    poly_.run(token,
              [&](polytm::Tx &tx) { ok = getTx(tx, key, value); });
    return ok;
}

bool
Shard::put(polytm::ThreadToken &token, std::uint64_t key,
           std::uint64_t value)
{
    bool ok = false;
    poly_.run(token,
              [&](polytm::Tx &tx) { ok = putTx(tx, key, value); });
    return ok;
}

bool
Shard::del(polytm::ThreadToken &token, std::uint64_t key)
{
    bool ok = false;
    poly_.run(token, [&](polytm::Tx &tx) { ok = delTx(tx, key); });
    return ok;
}

std::size_t
Shard::scanTx(polytm::Tx &tx, std::uint64_t start_key, std::size_t limit,
              std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    std::size_t count = 0;
    if (out)
        out->clear();
    std::size_t slot = homeSlot(start_key);
    for (std::size_t step = 0; step < slots_ && count < limit; ++step) {
        if (tx.readWord(&state_[slot]) == kFull) {
            if (out) {
                out->emplace_back(tx.readWord(&keys_[slot]),
                                  tx.readWord(&values_[slot]));
            }
            ++count;
        }
        slot = (slot + 1) & mask_;
    }
    return count;
}

std::size_t
Shard::scan(polytm::ThreadToken &token, std::uint64_t start_key,
            std::size_t limit,
            std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    std::size_t count = 0;
    poly_.run(token, [&](polytm::Tx &tx) {
        // Retried attempts restart the collection inside scanTx.
        count = scanTx(tx, start_key, limit, out);
    });
    return count;
}

std::size_t
Shard::sizeQuiesced() const
{
    std::size_t n = 0;
    for (const std::uint64_t state : state_)
        n += state == kFull ? 1 : 0;
    return n;
}

} // namespace proteus::kvstore
