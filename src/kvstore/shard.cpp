#include "kvstore/shard.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/hints.hpp"
#include "common/timing.hpp"

namespace proteus::kvstore {

namespace {

/** SplitMix64 finalizer: slot spread for adversarial key patterns. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

unsigned
checkedLog2(unsigned log2_value, const char *what)
{
    // >= 32 is either a config typo or would shift into UB territory;
    // fail loudly like the rest of the subsystem's range checks.
    if (log2_value == 0 || log2_value >= 32) {
        throw std::invalid_argument(std::string("Shard: ") + what +
                                    " must be in [1, 31]");
    }
    return log2_value;
}

inline bool
stateIsValue(std::uint64_t state)
{
    return slotStateIsValue(state);
}

/** Numeric decode of an inline ValueRef (zero-padded to 8 bytes). */
inline std::uint64_t
inlineNumeric(ValueRef ref)
{
    const std::size_t len = inlineRefLen(ref);
    if (len == 0)
        return 0;
    if (len >= 8)
        return ref; // unreachable for well-formed inline refs
    return ref & (~std::uint64_t{0} >> (64 - 8 * len));
}

} // namespace

Shard::Shard(ShardOptions options)
    : poly_(options.initial, {},
            checkedLog2(options.log2Orecs, "log2Orecs")),
      options_(options)
{
    const unsigned log2_slots =
        checkedLog2(options.log2Slots, "log2Slots");
    if (options.maxLog2Slots == 0) {
        maxSlots_ = std::numeric_limits<std::size_t>::max();
    } else {
        if (options.maxLog2Slots < log2_slots ||
            options.maxLog2Slots >= 32) {
            throw std::invalid_argument(
                "Shard: maxLog2Slots must be 0 or in "
                "[log2Slots, 31]");
        }
        maxSlots_ = std::size_t{1} << options.maxLog2Slots;
    }
    if (options_.migrateChunkSlots == 0 ||
        options_.sweepChunkSlots == 0) {
        throw std::invalid_argument(
            "Shard: maintenance chunk sizes must be >= 1");
    }
    arena_.attachObs(options_.recorder, options_.commitSeq,
                     options_.shardIndex);
    tables_.push_back(
        std::make_unique<ShardTable>(std::size_t{1} << log2_slots));
    epochs_.push_back(std::make_unique<TableEpoch>(
        TableEpoch{tables_.back().get(), nullptr}));
    // Quiesced raw store: no transaction can run before construction
    // returns.
    epochWord_ = reinterpret_cast<std::uint64_t>(epochs_.back().get());
    epochMirror_.store(epochs_.back().get(), std::memory_order_release);
}

Shard::~Shard() = default;

TableEpoch *
Shard::epochTx(polytm::Tx &tx)
{
    return reinterpret_cast<TableEpoch *>(tx.readWord(&epochWord_));
}

std::size_t
Shard::homeSlot(const ShardTable &table, std::uint64_t key)
{
    return static_cast<std::size_t>(mix64(key)) & table.mask;
}

std::uint64_t
Shard::keyHash(std::uint64_t key)
{
    return mix64(key);
}

void
Shard::ctrlSetTx(polytm::Tx &tx, ShardTable &table, std::size_t slot,
                 std::uint8_t byte)
{
    const std::size_t word = slot >> 3;
    const unsigned shift = static_cast<unsigned>(slot & 7) * 8;
    const std::uint64_t cur = tx.readWord(&table.ctrl[word]);
    const std::uint64_t next =
        (cur & ~(std::uint64_t{0xff} << shift)) |
        (std::uint64_t{byte} << shift);
    if (next != cur)
        tx.writeWord(&table.ctrl[word], next);
}

std::size_t
Shard::probeScalar(polytm::Tx &tx, ShardTable &table, std::uint64_t key,
                   bool *found)
{
    *found = false;
    std::size_t insert_at = table.slots; // first tombstone seen, if any
    std::size_t slot = homeSlot(table, key);
    for (std::size_t step = 0; step < table.slots; ++step) {
        // The common probe is one or two slots long; when it runs
        // past that the chain is streaming — pull the next slot's
        // state/key lines in early so the TM read barrier hits warm
        // cache.
        const std::size_t next = (slot + 1) & table.mask;
        PROTEUS_PREFETCH(&table.state[next]);
        PROTEUS_PREFETCH(&table.keys[next]);
        const std::uint64_t state = tx.readWord(&table.state[slot]);
        if (state == kEmpty)
            return insert_at < table.slots ? insert_at : slot;
        if (PROTEUS_UNLIKELY(state == kTombstone)) {
            if (insert_at == table.slots)
                insert_at = slot;
        } else if (PROTEUS_LIKELY(tx.readWord(&table.keys[slot]) ==
                                  key)) {
            // kFull/kFullRef/kPendingInsert all carry a valid key word.
            *found = true;
            return slot;
        }
        slot = next;
    }
    return insert_at; // table.slots when the table has no reusable slot
}

std::size_t
Shard::probe(polytm::Tx &tx, ShardTable &table, std::uint64_t key,
             bool *found)
{
    if (PROTEUS_UNLIKELY(table.slots < kCtrlGroupSlots ||
                         simd::forceScalarProbe()))
        return probeScalar(tx, table, key, found);
    *found = false;
    const std::uint64_t hash = mix64(key);
    const std::size_t home =
        static_cast<std::size_t>(hash) & table.mask;
    // Fast path: the common probe ends at the home slot — a direct
    // hit or a virgin empty slot. Identical TM-read cost to the old
    // slot walk (state word, then key word); only contended chains
    // pay for ctrl words.
    {
        const std::uint64_t state = tx.readWord(&table.state[home]);
        if (state == kEmpty)
            return home;
        if (state != kTombstone &&
            PROTEUS_LIKELY(tx.readWord(&table.keys[home]) == key)) {
            *found = true;
            return home;
        }
    }
    // Group scan: two TM ctrl reads cover 16 slots; matching runs on
    // the returned register values (no memory loads — see
    // common/simd.hpp). Candidates are fingerprint hits plus every
    // empty/tombstone hint; each one is verified against the
    // transactional state/key words, and the walk terminates only on
    // a TM-read kEmpty — the hints steer, the slot words decide. The
    // ctrl reads also cover the *skipped* lanes through the read set:
    // any committed state-class change rewrites the slot's ctrl byte,
    // so a straddling transaction that skipped the slot validates
    // against the change like any other conflicting read.
    const std::uint8_t fp = ctrlFingerprint(hash);
    const std::size_t num_groups = table.slots / kCtrlGroupSlots;
    const std::size_t group_mask = num_groups - 1;
    std::size_t insert_at = table.slots;
    std::size_t group = home / kCtrlGroupSlots;
    const auto home_lane = static_cast<unsigned>(home & 15);
    // The home group's leading lanes are not on this key's chain;
    // they are re-scanned as the chain's true tail if the walk wraps
    // the whole table.
    std::uint32_t lane_filter = ~std::uint32_t{0} << home_lane;
    for (std::size_t gi = 0; gi <= num_groups; ++gi) {
        if (PROTEUS_UNLIKELY(gi == num_groups)) {
            if (home_lane == 0)
                break; // chain start was group-aligned: fully covered
            lane_filter = ~(~std::uint32_t{0} << home_lane) & 0xffffu;
        }
        const std::size_t base = group * kCtrlGroupSlots;
        const std::uint64_t lo = tx.readWord(&table.ctrl[group * 2]);
        const std::uint64_t hi =
            tx.readWord(&table.ctrl[group * 2 + 1]);
        std::uint32_t cand = (simd::matchByte16(lo, hi, fp) |
                              simd::matchHighBit16(lo, hi)) &
                             lane_filter;
        while (cand != 0) {
            const unsigned lane =
                static_cast<unsigned>(std::countr_zero(cand));
            cand &= cand - 1;
            const std::size_t slot = base + lane;
            const std::uint64_t state =
                tx.readWord(&table.state[slot]);
            if (state == kEmpty)
                return insert_at < table.slots ? insert_at : slot;
            if (state == kTombstone) {
                if (insert_at == table.slots)
                    insert_at = slot;
            } else if (tx.readWord(&table.keys[slot]) == key) {
                *found = true;
                return slot;
            } else {
                ctrlFalsePositives_.fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
        group = (group + 1) & group_mask;
        lane_filter = 0xffffu;
    }
    return insert_at; // table.slots when the table has no reusable slot
}

bool
Shard::resolveSlotLiveTx(polytm::Tx &tx, ShardTable &table,
                         std::size_t slot, LiveValue *out,
                         const ReadView &view)
{
    const auto expired = [](std::uint64_t deadline) {
        return deadline != 0 && deadline <= nowNanos();
    };
    const std::uint64_t word = tx.readWord(&table.intents[slot]);
    const std::uint64_t state = tx.readWord(&table.state[slot]);
    if (PROTEUS_LIKELY(word == 0)) {
        if (!stateIsValue(state))
            return false;
        const std::uint64_t deadline =
            tx.readWord(&table.expiry[slot]);
        if (PROTEUS_UNLIKELY(expired(deadline)))
            return false; // lazy TTL: expired reads as absent
        if (out) {
            out->state = state;
            out->value = tx.readWord(&table.values[slot]);
            out->expiry = deadline;
        }
        return true;
    }
    WriteIntent *intent = intentOf(word);
    CommitRecord *record =
        intent->record.load(std::memory_order_acquire);
    const std::uint64_t tag = intentEpochTag(word);
    bool waited = false;
    for (;;) {
        // Payload fields must be read before the status word: fields
        // of epoch E freeze before E's flip and are only rewritten
        // after the next re-arm, so a status that still reads
        // (E, kCommitted) at a later point proves the earlier field
        // loads saw epoch E's frozen payload.
        const std::uint64_t new_state =
            intent->newState.load(std::memory_order_relaxed);
        const std::uint64_t new_value =
            intent->newValue.load(std::memory_order_relaxed);
        const std::uint64_t new_expiry =
            intent->newExpiry.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t status =
            record ? record->status.load(std::memory_order_acquire)
                   : 0;
        const bool same_epoch =
            record && (CommitRecord::epochOf(status) & 0xffff) == tag;
        const std::uint64_t verdict = CommitRecord::stateOf(status);
        if (same_epoch && verdict == CommitRecord::kCommitted) {
            // Post-image wins from the commit point on — but a
            // snapshot view excludes a commit sequenced after its
            // sampled read timestamp (the reader's round began before
            // this commit existed; its trailing sequence check keeps
            // the exclusion consistent across slots and shards).
            bool include = true;
            if (view.mode == ReadView::Mode::kSnapshot) {
                const std::uint64_t cword =
                    record->commitSeq.load(std::memory_order_acquire);
                include =
                    CommitRecord::seqEpochTag(cword) == (tag & 0xffff) &&
                    CommitRecord::seqOf(cword) <= view.seq;
            }
            if (include) {
                if (!stateIsValue(new_state) || expired(new_expiry))
                    return false;
                if (out) {
                    out->state = new_state;
                    out->value = new_value;
                    out->expiry = new_expiry;
                }
                return true;
            }
            break; // pre-image: commit is after this snapshot
        }
        if (same_epoch && verdict == CommitRecord::kPending) {
            // In-flight. kSettle always waits the verdict out;
            // kSnapshot waits only when the commit already reserved a
            // sequence inside our snapshot (the flip is then at most
            // a few plain stores away) — an unreserved sequence is
            // provably ordered after our sampled timestamp, so the
            // pre-image is final for this view. kLatest never waits.
            bool wait = view.mode == ReadView::Mode::kSettle;
            if (view.mode == ReadView::Mode::kSnapshot) {
                const std::uint64_t cword =
                    record->commitSeq.load(std::memory_order_acquire);
                wait =
                    CommitRecord::seqEpochTag(cword) == (tag & 0xffff) &&
                    CommitRecord::seqOf(cword) <= view.seq;
            }
            if (wait) {
                if (!waited) {
                    waited = true;
                    snapshotWaits_.fetch_add(
                        1, std::memory_order_relaxed);
                }
                std::this_thread::yield();
                continue;
            }
        }
        break;
    }
    // Pending-outside-view or aborted: the pre-image is the live
    // state. An epoch mismatch means the intent was recycled
    // underneath us; the republished word differs (epoch tag), so
    // this transaction's read-set validation rejects the commit and
    // the retry sees the slot's real state — pre-image junk never
    // escapes.
    if (!stateIsValue(state))
        return false;
    const std::uint64_t deadline = tx.readWord(&table.expiry[slot]);
    if (expired(deadline))
        return false;
    if (out) {
        out->state = state;
        out->value = tx.readWord(&table.values[slot]);
        out->expiry = deadline;
    }
    return true;
}

void
Shard::resolveForeignIntentTx(polytm::Tx &tx, ShardTable &table,
                              std::size_t slot, std::uint64_t word)
{
    WriteIntent *intent = intentOf(word);
    CommitRecord *record =
        intent->record.load(std::memory_order_acquire);
    const auto read_payload = [&](std::uint64_t *new_state,
                                  std::uint64_t *new_value,
                                  std::uint64_t *new_expiry) {
        // Fields before status, as in resolveSlotLiveTx: a matching
        // (epoch, kCommitted) status read afterwards proves the
        // fields belonged to that frozen generation.
        *new_state = intent->newState.load(std::memory_order_relaxed);
        *new_value = intent->newValue.load(std::memory_order_relaxed);
        *new_expiry = intent->newExpiry.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        return record->status.load(std::memory_order_acquire);
    };
    std::uint64_t new_state = 0;
    std::uint64_t new_value = 0;
    std::uint64_t new_expiry = 0;
    std::uint64_t status =
        record ? read_payload(&new_state, &new_value, &new_expiry) : 0;
    const auto same_epoch = [&](std::uint64_t s) {
        return record && (CommitRecord::epochOf(s) & 0xffff) ==
                             intentEpochTag(word);
    };
    while (same_epoch(status) &&
           CommitRecord::stateOf(status) == CommitRecord::kPending) {
        if (tx.revocable()) {
            // Drop all TM resources and come back with backoff; the
            // owner needs this slot's universe only to finalize, and
            // the commit flip we are waiting for is a plain store.
            tx.retry();
        }
        // Irrevocable (HTM fallback holder): wait in place. Safe
        // because the flip needs no TM resources, and the owner only
        // ever waits on *higher-numbered* shards (prepare is
        // shard-ordered), so wait chains cannot cycle.
        std::this_thread::yield();
        status = read_payload(&new_state, &new_value, &new_expiry);
    }
    if (same_epoch(status) &&
        CommitRecord::stateOf(status) == CommitRecord::kCommitted) {
        tx.writeWord(&table.state[slot], new_state);
        if (stateIsValue(new_state)) {
            tx.writeWord(&table.values[slot], new_value);
            tx.writeWord(&table.expiry[slot], new_expiry);
        } else {
            ctrlSetTx(tx, table, slot, kCtrlTombstone);
        }
    } else if (tx.readWord(&table.state[slot]) == kPendingInsert) {
        // Aborted (or recycled-underneath-us — then this transaction
        // fails validation on the changed intent word and the writes
        // roll back): tombstone, never back to empty — concurrent
        // probe chains may already run past this slot.
        tx.writeWord(&table.state[slot], kTombstone);
        ctrlSetTx(tx, table, slot, kCtrlTombstone);
    }
    tx.writeWord(&table.intents[slot], 0);
}

Shard::SlotRef
Shard::writeLookup(polytm::Tx &tx, CommitRecord *record,
                   std::uint64_t key, bool *found, WriteIntent **own)
{
    if (own)
        *own = nullptr;
    TableEpoch *ep = epochTx(tx);
    const auto settle = [&](ShardTable &table,
                            std::size_t slot) -> bool {
        // Resolve foreign intents until the slot is quiet or ours;
        // returns whether the key is (still) logically present there.
        for (;;) {
            const std::uint64_t word =
                tx.readWord(&table.intents[slot]);
            if (word == 0)
                break;
            WriteIntent *intent = intentOf(word);
            if (record && intent->record.load(
                              std::memory_order_relaxed) == record) {
                // Ours — necessarily the current epoch: every intent
                // of the previous multiOp was cleared before re-arming.
                // (`own` is only optional for record==nullptr callers.)
                *own = intent;
                return true;
            }
            resolveForeignIntentTx(tx, table, slot, word);
        }
        return stateIsValue(tx.readWord(&table.state[slot]));
    };

    bool in_live = false;
    const std::size_t live_slot = probe(tx, *ep->live, key, &in_live);
    if (in_live) {
        *found = settle(*ep->live, live_slot);
        return {ep->live, live_slot};
    }
    if (ep->old) {
        bool in_old = false;
        const std::size_t old_slot = probe(tx, *ep->old, key, &in_old);
        if (in_old && settle(*ep->old, old_slot)) {
            *found = true;
            return {ep->old, old_slot};
        }
    }
    // Absent everywhere; inserts always target the live table.
    *found = false;
    return {ep->live, live_slot};
}

bool
Shard::numericValueTx(polytm::Tx &tx, ShardTable &table,
                      std::size_t slot, LiveValue live,
                      std::uint64_t *out, const ReadView &view)
{
    for (;;) {
        if (PROTEUS_LIKELY(live.state == kFull)) {
            if (out)
                *out = live.value;
            return true;
        }
        const ValueRef ref = live.value;
        if (!valueRefIsBlob(ref)) {
            if (out)
                *out = inlineNumeric(ref);
            return true;
        }
        std::uint64_t word = 0;
        if (arena_.readBlobWord(ref, &word)) {
            if (out)
                *out = word;
            return true;
        }
        // Blob recycled underneath the handle: the slot's value word
        // changed first, so re-resolving through the TM either aborts
        // this transaction (version/value validation) or yields the
        // fresh pair.
        if (!resolveSlotLiveTx(tx, table, slot, &live, view))
            return false;
    }
}

bool
Shard::bytesValueTx(polytm::Tx &tx, ShardTable &table, std::size_t slot,
                    LiveValue live, std::string *out,
                    const ReadView &view, bool pinned)
{
    for (;;) {
        if (live.state == kFull) {
            // Numeric values read as their 8 raw bytes.
            out->resize(8);
            std::memcpy(out->data(), &live.value, 8);
            return true;
        }
        const ValueRef ref = live.value;
        if (!valueRefIsBlob(ref)) {
            inlineRefCopy(ref, out);
            return true;
        }
        if (PROTEUS_LIKELY(pinned)) {
            // The caller's reader-epoch section defers recycling of
            // every handle it can legally hold — copy with zero
            // seqlock fences or re-checks.
            arena_.readBlobPinned(ref, out);
            return true;
        }
        if (arena_.readBlob(ref, out))
            return true;
        if (!resolveSlotLiveTx(tx, table, slot, &live, view))
            return false;
    }
}

bool
Shard::lookupLiveTx(polytm::Tx &tx, std::uint64_t key, SlotRef *ref,
                    LiveValue *live, const ReadView &view)
{
    TableEpoch *ep = epochTx(tx);
    bool found = false;
    std::size_t slot = probe(tx, *ep->live, key, &found);
    ShardTable *table = ep->live;
    if (!found && ep->old) {
        slot = probe(tx, *ep->old, key, &found);
        table = ep->old;
    }
    if (!found)
        return false;
    if (!resolveSlotLiveTx(tx, *table, slot, live, view))
        return false;
    *ref = {table, slot};
    return true;
}

bool
Shard::getTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t *value)
{
    return snapshotGetTx(tx, key, value, ReadView{});
}

bool
Shard::snapshotGetTx(polytm::Tx &tx, std::uint64_t key,
                     std::uint64_t *value, const ReadView &view)
{
    SlotRef ref;
    LiveValue live;
    if (!lookupLiveTx(tx, key, &ref, &live, view))
        return false;
    return numericValueTx(tx, *ref.table, ref.slot, live, value, view);
}

bool
Shard::snapshotGetBytesTx(polytm::Tx &tx, std::uint64_t key,
                          std::string *out, const ReadView &view)
{
    SlotRef ref;
    LiveValue live;
    if (!lookupLiveTx(tx, key, &ref, &live, view))
        return false;
    return bytesValueTx(tx, *ref.table, ref.slot, live, out, view,
                        /*pinned=*/true);
}

SlotImage
Shard::slotImageTx(polytm::Tx &tx, ShardTable &table, std::size_t slot)
{
    SlotImage image;
    image.state = tx.readWord(&table.state[slot]);
    if (stateIsValue(image.state)) {
        image.value = tx.readWord(&table.values[slot]);
        image.expiry = tx.readWord(&table.expiry[slot]);
    }
    return image;
}

bool
Shard::settledValueTx(polytm::Tx &tx, const SlotRef &ref,
                      LiveValue *out)
{
    const SlotImage image = slotImageTx(tx, *ref.table, ref.slot);
    if (image.expiry != 0 && image.expiry <= nowNanos())
        return false;
    *out = {image.state, image.value, image.expiry};
    return true;
}

bool
Shard::getForUpdateTx(polytm::Tx &tx, std::uint64_t key,
                      std::uint64_t *value)
{
    bool found = false;
    const SlotRef ref = writeLookup(tx, nullptr, key, &found, nullptr);
    LiveValue live;
    if (!found || !settledValueTx(tx, ref, &live))
        return false;
    return numericValueTx(tx, *ref.table, ref.slot, live, value);
}

bool
Shard::getBytesForUpdateTx(polytm::Tx &tx, std::uint64_t key,
                           std::string *out)
{
    bool found = false;
    const SlotRef ref = writeLookup(tx, nullptr, key, &found, nullptr);
    LiveValue live;
    if (!found || !settledValueTx(tx, ref, &live))
        return false;
    return bytesValueTx(tx, *ref.table, ref.slot, live, out);
}

bool
Shard::putSlotTx(polytm::Tx &tx, std::uint64_t key,
                 std::uint64_t new_state, std::uint64_t value,
                 std::uint64_t expiry, SlotImage *pre,
                 std::vector<std::uint64_t> *reclaim)
{
    bool found = false;
    const SlotRef ref = writeLookup(tx, nullptr, key, &found, nullptr);
    if (ref.slot == ref.table->slots) {
        if (pre)
            *pre = SlotImage{};
        return false; // full
    }
    const SlotImage image = slotImageTx(tx, *ref.table, ref.slot);
    if (pre)
        *pre = image;
    if (found) {
        if (reclaim && image.state == kFullRef)
            reclaim->push_back(image.value);
        tx.writeWord(&ref.table->state[ref.slot], new_state);
        tx.writeWord(&ref.table->values[ref.slot], value);
        tx.writeWord(&ref.table->expiry[ref.slot], expiry);
        return true;
    }
    tx.writeWord(&ref.table->state[ref.slot], new_state);
    tx.writeWord(&ref.table->keys[ref.slot], key);
    tx.writeWord(&ref.table->values[ref.slot], value);
    tx.writeWord(&ref.table->expiry[ref.slot], expiry);
    ctrlSetTx(tx, *ref.table, ref.slot, ctrlFingerprint(keyHash(key)));
    return true;
}

bool
Shard::putTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t value,
             std::uint64_t expiry, SlotImage *pre,
             std::vector<std::uint64_t> *reclaim)
{
    return putSlotTx(tx, key, kFull, value, expiry, pre, reclaim);
}

bool
Shard::putRefTx(polytm::Tx &tx, std::uint64_t key, ValueRef ref_value,
                std::uint64_t expiry, SlotImage *pre,
                std::vector<std::uint64_t> *reclaim)
{
    return putSlotTx(tx, key, kFullRef, ref_value, expiry, pre,
                     reclaim);
}

bool
Shard::delTx(polytm::Tx &tx, std::uint64_t key, SlotImage *pre,
             std::vector<std::uint64_t> *reclaim)
{
    bool found = false;
    const SlotRef ref = writeLookup(tx, nullptr, key, &found, nullptr);
    if (pre)
        *pre = SlotImage{};
    if (!found)
        return false;
    const SlotImage image = slotImageTx(tx, *ref.table, ref.slot);
    if (pre)
        *pre = image;
    if (reclaim && image.state == kFullRef)
        reclaim->push_back(image.value);
    tx.writeWord(&ref.table->state[ref.slot], kTombstone);
    ctrlSetTx(tx, *ref.table, ref.slot, kCtrlTombstone);
    // Expired entries are already logically absent: reclaim the slot
    // but report the delete as a miss.
    return image.expiry == 0 || image.expiry > nowNanos();
}

bool
Shard::addTx(polytm::Tx &tx, std::uint64_t key, std::int64_t delta,
             SlotImage *pre, std::vector<std::uint64_t> *reclaim,
             SlotImage *post)
{
    // One lookup for the read-modify-write (the transfer hot path),
    // not a getTx+putTx pair walking the chain twice.
    const auto unsigned_delta = static_cast<std::uint64_t>(delta);
    bool found = false;
    const SlotRef ref = writeLookup(tx, nullptr, key, &found, nullptr);
    if (ref.slot == ref.table->slots) {
        if (pre)
            *pre = SlotImage{};
        return false; // full
    }
    const SlotImage image = slotImageTx(tx, *ref.table, ref.slot);
    if (pre)
        *pre = image;
    const bool live_value =
        found && (image.expiry == 0 || image.expiry > nowNanos());
    if (live_value) {
        std::uint64_t current = 0;
        if (!numericValueTx(tx, *ref.table, ref.slot,
                            {image.state, image.value, image.expiry},
                            &current)) {
            // The slot changed under a recycled blob; the transaction
            // is doomed to fail validation — treat as a create so the
            // control flow stays simple.
            current = 0;
        }
        if (reclaim && image.state == kFullRef)
            reclaim->push_back(image.value); // coerced to numeric
        tx.writeWord(&ref.table->state[ref.slot], kFull);
        tx.writeWord(&ref.table->values[ref.slot],
                     current + unsigned_delta);
        tx.writeWord(&ref.table->expiry[ref.slot], image.expiry);
        if (post)
            *post = SlotImage{kFull, current + unsigned_delta,
                              image.expiry};
        return true;
    }
    if (found) {
        // Expired slot: recreate in place at delta with no TTL.
        if (reclaim && image.state == kFullRef)
            reclaim->push_back(image.value);
        tx.writeWord(&ref.table->state[ref.slot], kFull);
        tx.writeWord(&ref.table->values[ref.slot], unsigned_delta);
        tx.writeWord(&ref.table->expiry[ref.slot], 0);
        if (post)
            *post = SlotImage{kFull, unsigned_delta, 0};
        return true;
    }
    tx.writeWord(&ref.table->state[ref.slot], kFull);
    tx.writeWord(&ref.table->keys[ref.slot], key);
    tx.writeWord(&ref.table->values[ref.slot], unsigned_delta);
    tx.writeWord(&ref.table->expiry[ref.slot], 0);
    ctrlSetTx(tx, *ref.table, ref.slot, ctrlFingerprint(keyHash(key)));
    if (post)
        *post = SlotImage{kFull, unsigned_delta, 0};
    return true;
}

void
Shard::restoreTx(polytm::Tx &tx, std::uint64_t key, const SlotImage &pre)
{
    bool found = false;
    const SlotRef ref = writeLookup(tx, nullptr, key, &found, nullptr);
    if (stateIsValue(pre.state)) {
        if (ref.slot == ref.table->slots)
            return; // cannot happen: the failed attempt freed the slot
        if (!found)
            tx.writeWord(&ref.table->keys[ref.slot], key);
        tx.writeWord(&ref.table->state[ref.slot], pre.state);
        tx.writeWord(&ref.table->values[ref.slot], pre.value);
        tx.writeWord(&ref.table->expiry[ref.slot], pre.expiry);
        ctrlSetTx(tx, *ref.table, ref.slot,
                  ctrlFingerprint(keyHash(key)));
        return;
    }
    if (found) {
        tx.writeWord(&ref.table->state[ref.slot], kTombstone);
        ctrlSetTx(tx, *ref.table, ref.slot, kCtrlTombstone);
    }
}

WriteIntent *
Shard::installIntent(polytm::Tx &tx, CommitRecord *record,
                     IntentArena &arena, std::vector<WriteIntent *> &out,
                     ShardTable &table, std::size_t slot,
                     std::uint64_t new_state, std::uint64_t new_value,
                     std::uint64_t new_expiry)
{
    WriteIntent *intent = arena.alloc();
    intent->record.store(record, std::memory_order_relaxed);
    intent->newState.store(new_state, std::memory_order_relaxed);
    intent->newValue.store(new_value, std::memory_order_relaxed);
    intent->newExpiry.store(new_expiry, std::memory_order_relaxed);
    intent->table = &table;
    intent->slot = slot;
    intent->claimedTombstone = false;
    // The transactional store publishes the intent atomically with the
    // rest of this shard's prepare at commit time (release), so the
    // relaxed field stores above are visible to any resolver that
    // acquires the pointer. The published word carries the record's
    // current epoch so resolvers can reject recycled generations.
    const std::uint64_t epoch = CommitRecord::epochOf(
        record->status.load(std::memory_order_relaxed));
    tx.writeWord(&table.intents[slot],
                 packIntentWord(intent, epoch & 0xffff));
    out.push_back(intent);
    return intent;
}

bool
Shard::preparePutTx(polytm::Tx &tx, CommitRecord *record,
                    IntentArena &arena, std::vector<WriteIntent *> &out,
                    std::uint64_t key, std::uint64_t new_state,
                    std::uint64_t value, std::uint64_t expiry,
                    bool *applied, std::vector<std::uint64_t> *reclaim)
{
    bool found = false;
    WriteIntent *own = nullptr;
    const SlotRef ref = writeLookup(tx, record, key, &found, &own);
    if (own) {
        // Re-writing a slot this composite already prepared: the
        // previous own post-image's staged blob (if any) becomes
        // garbage once the record commits — reclaim it, exactly like
        // prepareAddTx's coercion path (on abort it is freed through
        // the owner's staged-blob list instead, and the reclaim list
        // is discarded).
        if (reclaim && own->newState.load(std::memory_order_relaxed) ==
                           kFullRef) {
            const ValueRef own_ref =
                own->newValue.load(std::memory_order_relaxed);
            if (valueRefIsBlob(own_ref))
                reclaim->push_back(own_ref);
        }
        own->newState.store(new_state, std::memory_order_relaxed);
        own->newValue.store(value, std::memory_order_relaxed);
        own->newExpiry.store(expiry, std::memory_order_relaxed);
        *applied = true;
        return true;
    }
    if (found) {
        if (reclaim) {
            const SlotImage image =
                slotImageTx(tx, *ref.table, ref.slot);
            if (image.state == kFullRef)
                reclaim->push_back(image.value);
        }
        installIntent(tx, record, arena, out, *ref.table, ref.slot,
                      new_state, value, expiry);
        *applied = true;
        return true;
    }
    if (ref.slot == ref.table->slots) {
        *applied = false;
        return false; // full: caller grows (or aborts when capped)
    }
    const bool reused_tombstone =
        tx.readWord(&ref.table->state[ref.slot]) == kTombstone;
    tx.writeWord(&ref.table->state[ref.slot], kPendingInsert);
    tx.writeWord(&ref.table->keys[ref.slot], key);
    ctrlSetTx(tx, *ref.table, ref.slot, ctrlFingerprint(keyHash(key)));
    installIntent(tx, record, arena, out, *ref.table, ref.slot,
                  new_state, value, expiry)
        ->claimedTombstone = reused_tombstone;
    *applied = true;
    return true;
}

void
Shard::prepareDelTx(polytm::Tx &tx, CommitRecord *record,
                    IntentArena &arena, std::vector<WriteIntent *> &out,
                    std::uint64_t key, bool *applied,
                    std::vector<std::uint64_t> *reclaim)
{
    bool found = false;
    WriteIntent *own = nullptr;
    const SlotRef ref = writeLookup(tx, record, key, &found, &own);
    if (own) {
        const std::uint64_t own_state =
            own->newState.load(std::memory_order_relaxed);
        *applied = stateIsValue(own_state);
        // Deleting this composite's own staged byte value: its blob
        // is garbage from the commit on (see preparePutTx).
        if (reclaim && own_state == kFullRef) {
            const ValueRef own_ref =
                own->newValue.load(std::memory_order_relaxed);
            if (valueRefIsBlob(own_ref))
                reclaim->push_back(own_ref);
        }
        own->newState.store(kTombstone, std::memory_order_relaxed);
        return;
    }
    if (!found) {
        *applied = false; // absent (or full table with no match)
        return;
    }
    const SlotImage image = slotImageTx(tx, *ref.table, ref.slot);
    if (image.expiry != 0 && image.expiry <= nowNanos()) {
        // Logically absent; install the tombstone anyway so the slot
        // is reclaimed with the commit.
        *applied = false;
    } else {
        *applied = true;
    }
    if (reclaim && image.state == kFullRef)
        reclaim->push_back(image.value);
    installIntent(tx, record, arena, out, *ref.table, ref.slot,
                  kTombstone, 0, 0);
}

bool
Shard::prepareAddTx(polytm::Tx &tx, CommitRecord *record,
                    IntentArena &arena, std::vector<WriteIntent *> &out,
                    std::uint64_t key, std::int64_t delta, bool *applied,
                    std::vector<std::uint64_t> *reclaim,
                    SlotImage *post)
{
    const auto unsigned_delta = static_cast<std::uint64_t>(delta);
    bool found = false;
    WriteIntent *own = nullptr;
    const SlotRef ref = writeLookup(tx, record, key, &found, &own);
    if (own) {
        const std::uint64_t own_state =
            own->newState.load(std::memory_order_relaxed);
        if (stateIsValue(own_state)) {
            std::uint64_t current =
                own->newValue.load(std::memory_order_relaxed);
            if (own_state == kFullRef) {
                // Coerce this composite's own byte value to numeric;
                // its blob becomes garbage once the record commits.
                const ValueRef own_ref = current;
                if (valueRefIsBlob(own_ref)) {
                    std::uint64_t word = 0;
                    // Own blob: stable (never recycled while pending).
                    arena_.readBlobWord(own_ref, &word);
                    current = word;
                    if (reclaim)
                        reclaim->push_back(own_ref);
                } else {
                    current = inlineNumeric(own_ref);
                }
                own->newState.store(kFull, std::memory_order_relaxed);
            }
            own->newValue.store(current + unsigned_delta,
                                std::memory_order_relaxed);
        } else { // deleted earlier in this multiOp: recreate at delta
            own->newState.store(kFull, std::memory_order_relaxed);
            own->newValue.store(unsigned_delta,
                                std::memory_order_relaxed);
            own->newExpiry.store(0, std::memory_order_relaxed);
        }
        if (post)
            *post = SlotImage{
                kFull, own->newValue.load(std::memory_order_relaxed),
                own->newExpiry.load(std::memory_order_relaxed)};
        *applied = true;
        return true;
    }
    if (found) {
        const SlotImage image = slotImageTx(tx, *ref.table, ref.slot);
        const bool live_value =
            image.expiry == 0 || image.expiry > nowNanos();
        std::uint64_t current = 0;
        if (live_value) {
            if (!numericValueTx(tx, *ref.table, ref.slot,
                                {image.state, image.value,
                                 image.expiry},
                                &current))
                current = 0; // doomed transaction; keep control simple
        }
        if (reclaim && image.state == kFullRef)
            reclaim->push_back(image.value);
        installIntent(tx, record, arena, out, *ref.table, ref.slot,
                      kFull, current + unsigned_delta,
                      live_value ? image.expiry : 0);
        if (post)
            *post = SlotImage{kFull, current + unsigned_delta,
                              live_value ? image.expiry : 0};
        *applied = true;
        return true;
    }
    if (ref.slot == ref.table->slots) {
        *applied = false;
        return false; // full: caller grows (or aborts when capped)
    }
    const bool reused_tombstone =
        tx.readWord(&ref.table->state[ref.slot]) == kTombstone;
    tx.writeWord(&ref.table->state[ref.slot], kPendingInsert);
    tx.writeWord(&ref.table->keys[ref.slot], key);
    ctrlSetTx(tx, *ref.table, ref.slot, ctrlFingerprint(keyHash(key)));
    installIntent(tx, record, arena, out, *ref.table, ref.slot, kFull,
                  unsigned_delta, 0)
        ->claimedTombstone = reused_tombstone;
    if (post)
        *post = SlotImage{kFull, unsigned_delta, 0};
    *applied = true;
    return true;
}

bool
Shard::prepareGetTx(polytm::Tx &tx, CommitRecord *record,
                    std::uint64_t key, std::uint64_t *value)
{
    // Reads inside a *writing* composite resolve foreign intents the
    // way the write primitives do — waiting out PENDING ones — rather
    // than taking the non-blocking pre-image. Otherwise an
    // irrevocable backend could report a pre-image here and then fold
    // the foreign post-image under a later write of the same key in
    // the same transaction (no retry re-runs the read), leaving the
    // composite's own outputs unserializable.
    bool found = false;
    WriteIntent *own = nullptr;
    const SlotRef ref = writeLookup(tx, record, key, &found, &own);
    if (own) {
        // Read-your-writes within the composite.
        const std::uint64_t own_state =
            own->newState.load(std::memory_order_relaxed);
        if (!stateIsValue(own_state))
            return false;
        const std::uint64_t own_value =
            own->newValue.load(std::memory_order_relaxed);
        if (own_state == kFull) {
            if (value)
                *value = own_value;
            return true;
        }
        const ValueRef own_ref = own_value;
        if (!valueRefIsBlob(own_ref)) {
            if (value)
                *value = inlineNumeric(own_ref);
            return true;
        }
        std::uint64_t word = 0;
        arena_.readBlobWord(own_ref, &word); // own blob: stable
        if (value)
            *value = word;
        return true;
    }
    LiveValue live;
    if (!found || !settledValueTx(tx, ref, &live))
        return false;
    return numericValueTx(tx, *ref.table, ref.slot, live, value);
}

bool
Shard::prepareGetBytesTx(polytm::Tx &tx, CommitRecord *record,
                         std::uint64_t key, std::string *out)
{
    bool found = false;
    WriteIntent *own = nullptr;
    const SlotRef ref = writeLookup(tx, record, key, &found, &own);
    if (own) {
        const std::uint64_t own_state =
            own->newState.load(std::memory_order_relaxed);
        if (!stateIsValue(own_state))
            return false;
        const std::uint64_t own_value =
            own->newValue.load(std::memory_order_relaxed);
        if (own_state == kFull) {
            out->resize(8);
            std::memcpy(out->data(), &own_value, 8);
            return true;
        }
        const ValueRef own_ref = own_value;
        if (!valueRefIsBlob(own_ref)) {
            inlineRefCopy(own_ref, out);
            return true;
        }
        arena_.readBlob(own_ref, out); // own blob: stable
        return true;
    }
    LiveValue live;
    if (!found || !settledValueTx(tx, ref, &live))
        return false;
    return bytesValueTx(tx, *ref.table, ref.slot, live, out);
}

bool
Shard::finalizeIntentTx(polytm::Tx &tx, WriteIntent *intent,
                        std::int64_t *tombstone_delta)
{
    ShardTable &table = *intent->table;
    const std::size_t slot = static_cast<std::size_t>(intent->slot);
    const std::uint64_t word = tx.readWord(&table.intents[slot]);
    if (intentOf(word) != intent)
        return false; // a helping writer already folded it
    const std::uint64_t pre_state = tx.readWord(&table.state[slot]);
    const bool was_pending_insert = pre_state == kPendingInsert;
    const std::uint64_t new_state =
        intent->newState.load(std::memory_order_relaxed);
    tx.writeWord(&table.state[slot], new_state);
    if (stateIsValue(new_state)) {
        tx.writeWord(&table.values[slot],
                     intent->newValue.load(std::memory_order_relaxed));
        tx.writeWord(&table.expiry[slot],
                     intent->newExpiry.load(std::memory_order_relaxed));
    } else {
        ctrlSetTx(tx, table, slot, kCtrlTombstone);
    }
    tx.writeWord(&table.intents[slot], 0);
    if (tombstone_delta) {
        if (new_state == kTombstone && stateIsValue(pre_state))
            ++*tombstone_delta; // committed delete of a value slot
        else if (was_pending_insert && stateIsValue(new_state) &&
                 intent->claimedTombstone)
            --*tombstone_delta; // the insert reused a tombstone
    }
    // A pending insert that claimed a tombstone consumed no new slot.
    return was_pending_insert && stateIsValue(new_state) &&
           !intent->claimedTombstone;
}

void
Shard::abortIntentTx(polytm::Tx &tx, WriteIntent *intent)
{
    ShardTable &table = *intent->table;
    const std::size_t slot = static_cast<std::size_t>(intent->slot);
    const std::uint64_t word = tx.readWord(&table.intents[slot]);
    if (intentOf(word) != intent)
        return; // a helping writer already discarded it
    if (tx.readWord(&table.state[slot]) == kPendingInsert) {
        tx.writeWord(&table.state[slot], kTombstone);
        ctrlSetTx(tx, table, slot, kCtrlTombstone);
    }
    tx.writeWord(&table.intents[slot], 0);
}

bool
Shard::get(polytm::ThreadToken &token, std::uint64_t key,
           std::uint64_t *value)
{
    bool ok = false;
    poly_.run(token,
              [&](polytm::Tx &tx) { ok = getTx(tx, key, value); });
    return ok;
}

bool
Shard::put(polytm::ThreadToken &token, std::uint64_t key,
           std::uint64_t value, std::uint64_t ttl_nanos)
{
    const std::uint64_t expiry =
        ttl_nanos == 0 ? 0 : nowNanos() + ttl_nanos;
    if (expiry != 0)
        ttlSeen_.store(true, std::memory_order_relaxed);
    std::vector<std::uint64_t> reclaim;
    for (;;) {
        // Capacity snapshot BEFORE the attempt: if a concurrent grow
        // doubles the table mid-attempt, tryGrow sees the enlarged
        // live table, returns immediately, and the retry runs against
        // it instead of failing a capped shard spuriously.
        const std::size_t cap = capacity();
        bool ok = false;
        SlotImage pre;
        poly_.run(token, [&](polytm::Tx &tx) {
            reclaim.clear(); // retried attempts restart
            ok = putTx(tx, key, value, expiry, &pre, &reclaim);
        });
        if (ok) {
            finishWrite(token, pre, reclaim);
            return true;
        }
        if (!tryGrow(token, cap))
            return false;
    }
}

bool
Shard::putBytes(polytm::ThreadToken &token, std::uint64_t key,
                const void *data, std::size_t len,
                std::uint64_t ttl_nanos)
{
    const std::uint64_t expiry =
        ttl_nanos == 0 ? 0 : nowNanos() + ttl_nanos;
    if (expiry != 0)
        ttlSeen_.store(true, std::memory_order_relaxed);
    const ValueRef ref = len <= kValueRefInlineMax
                             ? makeInlineRef(data, len)
                             : arena_.allocBlob(data, len);
    std::vector<std::uint64_t> reclaim;
    for (;;) {
        const std::size_t cap = capacity(); // before the attempt
        bool ok = false;
        SlotImage pre;
        poly_.run(token, [&](polytm::Tx &tx) {
            reclaim.clear();
            ok = putRefTx(tx, key, ref, expiry, &pre, &reclaim);
        });
        if (ok) {
            finishWrite(token, pre, reclaim);
            return true;
        }
        if (!tryGrow(token, cap)) {
            arena_.freeBlob(ref); // never published
            return false;
        }
    }
}

bool
Shard::getBytes(polytm::ThreadToken &token, std::uint64_t key,
                std::string *out)
{
    bool ok = false;
    poly_.run(token, [&](polytm::Tx &tx) {
        // Pin per attempt (never across a gate park): the section
        // covers every blob deref of this body.
        EpochPin pin(readerEpochs_, *token.epochSlot);
        ok = snapshotGetBytesTx(tx, key, out, ReadView{});
    });
    return ok;
}

bool
Shard::del(polytm::ThreadToken &token, std::uint64_t key)
{
    bool ok = false;
    SlotImage pre;
    std::vector<std::uint64_t> reclaim;
    poly_.run(token, [&](polytm::Tx &tx) {
        reclaim.clear();
        ok = delTx(tx, key, &pre, &reclaim);
    });
    for (const std::uint64_t ref : reclaim)
        retireBlob(ref);
    if (stateIsValue(pre.state)) {
        noteTombstones(1);
        // Deletes drive maintenance like every other write — a
        // del-only phase must still reclaim its retired blobs.
        maintainTick(token);
    }
    return ok;
}

std::size_t
Shard::scanTx(polytm::Tx &tx, std::uint64_t start_key, std::size_t limit,
              std::vector<std::pair<std::uint64_t, std::uint64_t>> *out,
              const ReadView &view)
{
    if (out)
        out->clear(); // retried attempts restart the collection
    return scanWalkTx(
        tx, start_key, limit, view,
        [&](ShardTable &table, std::size_t slot,
            const LiveValue &live) {
            std::uint64_t word = 0;
            if (!numericValueTx(tx, table, slot, live, &word, view))
                return false;
            if (out)
                out->emplace_back(tx.readWord(&table.keys[slot]), word);
            return true;
        });
}

std::size_t
Shard::scanEntriesTx(polytm::Tx &tx, std::uint64_t start_key,
                     std::size_t limit, std::vector<ScanEntry> *out,
                     const ReadView &view)
{
    if (out)
        out->clear();
    return scanWalkTx(
        tx, start_key, limit, view,
        [&](ShardTable &table, std::size_t slot,
            const LiveValue &live) {
            ScanEntry entry;
            entry.key = tx.readWord(&table.keys[slot]);
            if (!bytesValueTx(tx, table, slot, live, &entry.bytes,
                              view, /*pinned=*/true))
                return false;
            if (out)
                out->push_back(std::move(entry));
            return true;
        });
}

std::size_t
Shard::scan(polytm::ThreadToken &token, std::uint64_t start_key,
            std::size_t limit,
            std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    // kSettle: every in-flight cross-shard commit the walk touches is
    // waited out to its terminal verdict, so one transaction sees each
    // commit all-or-nothing — no retry loop, no store-level sequence
    // needed. (A commit preparing *after* our reads invalidates the
    // scan's read-set through the intent words, so the TM retries it.)
    std::size_t count = 0;
    poly_.run(token, [&](polytm::Tx &tx) {
        count = scanTx(tx, start_key, limit, out,
                       ReadView{ReadView::Mode::kSettle, 0});
    });
    return count;
}

void
Shard::noteConsumed(std::size_t n)
{
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    ep->live->consumed.fetch_add(n, std::memory_order_relaxed);
}

void
Shard::noteTombstones(std::int64_t delta)
{
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    ep->live->tombstones.fetch_add(delta, std::memory_order_relaxed);
}

void
Shard::finishWrite(polytm::ThreadToken &token, const SlotImage &pre,
                   const std::vector<std::uint64_t> &reclaim)
{
    for (const std::uint64_t ref : reclaim)
        retireBlob(ref);
    if (pre.state == kEmpty)
        noteConsumed(1);
    else if (pre.state == kTombstone)
        noteTombstones(-1); // insert reused a tombstone
    maintainTick(token);
}

std::size_t
Shard::capacity() const
{
    return epochMirror_.load(std::memory_order_acquire)->live->slots;
}

bool
Shard::migrationActive() const
{
    return epochMirror_.load(std::memory_order_acquire)->old != nullptr;
}

namespace {

/**
 * Pin a token for a maintenance span so its transactions never park
 * behind the parallelism gate while the thread holds a resource
 * others wait on (growMutex_, a claimed migration chunk) — the same
 * §4.2 escape hatch the multiOp paths use. Pins don't nest: a caller
 * that is itself pinned (a multiOp's grow-retry) gets transiently
 * unpinned at this guard's exit, which is safe because every
 * poly_.run between here and the outer span's end is itself guarded.
 */
class PinGuard
{
  public:
    PinGuard(polytm::PolyTm &poly, int tid) : poly_(poly), tid_(tid)
    {
        poly_.setPinned(tid_, true);
    }
    ~PinGuard() { poly_.setPinned(tid_, false); }

  private:
    polytm::PolyTm &poly_;
    int tid_;
};

} // namespace

void
Shard::publishEpoch(polytm::ThreadToken &token, TableEpoch *next)
{
    // Pinned: this runs under growMutex_, and a publisher parked by a
    // shrunk parallelism degree would stall every grower behind the
    // mutex until the next retune.
    PinGuard pin(poly_, token.tid);
    poly_.run(token, [&](polytm::Tx &tx) {
        tx.writeWord(&epochWord_,
                     reinterpret_cast<std::uint64_t>(next));
    });
    epochMirror_.store(next, std::memory_order_release);
}

void
Shard::startMigrationLocked(polytm::ThreadToken &token,
                            ShardTable *source, std::size_t new_slots)
{
    // growMutex_ held by the caller; `source` is the live table and
    // no migration is in flight. Set up the source's chunk accounting
    // before anyone can claim a chunk.
    const std::size_t chunk = options_.migrateChunkSlots;
    source->totalChunks = (source->slots + chunk - 1) / chunk;
    source->chunkDone =
        std::make_unique<std::atomic<std::uint8_t>[]>(
            source->totalChunks);
    source->migrateCursor.store(0, std::memory_order_relaxed);
    source->chunksDone.store(0, std::memory_order_relaxed);
    tables_.push_back(std::make_unique<ShardTable>(new_slots));
    epochs_.push_back(std::make_unique<TableEpoch>(
        TableEpoch{tables_.back().get(), source}));
    publishEpoch(token, epochs_.back().get());
}

bool
Shard::tombstoneHeavy(const ShardTable &live)
{
    const std::int64_t tombs =
        live.tombstones.load(std::memory_order_relaxed);
    const auto consumed = static_cast<std::int64_t>(
        live.consumed.load(std::memory_order_relaxed));
    // Half-or-more of the consumed slots are garbage: a same-size
    // table holds the survivors comfortably, a doubling would mostly
    // duplicate empty space.
    return tombs > 0 && tombs * 2 >= consumed;
}

bool
Shard::growLocked(polytm::ThreadToken &token, std::size_t full_capacity)
{
    // growMutex_ held by the caller.
    TableEpoch *cur = epochMirror_.load(std::memory_order_acquire);
    if (cur->live->slots > full_capacity)
        return true; // someone already grew past the reported size
    if (cur->live->slots >= maxSlots_)
        return false; // capped: the caller's op has genuinely failed
    startMigrationLocked(token, cur->live, cur->live->slots * 2);
    growCount_.fetch_add(1, std::memory_order_relaxed);
    trace(obs::TraceKind::kGrow, cur->live->slots,
          cur->live->slots * 2);
    return true;
}

void
Shard::compactLocked(polytm::ThreadToken &token)
{
    TableEpoch *cur = epochMirror_.load(std::memory_order_acquire);
    startMigrationLocked(token, cur->live, cur->live->slots);
    compactCount_.fetch_add(1, std::memory_order_relaxed);
    trace(obs::TraceKind::kCompact, cur->live->slots);
}

bool
Shard::tryGrow(polytm::ThreadToken &token, std::size_t full_capacity)
{
    bool compacted = false;
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(growMutex_);
            TableEpoch *cur =
                epochMirror_.load(std::memory_order_acquire);
            if (cur->live->slots > full_capacity)
                return true; // a concurrent grow already helped
            if (!cur->old) {
                if (compacted) {
                    // Our compaction drained: the tombstones it shed
                    // are insert room now — let the caller retry.
                    return true;
                }
                if (cur->live->slots < maxSlots_)
                    return growLocked(token, full_capacity);
                // Capped. Delete churn can still fill a pinned table
                // with tombstones; a same-size compacting migration
                // recovers them. Only a table full of *live* entries
                // is a genuine failure. (The heuristic count resets
                // to truth through the migration, so a drifted-high
                // estimate costs at most one wasted compaction.)
                if (!tombstoneHeavy(*cur->live))
                    return false;
                compactLocked(token);
                compacted = true;
            }
        }
        // A migration is in flight: help drain it, then re-check.
        migrateChunk(token);
    }
}

void
Shard::drainMigration(polytm::ThreadToken &token)
{
    while (migrationActive()) {
        migrateChunk(token);
        std::this_thread::yield();
    }
}

bool
Shard::migrateChunk(polytm::ThreadToken &token)
{
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    ShardTable *old = ep->old;
    if (!old)
        return false;
    // Pinned for the claim-to-completion span: a claimer parked by a
    // shrunk parallelism degree would strand its chunk, wedging
    // migration completion (and every tryGrow looping on it) until
    // the next retune.
    PinGuard pin(poly_, token.tid);
    const std::size_t chunk = options_.migrateChunkSlots;
    const std::size_t begin =
        old->migrateCursor.fetch_add(chunk, std::memory_order_acq_rel);
    if (begin >= old->slots) {
        // Someone else claimed the tail; migration finishes when the
        // last claimed chunk lands.
        std::this_thread::yield();
        return migrationActive();
    }
    const std::size_t end =
        begin + chunk < old->slots ? begin + chunk : old->slots;

    std::vector<std::uint64_t> reclaim; // expired entries' blobs
    bool stalled = false;
    std::size_t consumed_live = 0;
    poly_.run(token, [&](polytm::Tx &tx) {
        reclaim.clear(); // retried attempts restart
        stalled = false;
        consumed_live = 0;
        TableEpoch *cur = epochTx(tx);
        if (cur->old != old)
            return; // migration already finished under us
        ShardTable &live = *cur->live;
        const auto migrate_slot = [&](std::size_t slot) -> bool {
            const std::uint64_t word =
                tx.readWord(&old->intents[slot]);
            if (word != 0)
                resolveForeignIntentTx(tx, *old, slot, word);
            const std::uint64_t state =
                tx.readWord(&old->state[slot]);
            if (!stateIsValue(state))
                return true;
            const std::uint64_t value =
                tx.readWord(&old->values[slot]);
            const std::uint64_t deadline =
                tx.readWord(&old->expiry[slot]);
            if (deadline != 0 && deadline <= nowNanos()) {
                // Expired: drop instead of moving.
                tx.writeWord(&old->state[slot], kTombstone);
                ctrlSetTx(tx, *old, slot, kCtrlTombstone);
                if (state == kFullRef)
                    reclaim.push_back(value);
                return true;
            }
            const std::uint64_t key = tx.readWord(&old->keys[slot]);
            bool found = false;
            const std::size_t dst = probe(tx, live, key, &found);
            if (found) {
                // Legitimately reachable when a stall rewind makes
                // two claimers re-process overlapping ranges: the
                // live copy is the relocated (or newer) one — drop
                // the old-table copy.
                tx.writeWord(&old->state[slot], kTombstone);
                ctrlSetTx(tx, *old, slot, kCtrlTombstone);
                if (state == kFullRef)
                    reclaim.push_back(value);
                return true;
            }
            if (dst == live.slots) {
                // Live table out of room (only reachable on a capped
                // shard under extreme fill): park the rest of this
                // chunk; deletes/sweeps will free space eventually.
                stalled = true;
                return false;
            }
            if (tx.readWord(&live.state[dst]) == kEmpty)
                ++consumed_live;
            tx.writeWord(&live.state[dst], state);
            tx.writeWord(&live.keys[dst], key);
            tx.writeWord(&live.values[dst], value);
            tx.writeWord(&live.expiry[dst], deadline);
            ctrlSetTx(tx, live, dst, ctrlFingerprint(keyHash(key)));
            tx.writeWord(&old->state[slot], kTombstone);
            ctrlSetTx(tx, *old, slot, kCtrlTombstone);
            return true;
        };
        if (old->slots < kCtrlGroupSlots) {
            for (std::size_t slot = begin; slot < end; ++slot)
                if (!migrate_slot(slot))
                    return;
            return;
        }
        // Ctrl-guided walk: one TM read skips 8 empty/tombstone slots.
        // Unlike the probe, the walker leans on the ctrl words as
        // transactional truth, which they are — every committed state
        // CLASS change rewrites its ctrl byte in the same transaction,
        // and intents only ever sit on fingerprint-class slots, so a
        // skipped lane can hide neither a value nor an intent.
        const std::size_t first_word = begin >> 3;
        const std::size_t last_word = (end + 7) >> 3;
        for (std::size_t word = first_word; word < last_word; ++word) {
            const std::size_t base = word << 3;
            std::uint32_t lanes = 0xffu;
            if (base < begin)
                lanes &= ~std::uint32_t{0} << (begin - base);
            if (base + 8 > end)
                lanes &= ~(~std::uint32_t{0} << (end - base)) & 0xffu;
            const std::uint64_t bytes = tx.readWord(&old->ctrl[word]);
            std::uint32_t cand =
                ~simd::matchHighBit16(bytes, 0) & lanes;
            while (cand != 0) {
                const unsigned lane =
                    static_cast<unsigned>(std::countr_zero(cand));
                cand &= cand - 1;
                if (!migrate_slot(base + lane))
                    return;
            }
        }
    });
    for (const std::uint64_t ref : reclaim)
        retireBlob(ref); // a doomed scan may still hold the handles
    if (consumed_live > 0)
        noteConsumed(consumed_live);
    if (stalled) {
        // Give the chunk back: relocated slots are tombstones now, so
        // re-processing is idempotent, and the rewind target is the
        // chunk's own begin, so claims stay chunk-aligned. CAS-min
        // keeps concurrent claims monotone.
        std::size_t cur =
            old->migrateCursor.load(std::memory_order_relaxed);
        while (cur > begin && !old->migrateCursor.compare_exchange_weak(
                                  cur, begin, std::memory_order_acq_rel))
            ;
        return true;
    }
    // Count each chunk exactly once: after a stall rewind the same
    // chunk can complete under several claimers, and double-counting
    // would let chunksDone reach the total while another chunk still
    // holds un-migrated keys — retiring the old table would lose them.
    const std::size_t chunk_index = begin / chunk;
    trace(obs::TraceKind::kMigrateChunk, chunk_index, consumed_live);
    if (old->chunkDone[chunk_index].exchange(
            1, std::memory_order_acq_rel) == 0) {
        if (old->chunksDone.fetch_add(1, std::memory_order_acq_rel) +
                1 ==
            old->totalChunks)
            finishMigration(token, old);
    }
    return migrationActive();
}

void
Shard::finishMigration(polytm::ThreadToken &token, ShardTable *old)
{
    std::lock_guard<std::mutex> lk(growMutex_);
    TableEpoch *cur = epochMirror_.load(std::memory_order_acquire);
    if (cur->old != old)
        return;
    epochs_.push_back(std::make_unique<TableEpoch>(
        TableEpoch{cur->live, nullptr}));
    publishEpoch(token, epochs_.back().get());
    recountTombstonesLocked(token, *cur->live);
}

void
Shard::recountTombstonesLocked(polytm::ThreadToken &token,
                               ShardTable &live)
{
    // Migration seeds the new table's tombstone estimate only through
    // per-op deltas, so the count drifts across rotations (the old
    // table's garbage vanished with it, foreign deletes raced the
    // walk). The ctrl bytes are transactionally exact, so one chunked
    // pass over them resyncs the estimate at 1/8 the TM reads of a
    // state-word walk. Concurrent deletes may still slip a delta in
    // while we scan — the estimate only feeds the tombstoneHeavy
    // heuristic, and the next rotation resyncs again.
    const std::size_t words = live.ctrl.size();
    constexpr std::size_t kStride = 512; // ctrl words per transaction
    std::int64_t total = 0;
    for (std::size_t w0 = 0; w0 < words; w0 += kStride) {
        const std::size_t w1 = std::min(words, w0 + kStride);
        std::int64_t count = 0;
        poly_.run(token, [&](polytm::Tx &tx) {
            count = 0; // retried attempts restart
            for (std::size_t w = w0; w < w1; ++w) {
                const std::uint64_t bytes =
                    tx.readWord(&live.ctrl[w]);
                count += std::popcount(
                    simd::matchByte16(bytes, 0, kCtrlTombstone) &
                    0xffu);
#ifdef PROTEUS_ASSERT_CTRL_SYNC
                // Sanitizer builds: every ctrl byte must agree with
                // its slot's state class inside one transaction.
                for (unsigned lane = 0; lane < 8; ++lane) {
                    const std::size_t slot = (w << 3) + lane;
                    if (slot >= live.slots)
                        break;
                    const auto byte = static_cast<std::uint8_t>(
                        bytes >> (8 * lane));
                    const std::uint64_t state =
                        tx.readWord(&live.state[slot]);
                    const bool ok =
                        state == kEmpty
                            ? byte == kCtrlEmpty
                            : state == kTombstone
                                  ? byte == kCtrlTombstone
                                  : byte ==
                                        ctrlFingerprint(keyHash(
                                            tx.readWord(
                                                &live.keys[slot])));
                    if (!ok)
                        std::abort(); // ctrl/state desync
                }
#endif
            }
        });
        total += count;
    }
    live.tombstones.store(total, std::memory_order_relaxed);
}

void
Shard::sweepChunk(polytm::ThreadToken &token)
{
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    ShardTable &live = *ep->live;
    const std::size_t chunk = options_.sweepChunkSlots;
    const std::size_t begin =
        live.sweepCursor.fetch_add(chunk, std::memory_order_relaxed) %
        live.slots;

    std::vector<std::uint64_t> reclaim;
    std::size_t expired_count = 0;
    poly_.run(token, [&](polytm::Tx &tx) {
        reclaim.clear();
        expired_count = 0; // retried attempts restart
        TableEpoch *cur = epochTx(tx);
        if (cur->live != &live)
            return; // table rotated under the clock hand
        const auto sweep_slot = [&](std::size_t slot) {
            // Slots under an intent belong to an in-flight commit;
            // leave them to their owner.
            if (tx.readWord(&live.intents[slot]) != 0)
                return;
            const std::uint64_t state = tx.readWord(&live.state[slot]);
            if (!stateIsValue(state))
                return;
            const std::uint64_t deadline =
                tx.readWord(&live.expiry[slot]);
            if (deadline != 0 && deadline <= nowNanos()) {
                if (state == kFullRef)
                    reclaim.push_back(tx.readWord(&live.values[slot]));
                tx.writeWord(&live.state[slot], kTombstone);
                ctrlSetTx(tx, live, slot, kCtrlTombstone);
                ++expired_count;
            }
        };
        if (live.slots < kCtrlGroupSlots) {
            std::size_t slot = begin;
            for (std::size_t step = 0; step < chunk; ++step) {
                sweep_slot(slot);
                slot = (slot + 1) & live.mask;
            }
            return;
        }
        // Ctrl-guided: the clock hand skips 8 empty/tombstone slots
        // per TM read (see migrateChunk for why skipping on ctrl is
        // sound for walkers).
        std::size_t slot = begin;
        std::size_t remaining = std::min(chunk, live.slots);
        while (remaining > 0) {
            const std::size_t word = slot >> 3;
            const auto first_lane = static_cast<unsigned>(slot & 7);
            const std::size_t in_word =
                std::min<std::size_t>(8 - first_lane, remaining);
            const std::uint32_t lanes =
                (in_word == 8 ? 0xffu
                              : ~(~std::uint32_t{0} << in_word) &
                                    0xffu)
                << first_lane;
            const std::uint64_t bytes = tx.readWord(&live.ctrl[word]);
            std::uint32_t cand =
                ~simd::matchHighBit16(bytes, 0) & lanes;
            while (cand != 0) {
                const unsigned lane =
                    static_cast<unsigned>(std::countr_zero(cand));
                cand &= cand - 1;
                sweep_slot((word << 3) + lane);
            }
            slot = (slot + in_word) & live.mask;
            remaining -= in_word;
        }
    });
    for (const std::uint64_t ref : reclaim)
        retireBlob(ref);
    trace(obs::TraceKind::kSweepChunk, begin / chunk, expired_count);
    if (expired_count > 0) {
        live.tombstones.fetch_add(
            static_cast<std::int64_t>(expired_count),
            std::memory_order_relaxed);
    }
}

void
Shard::maintainTick(polytm::ThreadToken &token)
{
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    if (ep->old) {
        migrateChunk(token);
        return;
    }
    ShardTable &live = *ep->live;
    const bool over_threshold =
        live.consumed.load(std::memory_order_relaxed) * 100 >=
        live.slots * options_.growLoadPercent;
    if (over_threshold &&
        (live.slots < maxSlots_ || tombstoneHeavy(live))) {
        std::lock_guard<std::mutex> lk(growMutex_);
        TableEpoch *cur = epochMirror_.load(std::memory_order_acquire);
        if (!cur->old && cur->live == &live) {
            // Delete churn consumes slots without holding data: a
            // tombstone-dominated table migrates into a SAME-size
            // table (shedding the garbage) instead of doubling.
            if (tombstoneHeavy(live))
                compactLocked(token);
            else
                growLocked(token, live.slots);
        }
        return;
    }
    const std::uint64_t ticks =
        maintainTicks_.fetch_add(1, std::memory_order_relaxed);
    if (ttlSeen_.load(std::memory_order_relaxed) && (ticks & 63) == 0)
        sweepChunk(token);
    // Recycle retired blobs whose reader epochs have quiesced. The
    // sweep pays one epoch RMW plus a claimed-slot scan, so it runs
    // on a sparse tick unless limbo is piling up.
    const std::size_t limbo = arena_.limboCount();
    if (limbo > 512 || (limbo > 0 && (ticks & 15) == 0))
        arena_.reclaim(readerEpochs_);
}

std::size_t
Shard::sizeQuiesced() const
{
    const std::uint64_t now = nowNanos();
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    const auto count = [&](const ShardTable *table) {
        std::size_t n = 0;
        if (!table)
            return n;
        for (std::size_t slot = 0; slot < table->slots; ++slot) {
            if (stateIsValue(table->state[slot]) &&
                (table->expiry[slot] == 0 || table->expiry[slot] > now))
                ++n;
        }
        return n;
    };
    return count(ep->live) + count(ep->old);
}

std::size_t
Shard::findSlotQuiesced(std::uint64_t key) const
{
    // Test hook: raw probe over the quiesced live table (no TM, no
    // concurrency). Mirrors the scalar probe's termination rules.
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    const ShardTable &table = *ep->live;
    std::size_t slot = homeSlot(table, key);
    for (std::size_t step = 0; step < table.slots; ++step) {
        const std::uint64_t state = table.state[slot];
        if (state == kEmpty)
            return table.slots;
        if (state != kTombstone && table.keys[slot] == key)
            return slot;
        slot = (slot + 1) & table.mask;
    }
    return table.slots;
}

std::uint8_t
Shard::ctrlByteQuiesced(std::size_t slot) const
{
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    const ShardTable &table = *ep->live;
    return static_cast<std::uint8_t>(table.ctrl[slot >> 3] >>
                                     (8 * (slot & 7)));
}

void
Shard::setCtrlByteQuiesced(std::size_t slot, std::uint8_t byte)
{
    // Test hook: deliberately corrupt a ctrl byte on a quiesced table
    // (corruption tests prove mismatched hints only add probes).
    TableEpoch *ep = epochMirror_.load(std::memory_order_acquire);
    ShardTable &table = *ep->live;
    const unsigned shift = static_cast<unsigned>(slot & 7) * 8;
    table.ctrl[slot >> 3] =
        (table.ctrl[slot >> 3] & ~(std::uint64_t{0xff} << shift)) |
        (std::uint64_t{byte} << shift);
}

Shard::CkptStep
Shard::checkpointChunk(polytm::ThreadToken &token,
                       CheckpointCursor *cursor,
                       std::vector<CheckpointEntry> *out,
                       unsigned chunk_slots)
{
    CkptStep step = CkptStep::kMore;
    const std::size_t out_mark = out->size();
    poly_.run(token, [&](polytm::Tx &tx) {
        // A TM retry re-runs this body: drop the half-captured chunk.
        out->resize(out_mark);
        step = CkptStep::kMore;
        TableEpoch *ep = epochTx(tx);
        // The walk is only sound on a migration-free epoch: a
        // migration relocates keys across regions the cursor already
        // passed, silently dropping them from the image. The caller
        // drains the migration and restarts.
        if (ep->old != nullptr) {
            cursor->epoch = nullptr;
            step = CkptStep::kRestart;
            return;
        }
        if (cursor->epoch == nullptr) {
            cursor->epoch = ep;
            cursor->slot = 0;
        } else if (cursor->epoch != ep) {
            // Grow/compact published a new table mid-walk; entries
            // captured so far may miss relocated keys.
            cursor->epoch = nullptr;
            step = CkptStep::kRestart;
            return;
        }
        ShardTable &table = *ep->live;
        // Pin: blob copy-outs below run without seqlock re-checks.
        EpochPin pin(readerEpochs_, *token.epochSlot);
        const ReadView view{ReadView::Mode::kSettle, 0};
        const std::size_t end =
            std::min(table.slots, cursor->slot + chunk_slots);
        for (std::size_t slot = cursor->slot; slot < end; ++slot) {
            const std::uint64_t state =
                tx.readWord(&table.state[slot]);
            if (state != kFull && state != kFullRef &&
                state != kPendingInsert)
                continue;
            LiveValue live;
            if (!resolveSlotLiveTx(tx, table, slot, &live, view))
                continue; // logically absent (expired / aborted)
            CheckpointEntry entry;
            entry.key = tx.readWord(&table.keys[slot]);
            entry.expiry = live.expiry;
            if (live.state == kFull) {
                entry.value = live.value;
            } else {
                entry.isBytes = true;
                if (!bytesValueTx(tx, table, slot, live, &entry.bytes,
                                  view, /*pinned=*/true))
                    continue;
            }
            out->push_back(std::move(entry));
        }
        cursor->slot = end;
        if (cursor->slot >= table.slots)
            step = CkptStep::kDone;
    });
    return step;
}

} // namespace proteus::kvstore
