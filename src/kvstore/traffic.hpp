/**
 * @file
 * TrafficDriver: deterministic YCSB-style load generation for
 * ProteusKV.
 *
 * Worker threads draw keys (uniform or Zipfian via common/rng) and
 * operation types from the active TrafficMix. Mixes model the YCSB
 * core workloads (read-heavy B, update-heavy A, scan-heavy E), plus a
 * write-heavy/hotspot mix that collapses locality — switching between
 * them mid-run (setPhase) is what drives each shard's CUSUM monitor
 * into re-tuning.
 *
 * The driver is open-loop-capable: with targetOpsPerSecPerThread set,
 * workers pace against absolute deadlines regardless of completion
 * latency; at 0 they run closed-loop at maximum speed.
 */

#ifndef PROTEUS_KVSTORE_TRAFFIC_HPP
#define PROTEUS_KVSTORE_TRAFFIC_HPP

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"

namespace proteus::kvstore {

/** Named presets for the standard mixes. */
enum class MixKind : int
{
    kReadHeavy = 0, //!< YCSB-B: 95% get / 5% put, uniform
    kBalanced,      //!< YCSB-A: 50% get / 50% put, Zipfian
    kScanHeavy,     //!< YCSB-E: 95% scan(16) / 5% put
    kWriteHeavy,    //!< 10% get / 85% put / 5% del, Zipfian hot set
    kHotspot,       //!< YCSB-B keys squeezed onto a tiny hot range
};

struct TrafficMix
{
    double getRatio = 0.95;
    double putRatio = 0.05;
    double delRatio = 0;
    double scanRatio = 0;   //!< explicit; any remainder falls to get
    std::size_t scanLen = 16;
    /** Fraction of ops issued as small cross-shard multiOps. */
    double multiRatio = 0;
    std::uint64_t keySpace = std::uint64_t{1} << 14;
    /** 0 = uniform; else Zipf skew theta in (0, 1]. */
    double zipfTheta = 0;

    static TrafficMix preset(MixKind kind);
};

struct TrafficOptions
{
    int threads = 4;
    std::uint64_t seed = 0x7eaff1c;
    /** Open-loop pacing; 0 = closed loop (maximum speed). */
    double targetOpsPerSecPerThread = 0;
    /** Phase table selected by setPhase(); must not be empty. */
    std::vector<TrafficMix> phases;
};

class TrafficDriver
{
  public:
    TrafficDriver(KvStore &store, TrafficOptions options);
    ~TrafficDriver();

    TrafficDriver(const TrafficDriver &) = delete;
    TrafficDriver &operator=(const TrafficDriver &) = delete;

    /**
     * Insert `count` keys ([0, count)) before the run, spread over
     * all shards. Call before start().
     */
    void preload(std::uint64_t count);

    void start();

    /** Switch the active mix; workers pick it up on their next op. */
    void setPhase(std::size_t phase);
    std::size_t phase() const
    {
        return phase_.load(std::memory_order_relaxed);
    }

    /** Stop and join all workers (idempotent). */
    void stop();

    std::uint64_t opsCompleted() const
    {
        return opsCompleted_.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop(int worker_idx);
    void workerBody(int worker_idx);

    KvStore *store_;
    TrafficOptions options_;
    std::atomic<std::size_t> phase_{0};
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> opsCompleted_{0};
    std::atomic<int> activeWorkers_{0};
    std::vector<std::thread> workers_;
    bool running_ = false;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_TRAFFIC_HPP
