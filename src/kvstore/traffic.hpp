/**
 * @file
 * TrafficDriver: deterministic YCSB-style load generation for
 * ProteusKV.
 *
 * Worker threads draw keys (uniform or Zipfian via common/rng) and
 * operation types from the active TrafficMix. Mixes model the YCSB
 * core workloads (read-heavy B, update-heavy A, scan-heavy E), plus a
 * write-heavy/hotspot mix that collapses locality and a mixed
 * single-key/cross-shard mix that exercises the multi-key commit
 * protocol — switching between them mid-run (setPhase) is what drives
 * each shard's CUSUM monitor into re-tuning.
 *
 * The driver is open-loop-capable: with targetOpsPerSecPerThread set,
 * workers pace against absolute deadlines regardless of completion
 * latency; at 0 they run closed-loop at maximum speed.
 *
 * Latency. Every operation's service time is recorded into a
 * per-worker log-linear histogram keyed by the active phase; workers
 * merge into the driver on exit, so per-phase p50/p95/p99/max (and,
 * open-loop, the worst backlog behind the pacing deadline) are
 * reported by latency() after stop(). Numbers accumulate across
 * start/stop cycles.
 */

#ifndef PROTEUS_KVSTORE_TRAFFIC_HPP
#define PROTEUS_KVSTORE_TRAFFIC_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/histogram.hpp"
#include "obs/metric_registry.hpp"

namespace proteus::kvstore {

/** Named presets for the standard mixes. */
enum class MixKind : int
{
    kReadHeavy = 0, //!< YCSB-B: 95% get / 5% put, uniform
    kBalanced,      //!< YCSB-A: 50% get / 50% put, Zipfian
    kScanHeavy,     //!< YCSB-E: 95% scan(16) / 5% put
    kWriteHeavy,    //!< 10% get / 85% put / 5% del, Zipfian hot set
    kHotspot,       //!< YCSB-B keys squeezed onto a tiny hot range
    kMixedCross,    //!< 90% single-key / 10% cross-shard writing multiOp
    kCache,         //!< cache-style: skewed gets, TTL churn, wide values
};

struct TrafficMix
{
    double getRatio = 0.95;
    double putRatio = 0.05;
    double delRatio = 0;
    double scanRatio = 0;   //!< explicit; any remainder falls to get
    std::size_t scanLen = 16;
    /** Fraction of ops issued as small cross-shard multiOps. */
    double multiRatio = 0;
    std::uint64_t keySpace = std::uint64_t{1} << 14;
    /** 0 = uniform; else Zipf skew theta in (0, 1]. */
    double zipfTheta = 0;
    /** Relative TTL attached to every put (0 = none). With a TTL,
     *  gets start missing once churn lets entries expire — the
     *  hit-rate statistics make the eviction visible. */
    std::uint64_t ttlNanos = 0;
    /** 0 = one-word values; else puts store byte values sized
     *  uniformly in [valueBytes/2, valueBytes*3/2] and gets read
     *  through the byte path. */
    std::size_t valueBytes = 0;

    static TrafficMix preset(MixKind kind);
};

struct TrafficOptions
{
    int threads = 4;
    std::uint64_t seed = 0x7eaff1c;
    /** Open-loop pacing; 0 = closed loop (maximum speed). */
    double targetOpsPerSecPerThread = 0;
    /** Phase table selected by setPhase(); must not be empty. */
    std::vector<TrafficMix> phases;
};

/**
 * The one log-linear latency histogram type (see obs/histogram.hpp
 * for the bucketing); the driver's historical name kept as an alias
 * so existing callers compile unchanged.
 */
using LatencyHistogram = obs::LogLinearHistogram;

/** Per-phase latency summary (nanoseconds). */
struct PhaseLatency
{
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
    /** Worst observed lag behind the open-loop pacing deadline
     *  (0 when closed-loop or never behind). */
    std::uint64_t maxBacklogNanos = 0;
};

class TrafficDriver
{
  public:
    TrafficDriver(KvStore &store, TrafficOptions options);
    ~TrafficDriver();

    TrafficDriver(const TrafficDriver &) = delete;
    TrafficDriver &operator=(const TrafficDriver &) = delete;

    /**
     * Insert `count` keys ([0, count)) before the run, spread over
     * all shards. Call before start().
     */
    void preload(std::uint64_t count);

    void start();

    /** Switch the active mix; workers pick it up on their next op. */
    void setPhase(std::size_t phase);
    std::size_t phase() const
    {
        return phase_.load(std::memory_order_relaxed);
    }

    /** Stop and join all workers (idempotent). */
    void stop();

    std::uint64_t opsCompleted() const { return opsCompleted_.total(); }

    /** Cross-shard multiOps issued (each counted once). */
    std::uint64_t multiOpsCompleted() const
    {
        return multiOpsCompleted_.total();
    }

    /** Ops served by the single-key path. */
    std::uint64_t singleKeyOpsCompleted() const
    {
        return opsCompleted() - multiOpsCompleted();
    }

    /**
     * Writes the store refused for durability/health reasons
     * (KvStatus kReadOnly / kWalError / kNoMemory) — per phase and in
     * total. A degraded store rejecting writes is workload-visible
     * behaviour the driver measures, not an error it dies on;
     * capacity misses (kNoSpace) and del-misses stay uncounted.
     */
    std::uint64_t writesRejected(std::size_t phase) const;
    std::uint64_t writesRejected() const;

    /** Single-key gets issued / found (cache hit-rate telemetry:
     *  under a TTL mix the hit rate visibly drops as entries expire). */
    std::uint64_t getAttempts() const { return getAttempts_.total(); }
    std::uint64_t getHits() const { return getHits_.total(); }
    double
    hitRate() const
    {
        const std::uint64_t attempts = getAttempts();
        return attempts == 0 ? 0.0
                             : static_cast<double>(getHits()) /
                                   static_cast<double>(attempts);
    }

    /**
     * Latency summary for one phase, merged over all workers that
     * have exited — call after stop() for complete numbers.
     */
    PhaseLatency latency(std::size_t phase) const;

  private:
    void workerLoop(int worker_idx);
    void workerBody(int worker_idx);

    KvStore *store_;
    TrafficOptions options_;
    std::atomic<std::size_t> phase_{0};
    std::atomic<bool> stop_{false};
    /**
     * Progress counters live in the store's metric registry (striped
     * by worker index — an upgrade over the former single shared
     * atomics) so telemetry() exports driver progress alongside the
     * store's own counters. The accessors above are views over them;
     * handles outlive the driver because the registry is the store's.
     */
    obs::Counter &opsCompleted_;
    obs::Counter &multiOpsCompleted_;
    obs::Counter &getAttempts_;
    obs::Counter &getHits_;
    /** Per-phase concurrent registry histograms workers publish into
     *  on exit ("traffic_latency_phase<N>"). */
    std::vector<obs::Histogram *> phaseHistMetrics_;
    /** Per-phase rejected-write counters
     *  ("traffic_write_rejected_phase<N>"). */
    std::vector<obs::Counter *> phaseWriteRejected_;
    std::atomic<int> activeWorkers_{0};
    std::vector<std::thread> workers_;
    bool running_ = false;

    /** Per-phase merged results, filled by exiting workers. */
    mutable std::mutex latencyMutex_;
    std::vector<LatencyHistogram> phaseLatency_;
    std::vector<std::uint64_t> phaseMaxBacklog_;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_TRAFFIC_HPP
