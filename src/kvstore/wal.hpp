/**
 * @file
 * Per-shard write-ahead log: record framing, group commit, and the
 * on-disk directory layout shared with recovery.
 *
 * Every durable KvStore mutation is logged as a *post-image* (the
 * value a slot holds after the operation), which makes replay
 * idempotent — the property the fuzzy checkpoint walker and the
 * torn-tail truncation rule both lean on. Records are framed as
 *
 *     [u32 crc32c(payload)] [u32 len] [payload ...]
 *
 * and replay stops at the first frame whose CRC or bounds fail, so a
 * torn tail after kill-9 degrades to a consistent prefix.
 *
 * Record order inside a segment is append order, which is NOT the
 * per-shard serialization order (a transaction takes its LSN inside
 * the TM transaction, then appends after commit). Replay therefore
 * sorts by LSN; the LSN itself is a TM-visible ticket word that every
 * writing transaction read-modify-writes, so ticket order equals the
 * shard's serialization order.
 *
 * Group commit: appenders buffer under one mutex; `barrier(upTo)`
 * elects a leader that write()s (and for kFsyncGroup fdatasync()s)
 * everything buffered so far, so concurrent writers share one fsync.
 * kBuffered acknowledges after write() — data survives process death
 * (kill -9) via the page cache but not OS/power failure; kFsyncGroup
 * acknowledges after fdatasync and survives both.
 *
 * Failure ladder (no I/O error terminates the process):
 *   - EINTR always retries; EAGAIN gets a bounded backoff retry.
 *   - A failed write() classifies as kNoSpace (ENOSPC/EDQUOT) or kIo
 *     and makes the log *sticky-failed*: every later append/barrier
 *     fails fast, and any bytes the leader had pulled out of the
 *     buffer but could not write are reported via lostBytes().
 *   - A failed fdatasync() is kSyncLoss with fsyncgate semantics: the
 *     kernel may have discarded the dirty pages, so the sync is never
 *     retried on the same fd. The written-but-unsynced byte range is
 *     poisoned — kFsyncGroup barriers over it fail forever — and the
 *     log can be rescued ONCE via rotateFresh(): unwritten buffered
 *     records carry over to a fresh segment and later appends ack
 *     normally; the poisoned range stays un-acked (those records
 *     survive only if the page cache happened to reach disk).
 *   - Followers piggybacking on a failed leader's flush observe the
 *     leader's error from the barrier handshake and never ack.
 * The owning KvStore maps these errors onto its health ladder
 * (degraded read-only / failed); the WAL itself only reports.
 *
 * Fault injection: every syscall site consults a named
 * common/fault.hpp point (wal.append.write, wal.spill.write,
 * wal.append.short_write, wal.fsync, wal.rotate.fsync, wal.open,
 * wal.read, ckpt.write, ckpt.fsync, ckpt.rename). Disarmed points
 * cost one relaxed load.
 *
 * Directory layout (one per KvStore):
 *     meta                 numShards + format version
 *     wal-<s>-<gen>.log    shard s, segment generation gen
 *     ckpt-<s>-<gen>.dat   checkpoint image + barrier LSN
 */

#ifndef PROTEUS_KVSTORE_WAL_HPP
#define PROTEUS_KVSTORE_WAL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metric_registry.hpp"

namespace proteus::kvstore {

/** Durability level for a KvStore (KvStoreOptions::durability). */
enum class Durability : std::uint8_t {
    kOff = 0,      ///< no WAL; the store is a cache
    kBuffered,     ///< ack after write(): survives kill-9, not OS crash
    kFsyncGroup,   ///< ack after group fdatasync: survives OS crash
};

namespace wal {

/**
 * Classified outcome of a WAL/checkpoint I/O step. Transient errors
 * (EINTR, bounded EAGAIN) are retried internally and never surface.
 */
enum class WalError : std::uint8_t {
    kOk = 0,
    kNoSpace,  ///< ENOSPC/EDQUOT on write: space, not data loss
    kSyncLoss, ///< fdatasync failed: unsynced range indeterminate
    kIo,       ///< any other hard I/O failure
};

/** "ok" / "nospace" / "syncloss" / "io". */
const char *walErrorName(WalError err);

/** CRC32C (Castagnoli), software table implementation. */
std::uint32_t crc32c(const void *data, std::size_t len);

/** One logged mutation (always a post-image; replay is idempotent). */
struct WalOp {
    enum class Kind : std::uint8_t {
        kPut = 0,      ///< numeric value
        kPutBytes = 1, ///< wide value (bytes re-inserted on replay)
        kDel = 2,      ///< tombstone
    };
    Kind kind = Kind::kPut;
    std::uint64_t key = 0;
    std::uint64_t value = 0;  ///< kPut only
    std::uint64_t expiry = 0; ///< absolute deadline ns, 0 = none
    std::string bytes;        ///< kPutBytes only
};

enum class RecordType : std::uint8_t {
    kBatch = 1,      ///< single-shard transaction (applyBatch / put / del)
    kTxnPrepare = 2, ///< 2PC participant slice (ops held until outcome)
    kTxnOutcome = 3, ///< 2PC verdict, written to every participant
    kCkptHeader = 4, ///< checkpoint file: barrier LSN
    kCkptFooter = 5, ///< checkpoint file: entry count (completeness proof)
};

struct Record {
    RecordType type = RecordType::kBatch;
    std::uint64_t lsn = 0;       ///< kBatch / kTxnPrepare: shard ticket
    std::uint64_t txid = 0;      ///< kTxnPrepare / kTxnOutcome
    std::uint64_t commitSeq = 0; ///< kTxnOutcome: reserved store seq
    bool committed = false;      ///< kTxnOutcome verdict
    std::uint64_t barrierLsn = 0;///< kCkptHeader
    std::uint64_t entryCount = 0;///< kCkptFooter
    std::vector<WalOp> ops;      ///< kBatch / kTxnPrepare / ckpt chunks
};

/** Append one CRC-framed record to `out`. */
void encodeRecord(const Record &rec, std::string *out);

/**
 * Decode one frame at data[0..len). Returns bytes consumed, or 0 if
 * the frame is torn/corrupt (bad bounds, bad CRC, bad tags) — the
 * caller truncates there.
 */
std::size_t decodeRecord(const char *data, std::size_t len, Record *out);

/** File naming inside the WAL directory. */
std::string segmentFileName(int shard, std::uint64_t gen);
std::string checkpointFileName(int shard, std::uint64_t gen);

/** meta: validated on reopen so a dir can't be replayed into a
 *  differently-sharded store. Returns false if absent. */
void writeMeta(const std::string &dir, int numShards);
bool readMeta(const std::string &dir, int *numShards);

/** Highest segment/checkpoint generation present for `shard` (0 if
 *  none). */
std::uint64_t maxGeneration(const std::string &dir, int shard);

/** Sorted generations of this shard's segment (.log) / checkpoint
 *  (.dat) files. */
std::vector<std::uint64_t> listSegments(const std::string &dir,
                                        int shard);
std::vector<std::uint64_t> listCheckpoints(const std::string &dir,
                                           int shard);

/** Read a whole file into `out`; false when unreadable. */
bool readFile(const std::string &path, std::string *out);

/** Delete segments and checkpoints of `shard` with gen < keepGen. */
void deleteObsolete(const std::string &dir, int shard,
                    std::uint64_t keepGen);

/** Checkpoint image: consistent-as-of-barrier set of live entries.
 *  Replay applies the image then records with lsn > barrierLsn. */
struct CheckpointImage {
    std::uint64_t barrierLsn = 0;
    std::vector<WalOp> entries;
};

/**
 * tmp + fsync + rename. On failure the tmp file is removed and the
 * previous checkpoint (if any) is left untouched, so a failed
 * checkpoint never costs recoverability — the caller just skips log
 * truncation.
 */
WalError writeCheckpoint(const std::string &path,
                         const CheckpointImage &image);
/** Returns false if missing/incomplete/corrupt (header+footer+CRCs
 *  must all validate). */
bool readCheckpoint(const std::string &path, CheckpointImage *image);

/** Obs hookups for one ShardWal (all optional). */
struct WalObs {
    obs::Counter *appends = nullptr;
    obs::Counter *fsyncs = nullptr;
    obs::Counter *bytes = nullptr;
    obs::Histogram *fsyncNanos = nullptr;
    obs::FlightRecorder *recorder = nullptr;
    int shard = 0;
};

/** Outcome of an append: the monotonic end offset to barrier() on,
 *  plus the error when the log is sticky-failed (offset 0, record not
 *  buffered) or the spill write failed (record buffered/lost, caller
 *  must not ack). */
struct AppendResult {
    WalError err = WalError::kOk;
    std::uint64_t end = 0;
    explicit operator bool() const { return err == WalError::kOk; }
};

/**
 * One shard's log: an append buffer + leader/follower group commit.
 * Offsets are monotonic across segment rotation (rotation flushes and
 * syncs everything, so pre-rotation barriers are already satisfied).
 *
 * See the file comment for the failure ladder. All entry points are
 * non-throwing on I/O failure and report a WalError instead; once a
 * hard error is recorded the log is sticky-failed until (at most one)
 * successful rotateFresh().
 */
class ShardWal
{
  public:
    ShardWal(std::string path, Durability mode,
             std::size_t flushBytes, const WalObs &obs);
    ~ShardWal();

    ShardWal(const ShardWal &) = delete;
    ShardWal &operator=(const ShardWal &) = delete;

    /** Buffer one record; returns the monotonic end offset to pass to
     *  barrier(). Spills to write() when the buffer exceeds the
     *  configured flush threshold. Fails fast (without buffering)
     *  when the log is sticky-failed. */
    AppendResult append(const Record &rec);

    /** Group commit: returns kOk once bytes [0, upTo) are write()n
     *  (kBuffered) or fdatasync'd (kFsyncGroup). A follower whose
     *  leader's I/O failed gets the leader's error — it must not ack.
     *  Offsets inside a poisoned sync range fail permanently. */
    WalError barrier(std::uint64_t upTo);

    AppendResult appendAndBarrier(const Record &rec);

    /** Flush everything buffered; fsync if `alsoFsync`. */
    WalError flushAll(bool alsoFsync);

    /** Checkpoint rotation: flush+fsync+close the current segment and
     *  continue on `newPath`. Offsets stay monotonic. Refused (error
     *  returned) when the log is sticky-failed. */
    WalError rotate(const std::string &newPath);

    /**
     * One-shot rescue after kSyncLoss: abandon the poisoned segment
     * and continue appending to `newPath`. Records still in the
     * append buffer carry over; the written-but-unsynced range stays
     * permanently un-ackable (lostBytes()). Returns kOk on success;
     * fails when the sticky error is not kSyncLoss, the rescue was
     * already spent, or the new segment cannot be opened.
     */
    WalError rotateFresh(const std::string &newPath);

    /** Current sticky error (kOk when healthy or rescued). */
    WalError
    status() const
    {
        return static_cast<WalError>(
            stickyErr_.load(std::memory_order_relaxed));
    }

    /** True when rotateFresh() could still rescue this log. */
    bool canRescue() const;

    /** Bytes dropped (write failure) or of indeterminate durability
     *  (sync failure) since open. 0 while healthy. */
    std::uint64_t
    lostBytes() const
    {
        return lostBytes_.load(std::memory_order_relaxed);
    }

    const std::string &path() const { return path_; }

  private:
    WalError flushTo(std::uint64_t upTo, bool wantSync, bool spill);
    WalError writeAll(const char *data, std::size_t len,
                      std::size_t *written, bool spill);
    void poisonLocked(WalError err, std::uint64_t lost);

    std::string path_;
    Durability mode_;
    std::size_t flushBytes_;
    WalObs obs_;
    int fd_ = -1;

    std::mutex appendMutex_;        // guards buf_ and endOffset_
    std::string buf_;
    std::uint64_t endOffset_ = 0;   // logical end incl. buffered

    std::mutex flushMutex_;         // guards fd writes + offsets below
    std::condition_variable flushCv_;
    bool flushing_ = false;
    std::uint64_t flushedOffset_ = 0; // write()n
    std::uint64_t syncedOffset_ = 0;  // fdatasync'd

    // Failure ladder state (guarded by flushMutex_; the atomics are
    // lock-free mirrors for the append fast path and telemetry).
    WalError err_ = WalError::kOk;  ///< sticky; cleared only by rescue
    bool everPoisoned_ = false;
    bool rescued_ = false;
    /** Poisoned sync range (syncLostLo_, syncLostHi_]: written to a
     *  segment whose fdatasync failed. kFsyncGroup barriers ending in
     *  it fail forever, even after rescue. */
    std::uint64_t syncLostLo_ = 0;
    std::uint64_t syncLostHi_ = 0;
    std::atomic<std::uint8_t> stickyErr_{0};
    std::atomic<std::uint64_t> lostBytes_{0};
};

} // namespace wal
} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_WAL_HPP
