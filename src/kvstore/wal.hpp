/**
 * @file
 * Per-shard write-ahead log: record framing, group commit, and the
 * on-disk directory layout shared with recovery.
 *
 * Every durable KvStore mutation is logged as a *post-image* (the
 * value a slot holds after the operation), which makes replay
 * idempotent — the property the fuzzy checkpoint walker and the
 * torn-tail truncation rule both lean on. Records are framed as
 *
 *     [u32 crc32c(payload)] [u32 len] [payload ...]
 *
 * and replay stops at the first frame whose CRC or bounds fail, so a
 * torn tail after kill-9 degrades to a consistent prefix.
 *
 * Record order inside a segment is append order, which is NOT the
 * per-shard serialization order (a transaction takes its LSN inside
 * the TM transaction, then appends after commit). Replay therefore
 * sorts by LSN; the LSN itself is a TM-visible ticket word that every
 * writing transaction read-modify-writes, so ticket order equals the
 * shard's serialization order.
 *
 * Group commit: appenders buffer under one mutex; `barrier(upTo)`
 * elects a leader that write()s (and for kFsyncGroup fdatasync()s)
 * everything buffered so far, so concurrent writers share one fsync.
 * kBuffered acknowledges after write() — data survives process death
 * (kill -9) via the page cache but not OS/power failure; kFsyncGroup
 * acknowledges after fdatasync and survives both.
 *
 * Directory layout (one per KvStore):
 *     meta                 numShards + format version
 *     wal-<s>-<gen>.log    shard s, segment generation gen
 *     ckpt-<s>-<gen>.dat   checkpoint image + barrier LSN
 */

#ifndef PROTEUS_KVSTORE_WAL_HPP
#define PROTEUS_KVSTORE_WAL_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metric_registry.hpp"

namespace proteus::kvstore {

/** Durability level for a KvStore (KvStoreOptions::durability). */
enum class Durability : std::uint8_t {
    kOff = 0,      ///< no WAL; the store is a cache
    kBuffered,     ///< ack after write(): survives kill-9, not OS crash
    kFsyncGroup,   ///< ack after group fdatasync: survives OS crash
};

namespace wal {

/** CRC32C (Castagnoli), software table implementation. */
std::uint32_t crc32c(const void *data, std::size_t len);

/** One logged mutation (always a post-image; replay is idempotent). */
struct WalOp {
    enum class Kind : std::uint8_t {
        kPut = 0,      ///< numeric value
        kPutBytes = 1, ///< wide value (bytes re-inserted on replay)
        kDel = 2,      ///< tombstone
    };
    Kind kind = Kind::kPut;
    std::uint64_t key = 0;
    std::uint64_t value = 0;  ///< kPut only
    std::uint64_t expiry = 0; ///< absolute deadline ns, 0 = none
    std::string bytes;        ///< kPutBytes only
};

enum class RecordType : std::uint8_t {
    kBatch = 1,      ///< single-shard transaction (applyBatch / put / del)
    kTxnPrepare = 2, ///< 2PC participant slice (ops held until outcome)
    kTxnOutcome = 3, ///< 2PC verdict, written to every participant
    kCkptHeader = 4, ///< checkpoint file: barrier LSN
    kCkptFooter = 5, ///< checkpoint file: entry count (completeness proof)
};

struct Record {
    RecordType type = RecordType::kBatch;
    std::uint64_t lsn = 0;       ///< kBatch / kTxnPrepare: shard ticket
    std::uint64_t txid = 0;      ///< kTxnPrepare / kTxnOutcome
    std::uint64_t commitSeq = 0; ///< kTxnOutcome: reserved store seq
    bool committed = false;      ///< kTxnOutcome verdict
    std::uint64_t barrierLsn = 0;///< kCkptHeader
    std::uint64_t entryCount = 0;///< kCkptFooter
    std::vector<WalOp> ops;      ///< kBatch / kTxnPrepare / ckpt chunks
};

/** Append one CRC-framed record to `out`. */
void encodeRecord(const Record &rec, std::string *out);

/**
 * Decode one frame at data[0..len). Returns bytes consumed, or 0 if
 * the frame is torn/corrupt (bad bounds, bad CRC, bad tags) — the
 * caller truncates there.
 */
std::size_t decodeRecord(const char *data, std::size_t len, Record *out);

/** File naming inside the WAL directory. */
std::string segmentFileName(int shard, std::uint64_t gen);
std::string checkpointFileName(int shard, std::uint64_t gen);

/** meta: validated on reopen so a dir can't be replayed into a
 *  differently-sharded store. Returns false if absent. */
void writeMeta(const std::string &dir, int numShards);
bool readMeta(const std::string &dir, int *numShards);

/** Highest segment/checkpoint generation present for `shard` (0 if
 *  none). */
std::uint64_t maxGeneration(const std::string &dir, int shard);

/** Sorted generations of this shard's segment (.log) / checkpoint
 *  (.dat) files. */
std::vector<std::uint64_t> listSegments(const std::string &dir,
                                        int shard);
std::vector<std::uint64_t> listCheckpoints(const std::string &dir,
                                           int shard);

/** Read a whole file into `out`; false when unreadable. */
bool readFile(const std::string &path, std::string *out);

/** Delete segments and checkpoints of `shard` with gen < keepGen. */
void deleteObsolete(const std::string &dir, int shard,
                    std::uint64_t keepGen);

/** Checkpoint image: consistent-as-of-barrier set of live entries.
 *  Replay applies the image then records with lsn > barrierLsn. */
struct CheckpointImage {
    std::uint64_t barrierLsn = 0;
    std::vector<WalOp> entries;
};

/** tmp + fsync + rename; throws std::runtime_error on I/O failure. */
void writeCheckpoint(const std::string &path,
                     const CheckpointImage &image);
/** Returns false if missing/incomplete/corrupt (header+footer+CRCs
 *  must all validate). */
bool readCheckpoint(const std::string &path, CheckpointImage *image);

/** Obs hookups for one ShardWal (all optional). */
struct WalObs {
    obs::Counter *appends = nullptr;
    obs::Counter *fsyncs = nullptr;
    obs::Counter *bytes = nullptr;
    obs::Histogram *fsyncNanos = nullptr;
    obs::FlightRecorder *recorder = nullptr;
    int shard = 0;
};

/**
 * One shard's log: an append buffer + leader/follower group commit.
 * Offsets are monotonic across segment rotation (rotation flushes and
 * syncs everything, so pre-rotation barriers are already satisfied).
 *
 * I/O failure while persisting (write/fdatasync in barrier) calls
 * std::terminate: by that point a commit outcome may already be
 * logged on a peer shard, and continuing with a diverged log would
 * let recovery resurrect a transaction the live store aborted.
 */
class ShardWal
{
  public:
    ShardWal(std::string path, Durability mode,
             std::size_t flushBytes, const WalObs &obs);
    ~ShardWal();

    ShardWal(const ShardWal &) = delete;
    ShardWal &operator=(const ShardWal &) = delete;

    /** Buffer one record; returns the monotonic end offset to pass to
     *  barrier(). Spills to write() when the buffer exceeds the
     *  configured flush threshold. */
    std::uint64_t append(const Record &rec);

    /** Group commit: returns once bytes [0, upTo) are write()n
     *  (kBuffered) or fdatasync'd (kFsyncGroup). */
    void barrier(std::uint64_t upTo);

    std::uint64_t appendAndBarrier(const Record &rec);

    /** Flush everything buffered; fsync if `alsoFsync`. */
    void flushAll(bool alsoFsync);

    /** Checkpoint rotation: flush+fsync+close the current segment and
     *  continue on `newPath`. Offsets stay monotonic. */
    void rotate(const std::string &newPath);

    const std::string &path() const { return path_; }

  private:
    void flushTo(std::uint64_t upTo, bool wantSync);
    void writeAllOrDie(const char *data, std::size_t len);

    std::string path_;
    Durability mode_;
    std::size_t flushBytes_;
    WalObs obs_;
    int fd_ = -1;

    std::mutex appendMutex_;        // guards buf_ and endOffset_
    std::string buf_;
    std::uint64_t endOffset_ = 0;   // logical end incl. buffered

    std::mutex flushMutex_;         // guards fd writes + offsets below
    std::condition_variable flushCv_;
    bool flushing_ = false;
    std::uint64_t flushedOffset_ = 0; // write()n
    std::uint64_t syncedOffset_ = 0;  // fdatasync'd
};

} // namespace wal
} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_WAL_HPP
