#include "kvstore/kv_tunable.hpp"

#include <bit>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace proteus::kvstore {

std::vector<polytm::TmConfig>
KvTunableOptions::defaultMenu()
{
    std::vector<polytm::TmConfig> menu;
    const tm::BackendKind stms[] = {
        tm::BackendKind::kTl2,
        tm::BackendKind::kTinyStm,
        tm::BackendKind::kNorec,
        tm::BackendKind::kSwissTm,
    };
    for (const tm::BackendKind backend : stms) {
        for (const int threads : {1, 2, 4})
            menu.push_back({backend, threads, {}});
    }
    menu.push_back({tm::BackendKind::kSimHtm, 4, {}});
    menu.push_back({tm::BackendKind::kGlobalLock, 1, {}});
    return menu;
}

ShardTunable::ShardTunable(Shard &shard, KvTunableOptions options,
                           KvStore *store, int shard_index)
    : shard_(&shard), menu_(std::move(options.menu)),
      periodSeconds_(options.periodSeconds), meter_(shard.poly()),
      store_(store), shardIndex_(shard_index)
{
    // No silent defaulting here: the menu must match the engine's
    // column space, and only the caller (e.g. KvAutoTuner, which
    // substitutes defaultMenu() and validates the size) can check
    // that. An empty menu fails at construction, not mid-episode.
    if (menu_.empty())
        throw std::invalid_argument(
            "ShardTunable: empty configuration menu");
}

void
ShardTunable::applyConfig(std::size_t c)
{
    if (c >= menu_.size()) {
        throw std::out_of_range(
            "ShardTunable::applyConfig: config index outside the menu "
            "(engine column space and menu size must match)");
    }
    if (c != applied_ ||
        !(shard_->poly().currentConfig() == menu_[c])) {
        shard_->poly().reconfigure(menu_[c]);
        ++reconfigurations_;
        if (store_ != nullptr) {
            // Pack old->new menu indices into one trace word and carry
            // the KPI that motivated the decision in the other.
            store_->noteRetune(
                shardIndex_,
                (static_cast<std::uint64_t>(applied_) << 32) |
                    static_cast<std::uint32_t>(c),
                std::bit_cast<std::uint64_t>(lastKpi_));
        }
    }
    applied_ = c;
    meter_.reset(); // don't charge the new config for the old window
}

double
ShardTunable::measureKpi()
{
    std::this_thread::sleep_for(
        std::chrono::duration<double>(periodSeconds_));
    lastKpi_ = meter_.sample().commitsPerSec;
    return lastKpi_;
}

KvAutoTuner::KvAutoTuner(KvStore &store, const rectm::RecTmEngine &engine,
                         KvTunableOptions options,
                         rectm::RuntimeOptions runtime_options)
{
    if (options.menu.empty())
        options.menu = KvTunableOptions::defaultMenu();
    if (options.menu.size() != engine.numConfigs()) {
        throw std::invalid_argument(
            "KvAutoTuner: engine was trained on " +
            std::to_string(engine.numConfigs()) +
            " configurations but the menu has " +
            std::to_string(options.menu.size()));
    }
    for (int s = 0; s < store.numShards(); ++s) {
        tunables_.push_back(std::make_unique<ShardTunable>(
            store.shard(static_cast<std::size_t>(s)), options, &store,
            s));
        runtimes_.push_back(std::make_unique<rectm::ProteusRuntime>(
            engine, *tunables_.back(), runtime_options));
        group_.add(*runtimes_.back());
    }
}

std::vector<std::vector<rectm::PeriodRecord>>
KvAutoTuner::run(
    int total_periods,
    const std::function<void(std::size_t, int)> &before_period)
{
    return group_.runAll(total_periods, before_period);
}

} // namespace proteus::kvstore
