/**
 * @file
 * One ProteusKV shard: an open-addressing hash table whose every
 * operation runs as a transaction on the shard's private PolyTM
 * instance.
 *
 * Layout: three parallel word arrays (state / key / value), linear
 * probing with tombstones. All slot words are accessed only through
 * Tx::readWord/writeWord, so any mix of backends (STM, emulated HTM,
 * hybrid, global lock) serializes get/put/del/scan correctly — and the
 * shard can be re-tuned (backend, parallelism degree, CM knobs) live
 * by a per-shard ProteusRuntime without pausing the service.
 *
 * Capacity is fixed at construction (the usual TM-benchmark stance:
 * no transactional resize). put() reports failure on a full table.
 */

#ifndef PROTEUS_KVSTORE_SHARD_HPP
#define PROTEUS_KVSTORE_SHARD_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "polytm/polytm.hpp"

namespace proteus::kvstore {

struct ShardOptions
{
    /** log2 of the slot count; default 2^14 slots. */
    unsigned log2Slots = 14;
    /** TM configuration active at construction. */
    polytm::TmConfig initial{};
    /**
     * log2 of the per-backend orec/stripe table. Smaller than the
     * PolyTM default (18): a shard covers only its own slice of the
     * key space, and a many-shard store pays this footprint (and
     * construction-time zeroing) once per shard per backend.
     */
    unsigned log2Orecs = 16;
};

class Shard
{
  public:
    explicit Shard(ShardOptions options = {});

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /**
     * Register the calling thread with this shard's PolyTM. Throws
     * (from PolyTM / ThreadGate) when more than tm::kMaxThreads
     * workers try to register — the KV driver must size its pool
     * accordingly.
     */
    polytm::ThreadToken registerWorker() { return poly_.registerThread(); }
    void deregisterWorker(polytm::ThreadToken &token)
    {
        poly_.deregisterThread(token);
    }

    /** Whole-op transactions (each runs its own PolyTM transaction). */
    bool get(polytm::ThreadToken &token, std::uint64_t key,
             std::uint64_t *value = nullptr);
    bool put(polytm::ThreadToken &token, std::uint64_t key,
             std::uint64_t value);
    bool del(polytm::ThreadToken &token, std::uint64_t key);

    /**
     * Collect up to `limit` live entries starting from key's home slot
     * (YCSB-E-style short range scan; open addressing makes it a slot
     * walk, not a key-ordered scan). One transaction.
     */
    std::size_t scan(polytm::ThreadToken &token, std::uint64_t start_key,
                     std::size_t limit,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>
                         *out = nullptr);

    /**
     * Transactional primitives for composition: run inside a caller-
     * managed transaction (KvStore multi-key commits, batches).
     */
    bool getTx(polytm::Tx &tx, std::uint64_t key,
               std::uint64_t *value = nullptr);
    bool putTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t value);
    bool delTx(polytm::Tx &tx, std::uint64_t key);
    std::size_t
    scanTx(polytm::Tx &tx, std::uint64_t start_key, std::size_t limit,
           std::vector<std::pair<std::uint64_t, std::uint64_t>> *out);
    /** value += delta (two's-complement), creating the key at delta. */
    bool addTx(polytm::Tx &tx, std::uint64_t key, std::int64_t delta);

    polytm::PolyTm &poly() { return poly_; }
    const polytm::PolyTm &poly() const { return poly_; }

    std::size_t capacity() const { return slots_; }

    /** Live entries; quiesced-only (raw, non-transactional reads). */
    std::size_t sizeQuiesced() const;

  private:
    enum SlotState : std::uint64_t
    {
        kEmpty = 0,
        kFull = 1,
        kTombstone = 2,
    };

    std::size_t homeSlot(std::uint64_t key) const;

    /**
     * Probe for `key`. Returns the matching full slot, or the first
     * reusable slot (tombstone if seen, else the terminating empty
     * slot) with *found=false; capacity() when the probe wrapped with
     * no reusable slot.
     */
    std::size_t probe(polytm::Tx &tx, std::uint64_t key, bool *found);

    polytm::PolyTm poly_;
    std::size_t slots_;
    std::size_t mask_;
    std::vector<std::uint64_t> state_;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> values_;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_SHARD_HPP
