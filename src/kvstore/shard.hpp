/**
 * @file
 * One ProteusKV shard: an open-addressing hash table whose every
 * operation runs as a transaction on the shard's private PolyTM
 * instance.
 *
 * Layout: four parallel word arrays (state / key / value / intent),
 * linear probing with tombstones. All slot words are accessed only
 * through Tx::readWord/writeWord, so any mix of backends (STM,
 * emulated HTM, hybrid, global lock) serializes get/put/del/scan
 * correctly — and the shard can be re-tuned (backend, parallelism
 * degree, CM knobs) live by a per-shard ProteusRuntime without pausing
 * the service.
 *
 * Write intents (2PC commit mode). A slot's intent word is either 0 or
 * a pointer to a WriteIntent belonging to an in-flight cross-shard
 * commit (see commit_record.hpp). Slot states then read as:
 *  - kFull + intent: the pre-image is live until the intent's record
 *    commits, after which the intent's post-image wins;
 *  - kPendingInsert (+ intent, always): the key is invisible until the
 *    record commits; the slot is consumed so concurrent inserts probe
 *    past it. Finalize turns it kFull, abort turns it kTombstone
 *    (never back to kEmpty — probe chains may already run past it).
 * Readers resolve intents without blocking. Writers fold a finished
 * (committed/aborted) intent in their own transaction and proceed; a
 * still-pending intent makes a writer wait out the short prepare→
 * commit window (retry-with-backoff when the backend is revocable,
 * in-place spin on the status word when irrevocable — the commit flip
 * is a plain atomic store, so it needs no TM resources a spinner
 * could be holding).
 *
 * Capacity is fixed at construction (the usual TM-benchmark stance:
 * no transactional resize). put() reports failure on a full table.
 */

#ifndef PROTEUS_KVSTORE_SHARD_HPP
#define PROTEUS_KVSTORE_SHARD_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "kvstore/commit_record.hpp"
#include "polytm/polytm.hpp"

namespace proteus::kvstore {

struct ShardOptions
{
    /** log2 of the slot count; default 2^14 slots. */
    unsigned log2Slots = 14;
    /** TM configuration active at construction. */
    polytm::TmConfig initial{};
    /**
     * log2 of the per-backend orec/stripe table. Smaller than the
     * PolyTM default (18): a shard covers only its own slice of the
     * key space, and a many-shard store pays this footprint (and
     * construction-time zeroing) once per shard per backend.
     */
    unsigned log2Orecs = 16;
};

class Shard
{
  public:
    explicit Shard(ShardOptions options = {});

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /**
     * Register the calling thread with this shard's PolyTM. Throws
     * (from PolyTM / ThreadGate) when more than tm::kMaxThreads
     * workers try to register — the KV driver must size its pool
     * accordingly.
     */
    polytm::ThreadToken registerWorker() { return poly_.registerThread(); }
    void deregisterWorker(polytm::ThreadToken &token)
    {
        poly_.deregisterThread(token);
    }

    /** Whole-op transactions (each runs its own PolyTM transaction). */
    bool get(polytm::ThreadToken &token, std::uint64_t key,
             std::uint64_t *value = nullptr);
    bool put(polytm::ThreadToken &token, std::uint64_t key,
             std::uint64_t value);
    bool del(polytm::ThreadToken &token, std::uint64_t key);

    /**
     * Collect up to `limit` live entries starting from key's home slot
     * (YCSB-E-style short range scan; open addressing makes it a slot
     * walk, not a key-ordered scan). One transaction.
     */
    std::size_t scan(polytm::ThreadToken &token, std::uint64_t start_key,
                     std::size_t limit,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>
                         *out = nullptr);

    /**
     * Transactional primitives for composition: run inside a caller-
     * managed transaction (KvStore multi-key commits, batches). All are
     * intent-aware: they resolve any write intent on the touched slot
     * as described in the file comment.
     */
    bool getTx(polytm::Tx &tx, std::uint64_t key,
               std::uint64_t *value = nullptr);
    /**
     * getTx that additionally reports snapshot instability: *unstable
     * is set when the read resolved a PENDING intent to its pre-image
     * — the owning commit may flip mid-round, so a multi-shard
     * snapshot built from such reads must be retried (KvStore's
     * commit-sequence check cannot see a flip whose sequence bump the
     * round straddles).
     */
    bool snapshotGetTx(polytm::Tx &tx, std::uint64_t key,
                       std::uint64_t *value, bool *unstable);
    /**
     * getTx that first makes the slot writable — waiting out / folding
     * any foreign intent exactly like the write primitives do — so the
     * returned pre-image is the one a subsequent write in this same
     * transaction builds on. Required for compensation-log capture: a
     * plain getTx may return the pre-image of a still-PENDING foreign
     * commit that a following putTx then folds, and restoring the
     * earlier value on abort would erase that commit's write.
     */
    bool getForUpdateTx(polytm::Tx &tx, std::uint64_t key,
                        std::uint64_t *value);
    /**
     * The write primitives optionally report the displaced pre-image
     * (`existed` / `old_value`, captured after intent resolution) so
     * compensation-log callers get it from the same probe walk
     * instead of a second lookup.
     */
    bool putTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t value,
               bool *existed = nullptr,
               std::uint64_t *old_value = nullptr);
    bool delTx(polytm::Tx &tx, std::uint64_t key,
               std::uint64_t *old_value = nullptr);
    /** `unstable` as in snapshotGetTx: set when a slot resolved a
     *  still-PENDING intent — the caller must retry the scan or risk
     *  returning a torn mix of one composite's pre-/post-images. */
    std::size_t
    scanTx(polytm::Tx &tx, std::uint64_t start_key, std::size_t limit,
           std::vector<std::pair<std::uint64_t, std::uint64_t>> *out,
           bool *unstable = nullptr);
    /** value += delta (two's-complement), creating the key at delta. */
    bool addTx(polytm::Tx &tx, std::uint64_t key, std::int64_t delta,
               bool *existed = nullptr,
               std::uint64_t *old_value = nullptr);

    /**
     * 2PC prepare primitives: validate the operation and publish a
     * WriteIntent pointing at `record` instead of mutating the live
     * words. Newly allocated intents are appended to `out` (merged
     * re-writes of a slot this multiOp already prepared mutate the
     * existing intent in place — legal because nothing is visible
     * until the enclosing transaction commits). `*applied` receives
     * the op's logical outcome exactly as the direct primitives
     * report it. preparePutTx/prepareAddTx return false only when the
     * table has no slot (the caller must then abort the whole commit).
     */
    bool preparePutTx(polytm::Tx &tx, CommitRecord *record,
                      IntentArena &arena,
                      std::vector<WriteIntent *> &out, std::uint64_t key,
                      std::uint64_t value, bool *applied);
    void prepareDelTx(polytm::Tx &tx, CommitRecord *record,
                      IntentArena &arena,
                      std::vector<WriteIntent *> &out, std::uint64_t key,
                      bool *applied);
    bool prepareAddTx(polytm::Tx &tx, CommitRecord *record,
                      IntentArena &arena,
                      std::vector<WriteIntent *> &out, std::uint64_t key,
                      std::int64_t delta, bool *applied);
    /** Read that sees this commit's own intents (read-your-writes). */
    bool prepareGetTx(polytm::Tx &tx, CommitRecord *record,
                      std::uint64_t key, std::uint64_t *value);

    /**
     * Fold one of this commit's intents into the live slot words and
     * clear the intent pointer; a no-op if a helping writer already
     * folded it. Call with the record kCommitted.
     */
    void finalizeIntentTx(polytm::Tx &tx, WriteIntent *intent);

    /**
     * Discard one of this commit's intents (pending inserts become
     * tombstones); a no-op if already helped. Normally called with
     * the record kAborted, but the record's verdict is deliberately
     * never read here: the irrevocable table-full path discards a
     * failed prepare's intents while the record is still kPending.
     */
    void abortIntentTx(polytm::Tx &tx, WriteIntent *intent);

    polytm::PolyTm &poly() { return poly_; }
    const polytm::PolyTm &poly() const { return poly_; }

    std::size_t capacity() const { return slots_; }

    /** Live entries; quiesced-only (raw, non-transactional reads). */
    std::size_t sizeQuiesced() const;

  private:
    enum SlotState : std::uint64_t
    {
        kEmpty = 0,
        kFull = 1,
        kTombstone = 2,
        /** Insert prepared by an uncommitted cross-shard commit. */
        kPendingInsert = 3,
    };

    std::size_t homeSlot(std::uint64_t key) const;

    /**
     * Probe for `key`. Matches kFull and kPendingInsert slots (both
     * have a valid key word). Returns the matching slot, or the first
     * reusable slot (tombstone if seen, else the terminating empty
     * slot) with *found=false; capacity() when the probe wrapped with
     * no reusable slot.
     */
    std::size_t probe(polytm::Tx &tx, std::uint64_t key, bool *found);

    /**
     * Logical liveness+value of a probed-matching slot for readers:
     * resolves any intent against its commit record without writing.
     * `unstable` (optional) is set on a pre-image read under a
     * PENDING intent (see snapshotGetTx).
     */
    bool resolveSlotLiveTx(polytm::Tx &tx, std::size_t slot,
                           std::uint64_t *value,
                           bool *unstable = nullptr);

    /**
     * Wait out / fold / discard the foreign intent published as
     * `word` at `slot` so the caller can write the slot. May abort
     * the transaction (revocable backends) to wait for a pending
     * commit.
     */
    void resolveForeignIntentTx(polytm::Tx &tx, std::size_t slot,
                                std::uint64_t word);

    /**
     * Probe + make the matched slot writable. On return with
     * *found=true the slot carries either no intent (state kFull) or
     * this commit's own intent (*own != nullptr, `record` non-null).
     * *found=false means the key is logically absent; the returned
     * slot (if < capacity()) is the insert point.
     */
    std::size_t writeLookup(polytm::Tx &tx, CommitRecord *record,
                            std::uint64_t key, bool *found,
                            WriteIntent **own);

    WriteIntent *installIntent(polytm::Tx &tx, CommitRecord *record,
                               IntentArena &arena,
                               std::vector<WriteIntent *> &out,
                               std::size_t slot, std::uint64_t new_state,
                               std::uint64_t new_value);

    polytm::PolyTm poly_;
    std::size_t slots_;
    std::size_t mask_;
    std::vector<std::uint64_t> state_;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint64_t> values_;
    /** 0 or a WriteIntent* of an in-flight cross-shard commit. */
    std::vector<std::uint64_t> intents_;
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_SHARD_HPP
