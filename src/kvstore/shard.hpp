/**
 * @file
 * One ProteusKV shard: an elastic open-addressing hash table whose
 * every operation runs as a transaction on the shard's private PolyTM
 * instance.
 *
 * Layout: a shard owns a chain of ShardTables (five parallel word
 * arrays each: state / key / value / expiry / intent, linear probing
 * with tombstones) plus a ValueArena for wide values. All slot words
 * are accessed only through Tx::readWord/writeWord, so any mix of
 * backends (STM, emulated HTM, hybrid, global lock) serializes
 * get/put/del/scan correctly — and the shard can be re-tuned live by
 * a per-shard ProteusRuntime without pausing the service.
 *
 * Online resize. Which tables exist is itself transactional state: a
 * TM-visible epoch word holds a pointer to an immutable TableEpoch
 * {live, old}. Every operation reads the epoch word first, so a grow
 * (publishing a doubled live table with the previous one as `old`)
 * invalidates every straddling transaction through ordinary TM
 * conflict detection. During migration, lookups consult live-then-old;
 * inserts go to live only; updates and deletes hit the key wherever it
 * currently lives — a key is live in at most one table at any
 * committed state. Writers piggyback bounded migration chunks
 * (maintainTick) that relocate old-table slots into live as small
 * transactions; when the old table drains, a follow-up epoch {live,
 * nullptr} retires it. Retired tables and epochs are never freed
 * before shard destruction, so a doomed transaction that loaded a
 * stale epoch never touches unmapped memory. put() only reports
 * failure once growth is capped (ShardOptions::maxLog2Slots) AND the
 * table is full; otherwise callers grow-and-retry via tryGrow().
 *
 * Values. A slot's value word is state-tagged: kFull means a raw
 * 64-bit value (numeric API, kAdd arithmetic); kFullRef means a
 * ValueRef — inline small bytes or a blob handle into the shard's
 * ValueArena (see value_arena.hpp). Numeric reads of byte values
 * decode the leading 8 bytes; byte reads of numeric values return the
 * 8 raw bytes. Blob allocation happens outside transactions; displaced
 * blob handles are pushed onto caller-provided reclaim lists and
 * *retired* (not freed) after the displacing transaction committed:
 * the arena recycles them only once every reader-epoch section that
 * could hold the handle has ended (readerEpochs_), which is what lets
 * pinned byte readers copy blobs with zero seqlock re-checks.
 *
 * TTL. A slot's expiry word is an absolute nowNanos() deadline (0 =
 * none). Reads treat an expired slot as absent (lazy expiry); a
 * clock-hand sweep (the migration walker pointed at the live table)
 * tombstones expired slots in the background.
 *
 * Write intents (2PC commit mode). A slot's intent word is either 0 or
 * a pointer to a WriteIntent belonging to an in-flight cross-shard
 * commit (see commit_record.hpp). Slot states then read as:
 *  - kFull/kFullRef + intent: the pre-image is live until the intent's
 *    record commits, after which the intent's post-image wins;
 *  - kPendingInsert (+ intent, always): the key is invisible until the
 *    record commits; the slot is consumed so concurrent inserts probe
 *    past it. Finalize turns it kFull/kFullRef, abort turns it
 *    kTombstone (never back to kEmpty — probe chains may already run
 *    past it).
 * Readers resolve intents without blocking: point reads take the
 * committed image (ReadView::kLatest), and snapshot reads compare the
 * record's commit sequence against their sampled read timestamp
 * (ReadView::kSnapshot) so an in-flight commit is included or
 * excluded deterministically instead of forcing a retry round — the
 * only wait left is the few-store window between a commit's sequence
 * reservation and its status flip. Writers fold a finished
 * (committed/aborted) intent in their own transaction and proceed; a
 * still-pending intent makes a writer wait out the short prepare→
 * commit window (retry-with-backoff when the backend is revocable,
 * in-place spin on the status word when irrevocable — the commit flip
 * is a plain atomic store, so it needs no TM resources a spinner
 * could be holding). Intents record the table they were installed in,
 * so a 2PC that straddles a grow finalizes against the right slots.
 *
 * Resize vs compaction. A doubling grow is triggered by consumed
 * slots crossing growLoadPercent — unless tombstones dominate the
 * consumed count (delete churn), in which case the shard migrates
 * into a SAME-size table instead, shedding the tombstones without
 * doubling memory; a capped shard whose table fills with tombstones
 * compacts the same way rather than failing the insert.
 *
 * Control-byte filter (Swiss-table style). Each table carries one
 * byte per slot, packed 8-per-word in `ctrl`: 0x80 = never used,
 * 0xFF = tombstone, 0x00-0x7F = the 7-bit hash fingerprint of the
 * resident key (kPendingInsert slots carry their key's fingerprint
 * too — probers must find them to resolve the intent). The probe
 * reads two ctrl words per 16 slots through the TM — putting them in
 * the read set, so a skipped slot cannot change state behind a
 * straddling transaction's back — and byte-matches them 16 ways in
 * registers (common/simd.hpp). Only fingerprint-match / empty /
 * tombstone lanes fall through to the state/key words; correctness
 * still rests entirely on those transactional words — every candidate
 * is verified, termination only happens on a TM-read kEmpty state,
 * and a wrong hint in the safe directions (empty/tombstone/garbage
 * with bit 7 set over a live key, any fingerprint over an
 * empty/tombstone slot) costs extra verification reads, never a lost
 * key. Ctrl bytes are maintained *transactionally*: every site that
 * changes a slot's state class rewrites the slot's ctrl byte in the
 * same transaction (insert/delete/2PC prepare/finalize/abort/restore,
 * migration, TTL sweep), which keeps the filter exact at every
 * committed state. The maintenance walkers (migration, sweep, scan)
 * use the same words to skip empty/tombstone runs wholesale.
 */

#ifndef PROTEUS_KVSTORE_SHARD_HPP
#define PROTEUS_KVSTORE_SHARD_HPP

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.hpp"
#include "common/simd.hpp"
#include "kvstore/commit_record.hpp"
#include "kvstore/value_arena.hpp"
#include "obs/flight_recorder.hpp"
#include "polytm/polytm.hpp"

namespace proteus::kvstore {

/**
 * How a read resolves a slot that carries an in-flight cross-shard
 * write intent (see resolveSlotLiveTx):
 *
 *  - kLatest   : non-blocking point read. COMMITTED intents win,
 *                PENDING ones yield the pre-image. Single-key gets.
 *  - kSnapshot : validation-free snapshot read against the sampled
 *                store-wide commit sequence `seq`. A commit whose
 *                record sequence is <= seq is included (its verdict is
 *                briefly waited out if the flip is still in flight —
 *                the window spans only the owner's per-shard sequence
 *                bumps); one ordered after the snapshot is excluded.
 *                Used by read-only multiOps and KvStore scans, paired
 *                with the caller's trailing per-shard sequence check.
 *  - kSettle   : wait every PENDING intent out to its verdict. Gives
 *                a standalone shard scan all-or-nothing consistency
 *                per commit without any store-level sequence to
 *                validate against.
 */
struct ReadView
{
    enum class Mode : std::uint8_t
    {
        kLatest = 0,
        kSnapshot,
        kSettle,
    };

    Mode mode = Mode::kLatest;
    /** Sampled store-wide commit sequence (kSnapshot only). */
    std::uint64_t seq = 0;
};

struct ShardOptions
{
    /** log2 of the initial slot count; default 2^14 slots. */
    unsigned log2Slots = 14;
    /**
     * Growth cap: tables double until 2^maxLog2Slots slots. 0 means
     * unbounded; equal to log2Slots pins the seed's fixed capacity
     * (put() then reports failure on a full table again).
     */
    unsigned maxLog2Slots = 0;
    /** Consumed-slot percentage that triggers a proactive grow. */
    unsigned growLoadPercent = 70;
    /** Old-table slots relocated per migration step. */
    unsigned migrateChunkSlots = 64;
    /** Live-table slots visited per TTL sweep step. */
    unsigned sweepChunkSlots = 64;
    /** TM configuration active at construction. */
    polytm::TmConfig initial{};
    /**
     * log2 of the per-backend orec/stripe table. Smaller than the
     * PolyTM default (18): a shard covers only its own slice of the
     * key space, and a many-shard store pays this footprint (and
     * construction-time zeroing) once per shard per backend.
     */
    unsigned log2Orecs = 16;
    /**
     * Observability plane, injected by the owning KvStore (all three
     * null/-1 for a standalone shard): the flight recorder that
     * maintenance and arena events land in, the store-wide commit
     * sequence they are stamped with, and this shard's index for
     * attribution.
     */
    obs::FlightRecorder *recorder = nullptr;
    const std::atomic<std::uint64_t> *commitSeq = nullptr;
    int shardIndex = -1;
};

/** Slot states; the value word's interpretation is state-tagged. */
enum SlotState : std::uint64_t
{
    kEmpty = 0,
    kFull = 1, //!< value word is a raw 64-bit value
    kTombstone = 2,
    /** Insert prepared by an uncommitted cross-shard commit. */
    kPendingInsert = 3,
    kFullRef = 4, //!< value word is a ValueRef (see value_arena.hpp)
};

/** The one definition of "this slot state carries a value". */
inline bool
slotStateIsValue(std::uint64_t state)
{
    return state == kFull || state == kFullRef;
}

/** Control-byte filter encoding (see the file comment): never-used /
 *  tombstone markers carry bit 7; resident keys carry their 7-bit
 *  fingerprint (bit 7 clear). */
inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::uint8_t kCtrlTombstone = 0xff;
/** A ctrl word of 8 never-used slots (table construction fill). */
inline constexpr std::uint64_t kCtrlEmptyWord = 0x8080808080808080ull;
/** Slots matched per ctrl-group compare (two ctrl words). */
inline constexpr std::size_t kCtrlGroupSlots = 16;

/** 7-bit key fingerprint from the full mixed hash: the top 7 bits,
 *  disjoint from the low bits that pick the home slot. */
inline std::uint8_t
ctrlFingerprint(std::uint64_t hash)
{
    return static_cast<std::uint8_t>(hash >> 57);
}

/** One table generation (see the resize notes in the file comment). */
struct ShardTable
{
    explicit ShardTable(std::size_t slot_count)
        : slots(slot_count), mask(slot_count - 1),
          state(slot_count, kEmpty), keys(slot_count, 0),
          values(slot_count, 0), expiry(slot_count, 0),
          intents(slot_count, 0),
          ctrl((slot_count + 7) / 8, kCtrlEmptyWord)
    {}

    const std::size_t slots;
    const std::size_t mask;
    std::vector<std::uint64_t> state;
    std::vector<std::uint64_t> keys;
    std::vector<std::uint64_t> values;
    /** Absolute nowNanos() deadline; 0 = no TTL. */
    std::vector<std::uint64_t> expiry;
    /** 0 or a WriteIntent* of an in-flight cross-shard commit. */
    std::vector<std::uint64_t> intents;
    /** Control-byte filter, 8 slots per TM-visible word (slot s is
     *  byte s&7 of word s>>3); see the file comment. */
    std::vector<std::uint64_t> ctrl;

    /** Heuristic non-kEmpty slot count (grow trigger; drift is ok). */
    std::atomic<std::size_t> consumed{0};
    /**
     * Heuristic tombstone count (compaction trigger). Signed so racy
     * decrements can momentarily undershoot without wrapping. Known
     * drift: helper-folded deletes and aborted pending inserts mint
     * tombstones uncounted (low drift), and raced double-accounting
     * can overshoot (high drift) — both are bounded to one table
     * generation, because every migration (grow OR compact) rebuilds
     * the new table's counters from the relocated truth.
     */
    std::atomic<std::int64_t> tombstones{0};
    /** Next migration chunk to claim (when this is the old table).
     *  Chunk claims are always chunk-aligned: stall rewinds CAS back
     *  to a chunk's begin, never into its middle. */
    std::atomic<std::size_t> migrateCursor{0};
    /** Distinct migration chunks fully relocated. */
    std::atomic<std::size_t> chunksDone{0};
    /** Per-chunk completion bits (allocated when this table becomes
     *  the migration source): a chunk re-processed after a stall
     *  rewind must count toward chunksDone exactly once, or the old
     *  table could retire with un-migrated keys still in it. */
    std::unique_ptr<std::atomic<std::uint8_t>[]> chunkDone;
    std::size_t totalChunks = 0;
    /** TTL clock hand (when this is the live table). */
    std::atomic<std::size_t> sweepCursor{0};
};

/**
 * Immutable per-generation table view; the shard's TM-visible epoch
 * word points at the current one.
 */
struct TableEpoch
{
    ShardTable *live = nullptr;
    ShardTable *old = nullptr; //!< non-null while migrating
};

/** Pre-image of one slot (kEmpty state = key was absent). */
struct SlotImage
{
    std::uint64_t state = kEmpty;
    std::uint64_t value = 0;
    std::uint64_t expiry = 0;
};

class Shard
{
  public:
    explicit Shard(ShardOptions options = {});
    ~Shard();

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /**
     * Register the calling thread with this shard's PolyTM. Throws
     * (from PolyTM / ThreadGate) when more than tm::kMaxThreads
     * workers try to register — the KV driver must size its pool
     * accordingly. The token carries the thread's reader-epoch slot
     * so byte-read paths can pin blobs (see readerEpochs()).
     */
    polytm::ThreadToken
    registerWorker()
    {
        polytm::ThreadToken token = poly_.registerThread();
        token.epochSlot = readerEpochs_.claimSlot(
            static_cast<std::size_t>(token.tid));
        return token;
    }
    void deregisterWorker(polytm::ThreadToken &token)
    {
        poly_.deregisterThread(token);
    }

    /**
     * Whole-op transactions (each runs its own PolyTM transaction).
     * put()/putBytes() grow-and-retry on a full table and fail only
     * when growth is capped. ttl_nanos is relative (0 = no expiry).
     */
    bool get(polytm::ThreadToken &token, std::uint64_t key,
             std::uint64_t *value = nullptr);
    bool put(polytm::ThreadToken &token, std::uint64_t key,
             std::uint64_t value, std::uint64_t ttl_nanos = 0);
    bool del(polytm::ThreadToken &token, std::uint64_t key);
    bool putBytes(polytm::ThreadToken &token, std::uint64_t key,
                  const void *data, std::size_t len,
                  std::uint64_t ttl_nanos = 0);
    bool getBytes(polytm::ThreadToken &token, std::uint64_t key,
                  std::string *out);

    /**
     * Collect up to `limit` live entries starting from key's home slot
     * (YCSB-E-style short range scan; open addressing makes it a slot
     * walk, not a key-ordered scan). One transaction, run under
     * ReadView::kSettle so every in-flight cross-shard commit it
     * touches resolves to a terminal verdict (all-or-nothing per
     * commit). During a migration the walk covers the live table,
     * then the old one — a key is live in at most one of them.
     */
    std::size_t scan(polytm::ThreadToken &token, std::uint64_t start_key,
                     std::size_t limit,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>
                         *out = nullptr);

    /**
     * Transactional primitives for composition: run inside a caller-
     * managed transaction (KvStore multi-key commits, batches). All are
     * intent-aware: they resolve any write intent on the touched slot
     * as described in the file comment. Write primitives optionally
     * report the displaced pre-image (`pre`, captured after intent
     * resolution from the same probe walk) for compensation-log
     * callers, and push displaced blob handles onto `reclaim` — the
     * caller frees those only after the transaction committed.
     */
    bool getTx(polytm::Tx &tx, std::uint64_t key,
               std::uint64_t *value = nullptr);
    /**
     * getTx under an explicit ReadView: kSnapshot resolves in-flight
     * intents against the caller's sampled commit sequence instead of
     * retry-looping (the caller pairs it with a trailing per-shard
     * sequence check); kSettle waits intents out to their verdict.
     * The bytes variant requires the caller to be pinned in this
     * shard's readerEpochs() for the transaction body — the blob
     * copy-out runs with no seqlock re-check.
     */
    bool snapshotGetTx(polytm::Tx &tx, std::uint64_t key,
                       std::uint64_t *value, const ReadView &view);
    bool snapshotGetBytesTx(polytm::Tx &tx, std::uint64_t key,
                            std::string *out, const ReadView &view);
    /**
     * getTx that first makes the slot writable — waiting out / folding
     * any foreign intent exactly like the write primitives do — so the
     * returned pre-image is the one a subsequent write in this same
     * transaction builds on. Required for compensation-log capture: a
     * plain getTx may return the pre-image of a still-PENDING foreign
     * commit that a following putTx then folds, and restoring the
     * earlier value on abort would erase that commit's write.
     */
    bool getForUpdateTx(polytm::Tx &tx, std::uint64_t key,
                        std::uint64_t *value);
    bool getBytesForUpdateTx(polytm::Tx &tx, std::uint64_t key,
                             std::string *out);
    /** Store a raw 64-bit value (state kFull). False on a full table. */
    bool putTx(polytm::Tx &tx, std::uint64_t key, std::uint64_t value,
               std::uint64_t expiry = 0, SlotImage *pre = nullptr,
               std::vector<std::uint64_t> *reclaim = nullptr);
    /** Store a ValueRef (state kFullRef). False on a full table. */
    bool putRefTx(polytm::Tx &tx, std::uint64_t key, ValueRef ref,
                  std::uint64_t expiry = 0, SlotImage *pre = nullptr,
                  std::vector<std::uint64_t> *reclaim = nullptr);
    bool delTx(polytm::Tx &tx, std::uint64_t key,
               SlotImage *pre = nullptr,
               std::vector<std::uint64_t> *reclaim = nullptr);
    /**
     * value += delta (two's-complement), creating the key at delta.
     * A byte value is coerced through its numeric decode (the blob is
     * displaced onto `reclaim`).
     */
    bool addTx(polytm::Tx &tx, std::uint64_t key, std::int64_t delta,
               SlotImage *pre = nullptr,
               std::vector<std::uint64_t> *reclaim = nullptr,
               SlotImage *post = nullptr);
    /**
     * Compensation-log replay: force the slot for `key` back to the
     * given pre-image (kEmpty state deletes). Runs inside the same
     * revert transaction / latch window as the failed attempt, so the
     * insert point is always available.
     */
    void restoreTx(polytm::Tx &tx, std::uint64_t key,
                   const SlotImage &pre);
    /** Scan under a ReadView (kLatest scans can return a torn mix of
     *  one composite's pre-/post-images; use kSnapshot + the trailing
     *  sequence check, or kSettle, for consistent scans). */
    std::size_t
    scanTx(polytm::Tx &tx, std::uint64_t start_key, std::size_t limit,
           std::vector<std::pair<std::uint64_t, std::uint64_t>> *out,
           const ReadView &view = {});
    /** Byte-decoding scan (numeric values yield their 8 raw bytes);
     *  requires the caller pinned in readerEpochs() (see
     *  snapshotGetBytesTx). */
    struct ScanEntry
    {
        std::uint64_t key = 0;
        std::string bytes;
    };
    std::size_t scanEntriesTx(polytm::Tx &tx, std::uint64_t start_key,
                              std::size_t limit,
                              std::vector<ScanEntry> *out,
                              const ReadView &view = {});

    /**
     * 2PC prepare primitives: validate the operation and publish a
     * WriteIntent pointing at `record` instead of mutating the live
     * words. Newly allocated intents are appended to `out` (merged
     * re-writes of a slot this multiOp already prepared mutate the
     * existing intent in place — legal because nothing is visible
     * until the enclosing transaction commits). `*applied` receives
     * the op's logical outcome exactly as the direct primitives
     * report it. preparePutTx/prepareAddTx return false only when the
     * table has no slot (the caller must then grow-and-retry, or
     * abort the whole commit when growth is capped). `new_state` is
     * kFull or kFullRef; displaced kFullRef pre-images land on
     * `reclaim` (freed by the owner only after the record committed).
     */
    bool preparePutTx(polytm::Tx &tx, CommitRecord *record,
                      IntentArena &arena,
                      std::vector<WriteIntent *> &out, std::uint64_t key,
                      std::uint64_t new_state, std::uint64_t value,
                      std::uint64_t expiry, bool *applied,
                      std::vector<std::uint64_t> *reclaim = nullptr);
    void prepareDelTx(polytm::Tx &tx, CommitRecord *record,
                      IntentArena &arena,
                      std::vector<WriteIntent *> &out, std::uint64_t key,
                      bool *applied,
                      std::vector<std::uint64_t> *reclaim = nullptr);
    bool prepareAddTx(polytm::Tx &tx, CommitRecord *record,
                      IntentArena &arena,
                      std::vector<WriteIntent *> &out, std::uint64_t key,
                      std::int64_t delta, bool *applied,
                      std::vector<std::uint64_t> *reclaim = nullptr,
                      SlotImage *post = nullptr);
    /** Read that sees this commit's own intents (read-your-writes). */
    bool prepareGetTx(polytm::Tx &tx, CommitRecord *record,
                      std::uint64_t key, std::uint64_t *value);
    bool prepareGetBytesTx(polytm::Tx &tx, CommitRecord *record,
                           std::uint64_t key, std::string *out);

    /**
     * Fold one of this commit's intents into the live slot words and
     * clear the intent pointer; a no-op if a helping writer already
     * folded it. Call with the record kCommitted. Returns true when
     * the fold turned a pending insert into a value slot on a
     * previously EMPTY slot (the caller feeds the consumed-slot
     * heuristic; a tombstone-claiming insert consumed nothing new);
     * `tombstone_delta` (optional) accumulates the net tombstones the
     * fold created (+1 committed delete of a value slot, -1 insert
     * that reused a tombstone).
     */
    bool finalizeIntentTx(polytm::Tx &tx, WriteIntent *intent,
                          std::int64_t *tombstone_delta = nullptr);

    /**
     * Discard one of this commit's intents (pending inserts become
     * tombstones); a no-op if already helped. Normally called with
     * the record kAborted, but the record's verdict is deliberately
     * never read here: the irrevocable table-full path discards a
     * failed prepare's intents while the record is still kPending.
     */
    void abortIntentTx(polytm::Tx &tx, WriteIntent *intent);

    /**
     * Maintenance step, called by writers after their op commits (and
     * by the KvStore batching loop): relocates one migration chunk
     * when a resize is in flight, triggers a proactive grow when the
     * live table crosses the load threshold, and occasionally advances
     * the TTL clock hand. Cheap (two atomic loads) when idle.
     */
    void maintainTick(polytm::ThreadToken &token);

    /**
     * Make capacity progress after an operation reported a full table
     * of `full_capacity` slots: helps drain an in-flight migration,
     * then doubles the live table. Returns false only when the table
     * cannot grow past `full_capacity` (maxLog2Slots reached) — the
     * caller's operation has genuinely failed.
     */
    bool tryGrow(polytm::ThreadToken &token, std::size_t full_capacity);

    /** Drive the current migration (if any) to completion. */
    void drainMigration(polytm::ThreadToken &token);

    /** Bump the heuristic consumed-slot count (insert bookkeeping). */
    void noteConsumed(std::size_t n);

    /** Adjust the heuristic tombstone count: +1 per committed delete
     *  of a value slot, -1 per insert that reused a tombstone. Feeds
     *  the compaction-vs-grow decision; drift is tolerated. */
    void noteTombstones(std::int64_t delta);

    /**
     * Post-commit bookkeeping shared by every direct put path (the
     * Shard wrappers and KvStore's latch-aware ones): free the
     * displaced blob handles, feed the consumed-slot heuristic, run a
     * maintenance tick. Call only after the put's transaction
     * committed.
     */
    void finishWrite(polytm::ThreadToken &token, const SlotImage &pre,
                     const std::vector<std::uint64_t> &reclaim);
    /** finishWrite for callers that route displaced handles through
     *  their own retire batching (KvStore session backlogs). */
    void
    finishWrite(polytm::ThreadToken &token, const SlotImage &pre)
    {
        static const std::vector<std::uint64_t> kNone;
        finishWrite(token, pre, kNone);
    }

    /** Record that TTL'd values exist (enables the sweep); called by
     *  layers that drive the *Tx primitives directly. */
    void noteTtlUsed() { ttlSeen_.store(true, std::memory_order_relaxed); }

    polytm::PolyTm &poly() { return poly_; }
    const polytm::PolyTm &poly() const { return poly_; }

    ValueArena &arena() { return arena_; }
    const ValueArena &arena() const { return arena_; }

    /** Reader-epoch domain for blob pinning: byte-read paths enter a
     *  section (via the token's epochSlot) for each transaction body
     *  so the arena defers blob recycling past them. */
    EpochDomain &readerEpochs() { return readerEpochs_; }

    /** Defer-recycle a displaced blob handle once its displacing
     *  transaction committed: parks it in the arena limbo (recycled
     *  by maintenance once every reader-epoch section that could
     *  hold it has ended). */
    void retireBlob(ValueRef ref) { arena_.retireBlob(ref); }

    /** Current live-table slot count (grows over the shard's life). */
    std::size_t capacity() const;
    bool migrationActive() const;
    /** Resizes completed since construction. */
    std::uint64_t growCount() const
    {
        return growCount_.load(std::memory_order_relaxed);
    }
    /** Same-size compacting migrations (tombstone churn) completed. */
    std::uint64_t compactCount() const
    {
        return compactCount_.load(std::memory_order_relaxed);
    }
    /** In-flight commit verdicts snapshot readers waited out. */
    std::uint64_t snapshotPendingWaits() const
    {
        return snapshotWaits_.load(std::memory_order_relaxed);
    }

    /** Live entries; quiesced-only (raw, non-transactional reads). */
    std::size_t sizeQuiesced() const;

    /** The full mixed hash behind homeSlot()/ctrlFingerprint() —
     *  exposed so tests can construct fingerprint collisions. */
    static std::uint64_t keyHash(std::uint64_t key);

    /** Probe slots whose ctrl fingerprint matched but whose key did
     *  not (hash collisions plus deliberately corrupted hints): each
     *  one cost exactly one extra verification read-pair. */
    std::uint64_t
    ctrlFalsePositives() const
    {
        return ctrlFalsePositives_.load(std::memory_order_relaxed);
    }

    /**
     * Quiesced-only test hooks for the control-byte filter: locate a
     * key's live-table slot (slots() when absent), read a slot's ctrl
     * byte, and overwrite one — the deliberate-corruption tests use
     * the latter to prove wrong hints in the safe directions only add
     * probes. Raw, non-transactional access; never call on a live
     * store.
     */
    std::size_t findSlotQuiesced(std::uint64_t key) const;
    std::uint8_t ctrlByteQuiesced(std::size_t slot) const;
    void setCtrlByteQuiesced(std::size_t slot, std::uint8_t byte);

    /**
     * WAL sequencing: draw the next log sequence number inside a
     * writing transaction. The ticket is a TM-visible word every
     * durable writer read-modify-writes, so the TM totally orders all
     * writing transactions on this shard and ticket order equals
     * serialization order — recovery replays records sorted by this
     * LSN. An aborted attempt leaves a gap, which replay tolerates.
     */
    std::uint64_t
    walTicketTx(polytm::Tx &tx)
    {
        const std::uint64_t next = tx.readWord(&walTicketWord_) + 1;
        tx.writeWord(&walTicketWord_, next);
        return next;
    }

    /** Quiesced-only: seed the ticket after recovery replay. */
    void setWalTicketQuiesced(std::uint64_t v) { walTicketWord_ = v; }
    std::uint64_t walTicketQuiesced() const { return walTicketWord_; }

    /** One checkpoint-walk step's outcome. */
    enum class CkptStep
    {
        kMore,    ///< chunk captured, keep walking
        kDone,    ///< table fully walked
        kRestart, ///< epoch changed / migration active — start over
    };

    struct CheckpointCursor
    {
        const void *epoch = nullptr; ///< table epoch the walk pinned
        std::size_t slot = 0;
    };

    /** One live entry as captured for a checkpoint image. */
    struct CheckpointEntry
    {
        std::uint64_t key = 0;
        bool isBytes = false;
        std::uint64_t value = 0;  ///< numeric payload (kFull slots)
        std::uint64_t expiry = 0; ///< absolute deadline ns, 0 = none
        std::string bytes;        ///< blob payload (kFullRef slots)
    };

    /**
     * Fuzzy-checkpoint walker: capture up to `chunk_slots` slots'
     * live entries into `out` (appended), one bounded transaction per
     * call — the same incremental pattern as the migration walker, so
     * writers are never stalled. Reads are kSettle (pending 2PC
     * intents are waited to their verdict). The walk only runs on a
     * migration-free epoch: kRestart means the caller must
     * drainMigration() and start over with a fresh cursor (entries
     * captured so far are stale — a migration may have relocated keys
     * across already-walked regions). Writers racing the walk are
     * fine: their records carry LSNs after the checkpoint barrier and
     * are re-applied over the image on replay (post-images make that
     * idempotent).
     */
    CkptStep checkpointChunk(polytm::ThreadToken &token,
                             CheckpointCursor *cursor,
                             std::vector<CheckpointEntry> *out,
                             unsigned chunk_slots);

  private:
    struct SlotRef
    {
        ShardTable *table = nullptr;
        std::size_t slot = 0;
    };

    /** Committed (state, value-word, expiry) of a resolved slot. */
    struct LiveValue
    {
        std::uint64_t state = kEmpty;
        std::uint64_t value = 0;
        std::uint64_t expiry = 0;
    };

    TableEpoch *epochTx(polytm::Tx &tx);
    static std::size_t homeSlot(const ShardTable &table,
                                std::uint64_t key);

    std::size_t probe(polytm::Tx &tx, ShardTable &table,
                      std::uint64_t key, bool *found);
    /** Legacy slot-at-a-time probe: tiny tables (< one ctrl group)
     *  and the bench's runtime scalar A/B leg. */
    std::size_t probeScalar(polytm::Tx &tx, ShardTable &table,
                            std::uint64_t key, bool *found);

    /** Rewrite slot `slot`'s ctrl byte inside `tx` (read-modify-write
     *  of its packed word); every slot-state-class change calls this
     *  in the same transaction. */
    static void ctrlSetTx(polytm::Tx &tx, ShardTable &table,
                          std::size_t slot, std::uint8_t byte);

    /** Resync the live table's heuristic tombstone count from the
     *  (transactionally exact) ctrl words after a migration retires
     *  its source; under PROTEUS_ASSERT_CTRL_SYNC also asserts every
     *  slot's ctrl class matches its state class. growMutex_ held. */
    void recountTombstonesLocked(polytm::ThreadToken &token,
                                 ShardTable &live);

    /**
     * Reader lookup: probe live-then-old and resolve the match to its
     * committed view. False when the key is logically absent.
     */
    bool lookupLiveTx(polytm::Tx &tx, std::uint64_t key, SlotRef *ref,
                      LiveValue *live, const ReadView &view);

    /**
     * Shared slot walk behind scanTx/scanEntriesTx: visits live
     * entries starting at `start_key`'s home slot (live table, then
     * the migration source) and calls emit(table, slot, live) for
     * each, counting the ones it accepts, up to `limit`.
     */
    template <typename Emit>
    std::size_t
    scanWalkTx(polytm::Tx &tx, std::uint64_t start_key,
               std::size_t limit, const ReadView &view, Emit &&emit)
    {
        std::size_t count = 0;
        TableEpoch *ep = epochTx(tx);
        const auto walk = [&](ShardTable &table) {
            // Ctrl-guided: one ctrl word covers 8 slots; only lanes
            // whose byte carries a key fingerprint (bit 7 clear —
            // kFull/kFullRef/kPendingInsert) touch the state words,
            // so empty/tombstone runs cost one TM read per 8 slots.
            // Same visit order as the old slot walk: `start`, then
            // ascending with wraparound, the start word's leading
            // lanes last.
            const std::size_t start = homeSlot(table, start_key);
            const std::size_t words = table.ctrl.size();
            std::size_t word = start >> 3;
            const auto start_lane = static_cast<unsigned>(start & 7);
            for (std::size_t w = 0; w <= words && count < limit;
                 ++w) {
                std::uint32_t lanes = 0xffu;
                if (w == 0) {
                    lanes &= ~std::uint32_t{0} << start_lane;
                } else if (w == words) {
                    if (start_lane == 0)
                        break; // start was word-aligned: fully covered
                    lanes = ~(~std::uint32_t{0} << start_lane) & 0xffu;
                }
                const std::uint64_t bytes =
                    tx.readWord(&table.ctrl[word]);
                std::uint32_t cand =
                    ~simd::matchHighBit16(bytes, 0) & lanes;
                while (cand != 0 && count < limit) {
                    const unsigned lane =
                        static_cast<unsigned>(std::countr_zero(cand));
                    cand &= cand - 1;
                    const std::size_t slot = (word << 3) + lane;
                    const std::uint64_t state =
                        tx.readWord(&table.state[slot]);
                    if (state == kFull || state == kFullRef ||
                        state == kPendingInsert) {
                        LiveValue live;
                        if (resolveSlotLiveTx(tx, table, slot, &live,
                                              view) &&
                            emit(table, slot, live))
                            ++count;
                    }
                }
                word = word + 1 == words ? 0 : word + 1;
            }
        };
        // A key is live in at most one table, so walking both cannot
        // double-count.
        walk(*ep->live);
        if (ep->old)
            walk(*ep->old);
        return count;
    }

    /**
     * Logical liveness+value of a probed-matching slot for readers:
     * resolves any intent against its commit record without writing
     * — per the ReadView's mode (see the ReadView comment) — and
     * applies lazy TTL expiry.
     */
    bool resolveSlotLiveTx(polytm::Tx &tx, ShardTable &table,
                           std::size_t slot, LiveValue *out,
                           const ReadView &view = {});

    /**
     * Wait out / fold / discard the foreign intent published as
     * `word` at `slot` so the caller can write the slot. May abort
     * the transaction (revocable backends) to wait for a pending
     * commit.
     */
    void resolveForeignIntentTx(polytm::Tx &tx, ShardTable &table,
                                std::size_t slot, std::uint64_t word);

    /**
     * Probe live-then-old + make the matched slot writable. On return
     * with *found=true the slot carries either no intent (state
     * kFull/kFullRef) or this commit's own intent (*own != nullptr,
     * `record` non-null). *found=false means the key is logically
     * absent; the returned ref is the live-table insert point
     * (slot == live->slots when the live table has no room).
     */
    SlotRef writeLookup(polytm::Tx &tx, CommitRecord *record,
                        std::uint64_t key, bool *found,
                        WriteIntent **own);

    /** Decode the numeric view of a committed (state, value) pair;
     *  re-reads the slot (under `view`) when a blob was recycled
     *  underneath. */
    bool numericValueTx(polytm::Tx &tx, ShardTable &table,
                        std::size_t slot, LiveValue live,
                        std::uint64_t *out,
                        const ReadView &view = {});
    /** Byte view; numeric values yield their 8 raw bytes. `pinned`
     *  callers (inside a readerEpochs() section) copy blobs with no
     *  seqlock re-check; unpinned ones use the stamped retry loop. */
    bool bytesValueTx(polytm::Tx &tx, ShardTable &table,
                      std::size_t slot, LiveValue live,
                      std::string *out, const ReadView &view = {},
                      bool pinned = false);

    /** Shared body of putTx/putRefTx. */
    bool putSlotTx(polytm::Tx &tx, std::uint64_t key,
                   std::uint64_t new_state, std::uint64_t value,
                   std::uint64_t expiry, SlotImage *pre,
                   std::vector<std::uint64_t> *reclaim);

    WriteIntent *installIntent(polytm::Tx &tx, CommitRecord *record,
                               IntentArena &arena,
                               std::vector<WriteIntent *> &out,
                               ShardTable &table, std::size_t slot,
                               std::uint64_t new_state,
                               std::uint64_t new_value,
                               std::uint64_t new_expiry);

    /** Capture a slot's pre-image (after intent resolution). */
    SlotImage slotImageTx(polytm::Tx &tx, ShardTable &table,
                          std::size_t slot);

    /** Literal committed view of a writeLookup match (the slot holds
     *  no foreign intent any more), applying lazy expiry. */
    bool settledValueTx(polytm::Tx &tx, const SlotRef &ref,
                        LiveValue *out);

    /** Relocate one claimed old-table chunk; true while migrating. */
    bool migrateChunk(polytm::ThreadToken &token);
    void sweepChunk(polytm::ThreadToken &token);
    /** Start a migration of `source` into a fresh table of
     *  `new_slots`; growMutex_ must be held, no migration in flight. */
    void startMigrationLocked(polytm::ThreadToken &token,
                              ShardTable *source,
                              std::size_t new_slots);
    /** Publish a doubled live table; growMutex_ must be held. */
    bool growLocked(polytm::ThreadToken &token,
                    std::size_t full_capacity);
    /** Same-size compacting migration (sheds tombstones without
     *  doubling); growMutex_ must be held, no migration in flight. */
    void compactLocked(polytm::ThreadToken &token);
    /** True when the live table's tombstone share says a same-size
     *  compaction beats (or must replace) a doubling grow. */
    static bool tombstoneHeavy(const ShardTable &live);
    void finishMigration(polytm::ThreadToken &token, ShardTable *old);
    void publishEpoch(polytm::ThreadToken &token, TableEpoch *next);

    polytm::PolyTm poly_;
    ValueArena arena_;
    ShardOptions options_;
    std::size_t maxSlots_;
    /** Reader-epoch slots (one per registered tid) for blob pinning. */
    EpochDomain readerEpochs_{static_cast<std::size_t>(tm::kMaxThreads)};

    /** TM-visible: holds the current TableEpoch*. Every transaction
     *  reads it, so epoch changes conflict with all straddlers. */
    alignas(8) std::uint64_t epochWord_ = 0;

    /** TM-visible WAL ticket (see walTicketTx). Only touched when the
     *  owning KvStore runs durable, so non-durable stores pay nothing. */
    alignas(8) std::uint64_t walTicketWord_ = 0;

    /** Non-transactional mirror for heuristics and quiesced readers;
     *  correctness always goes through epochWord_. */
    std::atomic<TableEpoch *> epochMirror_{nullptr};

    /** Guards table/epoch creation and the retire lists. */
    std::mutex growMutex_;
    std::vector<std::unique_ptr<ShardTable>> tables_;
    std::vector<std::unique_ptr<TableEpoch>> epochs_;

    /** Flight-recorder hook for maintenance events, stamped with the
     *  store-wide commit sequence (no-op for standalone shards). */
    void
    trace(obs::TraceKind kind, std::uint64_t a = 0,
          std::uint64_t b = 0) const
    {
        if (options_.recorder) {
            options_.recorder->record(
                kind, options_.shardIndex,
                options_.commitSeq ? options_.commitSeq->load(
                                         std::memory_order_relaxed)
                                   : 0,
                a, b);
        }
    }

    std::atomic<std::uint64_t> growCount_{0};
    std::atomic<std::uint64_t> compactCount_{0};
    /** Fingerprint hits whose key compare failed (see accessor). */
    std::atomic<std::uint64_t> ctrlFalsePositives_{0};
    std::atomic<std::uint64_t> maintainTicks_{0};
    /** Snapshot readers that waited out an in-flight commit verdict. */
    std::atomic<std::uint64_t> snapshotWaits_{0};
    /** Set once any put carries a TTL; gates the sweep. */
    std::atomic<bool> ttlSeen_{false};
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_SHARD_HPP
