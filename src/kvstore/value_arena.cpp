#include "kvstore/value_arena.hpp"

#include <new>
#include <stdexcept>

#include "common/fault.hpp"

namespace proteus::kvstore {

namespace {

inline std::atomic<std::uint64_t> *
blobOf(ValueRef ref)
{
    return reinterpret_cast<std::atomic<std::uint64_t> *>(
        ref & kValueRefPtrMask);
}

inline std::uint64_t
stampTagOf(ValueRef ref)
{
    return (ref >> kValueRefStampShift) & kValueRefStampMask;
}

inline std::size_t
wordsFor(std::size_t payload_bytes)
{
    return 2 + (payload_bytes + 7) / 8;
}

inline std::size_t
capBytesOf(const std::atomic<std::uint64_t> *blob)
{
    const std::uint64_t meta = blob[1].load(std::memory_order_relaxed);
    return (static_cast<std::size_t>(meta >> 32) - 2) * 8;
}

constexpr std::uint64_t kHeadPtrMask =
    (std::uint64_t{1} << 48) - 1;

inline std::atomic<std::uint64_t> *
headPtr(std::uint64_t head)
{
    return reinterpret_cast<std::atomic<std::uint64_t> *>(
        head & kHeadPtrMask);
}

inline std::uint64_t
packHead(std::uint64_t tag, const std::atomic<std::uint64_t> *ptr)
{
    return (tag << 48) |
           (reinterpret_cast<std::uint64_t>(ptr) & kHeadPtrMask);
}

} // namespace

std::size_t
ValueArena::classOf(std::size_t len)
{
    std::size_t cls = 0;
    std::size_t cap = kMinClassBytes;
    while (cap < len && cls + 1 < kNumClasses) {
        cap <<= 1;
        ++cls;
    }
    if (cap < len)
        throw std::length_error("ValueArena: blob too large");
    return cls;
}

std::size_t
ValueArena::classOfCapacity(std::size_t cap_bytes)
{
    std::size_t cls = 0;
    while ((kMinClassBytes << cls) < cap_bytes)
        ++cls;
    return cls;
}

std::atomic<std::uint64_t> *
ValueArena::carve(std::size_t words)
{
    // Allocation-failure injection: surfaces as the bad_alloc a real
    // exhausted arena would throw, so the write paths' kNoMemory
    // handling can be exercised deterministically.
    static fault::FaultPoint fpCarve("arena.carve");
    if (fpCarve.fire())
        throw std::bad_alloc{};
    if (!mutex_.try_lock()) {
        carveContended_.fetch_add(1, std::memory_order_relaxed);
        mutex_.lock();
    }
    std::lock_guard<std::mutex> lk(mutex_, std::adopt_lock);
    if (chunks_.empty() ||
        chunks_.back().used + words > chunks_.back().capacity) {
        Chunk chunk;
        chunk.capacity = words > kChunkWords ? words : kChunkWords;
        chunk.words = std::make_unique<std::atomic<std::uint64_t>[]>(
            chunk.capacity);
        chunks_.push_back(std::move(chunk));
    }
    Chunk &chunk = chunks_.back();
    std::atomic<std::uint64_t> *blob = chunk.words.get() + chunk.used;
    chunk.used += words;
    blob[0].store(0, std::memory_order_relaxed); // stamp 0: stable
    carves_.fetch_add(1, std::memory_order_relaxed);
    return blob;
}

void
ValueArena::pushFree(std::size_t cls, std::atomic<std::uint64_t> *blob)
{
    std::atomic<std::uint64_t> &head = freeHeads_[cls].value;
    std::uint64_t h = head.load(std::memory_order_acquire);
    for (;;) {
        blob[2].store(reinterpret_cast<std::uint64_t>(headPtr(h)),
                      std::memory_order_relaxed);
        const std::uint64_t next = packHead((h >> 48) + 1, blob);
        if (head.compare_exchange_weak(h, next,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
            return;
        casRetries_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::atomic<std::uint64_t> *
ValueArena::popFree(std::size_t cls)
{
    std::atomic<std::uint64_t> &head = freeHeads_[cls].value;
    std::uint64_t h = head.load(std::memory_order_acquire);
    for (;;) {
        std::atomic<std::uint64_t> *blob = headPtr(h);
        if (!blob)
            return nullptr;
        // Racing poppers may read a junk next off a blob that was
        // popped and repurposed underneath them — the ABA tag then
        // fails the CAS before the junk can be published.
        const std::uint64_t next_ptr =
            blob[2].load(std::memory_order_relaxed);
        const std::uint64_t next = packHead((h >> 48) + 1,
                                            reinterpret_cast<
                                                std::atomic<
                                                    std::uint64_t> *>(
                                                next_ptr & kHeadPtrMask));
        if (head.compare_exchange_weak(h, next,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
            return blob;
        casRetries_.fetch_add(1, std::memory_order_relaxed);
    }
}

ValueRef
ValueArena::publish(std::atomic<std::uint64_t> *blob,
                    std::size_t cap_bytes, const void *data,
                    std::size_t len)
{
    // Seqlock write: odd stamp while the payload words change, even
    // stamp published with release so a reader that sees it also sees
    // the payload. A fresh carve starts at stamp 0 and skips straight
    // to the final store (no reader can hold a handle yet, and the
    // odd intermediate would cost an extra fence for nothing).
    std::uint64_t stamp = blob[0].load(std::memory_order_relaxed);
    if (stamp != 0) {
        blob[0].store(stamp + 1, std::memory_order_relaxed);
        // Seqlock writer fence: the payload stores below must not
        // become visible before the odd stamp. A reader whose payload
        // load observes a post-fence write synchronizes with this
        // fence through its own acquire fence, so its trailing stamp
        // re-check then sees the odd (or later) stamp and rejects.
        std::atomic_thread_fence(std::memory_order_release);
        stamp += 2;
    }
    blob[1].store((static_cast<std::uint64_t>(cap_bytes / 8 + 2) << 32) |
                      static_cast<std::uint64_t>(len),
                  std::memory_order_relaxed);
    const auto *src = static_cast<const unsigned char *>(data);
    for (std::size_t w = 0; w * 8 < len; ++w) {
        std::uint64_t word = 0;
        const std::size_t n = len - w * 8 < 8 ? len - w * 8 : 8;
        std::memcpy(&word, src + w * 8, n);
        blob[2 + w].store(word, std::memory_order_relaxed);
    }
    blob[0].store(stamp, std::memory_order_release);

    return kValueRefBlobBit |
           ((stamp & kValueRefStampMask) << kValueRefStampShift) |
           (reinterpret_cast<std::uint64_t>(blob) & kValueRefPtrMask);
}

ValueRef
ValueArena::allocBlob(const void *data, std::size_t len, Cache *cache)
{
    const std::size_t cls = classOf(len);
    const std::size_t cap_bytes = kMinClassBytes << cls;
    allocs_.fetch_add(1, std::memory_order_relaxed);

    std::atomic<std::uint64_t> *blob = nullptr;
    if (cache != nullptr && cache->classes_[cls].count > 0) {
        blob = cache->classes_[cls].blobs[--cache->classes_[cls].count];
        magazineHits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (blob == nullptr) {
        blob = popFree(cls);
        if (blob != nullptr) {
            globalHits_.fetch_add(1, std::memory_order_relaxed);
            if (cache != nullptr) {
                // Batch-refill half a magazine so the next allocs of
                // this class stay off the shared list entirely.
                auto &cc = cache->classes_[cls];
                while (cc.count < Cache::kMagazine / 2) {
                    std::atomic<std::uint64_t> *extra = popFree(cls);
                    if (extra == nullptr)
                        break;
                    cc.blobs[cc.count++] = extra;
                }
            }
        }
    }
    if (blob == nullptr)
        blob = carve(wordsFor(cap_bytes));
    bytesLive_.fetch_add(cap_bytes, std::memory_order_relaxed);
    return publish(blob, cap_bytes, data, len);
}

void
ValueArena::freeBlob(ValueRef ref, Cache *cache)
{
    if (!valueRefIsBlob(ref))
        return;
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::size_t cap_bytes = capBytesOf(blob);
    bytesLive_.fetch_sub(cap_bytes, std::memory_order_relaxed);
    const std::size_t cls = classOfCapacity(cap_bytes);
    if (cache != nullptr &&
        cache->classes_[cls].count < Cache::kMagazine) {
        cache->classes_[cls].blobs[cache->classes_[cls].count++] = blob;
        return;
    }
    pushFree(cls, blob);
}

void
ValueArena::retireBlobs(const ValueRef *refs, std::size_t count)
{
    std::size_t blobs = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (valueRefIsBlob(refs[i])) {
            ++blobs;
            bytes += capBytesOf(blobOf(refs[i]));
        }
    }
    if (blobs == 0)
        return;
    bytesLive_.fetch_sub(bytes, std::memory_order_relaxed);
    retired_.fetch_add(blobs, std::memory_order_relaxed);
    trace(obs::TraceKind::kArenaRetire, blobs, bytes);
    std::lock_guard<std::mutex> lk(limboMutex_);
    for (std::size_t i = 0; i < count; ++i) {
        if (valueRefIsBlob(refs[i]))
            pending_.push_back(blobOf(refs[i]));
    }
    limboCount_.store(pending_.size() + limbo_.size(),
                      std::memory_order_relaxed);
}

void
ValueArena::retireOwned(ValueRef ref, OwnerLimbo &limbo,
                        EpochDomain &readers, Cache *cache)
{
    if (!valueRefIsBlob(ref))
        return;
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    // Account once, here (the shared-limbo spill must NOT repeat it).
    bytesLive_.fetch_sub(capBytesOf(blob), std::memory_order_relaxed);
    retired_.fetch_add(1, std::memory_order_relaxed);
    limbo.entries_.push_back({blob, 0});
    if (limbo.entries_.size() >= OwnerLimbo::kDrainThreshold)
        drainOwned(limbo, readers, cache);
}

void
ValueArena::drainOwned(OwnerLimbo &limbo, EpochDomain &readers,
                       Cache *cache)
{
    if (limbo.entries_.empty())
        return;
    // One epoch fence stamps the whole unstamped batch. advance() is
    // an RMW, so it reads the epoch's modification-order tail — the
    // returned tag is >= the entry epoch of every reader pinned
    // before this point, which is exactly the guarantee the ripeness
    // test below leans on (see reclaim()).
    const std::uint64_t tag = readers.advance();
    for (OwnerLimbo::Entry &entry : limbo.entries_) {
        if (entry.epoch == 0)
            entry.epoch = tag;
    }
    const std::uint64_t min_active = readers.minActive();
    std::size_t bytes = 0;
    std::size_t kept = 0;
    std::size_t freed = 0;
    for (OwnerLimbo::Entry &entry : limbo.entries_) {
        if (entry.epoch < min_active) {
            bytes += capBytesOf(entry.blob);
            ++freed;
            recycleInto(entry.blob, cache);
        } else {
            limbo.entries_[kept++] = entry;
        }
    }
    limbo.entries_.resize(kept);
    if (freed > 0)
        trace(obs::TraceKind::kArenaRecycle, freed, bytes);
    // Pathological pinning (a reader parked in a section for the
    // owner's whole write burst): bound the ring by handing the
    // backlog to the shared limbo, whose sweeper retries on its own
    // cadence. Accounting already happened at retireOwned.
    if (limbo.entries_.size() >= OwnerLimbo::kCapacity)
        spillOwned(limbo);
}

void
ValueArena::spillOwned(OwnerLimbo &limbo)
{
    if (limbo.entries_.empty())
        return;
    std::lock_guard<std::mutex> lk(limboMutex_);
    for (const OwnerLimbo::Entry &entry : limbo.entries_) {
        // Into pending_ (unstamped) even when the entry already
        // carries a tag: the next shared sweep re-stamps with a newer
        // — strictly more conservative — fence.
        pending_.push_back(entry.blob);
    }
    limbo.entries_.clear();
    limboCount_.store(pending_.size() + limbo_.size(),
                      std::memory_order_relaxed);
}

void
ValueArena::recycle(std::atomic<std::uint64_t> *blob)
{
    // Invalidate outstanding handles *before* the blob becomes
    // reallocatable: an unpinned stale reader then fails its stamp
    // check instead of racing the next owner's payload. (Pinned
    // readers cannot reach this blob any more — that is what the
    // epoch quiescence just proved.)
    blob[0].fetch_add(2, std::memory_order_release);
    // Seqlock-writer fence: pushFree is about to clobber payload
    // word 2 with the intrusive next pointer, and a release RMW does
    // not order that LATER store — without the fence a stale reader
    // could observe the junk word while both its stamp checks still
    // read the old even stamp.
    std::atomic_thread_fence(std::memory_order_release);
    recycled_.fetch_add(1, std::memory_order_relaxed);
    pushFree(classOfCapacity(capBytesOf(blob)), blob);
}

void
ValueArena::recycleInto(std::atomic<std::uint64_t> *blob, Cache *cache)
{
    // Same handle-invalidation protocol as recycle() (see there), but
    // the blob lands in the owner's magazine when there is room.
    blob[0].fetch_add(2, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    recycled_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t cls = classOfCapacity(capBytesOf(blob));
    if (cache != nullptr &&
        cache->classes_[cls].count < Cache::kMagazine) {
        cache->classes_[cls].blobs[cache->classes_[cls].count++] = blob;
        return;
    }
    pushFree(cls, blob);
}

void
ValueArena::reclaim(EpochDomain &readers)
{
    if (limboCount_.load(std::memory_order_relaxed) == 0)
        return;
    // Move ripe entries out under the lock, recycle them outside it.
    std::vector<LimboEntry> ripe;
    {
        std::lock_guard<std::mutex> lk(limboMutex_);
        // Stamp the pending batch. The fence MUST come after the
        // batch is observed (we hold the lock its pushers used, so
        // the handoff happened-before the advance): a retire pushed
        // after this capture gets the NEXT sweep's — newer — tag,
        // never one older than a reader that can still hold it.
        if (!pending_.empty()) {
            const std::uint64_t tag = readers.advance();
            for (std::atomic<std::uint64_t> *blob : pending_)
                limbo_.push_back({blob, tag});
            pending_.clear();
        }
        // Entries are appended in retire order and tags only grow, so
        // the vector is tag-sorted: the ripe run is a prefix. The
        // scan runs after the fence, so it cannot miss a reader
        // pinned at or before any tag it clears.
        const std::uint64_t min_active = readers.minActive();
        std::size_t n = 0;
        while (n < limbo_.size() && limbo_[n].epoch < min_active)
            ++n;
        if (n > 0) {
            ripe.assign(limbo_.begin(), limbo_.begin() + n);
            limbo_.erase(limbo_.begin(), limbo_.begin() + n);
        }
        limboCount_.store(limbo_.size(), std::memory_order_relaxed);
    }
    std::size_t bytes = 0;
    for (const LimboEntry &entry : ripe) {
        bytes += capBytesOf(entry.blob);
        recycle(entry.blob);
    }
    if (!ripe.empty())
        trace(obs::TraceKind::kArenaRecycle, ripe.size(), bytes);
}

void
ValueArena::flushCache(Cache &cache)
{
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
        auto &cc = cache.classes_[cls];
        while (cc.count > 0)
            pushFree(cls, cc.blobs[--cc.count]);
    }
}

bool
ValueArena::readBlob(ValueRef ref, std::string *out) const
{
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::uint64_t s0 = blob[0].load(std::memory_order_acquire);
    if ((s0 & 1) != 0 || (s0 & kValueRefStampMask) != stampTagOf(ref))
        return false;
    const std::size_t len = static_cast<std::size_t>(
        blob[1].load(std::memory_order_relaxed) & 0xffffffffu);
    out->resize(len);
    for (std::size_t w = 0; w * 8 < len; ++w) {
        const std::uint64_t word =
            blob[2 + w].load(std::memory_order_relaxed);
        const std::size_t n = len - w * 8 < 8 ? len - w * 8 : 8;
        std::memcpy(out->data() + w * 8, &word, n);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    return blob[0].load(std::memory_order_relaxed) == s0;
}

bool
ValueArena::readBlobWord(ValueRef ref, std::uint64_t *out) const
{
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::uint64_t s0 = blob[0].load(std::memory_order_acquire);
    if ((s0 & 1) != 0 || (s0 & kValueRefStampMask) != stampTagOf(ref))
        return false;
    const std::size_t len = static_cast<std::size_t>(
        blob[1].load(std::memory_order_relaxed) & 0xffffffffu);
    std::uint64_t word = blob[2].load(std::memory_order_relaxed);
    if (len < 8) {
        // Mask the tail so short values decode with zero padding.
        word &= len == 0 ? 0 : (~std::uint64_t{0} >> (64 - 8 * len));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (blob[0].load(std::memory_order_relaxed) != s0)
        return false;
    *out = word;
    return true;
}

void
ValueArena::readBlobPinned(ValueRef ref, std::string *out) const
{
    const std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::size_t len = static_cast<std::size_t>(
        blob[1].load(std::memory_order_relaxed) & 0xffffffffu);
    out->resize(len);
    for (std::size_t w = 0; w * 8 < len; ++w) {
        const std::uint64_t word =
            blob[2 + w].load(std::memory_order_relaxed);
        const std::size_t n = len - w * 8 < 8 ? len - w * 8 : 8;
        std::memcpy(out->data() + w * 8, &word, n);
    }
}

ValueArena::Stats
ValueArena::stats() const
{
    Stats out;
    out.allocs = allocs_.load(std::memory_order_relaxed);
    out.magazineHits = magazineHits_.load(std::memory_order_relaxed);
    out.globalHits = globalHits_.load(std::memory_order_relaxed);
    out.carves = carves_.load(std::memory_order_relaxed);
    out.carveContended =
        carveContended_.load(std::memory_order_relaxed);
    out.casRetries = casRetries_.load(std::memory_order_relaxed);
    out.retired = retired_.load(std::memory_order_relaxed);
    out.recycled = recycled_.load(std::memory_order_relaxed);
    return out;
}

} // namespace proteus::kvstore
