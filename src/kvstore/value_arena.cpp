#include "kvstore/value_arena.hpp"

#include <stdexcept>

namespace proteus::kvstore {

namespace {

inline std::atomic<std::uint64_t> *
blobOf(ValueRef ref)
{
    return reinterpret_cast<std::atomic<std::uint64_t> *>(
        ref & kValueRefPtrMask);
}

inline std::uint64_t
stampTagOf(ValueRef ref)
{
    return (ref >> kValueRefStampShift) & kValueRefStampMask;
}

inline std::size_t
wordsFor(std::size_t payload_bytes)
{
    return 2 + (payload_bytes + 7) / 8;
}

} // namespace

std::size_t
ValueArena::classOf(std::size_t len)
{
    std::size_t cls = 0;
    std::size_t cap = kMinClassBytes;
    while (cap < len && cls + 1 < kNumClasses) {
        cap <<= 1;
        ++cls;
    }
    if (cap < len)
        throw std::length_error("ValueArena: blob too large");
    return cls;
}

std::atomic<std::uint64_t> *
ValueArena::carve(std::size_t words)
{
    if (chunks_.empty() ||
        chunks_.back().used + words > chunks_.back().capacity) {
        Chunk chunk;
        chunk.capacity = words > kChunkWords ? words : kChunkWords;
        chunk.words = std::make_unique<std::atomic<std::uint64_t>[]>(
            chunk.capacity);
        chunks_.push_back(std::move(chunk));
    }
    Chunk &chunk = chunks_.back();
    std::atomic<std::uint64_t> *blob = chunk.words.get() + chunk.used;
    chunk.used += words;
    blob[0].store(0, std::memory_order_relaxed); // stamp 0: stable
    return blob;
}

ValueRef
ValueArena::allocBlob(const void *data, std::size_t len)
{
    const std::size_t cls = classOf(len);
    const std::size_t cap_bytes = kMinClassBytes << cls;

    std::atomic<std::uint64_t> *blob = nullptr;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!freeLists_[cls].empty()) {
            blob = freeLists_[cls].back();
            freeLists_[cls].pop_back();
        } else {
            blob = carve(wordsFor(cap_bytes));
        }
    }
    bytesLive_.fetch_add(cap_bytes, std::memory_order_relaxed);

    // Seqlock write: odd stamp while the payload words change, even
    // stamp published with release so a reader that sees it also sees
    // the payload. A fresh carve starts at stamp 0 and skips straight
    // to the final store (no reader can hold a handle yet, and the
    // odd intermediate would cost an extra fence for nothing).
    std::uint64_t stamp = blob[0].load(std::memory_order_relaxed);
    if (stamp != 0) {
        blob[0].store(stamp + 1, std::memory_order_relaxed);
        // Seqlock writer fence: the payload stores below must not
        // become visible before the odd stamp. A reader whose payload
        // load observes a post-fence write synchronizes with this
        // fence through its own acquire fence, so its trailing stamp
        // re-check then sees the odd (or later) stamp and rejects.
        std::atomic_thread_fence(std::memory_order_release);
        stamp += 2;
    }
    blob[1].store((static_cast<std::uint64_t>(cap_bytes / 8 + 2) << 32) |
                      static_cast<std::uint64_t>(len),
                  std::memory_order_relaxed);
    const auto *src = static_cast<const unsigned char *>(data);
    for (std::size_t w = 0; w * 8 < len; ++w) {
        std::uint64_t word = 0;
        const std::size_t n = len - w * 8 < 8 ? len - w * 8 : 8;
        std::memcpy(&word, src + w * 8, n);
        blob[2 + w].store(word, std::memory_order_relaxed);
    }
    blob[0].store(stamp, std::memory_order_release);

    return kValueRefBlobBit |
           ((stamp & kValueRefStampMask) << kValueRefStampShift) |
           (reinterpret_cast<std::uint64_t>(blob) & kValueRefPtrMask);
}

void
ValueArena::freeBlob(ValueRef ref)
{
    if (!valueRefIsBlob(ref))
        return;
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::uint64_t meta = blob[1].load(std::memory_order_relaxed);
    const std::size_t cap_bytes =
        (static_cast<std::size_t>(meta >> 32) - 2) * 8;
    // Invalidate the handle *before* the blob becomes reallocatable:
    // a stale reader then fails its stamp check instead of racing the
    // next owner's payload.
    blob[0].fetch_add(2, std::memory_order_release);
    bytesLive_.fetch_sub(cap_bytes, std::memory_order_relaxed);
    std::size_t cls = 0;
    while ((kMinClassBytes << cls) < cap_bytes)
        ++cls;
    std::lock_guard<std::mutex> lk(mutex_);
    freeLists_[cls].push_back(blob);
}

bool
ValueArena::readBlob(ValueRef ref, std::string *out) const
{
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::uint64_t s0 = blob[0].load(std::memory_order_acquire);
    if ((s0 & 1) != 0 || (s0 & kValueRefStampMask) != stampTagOf(ref))
        return false;
    const std::size_t len = static_cast<std::size_t>(
        blob[1].load(std::memory_order_relaxed) & 0xffffffffu);
    out->resize(len);
    for (std::size_t w = 0; w * 8 < len; ++w) {
        const std::uint64_t word =
            blob[2 + w].load(std::memory_order_relaxed);
        const std::size_t n = len - w * 8 < 8 ? len - w * 8 : 8;
        std::memcpy(out->data() + w * 8, &word, n);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    return blob[0].load(std::memory_order_relaxed) == s0;
}

bool
ValueArena::readBlobWord(ValueRef ref, std::uint64_t *out) const
{
    std::atomic<std::uint64_t> *blob = blobOf(ref);
    const std::uint64_t s0 = blob[0].load(std::memory_order_acquire);
    if ((s0 & 1) != 0 || (s0 & kValueRefStampMask) != stampTagOf(ref))
        return false;
    const std::size_t len = static_cast<std::size_t>(
        blob[1].load(std::memory_order_relaxed) & 0xffffffffu);
    std::uint64_t word = blob[2].load(std::memory_order_relaxed);
    if (len < 8) {
        // Mask the tail so short values decode with zero padding.
        word &= len == 0 ? 0 : (~std::uint64_t{0} >> (64 - 8 * len));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (blob[0].load(std::memory_order_relaxed) != s0)
        return false;
    *out = word;
    return true;
}

} // namespace proteus::kvstore
