/**
 * @file
 * ValueRef + ValueArena: the wide-value layer under ProteusKV slots.
 *
 * A slot's value word is interpreted according to the slot's state:
 *
 *  - kFull      : the word is a raw 64-bit value (the legacy numeric
 *                 API; kAdd arithmetic operates on these directly);
 *  - kFullRef   : the word is a ValueRef — a tagged word that is
 *                 either an *inline small value* (up to 7 bytes packed
 *                 next to a length nibble) or a *blob handle* into the
 *                 shard's ValueArena.
 *
 * Blob handles carry a 15-bit epoch next to the 48-bit blob address.
 * Blobs are seqlock-stamped: the arena bumps the stamp to odd before
 * rewriting a recycled blob's payload and back to even after, and a
 * handle embeds the even stamp it was allocated under. A reader copies
 * the payload optimistically and re-checks the stamp; a mismatch means
 * the blob was recycled underneath it — the slot's value word must
 * have changed first (blobs are freed only after the displacing write
 * committed), so the reader re-reads the slot word through the TM and
 * tries again. Payload words are std::atomic with relaxed ordering so
 * a stale reader racing a recycler is a detected validation failure,
 * never C++ UB (the same stance the intent machinery takes).
 *
 * Memory is never returned to the OS while the arena lives: freed
 * blobs go to per-size-class free lists and chunks are only released
 * on destruction, so a dangling handle in a doomed reader transaction
 * always points at mapped, stamp-guarded memory.
 */

#ifndef PROTEUS_KVSTORE_VALUE_ARENA_HPP
#define PROTEUS_KVSTORE_VALUE_ARENA_HPP

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace proteus::kvstore {

/** Tagged value word stored under state kFullRef (see file comment). */
using ValueRef = std::uint64_t;

constexpr std::uint64_t kValueRefBlobBit = std::uint64_t{1} << 63;
/** Inline payload: bits [58:56] = length (0..7), bits [55:0] = data. */
constexpr unsigned kValueRefInlineLenShift = 56;
constexpr std::size_t kValueRefInlineMax = 7;
/** Blob handle: bits [62:48] = stamp tag, bits [47:0] = blob address. */
constexpr unsigned kValueRefStampShift = 48;
constexpr std::uint64_t kValueRefPtrMask =
    (std::uint64_t{1} << kValueRefStampShift) - 1;
constexpr std::uint64_t kValueRefStampMask = 0x7fff;

inline bool
valueRefIsBlob(ValueRef ref)
{
    return (ref & kValueRefBlobBit) != 0;
}

inline ValueRef
makeInlineRef(const void *data, std::size_t len)
{
    std::uint64_t word = 0;
    std::memcpy(&word, data, len); // len <= 7: tag byte stays clear
    return word |
           (static_cast<std::uint64_t>(len) << kValueRefInlineLenShift);
}

inline std::size_t
inlineRefLen(ValueRef ref)
{
    return static_cast<std::size_t>((ref >> kValueRefInlineLenShift) & 7);
}

inline void
inlineRefCopy(ValueRef ref, std::string *out)
{
    const std::size_t len = inlineRefLen(ref);
    out->resize(len);
    std::memcpy(out->data(), &ref, len);
}

/**
 * Blob arena with stable addresses, per-size-class recycling and
 * seqlock stamps for optimistic readers. Thread-safe; one per shard.
 */
class ValueArena
{
  public:
    ValueArena() = default;
    ValueArena(const ValueArena &) = delete;
    ValueArena &operator=(const ValueArena &) = delete;

    /**
     * Allocate a blob, copy `len` bytes into it and return its handle.
     * Call *outside* any transaction (allocation is a side effect a
     * retried transaction body must not repeat); publish the handle in
     * a slot's value word transactionally afterwards.
     */
    ValueRef allocBlob(const void *data, std::size_t len);

    /**
     * Recycle a blob once its handle can no longer be reached through
     * a *committed* slot word (the displacing transaction committed or
     * the failed attempt that allocated it was rolled back). Stale
     * in-flight readers are fenced off by the stamp. Inline refs are
     * ignored, so callers can pass any displaced kFullRef word.
     */
    void freeBlob(ValueRef ref);

    /**
     * Optimistic copy-out. Returns false when the blob was recycled
     * under the handle (stamp mismatch); the caller must re-read the
     * slot's value word and retry with the fresh handle.
     */
    bool readBlob(ValueRef ref, std::string *out) const;

    /**
     * First up-to-8 payload bytes as a little-endian word (the numeric
     * decode of a byte value). Returns false on stamp mismatch.
     */
    bool readBlobWord(ValueRef ref, std::uint64_t *out) const;

    /** Bytes currently handed out to live blobs (capacity, not len). */
    std::size_t bytesLive() const
    {
        return bytesLive_.load(std::memory_order_relaxed);
    }

  private:
    /**
     * Blob layout inside a chunk, in 64-bit atomic words:
     *   word 0: seqlock stamp (even = stable, odd = being rewritten)
     *   word 1: (capacityWords << 32) | payload length in bytes
     *   word 2..: payload, little-endian packed
     */
    struct Chunk
    {
        std::unique_ptr<std::atomic<std::uint64_t>[]> words;
        std::size_t used = 0;
        std::size_t capacity = 0;
    };

    static constexpr std::size_t kChunkWords = 1 << 15; // 256 KiB
    static constexpr std::size_t kMinClassBytes = 16;
    static constexpr std::size_t kNumClasses = 16; // 16 B .. 512 KiB

    static std::size_t classOf(std::size_t len);
    std::atomic<std::uint64_t> *carve(std::size_t words);

    mutable std::mutex mutex_;
    std::vector<Chunk> chunks_;
    std::vector<std::atomic<std::uint64_t> *> freeLists_[kNumClasses];
    std::atomic<std::size_t> bytesLive_{0};
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_VALUE_ARENA_HPP
