/**
 * @file
 * ValueRef + ValueArena: the wide-value layer under ProteusKV slots.
 *
 * A slot's value word is interpreted according to the slot's state:
 *
 *  - kFull      : the word is a raw 64-bit value (the legacy numeric
 *                 API; kAdd arithmetic operates on these directly);
 *  - kFullRef   : the word is a ValueRef — a tagged word that is
 *                 either an *inline small value* (up to 7 bytes packed
 *                 next to a length nibble) or a *blob handle* into the
 *                 shard's ValueArena.
 *
 * Blob handles carry a 15-bit epoch next to the 48-bit blob address.
 * Blobs are seqlock-stamped: the arena bumps the stamp to odd before
 * rewriting a recycled blob's payload and back to even after, and a
 * handle embeds the even stamp it was allocated under. An *unpinned*
 * reader copies the payload optimistically and re-checks the stamp; a
 * mismatch means the blob was recycled underneath it — the slot's
 * value word must have changed first (blobs are recycled only after
 * the displacing write committed AND every reader epoch that could
 * hold the handle has passed), so the reader re-reads the slot word
 * through the TM and tries again. A reader *pinned* in the owning
 * shard's EpochDomain (common/epoch.hpp) skips the stamp protocol
 * entirely: any handle it obtained from a committed-current read
 * inside its section is retired — if ever — after the section's entry
 * epoch, and recycling is deferred past the oldest active section, so
 * the payload cannot be rewritten underneath it (readBlobPinned).
 * Payload words are std::atomic with relaxed ordering so a stale
 * reader racing a recycler is a detected validation failure, never
 * C++ UB (the same stance the intent machinery takes).
 *
 * Allocation is contention-free in steady state: each size class has
 * a lock-free global free list (Treiber stack, ABA-tagged head, the
 * next pointer lives in the dead payload's first word), and sessions
 * carry a bounded per-class magazine (Cache) refilled in batches from
 * the global list — the carve mutex is only taken when a class has
 * never been populated. Freeing splits by reachability:
 *
 *  - freeBlob(): immediate recycle, legal ONLY for blobs whose handle
 *    was never reachable through a committed slot word (staged blobs
 *    of a failed multiOp, capped-store put failures);
 *  - retireBlob(): deferred recycle for displaced handles — the blob
 *    parks in a limbo list tagged with a reader epoch and is moved to
 *    the free lists by reclaim() once every reader section that could
 *    hold the handle has ended.
 *
 * Memory is never returned to the OS while the arena lives: chunks are
 * only released on destruction, so a dangling handle in a doomed
 * reader transaction always points at mapped, stamp-guarded memory.
 */

#ifndef PROTEUS_KVSTORE_VALUE_ARENA_HPP
#define PROTEUS_KVSTORE_VALUE_ARENA_HPP

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "common/epoch.hpp"
#include "obs/flight_recorder.hpp"

namespace proteus::kvstore {

/** Tagged value word stored under state kFullRef (see file comment). */
using ValueRef = std::uint64_t;

constexpr std::uint64_t kValueRefBlobBit = std::uint64_t{1} << 63;
/** Inline payload: bits [58:56] = length (0..7), bits [55:0] = data. */
constexpr unsigned kValueRefInlineLenShift = 56;
constexpr std::size_t kValueRefInlineMax = 7;
/** Blob handle: bits [62:48] = stamp tag, bits [47:0] = blob address. */
constexpr unsigned kValueRefStampShift = 48;
constexpr std::uint64_t kValueRefPtrMask =
    (std::uint64_t{1} << kValueRefStampShift) - 1;
constexpr std::uint64_t kValueRefStampMask = 0x7fff;

inline bool
valueRefIsBlob(ValueRef ref)
{
    return (ref & kValueRefBlobBit) != 0;
}

inline ValueRef
makeInlineRef(const void *data, std::size_t len)
{
    std::uint64_t word = 0;
    std::memcpy(&word, data, len); // len <= 7: tag byte stays clear
    return word |
           (static_cast<std::uint64_t>(len) << kValueRefInlineLenShift);
}

inline std::size_t
inlineRefLen(ValueRef ref)
{
    return static_cast<std::size_t>((ref >> kValueRefInlineLenShift) & 7);
}

inline void
inlineRefCopy(ValueRef ref, std::string *out)
{
    const std::size_t len = inlineRefLen(ref);
    out->resize(len);
    std::memcpy(out->data(), &ref, len);
}

/**
 * Blob arena with stable addresses, per-size-class recycling and
 * seqlock stamps for optimistic readers. Thread-safe; one per shard.
 */
class ValueArena
{
  public:
    static constexpr std::size_t kMinClassBytes = 16;
    static constexpr std::size_t kNumClasses = 16; // 16 B .. 512 KiB

    /**
     * Per-session free-blob magazine (one bounded stack per size
     * class). Pass to allocBlob/freeBlob on session-owned paths; the
     * magazine absorbs the alloc/free traffic of one thread without
     * touching shared state. Must be flushed back (flushCache) before
     * its owner forgets it, or the cached capacity leaks until arena
     * destruction.
     */
    class Cache
    {
      public:
        static constexpr std::size_t kMagazine = 8;

      private:
        friend class ValueArena;
        struct ClassCache
        {
            std::atomic<std::uint64_t> *blobs[kMagazine];
            std::uint32_t count = 0;
        };
        ClassCache classes_[kNumClasses]{};
    };

    /**
     * Per-session limbo for owner-driven reclamation. A session that
     * displaces a blob parks the handle here instead of in the
     * arena's shared limbo; the SAME session later drains its own
     * ring once reader quiescence is proven — no limboMutex_, no
     * shared vector push on the putBytes hot path. Entries are
     * unstamped (epoch 0) at retire; a drain stamps the batch with
     * one advance() RMW (the only operation guaranteed to observe the
     * epoch's modification-order tail — a plain load could read a
     * value older than a concurrently pinned reader's entry epoch and
     * recycle under it). Overflow and session close spill to the
     * shared limbo, so nothing leaks past the owner's lifetime.
     */
    class OwnerLimbo
    {
      public:
        /** Buffered retires before the owner attempts a drain. */
        static constexpr std::size_t kDrainThreshold = 32;
        /** Hard bound; beyond it a drain spills to the shared limbo. */
        static constexpr std::size_t kCapacity = 256;

        std::size_t size() const { return entries_.size(); }
        bool empty() const { return entries_.empty(); }

      private:
        friend class ValueArena;
        struct Entry
        {
            std::atomic<std::uint64_t> *blob;
            std::uint64_t epoch; //!< 0 until a drain stamps it
        };
        std::vector<Entry> entries_;
    };

    /** Contention/throughput telemetry (monotonic, relaxed). */
    struct Stats
    {
        std::uint64_t allocs = 0;
        std::uint64_t magazineHits = 0;
        std::uint64_t globalHits = 0;
        std::uint64_t carves = 0;
        /** carve-mutex acquisitions that found it already held. */
        std::uint64_t carveContended = 0;
        /** failed CAS attempts on the lock-free free-list heads. */
        std::uint64_t casRetries = 0;
        std::uint64_t retired = 0;
        std::uint64_t recycled = 0;
    };

    ValueArena() = default;
    ValueArena(const ValueArena &) = delete;
    ValueArena &operator=(const ValueArena &) = delete;

    /**
     * Allocate a blob, copy `len` bytes into it and return its handle.
     * Call *outside* any transaction (allocation is a side effect a
     * retried transaction body must not repeat); publish the handle in
     * a slot's value word transactionally afterwards.
     */
    ValueRef allocBlob(const void *data, std::size_t len,
                       Cache *cache = nullptr);

    /**
     * Immediately recycle a blob whose handle was NEVER reachable
     * through a committed slot word (a failed multiOp's staged blobs,
     * a capped-store put that could not publish). Published handles
     * must go through retireBlob instead — a pinned reader may still
     * be copying them. Inline refs are ignored, so callers can pass
     * any kFullRef word.
     */
    void freeBlob(ValueRef ref, Cache *cache = nullptr);

    /**
     * Defer-recycle a displaced blob: parks it on the pending limbo
     * list (one uncontended lock, no epoch traffic). A later
     * reclaim() recycles it once every reader section that could
     * hold the handle has ended. Inline refs are ignored. The batch
     * form takes the lock once for the whole span — sessions buffer
     * their displaced handles and flush them through it.
     */
    void retireBlob(ValueRef ref) { retireBlobs(&ref, 1); }
    void retireBlobs(const ValueRef *refs, std::size_t count);

    /**
     * Owner-driven variant of retireBlob: park the displaced handle
     * on the caller's own limbo (no shared state). At
     * OwnerLimbo::kDrainThreshold the call drains the ring in place —
     * ripe blobs go straight into the caller's magazine (then the
     * global free lists), so displace-churn recycles its own garbage.
     * Inline refs are ignored.
     */
    void retireOwned(ValueRef ref, OwnerLimbo &limbo,
                     EpochDomain &readers, Cache *cache = nullptr);

    /**
     * Stamp + sweep the owner limbo: one advance() RMW tags every
     * unstamped entry, then entries older than the oldest active
     * reader section recycle into `cache`/the free lists. Entries
     * still pinned stay; if the ring exceeds kCapacity anyway, the
     * overflow spills to the shared limbo for the shard sweeper.
     */
    void drainOwned(OwnerLimbo &limbo, EpochDomain &readers,
                    Cache *cache = nullptr);

    /**
     * Hand every parked entry to the shared limbo (session close /
     * destruction; quiescence is NOT required). Cheap no-op when
     * empty.
     */
    void spillOwned(OwnerLimbo &limbo);

    /**
     * Reclaim sweep against the shard's reader-epoch domain: captures
     * the pending batch under the limbo lock, THEN takes the domain's
     * epoch fence (ordering matters — a retire that lands after the
     * capture waits for the next sweep instead of being stamped with
     * a tag older than a reader that can still hold it), and recycles
     * every stamped blob whose tag predates the oldest active reader
     * section. Cheap no-op when the limbo is empty.
     */
    void reclaim(EpochDomain &readers);

    /** Spill a session magazine back to the global free lists. */
    void flushCache(Cache &cache);

    /**
     * Optimistic copy-out (unpinned readers). Returns false when the
     * blob was recycled under the handle (stamp mismatch); the caller
     * must re-read the slot's value word and retry with the fresh
     * handle.
     */
    bool readBlob(ValueRef ref, std::string *out) const;

    /**
     * First up-to-8 payload bytes as a little-endian word (the numeric
     * decode of a byte value). Returns false on stamp mismatch.
     */
    bool readBlobWord(ValueRef ref, std::uint64_t *out) const;

    /**
     * Copy-out with NO stamp protocol — zero fences, zero re-reads,
     * cannot fail. Legal only while the caller is pinned in the
     * owning shard's EpochDomain AND obtained the handle from a
     * committed-current read inside that section (see file comment).
     */
    void readBlobPinned(ValueRef ref, std::string *out) const;

    /** Bytes currently handed out to live blobs (capacity, not len). */
    std::size_t bytesLive() const
    {
        return bytesLive_.load(std::memory_order_relaxed);
    }

    /** Blobs parked in limbo awaiting reader-epoch quiescence. */
    std::size_t limboCount() const
    {
        return limboCount_.load(std::memory_order_relaxed);
    }

    Stats stats() const;

    /** Attach the store's flight recorder (called by the owning
     *  Shard at construction) so retire/recycle batches land as
     *  trace events stamped with the store-wide commit sequence. */
    void
    attachObs(obs::FlightRecorder *recorder,
              const std::atomic<std::uint64_t> *commitSeq, int shard)
    {
        recorder_ = recorder;
        commitSeqSrc_ = commitSeq;
        shardIndex_ = shard;
    }

  private:
    void
    trace(obs::TraceKind kind, std::uint64_t a, std::uint64_t b) const
    {
        if (recorder_) {
            recorder_->record(
                kind, shardIndex_,
                commitSeqSrc_ ? commitSeqSrc_->load(
                                    std::memory_order_relaxed)
                              : 0,
                a, b);
        }
    }

    obs::FlightRecorder *recorder_ = nullptr;
    const std::atomic<std::uint64_t> *commitSeqSrc_ = nullptr;
    std::int32_t shardIndex_ = -1;

    /**
     * Blob layout inside a chunk, in 64-bit atomic words:
     *   word 0: seqlock stamp (even = stable, odd = being rewritten)
     *   word 1: (capacityWords << 32) | payload length in bytes
     *   word 2..: payload, little-endian packed (word 2 doubles as the
     *             intrusive next pointer while the blob sits on a free
     *             list — the payload is dead there by construction)
     */
    struct Chunk
    {
        std::unique_ptr<std::atomic<std::uint64_t>[]> words;
        std::size_t used = 0;
        std::size_t capacity = 0;
    };

    struct LimboEntry
    {
        std::atomic<std::uint64_t> *blob;
        std::uint64_t epoch; //!< stamped by the first sweep after retire
    };

    static constexpr std::size_t kChunkWords = 1 << 15; // 256 KiB

    static std::size_t classOf(std::size_t len);
    static std::size_t classOfCapacity(std::size_t cap_bytes);
    std::atomic<std::uint64_t> *carve(std::size_t words);
    /** Write `len` bytes under the seqlock protocol; returns handle. */
    ValueRef publish(std::atomic<std::uint64_t> *blob,
                     std::size_t cap_bytes, const void *data,
                     std::size_t len);
    void pushFree(std::size_t cls, std::atomic<std::uint64_t> *blob);
    std::atomic<std::uint64_t> *popFree(std::size_t cls);
    void recycle(std::atomic<std::uint64_t> *blob);
    /** recycle(), but prefer the owner's magazine over the free
     *  lists (owner-drain path: the displacer re-allocates soon). */
    void recycleInto(std::atomic<std::uint64_t> *blob, Cache *cache);

    mutable std::mutex mutex_; //!< guards chunk carving only
    std::vector<Chunk> chunks_;

    /**
     * Lock-free per-class free lists: head = (ABA tag << 48) | blob
     * address (user-space pointers fit in 48 bits — the same layout
     * assumption ValueRef and the intent words already make).
     */
    Padded<std::atomic<std::uint64_t>> freeHeads_[kNumClasses];

    std::mutex limboMutex_;
    /** Retired, not yet epoch-stamped (awaiting the next sweep). */
    std::vector<std::atomic<std::uint64_t> *> pending_;
    /** Epoch-stamped, awaiting reader quiescence. */
    std::vector<LimboEntry> limbo_;
    std::atomic<std::size_t> limboCount_{0};

    std::atomic<std::size_t> bytesLive_{0};
    std::atomic<std::uint64_t> allocs_{0};
    std::atomic<std::uint64_t> magazineHits_{0};
    std::atomic<std::uint64_t> globalHits_{0};
    std::atomic<std::uint64_t> carves_{0};
    std::atomic<std::uint64_t> carveContended_{0};
    std::atomic<std::uint64_t> casRetries_{0};
    std::atomic<std::uint64_t> retired_{0};
    std::atomic<std::uint64_t> recycled_{0};
};

} // namespace proteus::kvstore

#endif // PROTEUS_KVSTORE_VALUE_ARENA_HPP
