#include "kvstore/recovery.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "kvstore/value_arena.hpp"
#include "kvstore/wal.hpp"

namespace proteus::kvstore::recovery {

namespace {

struct Outcome {
    bool anyCommit = false;
    bool anyAbort = false;
    std::uint64_t commitSeq = 0;
};

/** One shard's surviving log, parsed. */
struct ParsedShard {
    wal::CheckpointImage image; // barrierLsn 0 + empty when none
    std::vector<wal::Record> records;
};

/**
 * Parse every surviving segment of `shard` in generation order,
 * stopping each segment at its first torn/corrupt frame, and fold
 * outcome records into the store-wide map.
 */
void
parseShardLog(const std::string &dir, int shard, ParsedShard *out,
              std::unordered_map<std::uint64_t, Outcome> *outcomes,
              RecoveryStats *stats)
{
    // Latest valid checkpoint wins; an invalid/incomplete one falls
    // back to the previous (replay covers the gap — post-images make
    // over-replay harmless).
    const auto ckpts = wal::listCheckpoints(dir, shard);
    for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
        if (wal::readCheckpoint(
                dir + "/" + wal::checkpointFileName(shard, *it),
                &out->image))
            break;
        out->image = wal::CheckpointImage{};
    }

    for (const std::uint64_t gen : wal::listSegments(dir, shard)) {
        std::string body;
        if (!wal::readFile(
                dir + "/" + wal::segmentFileName(shard, gen), &body))
            continue;
        std::size_t off = 0;
        while (off < body.size()) {
            wal::Record rec;
            const std::size_t n = wal::decodeRecord(
                body.data() + off, body.size() - off, &rec);
            if (n == 0) {
                // Torn tail: everything from here was never
                // acknowledged (acks wait for the barrier) — drop it.
                stats->tornBytes += body.size() - off;
                break;
            }
            off += n;
            switch (rec.type) {
                case wal::RecordType::kTxnOutcome: {
                    Outcome &o = (*outcomes)[rec.txid];
                    if (rec.committed) {
                        o.anyCommit = true;
                        o.commitSeq =
                            std::max(o.commitSeq, rec.commitSeq);
                    } else {
                        o.anyAbort = true;
                    }
                    stats->maxTxnId =
                        std::max(stats->maxTxnId, rec.txid);
                    break;
                }
                case wal::RecordType::kTxnPrepare:
                    stats->maxTxnId =
                        std::max(stats->maxTxnId, rec.txid);
                    [[fallthrough]];
                case wal::RecordType::kBatch:
                    out->records.push_back(std::move(rec));
                    break;
                default:
                    break; // checkpoint frames never appear in logs
            }
        }
    }
}

/** Apply one post-image op to a quiesced shard, growing on demand. */
void
applyOp(Shard &shard, polytm::ThreadToken &token, const wal::WalOp &op,
        std::vector<std::uint64_t> *reclaim)
{
    ValueRef staged = 0;
    if (op.kind == wal::WalOp::Kind::kPutBytes)
        staged = op.bytes.size() <= kValueRefInlineMax
                     ? makeInlineRef(op.bytes.data(), op.bytes.size())
                     : shard.arena().allocBlob(op.bytes.data(),
                                               op.bytes.size());
    SlotImage pre;
    for (;;) {
        reclaim->clear();
        bool fits = true;
        shard.poly().run(token, [&](polytm::Tx &tx) {
            reclaim->clear();
            switch (op.kind) {
                case wal::WalOp::Kind::kPut:
                    fits = shard.putTx(tx, op.key, op.value, op.expiry,
                                       &pre, reclaim);
                    break;
                case wal::WalOp::Kind::kPutBytes:
                    fits = shard.putRefTx(tx, op.key, staged,
                                          op.expiry, &pre, reclaim);
                    break;
                case wal::WalOp::Kind::kDel:
                    shard.delTx(tx, op.key, &pre, reclaim);
                    fits = true;
                    break;
            }
        });
        if (fits)
            break;
        const std::size_t cap = shard.capacity();
        if (!shard.tryGrow(token, cap))
            throw std::runtime_error(
                "recovery: shard cannot absorb its own log "
                "(capacity cap below logged data)");
    }
    for (const std::uint64_t ref : *reclaim)
        if (valueRefIsBlob(ref))
            shard.retireBlob(ref);
    if (op.kind == wal::WalOp::Kind::kDel) {
        if (slotStateIsValue(pre.state))
            shard.noteTombstones(1);
    } else if (pre.state == kEmpty) {
        shard.noteConsumed(1);
    }
    if (op.expiry != 0)
        shard.noteTtlUsed();
}

} // namespace

RecoveryStats
recover(const std::string &dir,
        std::vector<std::unique_ptr<Shard>> &shards,
        obs::FlightRecorder *recorder)
{
    RecoveryStats stats;
    stats.maxLsn.assign(shards.size(), 0);

    // Pass 1: parse every shard's files; outcomes are store-wide (an
    // outcome on ANY participant decides the transaction — it is only
    // written after every participant's prepare is buffered, and acks
    // wait for it to be durable everywhere).
    std::vector<ParsedShard> parsed(shards.size());
    std::unordered_map<std::uint64_t, Outcome> outcomes;
    for (std::size_t s = 0; s < shards.size(); ++s)
        parseShardLog(dir, static_cast<int>(s), &parsed[s], &outcomes,
                      &stats);
    for (const auto &[txid, o] : outcomes) {
        (void)txid;
        if (o.anyCommit && !o.anyAbort)
            stats.maxCommitSeq = std::max(stats.maxCommitSeq, o.commitSeq);
    }

    // Pass 2: per shard — checkpoint image, then surviving records
    // past the barrier in LSN (= serialization) order.
    for (std::size_t s = 0; s < shards.size(); ++s) {
        Shard &shard = *shards[s];
        ParsedShard &p = parsed[s];
        const std::uint64_t barrier = p.image.barrierLsn;
        stats.maxLsn[s] = barrier;

        polytm::ThreadToken token = shard.registerWorker();
        std::vector<std::uint64_t> reclaim;

        for (const wal::WalOp &op : p.image.entries)
            applyOp(shard, token, op, &reclaim);
        stats.checkpointEntries += p.image.entries.size();

        std::vector<const wal::Record *> replay;
        replay.reserve(p.records.size());
        std::uint64_t shardRecords = 0;
        std::uint64_t shardOps = 0;
        for (const wal::Record &rec : p.records) {
            stats.maxLsn[s] = std::max(stats.maxLsn[s], rec.lsn);
            if (rec.lsn <= barrier)
                continue; // already inside the checkpoint image
            if (rec.type == wal::RecordType::kTxnPrepare) {
                const auto it = outcomes.find(rec.txid);
                const bool committed = it != outcomes.end() &&
                                       it->second.anyCommit &&
                                       !it->second.anyAbort;
                if (!committed) {
                    // Aborted, or in-doubt (no outcome logged
                    // anywhere): such a commit was never acked.
                    ++stats.inDoubtAborted;
                    continue;
                }
            }
            replay.push_back(&rec);
        }
        std::sort(replay.begin(), replay.end(),
                  [](const wal::Record *a, const wal::Record *b) {
                      return a->lsn < b->lsn;
                  });
        for (const wal::Record *rec : replay) {
            for (const wal::WalOp &op : rec->ops)
                applyOp(shard, token, op, &reclaim);
            ++shardRecords;
            shardOps += rec->ops.size();
        }
        shard.deregisterWorker(token);
        shard.setWalTicketQuiesced(stats.maxLsn[s]);

        stats.replayedRecords += shardRecords;
        stats.replayedOps += shardOps;
        if (recorder != nullptr)
            recorder->record(obs::TraceKind::kRecoverReplay,
                             static_cast<int>(s), 0, shardRecords,
                             shardOps);
    }
    return stats;
}

} // namespace proteus::kvstore::recovery
