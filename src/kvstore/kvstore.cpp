#include "kvstore/kvstore.hpp"

#include <algorithm>
#include <stdexcept>

namespace proteus::kvstore {

namespace {

/** Shard router hash — distinct from the in-shard slot hash so shard
 *  choice and slot choice stay uncorrelated. */
std::uint64_t
routeMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    return x ^ (x >> 33);
}

} // namespace

KvStore::KvStore(KvStoreOptions options)
{
    if (options.numShards <= 0)
        throw std::invalid_argument("KvStore: numShards must be >= 1");
    shards_.reserve(static_cast<std::size_t>(options.numShards));
    latches_.reserve(static_cast<std::size_t>(options.numShards));
    for (int s = 0; s < options.numShards; ++s) {
        ShardOptions shard_options;
        shard_options.log2Slots = options.log2SlotsPerShard;
        shard_options.initial = options.initial;
        shards_.push_back(std::make_unique<Shard>(shard_options));
        latches_.push_back(std::make_unique<std::shared_mutex>());
    }
}

std::size_t
KvStore::shardOf(std::uint64_t key) const
{
    return static_cast<std::size_t>(routeMix(key) % shards_.size());
}

KvStore::Session
KvStore::openSession()
{
    Session session;
    session.tokens_.reserve(shards_.size());
    try {
        for (auto &shard : shards_)
            session.tokens_.push_back(shard->registerWorker());
    } catch (...) {
        // Thread-slot exhaustion mid-loop: give back what we took, or
        // every failed openSession leaks one slot per earlier shard.
        for (std::size_t s = 0; s < session.tokens_.size(); ++s)
            shards_[s]->deregisterWorker(session.tokens_[s]);
        throw;
    }
    return session;
}

void
KvStore::closeSession(Session &session)
{
    for (std::size_t s = 0; s < session.tokens_.size(); ++s)
        shards_[s]->deregisterWorker(session.tokens_[s]);
    session.tokens_.clear();
}

bool
KvStore::get(Session &session, std::uint64_t key, std::uint64_t *value)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->getTx(tx, key, value);
    });
    return ok;
}

bool
KvStore::put(Session &session, std::uint64_t key, std::uint64_t value)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->putTx(tx, key, value);
    });
    return ok;
}

bool
KvStore::del(Session &session, std::uint64_t key)
{
    const std::size_t s = shardOf(key);
    bool ok = false;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        ok = shards_[s]->delTx(tx, key);
    });
    return ok;
}

std::size_t
KvStore::scan(Session &session, std::uint64_t start_key,
              std::size_t limit,
              std::vector<std::pair<std::uint64_t, std::uint64_t>> *out)
{
    const std::size_t s = shardOf(start_key);
    std::size_t count = 0;
    runOnShard(session, s, [&](polytm::Tx &tx) {
        count = shards_[s]->scanTx(tx, start_key, limit, out);
    });
    return count;
}

namespace {

using TaggedOp = std::pair<std::uint32_t, KvOp *>;

/** Apply one shard's slice of a composite op inside a transaction. */
void
applyOpsInTx(Shard &shard, polytm::Tx &tx, const TaggedOp *begin,
             const TaggedOp *end, bool &space_ok)
{
    space_ok = true; // retried attempts restart the accumulation
    for (const TaggedOp *it = begin; it != end; ++it) {
        KvOp *op = it->second;
        switch (op->kind) {
          case KvOp::Kind::kGet:
            op->ok = shard.getTx(tx, op->key, &op->value);
            break;
          case KvOp::Kind::kPut:
            op->ok = shard.putTx(tx, op->key, op->value);
            space_ok &= op->ok;
            break;
          case KvOp::Kind::kDel:
            op->ok = shard.delTx(tx, op->key);
            break;
          case KvOp::Kind::kAdd:
            op->ok = shard.addTx(tx, op->key,
                                 static_cast<std::int64_t>(op->value));
            space_ok &= op->ok;
            break;
        }
    }
}

} // namespace

namespace {

/**
 * Group `ops` by home shard into the session's reusable scratch:
 * each shard index is computed exactly once, a stable sort on the
 * cached index preserves program order within one shard, and the
 * contiguous slices are recorded so the pin/lock/run/unlock passes
 * walk a precomputed list. Steady state allocates nothing.
 */
void
groupByShard(const KvStore &store, std::vector<KvOp> &ops,
             std::vector<TaggedOp> &scratch,
             std::vector<KvStore::Session::ShardSlice> &slices)
{
    scratch.clear();
    scratch.reserve(ops.size());
    for (KvOp &op : ops) {
        scratch.emplace_back(
            static_cast<std::uint32_t>(store.shardOf(op.key)), &op);
    }
    std::stable_sort(scratch.begin(), scratch.end(),
                     [](const TaggedOp &a, const TaggedOp &b) {
                         return a.first < b.first;
                     });
    slices.clear();
    for (std::uint32_t i = 0; i < scratch.size();) {
        std::uint32_t end = i;
        while (end < scratch.size() &&
               scratch[end].first == scratch[i].first)
            ++end;
        slices.push_back({scratch[i].first, i, end});
        i = end;
    }
}

} // namespace

bool
KvStore::multiOp(Session &session, std::vector<KvOp> &ops)
{
    bool writes = false;
    for (const KvOp &op : ops)
        writes |= op.kind != KvOp::Kind::kGet;
    groupByShard(*this, ops, session.scratch_, session.slices_);
    const auto &grouped = session.scratch_;
    const auto &slices = session.slices_;

    // Pin our tokens for the latched span: once some shard's slice is
    // applied the remaining ones must go through, so the thread cannot
    // afford to be parked by a concurrent parallelism-degree change
    // while it holds the latches below.
    for (const auto &slice : slices) {
        shards_[slice.shard]->poly().setPinned(
            session.tokens_[slice.shard].tid, true);
    }

    // Releases latches (reverse order) and pins even when a backend
    // throws something other than TxAbort mid-commit (e.g.
    // bad_alloc): leaked exclusive latches would wedge the shards for
    // every future operation.
    const auto release = [&](std::size_t locked) {
        while (locked > 0) {
            --locked;
            if (writes)
                latches_[slices[locked].shard]->unlock();
            else
                latches_[slices[locked].shard]->unlock_shared();
        }
        for (const auto &slice : slices) {
            shards_[slice.shard]->poly().setPinned(
                session.tokens_[slice.shard].tid, false);
        }
    };

    bool ok = true;
    std::size_t locked = 0;
    try {
        // Shard-ordered latch acquisition: the slices come out of the
        // sort in ascending shard index, every participant uses the
        // same order, so no deadlock.
        for (const auto &slice : slices) {
            if (writes)
                latches_[slice.shard]->lock();
            else
                latches_[slice.shard]->lock_shared();
            ++locked;
        }

        for (const auto &slice : slices) {
            Shard &shard = *shards_[slice.shard];
            bool space_ok = true;
            shard.poly().run(
                session.tokens_[slice.shard], [&](polytm::Tx &tx) {
                    applyOpsInTx(shard, tx,
                                 grouped.data() + slice.begin,
                                 grouped.data() + slice.end, space_ok);
                });
            ok &= space_ok;
        }
    } catch (...) {
        release(locked);
        throw;
    }
    release(locked);
    return ok;
}

bool
KvStore::applyBatch(Session &session, Batch &batch)
{
    groupByShard(*this, batch.ops_, session.scratch_, session.slices_);
    const auto &grouped = session.scratch_;

    bool ok = true;
    for (const auto &slice : session.slices_) {
        Shard &shard = *shards_[slice.shard];
        bool space_ok = true;
        runOnShard(session, slice.shard, [&](polytm::Tx &tx) {
            applyOpsInTx(shard, tx, grouped.data() + slice.begin,
                         grouped.data() + slice.end, space_ok);
        });
        ok &= space_ok;
    }
    return ok;
}

polytm::PolyStats
KvStore::totalStats() const
{
    polytm::PolyStats total;
    for (const auto &shard : shards_) {
        const polytm::PolyStats stats = shard->poly().snapshotStats();
        total.commits += stats.commits;
        total.aborts += stats.aborts;
        for (std::size_t c = 0; c < total.abortsByCause.size(); ++c)
            total.abortsByCause[c] += stats.abortsByCause[c];
    }
    return total;
}

void
KvStore::resumeAllForShutdown()
{
    for (auto &shard : shards_)
        shard->poly().resumeAllForShutdown();
}

} // namespace proteus::kvstore
